//! Euler tour of a distributed tree and its applications (Figs. 43/44):
//! rooting, vertex depth, and subtree sizes of a binary tree, computed
//! with the tour + parallel list ranking.
//!
//! Run with: `cargo run --release --example euler_tour [nlocs] [n]`

use stapl::containers::generators::fill_binary_tree;
use stapl::containers::graph::{Directedness, PGraph};
use stapl::prelude::*;
use std::time::Instant;

fn main() {
    let nlocs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(2);
    let n: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(1023);

    execute(RtsConfig::default(), nlocs, move |loc| {
        let g: PGraph<(), ()> = PGraph::new_static(loc, n, Directedness::Undirected, ());
        fill_binary_tree(loc, &g, ());
        let t = Instant::now();
        let apps = euler_applications(&g, 0);
        let elapsed = loc.allreduce_max_f64(t.elapsed().as_secs_f64());

        // Verify against the closed form of a complete binary tree.
        let mut checked = 0u64;
        for v in (0..n).step_by((n / 64).max(1)) {
            if v == 0 {
                continue;
            }
            assert_eq!(apps.parent.get_element(v), (v - 1) / 2);
            let depth = apps.depth.get_element(v);
            assert_eq!(depth, (usize::BITS - (v + 1).leading_zeros() - 1) as i64);
            checked += 1;
        }
        let total_checked = loc.allreduce_sum(checked);
        if loc.id() == 0 {
            println!("Euler tour of a {n}-vertex binary tree on {nlocs} locations");
            println!("  arcs ranked: {}", 2 * (n - 1));
            println!("  spot-checked {total_checked} parent/depth values: OK");
            println!("  root subtree size: {}", apps.subtree.get_element(0));
            println!("  time: {elapsed:.3}s");
        }
    });
}
