//! Quickstart: the pArray example of Fig. 26, extended with the three
//! method flavors (sync / async / split-phase) and a generic pAlgorithm.
//!
//! Run with: `cargo run --release --example quickstart`

use stapl::prelude::*;

fn main() {
    let nlocs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("SPMD execution on {nlocs} locations\n");

    execute(RtsConfig::default(), nlocs, |loc| {
        // -- Fig. 26: a pArray with the default balanced partition and one
        //    with an explicit blocked partition.
        let pa = PArray::new(loc, 100, 0i64);
        let blocked = PArray::with_partition(
            loc,
            Box::new(stapl::core::partition::BlockedPartition::new(100, 10)),
            Box::new(stapl::core::mapper::CyclicMapper::new(loc.nlocs())),
            0i64,
        );

        // p_generate: fill with i*2 in parallel (local writes only).
        p_generate(&pa, |i| i as i64 * 2);
        p_generate(&blocked, |i| i as i64);

        // Asynchronous writes (set_element returns immediately) ...
        if loc.id() == 0 {
            for i in 0..100 {
                pa.set_element(i, i as i64);
            }
        }
        // ... complete by the next fence (the pContainer MCM).
        loc.rmi_fence();

        // Synchronous read, from any location:
        assert_eq!(pa.get_element(99), 99);

        // Split-phase read: overlap the wait with local work.
        let fut = pa.split_get_element(0);
        let local_work: i64 = (0..1000).sum();
        let first = fut.get();
        assert_eq!(first + local_work, 499500);

        // A generic pAlgorithm runs identically on either distribution.
        let total = p_reduce(&pa, |_, v| *v, |a, b| a + b).unwrap();
        let total_blocked = p_reduce(&blocked, |_, v| *v, |a, b| a + b).unwrap();
        if loc.id() == 0 {
            println!("sum over balanced pArray  = {total}");
            println!("sum over blocked pArray   = {total_blocked}");
        }

        // Shared-object view: every location sees the same data.
        let mine = pa.local_size();
        let all = loc.allreduce_sum(mine as u64);
        if loc.id() == 0 {
            println!("elements: {all} distributed as ~{} per location", all / loc.nlocs() as u64);
            let mem = pa.memory_size();
            println!("memory: {} B data + {} B metadata", mem.data, mem.metadata);
        } else {
            pa.memory_size(); // collective: all locations participate
        }
    });

    println!("\nquickstart: OK");
}
