//! MapReduce word count (Fig. 59): counts word occurrences in a
//! Zipf-distributed synthetic corpus using the hash-partitioned
//! associative pContainer with owner-side combining.
//!
//! Run with: `cargo run --release --example mapreduce_wordcount [nlocs] [words-per-loc]`

use stapl::prelude::*;
use std::time::Instant;

fn main() {
    let nlocs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let words = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(200_000);

    println!("word count over {} locations, {} words/location", nlocs, words);
    execute(RtsConfig::default(), nlocs, move |loc| {
        let text = synthetic_corpus(loc, words, 10_000, 2024);
        let t = Instant::now();
        let counts = word_count(loc, &text);
        let elapsed = loc.allreduce_max_f64(t.elapsed().as_secs_f64());

        // Top-10 words by count (gather local tops, merge at location 0).
        let mut local_top: Vec<(u64, String)> = Vec::new();
        counts.for_each_local(|w, c| local_top.push((*c, w.clone())));
        local_top.sort_unstable_by(|a, b| b.cmp(a));
        local_top.truncate(10);
        let mut merged = loc.allreduce(local_top, |mut a, mut b| {
            a.append(&mut b);
            a
        });
        merged.sort_unstable_by(|a, b| b.cmp(a));
        if loc.id() == 0 {
            println!("distinct words: {}", counts.global_size());
            println!("time: {elapsed:.3}s");
            println!("top words:");
            for (c, w) in merged.iter().take(10) {
                println!("  {w:>10}  {c}");
            }
        }
    });
}
