//! PageRank over a distributed pGraph — the Fig. 56 workload: compares
//! a square mesh against a long skinny mesh of the same size, showing how
//! the aspect ratio changes the boundary-to-interior ratio (and therefore
//! communication volume).
//!
//! Run with: `cargo run --release --example graph_pagerank [nlocs]`

use stapl::containers::generators::fill_mesh;
use stapl::containers::graph::{Directedness, PGraph};
use stapl::prelude::*;
use std::time::Instant;

fn run_mesh(nlocs: usize, rows: usize, cols: usize) {
    let results = stapl::rts::execute_collect(RtsConfig::default(), nlocs, move |loc| {
        let g: AlgoGraph =
            PGraph::new_static(loc, rows * cols, Directedness::Directed, VProps::default());
        fill_mesh(loc, &g, rows, cols, ());
        // Boundary fraction: vertices with at least one remote neighbor.
        let bv = stapl::views::graph_view::GraphView::boundary(g.clone());
        let boundary = loc.allreduce_sum(bv.local_len() as u64);
        let t = Instant::now();
        let total = page_rank(&g, 10, 0.85);
        let elapsed = loc.allreduce_max_f64(t.elapsed().as_secs_f64());
        (total, elapsed, boundary)
    });
    let (total, elapsed, boundary) = results[0];
    println!(
        "  {rows:>6} x {cols:<7} | rank sum {total:.6} | boundary vertices {boundary:>6} | {elapsed:.3}s"
    );
}

fn main() {
    let nlocs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    // Scaled-down versions of the paper's 1500x1500 and 15x150000 meshes
    // (same area ratio, laptop-sized).
    println!("PageRank, 10 iterations, {nlocs} locations (Fig. 56 shape):");
    run_mesh(nlocs, 150, 150);
    run_mesh(nlocs, 15, 1500);
    println!("\nBoth meshes have the same number of vertices, but the row-major");
    println!("balanced partition cuts the skinny mesh along its long rows, so its");
    println!("cross-location boundary — and hence communication per iteration —");
    println!("is ~10x larger. Mesh shape changing the comm/compute ratio at equal");
    println!("size is exactly what Fig. 56 contrasts.");
}
