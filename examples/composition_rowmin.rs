//! pContainer composition (Chapter XIII, Fig. 62): computing each row's
//! minimum three ways — a composed pArray<pArray>, a composed
//! pList<pArray>, and a pMatrix with row views — and checking they agree.
//!
//! Run with: `cargo run --release --example composition_rowmin [nlocs]`

use stapl::containers::composed::LocalArray;
use stapl::containers::list::PList;
use stapl::containers::matrix::PMatrix;
use stapl::core::partition::MatrixLayout;
use stapl::prelude::*;
use std::time::Instant;

const ROWS: usize = 256;
const COLS: usize = 512;

fn cell(r: usize, c: usize) -> i64 {
    ((r * 31 + c * 17) % 1000) as i64 - 500
}

fn main() {
    let nlocs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    execute(RtsConfig::default(), nlocs, |loc| {
        // 1. pArray of (location-local) pArrays.
        let pa: PArray<LocalArray<i64>> =
            PArray::from_fn(loc, ROWS, |r| LocalArray::from_fn(COLS, move |c| cell(r, c)));
        let t = Instant::now();
        let mut mins_pa = vec![i64::MAX; ROWS];
        pa.for_each_local(|r, row| mins_pa[r] = *row.iter().min().unwrap());
        let mins_pa = loc.allreduce(mins_pa, |a, b| {
            a.into_iter().zip(b).map(|(x, y)| x.min(y)).collect()
        });
        let t_pa = loc.allreduce_max_f64(t.elapsed().as_secs_f64());

        // 2. pList of pArrays (rows distributed by push_anywhere).
        let pl: PList<LocalArray<i64>> = PList::new(loc);
        for r in 0..ROWS {
            if r % loc.nlocs() == loc.id() {
                pl.push_anywhere(LocalArray::from_fn(COLS, move |c| cell(r, c)));
            }
        }
        pl.commit();
        let t = Instant::now();
        let mut local_min = i64::MAX;
        pl.for_each_local(|_, row| local_min = local_min.min(*row.iter().min().unwrap()));
        let global_min_pl = loc.allreduce(local_min, i64::min);
        let t_pl = loc.allreduce_max_f64(t.elapsed().as_secs_f64());

        // 3. pMatrix with row-blocked layout.
        let m = PMatrix::from_fn(loc, ROWS, COLS, MatrixLayout::RowBlocked, cell);
        let t = Instant::now();
        let rows_view = stapl::views::matrix_view::RowsView::new(m);
        let mut mins_m = vec![i64::MAX; ROWS];
        for rr in rows_view.local_rows() {
            for r in rr.iter() {
                mins_m[r] = rows_view.read_row(r).into_iter().min().unwrap();
            }
        }
        let mins_m = loc.allreduce(mins_m, |a, b| {
            a.into_iter().zip(b).map(|(x, y)| x.min(y)).collect()
        });
        let t_m = loc.allreduce_max_f64(t.elapsed().as_secs_f64());

        // All three agree.
        assert_eq!(mins_pa, mins_m);
        assert_eq!(*mins_pa.iter().min().unwrap(), global_min_pl);
        if loc.id() == 0 {
            println!("row-min over {ROWS}x{COLS} on {} locations:", loc.nlocs());
            println!("  pArray<pArray>  {t_pa:.4}s");
            println!("  pList<pArray>   {t_pl:.4}s");
            println!("  pMatrix (rows)  {t_m:.4}s");
            println!("  (all methods agree; global min = {global_min_pl})");
        }
    });
}
