//! # stapl — a Rust reproduction of the STAPL Parallel Container Framework
//!
//! This is the umbrella crate: it re-exports the runtime system
//! ([`rts`]), the parallel container framework ([`core`]), the container
//! library ([`containers`]), the view layer ([`views`]), the PARAGRAPH
//! task-graph executor ([`paragraph`]), and the parallel algorithms
//! ([`algorithms`]).
//!
//! See `README.md` for a tour and `DESIGN.md` for the paper-to-module map.

pub use stapl_algorithms as algorithms;
pub use stapl_containers as containers;
pub use stapl_core as core;
pub use stapl_paragraph as paragraph;
pub use stapl_rts as rts;
pub use stapl_views as views;

/// The commonly used subset of the API, for glob import in examples.
pub mod prelude {
    pub use stapl_algorithms::prelude::*;
    pub use stapl_containers::prelude::*;
    pub use stapl_core::prelude::*;
    pub use stapl_paragraph::prelude::*;
    pub use stapl_rts::{execute, execute_collect, Location, RtsConfig};
    pub use stapl_views::prelude::*;
}
