# Shared plumbing for the benchmark tier scripts. Source, don't run.
#
# Layout:
#   bench/baselines/BENCH_<area>.json   checked-in kick-tires baselines
#   bench/out/                          fresh runs (gitignored)
#
# Env knobs:
#   BENCH_OUT      output dir for the fresh run (default bench/out/<tier>)
#   BENCH_COMPARE  "0" to skip the baseline gate (e.g. while iterating)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/../.." && pwd)"
BASELINES="$REPO_ROOT/bench/baselines"

run_tier() {
    local tier="$1"
    local out="${BENCH_OUT:-$REPO_ROOT/bench/out/$tier}"

    # The harness must not inherit STAPL_* overrides: records are only
    # comparable if every run uses the explicit per-scenario configs.
    unset "${!STAPL_@}" 2>/dev/null || true

    cargo build --release -p stapl-bench --bin experiments --bin bench-compare
    rm -rf "$out"
    "$REPO_ROOT/target/release/experiments" --json "$out" --tier "$tier"

    if [ "${BENCH_COMPARE:-1}" = "1" ]; then
        # Tiers are supersets of kick-tires, so every tier's fresh run
        # contains all baseline records and can be gated.
        "$REPO_ROOT/target/release/bench-compare" "$BASELINES" "$out"
    else
        echo "bench-compare skipped (BENCH_COMPARE=0); fresh run in $out"
    fi
}
