#!/usr/bin/env bash
# Kick-tires tier: the <1 minute sanity sweep CI gates on. Runs every
# benchmark area at minimal sizes and diffs the deterministic counters
# against bench/baselines/.
. "$(dirname "$0")/common.sh"
run_tier kick-tires
