#!/usr/bin/env bash
# Full tier: the whole sweep at evaluation sizes (superset of lite).
# For real machine evaluations; not run in CI.
. "$(dirname "$0")/common.sh"
run_tier full
