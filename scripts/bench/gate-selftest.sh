#!/usr/bin/env bash
# Self-test of the regression gate itself (run by CI after kick-tires):
#   1. determinism: two kick-tires runs must agree with --exact (zero
#      tolerance) — the property the whole counter gate rests on;
#   2. sensitivity: a synthetic counter regression injected into one run
#      must make bench-compare exit nonzero.
. "$(dirname "$0")/common.sh"

out_a="$REPO_ROOT/bench/out/selftest-a"
out_b="$REPO_ROOT/bench/out/selftest-b"

unset "${!STAPL_@}" 2>/dev/null || true
cargo build --release -p stapl-bench --bin experiments --bin bench-compare
rm -rf "$out_a" "$out_b"
"$REPO_ROOT/target/release/experiments" --json "$out_a" --tier kick-tires
"$REPO_ROOT/target/release/experiments" --json "$out_b" --tier kick-tires

echo "== selftest 1: run-to-run determinism (--exact) =="
"$REPO_ROOT/target/release/bench-compare" "$out_a" "$out_b" --exact

echo "== selftest 2: synthetic regression must be caught =="
# Inflate every remote_requests counter by 100x in run B.
sed -i -E 's/"remote_requests": ([0-9]+)/"remote_requests": \100/' \
    "$out_b"/BENCH_*.json
if "$REPO_ROOT/target/release/bench-compare" "$out_a" "$out_b"; then
    echo "FATAL: bench-compare did not flag a 100x remote_requests regression" >&2
    exit 1
fi
echo "synthetic regression correctly rejected — gate is live"
