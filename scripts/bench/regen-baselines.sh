#!/usr/bin/env bash
# Regenerates bench/baselines/ from a fresh kick-tires run. Use after a
# deliberate perf-relevant change, and commit the diff — the per-line
# counter layout makes the regression review part of the PR review.
. "$(dirname "$0")/common.sh"
BENCH_OUT="$BASELINES" BENCH_COMPARE=0 run_tier kick-tires
echo "baselines refreshed in $BASELINES — review and commit the diff"
