#!/usr/bin/env bash
# Lite tier: a few minutes. Everything kick-tires runs (so the baseline
# gate still applies) plus more placements, P values, larger sizes, and
# the skewed-executor scenarios.
. "$(dirname "$0")/common.sh"
run_tier lite
