//! Edge-case and failure-injection tests across the stack: degenerate
//! sizes, skewed distributions, deep forwarding chains, rotation, view
//! seams, and graph oddities.

use stapl::containers::generators::fill_mesh;
use stapl::containers::graph::{Directedness, GraphPartitionKind, PGraph};
use stapl::containers::list::PList;
use stapl::core::interfaces::*;
use stapl::core::mapper::{CyclicMapper, GeneralMapper};
use stapl::core::partition::BalancedPartition;
use stapl::prelude::*;
use stapl_views::view::ViewRead;

#[test]
fn single_element_array_across_many_locations() {
    execute(RtsConfig::default(), 4, |loc| {
        // Fewer elements than locations: the balanced partition creates
        // one sub-domain per element; some locations own nothing.
        let a = PArray::new(loc, 1, 9u8);
        assert_eq!(a.global_size(), 1);
        assert_eq!(loc.allreduce_sum(a.local_size() as u64), 1);
        assert_eq!(a.get_element(0), 9);
        if loc.id() == 3 {
            a.set_element(0, 5);
        }
        loc.rmi_fence();
        assert_eq!(a.get_element(0), 5);
    });
}

#[test]
fn empty_containers_do_not_panic() {
    execute(RtsConfig::default(), 2, |loc| {
        let a = PArray::new(loc, 0usize, 0u64);
        assert_eq!(a.global_size(), 0);
        assert!(a.is_empty());
        let l: PList<u64> = PList::new(loc);
        l.commit();
        assert!(l.front_gid().is_none());
        assert_eq!(l.collect_ordered(), vec![]);
        assert_eq!(p_count_if(&a, |_| true), 0);
        assert_eq!(p_min_element(&a), None);
        let _ = loc;
    });
}

#[test]
fn all_elements_on_one_location() {
    execute(RtsConfig::default(), 3, |loc| {
        // Everything mapped to location 1: skewed placement must still
        // give correct global semantics.
        let a = PArray::with_partition(
            loc,
            Box::new(BalancedPartition::new(30, 3)),
            Box::new(GeneralMapper::new(3, vec![1, 1, 1])),
            0u64,
        );
        p_generate(&a, |i| i as u64);
        assert_eq!(a.local_size(), if loc.id() == 1 { 30 } else { 0 });
        assert_eq!(p_sum(&a), (0..30).sum::<u64>());
        assert_eq!(a.get_element(29), 29);
    });
}

#[test]
fn rotate_moves_data_and_preserves_content() {
    execute(RtsConfig::default(), 3, |loc| {
        let a = PArray::from_fn(loc, 30, |i| i as i64);
        let owner_before = a.locate_element(0).1;
        a.rotate(1);
        let owner_after = a.locate_element(0).1;
        assert_eq!(owner_after, (owner_before + 1) % loc.nlocs());
        for i in (0..30).step_by(7) {
            assert_eq!(a.get_element(i), i as i64);
        }
        // Rotating nlocs times returns to the original placement.
        a.rotate(1);
        a.rotate(1);
        assert_eq!(a.locate_element(0).1, owner_before);
    });
}

#[test]
fn deep_forwarding_chain_through_graph_ops() {
    // Dynamic deletes + re-adds force directory churn; fence must drain
    // multi-hop chains.
    execute(RtsConfig::with_aggregation(4), 3, |loc| {
        let g: PGraph<u64, ()> =
            PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
        let vd = g.add_vertex(loc.id() as u64);
        g.commit();
        let all = loc.allgather(vd);
        // Chain of edges 0 -> 1 -> 2 -> 0 added purely remotely.
        let next = all[(loc.id() + 1) % loc.nlocs()];
        g.add_edge_async(vd, next, ());
        g.commit();
        assert_eq!(g.num_edges(), 3);
        for &v in &all {
            assert_eq!(g.out_degree(v), 1);
        }
    });
}

#[test]
fn graph_self_loops_and_multi_edges() {
    execute(RtsConfig::default(), 2, |loc| {
        let g: PGraph<(), u8> = PGraph::new_static(loc, 4, Directedness::Directed, ());
        if loc.id() == 0 {
            g.add_edge_async(1, 1, 7); // self loop
            g.add_edge_async(0, 2, 1); // multi-edges allowed (paper's MULTI)
            g.add_edge_async(0, 2, 2);
        }
        g.commit();
        assert_eq!(g.out_degree(1), 1);
        assert!(g.find_edge(1, 1));
        assert_eq!(g.out_degree(0), 2);
        // delete removes one instance at a time.
        if loc.id() == 1 {
            g.delete_edge_async(0, 2);
        }
        g.commit();
        assert_eq!(g.out_degree(0), 1);
        assert!(g.find_edge(0, 2));
    });
}

#[test]
fn dynamic_vertex_delete_then_read_is_detectable() {
    execute(RtsConfig::default(), 2, |loc| {
        let g: PGraph<u32, ()> =
            PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
        let vd = g.add_vertex(1);
        g.commit();
        if loc.id() == 0 {
            g.delete_vertex(vd); // delete my own vertex
        }
        g.commit();
        assert_eq!(g.num_vertices(), 1, "only location 1's vertex remains");
        if loc.id() == 0 {
            assert!(!g.find_vertex(vd));
        }
    });
}

#[test]
fn overlap_view_windows_cross_location_seams() {
    execute(RtsConfig::default(), 4, |loc| {
        let a = PArray::from_fn(loc, 40, |i| i as i64);
        let ov = OverlapView::new(ArrayView::new(a), 1, 0, 1);
        // Every window [i, i+1] — including those straddling ownership
        // boundaries — reads consistently.
        for w in ov.local_windows() {
            for i in w.iter() {
                let win = ov.window(i);
                assert_eq!(win, vec![i as i64, i as i64 + 1]);
            }
        }
        let _ = loc;
    });
}

#[test]
fn strided_and_transform_compose() {
    execute(RtsConfig::default(), 2, |loc| {
        let a = PArray::from_fn(loc, 16, |i| i as i64);
        let even = StridedView::new(ArrayView::new(a), 0, 2);
        let squared = TransformView::new(even, |x| x * x);
        assert_eq!(squared.len(), 8);
        assert_eq!(squared.get(3), 36);
        let total = p_reduce_view(&squared, |_, v| v, |x, y| x + y).unwrap();
        assert_eq!(total, (0..8).map(|k| (2 * k) * (2 * k)).sum::<i64>());
        let _ = loc;
    });
}

#[test]
fn balanced_view_with_more_parts_than_elements() {
    execute(RtsConfig::default(), 2, |loc| {
        let a = PArray::from_fn(loc, 3, |i| i as u64);
        let v = BalancedView::with_parts(ArrayView::new(a), 8);
        let covered: u64 =
            loc.allreduce_sum(v.local_chunks().iter().map(|c| c.len() as u64).sum());
        assert_eq!(covered, 3);
    });
}

#[test]
fn list_front_back_after_cross_location_churn() {
    execute(RtsConfig::default(), 3, |loc| {
        let l: PList<i32> = PList::new(loc);
        let g = l.push_anywhere(loc.id() as i32);
        loc.rmi_fence();
        // Everyone erases its own element and pushes a replacement at the
        // global front; only location 0's bContainer receives them.
        SequenceContainer::erase_async(&l, g);
        l.push_front(-(loc.id() as i32));
        l.commit();
        assert_eq!(l.global_size(), 3);
        let front = l.front_gid().unwrap();
        assert_eq!(front.bcid, 0);
        let v = l.collect_ordered();
        assert_eq!(v.len(), 3);
        assert!(v.iter().all(|x| *x <= 0));
    });
}

#[test]
fn mesh_bfs_from_every_corner_is_symmetric() {
    execute(RtsConfig::default(), 2, |loc| {
        let g: AlgoGraph = PGraph::new_static(loc, 20, Directedness::Directed, VProps::default());
        fill_mesh(loc, &g, 4, 5, ());
        let corners = [0usize, 4, 15, 19];
        let mut results = Vec::new();
        for c in corners {
            results.push(bfs(&g, c));
        }
        // Full reachability from every corner; level count = diameter+1.
        for (reached, levels) in results {
            assert_eq!(reached, 20);
            assert_eq!(levels, (4 - 1) + (5 - 1) + 1);
        }
    });
}

#[test]
fn prefix_sum_on_skewed_partition() {
    execute(RtsConfig::default(), 2, |loc| {
        // All data on location 1; prefix sums must still be globally
        // correct (exercises the bcid-ordered scan).
        let a = PArray::with_partition(
            loc,
            Box::new(BalancedPartition::new(16, 4)),
            Box::new(GeneralMapper::new(2, vec![1, 1, 0, 1])),
            1u64,
        );
        p_prefix_sum_u64(&a);
        for i in 0..16 {
            assert_eq!(a.get_element(i), i as u64 + 1);
        }
        let _ = loc;
    });
}

#[test]
fn concurrent_mixed_container_traffic() {
    // Several containers interleave traffic on the same locations; the
    // per-object registries must keep requests separated.
    execute(RtsConfig::with_aggregation(8), 3, |loc| {
        let a = PArray::new(loc, 30, 0u64);
        let l: PList<u64> = PList::new(loc);
        let m: stapl::containers::associative::PHashMap<u64, u64> =
            stapl::containers::associative::PHashMap::new(loc);
        for k in 0..30u64 {
            a.set_element((k as usize + loc.id()) % 30, k);
            l.push_anywhere(k);
            m.apply_or_insert(k % 7, 0, |v| *v += 1);
        }
        loc.rmi_fence();
        l.commit();
        m.commit();
        assert_eq!(l.global_size(), 90);
        assert_eq!(m.global_size(), 7);
        let total: u64 = (0..7).map(|k| m.find(k).unwrap()).sum();
        assert_eq!(total, 90);
    });
}

#[test]
fn cyclic_vs_blocked_mapper_changes_placement_not_semantics() {
    execute(RtsConfig::default(), 2, |loc| {
        let cyc = PArray::with_partition(
            loc,
            Box::new(BalancedPartition::new(24, 6)),
            Box::new(CyclicMapper::new(2)),
            0u64,
        );
        let blk = PArray::with_partition(
            loc,
            Box::new(BalancedPartition::new(24, 6)),
            Box::new(stapl::core::mapper::BlockedMapper::new(2, 6)),
            0u64,
        );
        p_generate(&cyc, |i| i as u64);
        p_generate(&blk, |i| i as u64);
        assert!(p_equal(&cyc, &blk));
        // Placement differs: sub-domain 1 is on loc1 cyclic, loc0 blocked.
        assert_eq!(cyc.locate_element(4).1, 1);
        assert_eq!(blk.locate_element(4).1, 0);
    });
}
