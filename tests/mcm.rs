//! Memory-consistency-model tests (Chapter VII): the executable version
//! of the paper's guarantees and counterexamples.

use stapl::core::mapper::GeneralMapper;
use stapl::core::partition::BalancedPartition;
use stapl::prelude::*;

/// Each location's flag is stored on the *other* location, so writing
/// one's own flag is a remote asynchronous RMI while reading the peer's
/// flag is a local access — the placement under which Dekker's algorithm
/// exposes the relaxed model.
fn dekker_flags(loc: &stapl_rts::Location) -> PArray<u64> {
    PArray::with_partition(
        loc,
        Box::new(BalancedPartition::new(2, 2)),
        Box::new(GeneralMapper::new(2, vec![1, 0])),
        0u64,
    )
}

/// Dekker's mutual-exclusion flags (Fig. 22b): under the default MCM with
/// asynchronous writes, both locations can read 0 — the model is *not*
/// sequentially consistent. With the write in flight while the (local)
/// read completes, the violation is essentially guaranteed.
#[test]
fn dekker_violation_under_async_writes() {
    let mut both_zero_seen = false;
    for _ in 0..10 {
        let reads = stapl::rts::execute_collect(RtsConfig::with_aggregation(64), 2, |loc| {
            let flags = dekker_flags(loc);
            loc.rmi_fence();
            let me = loc.id();
            let other = 1 - me;
            flags.set_element(me, 1); // async write to my (remote) flag
            let seen = flags.get_element(other); // read of the other's (local) flag
            loc.rmi_fence();
            seen
        });
        if reads == vec![0, 0] {
            both_zero_seen = true;
        }
    }
    assert!(
        both_zero_seen,
        "async-write Dekker never read (0, 0); the default MCM should admit it"
    );
}

/// Claim 3 of Chapter VII: restricting the interface to synchronous
/// methods restores sequential consistency — both-zero becomes
/// impossible because each write completes before the next operation.
#[test]
fn dekker_safe_with_sync_only_methods() {
    for _ in 0..25 {
        let reads = stapl::rts::execute_collect(RtsConfig::default(), 2, |loc| {
            let flags = dekker_flags(loc);
            loc.rmi_fence();
            let me = loc.id();
            let other = 1 - me;
            // Synchronous write: apply_get blocks until the owner ran it.
            flags.apply_get(me, |v| *v = 1);
            let seen = flags.get_element(other);
            loc.rmi_fence();
            seen
        });
        assert_ne!(reads, vec![0, 0], "sync-only Dekker must never read (0, 0)");
    }
}

/// Same-source, same-element program order: the paper's guarantee 4 —
/// a read after N async writes to the same element returns the last one.
#[test]
fn per_element_program_order() {
    execute(RtsConfig::with_aggregation(8), 3, |loc| {
        let a = PArray::new(loc, 3, 0u64);
        loc.rmi_fence();
        let target = (loc.id() + 1) % 3;
        for k in 1..=50u64 {
            a.set_element(target, loc.id() as u64 * 1000 + k);
        }
        // Synchronous read on the same element forces the pending asyncs
        // from this source (guarantee: ACKs for same element in order).
        assert_eq!(a.get_element(target), loc.id() as u64 * 1000 + 50);
        loc.rmi_fence();
    });
}

/// Different elements may complete out of order — but a fence completes
/// everything (the completion guarantee of Section VII.B).
#[test]
fn fence_completes_all_pending_asyncs() {
    execute(RtsConfig::with_aggregation(256), 4, |loc| {
        let a = PArray::new(loc, 400, 0u64);
        loc.rmi_fence();
        if loc.id() == 0 {
            for i in 0..400 {
                a.set_element(i, i as u64 + 1);
            }
        }
        loc.rmi_fence();
        // After the fence every write is visible everywhere.
        for i in (0..400).step_by(37) {
            assert_eq!(a.get_element(i), i as u64 + 1);
        }
    });
}

/// Split-phase semantics: the future's `get` is the acknowledgment; work
/// can overlap, and the returned value reflects all earlier same-source
/// operations on that element.
#[test]
fn split_phase_read_observes_earlier_writes() {
    execute(RtsConfig::default(), 2, |loc| {
        let a = PArray::new(loc, 2, 0i64);
        loc.rmi_fence();
        let other = 1 - loc.id();
        a.set_element(other, 7); // async
        let fut = a.split_get_element(other); // split-phase after async: same element
        assert_eq!(fut.get(), 7);
        loc.rmi_fence();
    });
}

/// The paper's example interleaving (Fig. 19): S7/S8/S9 — a split-phase
/// read issued before a same-source write must return the old value.
#[test]
fn program_order_split_read_before_write() {
    execute(RtsConfig::default(), 2, |loc| {
        let a = PArray::new(loc, 4, 0u64);
        loc.rmi_fence();
        if loc.id() == 1 {
            let fut = a.split_get_element(3); // S7: read x (old value 0)
            a.set_element(3, 8); // S8: write x
            assert_eq!(fut.get(), 0, "S9 must see the pre-write value");
        }
        loc.rmi_fence();
        assert_eq!(a.get_element(3), 8);
    });
}

/// Concurrent writers to the same element: after a fence all locations
/// agree on one of the written values (Section VII.C's a-but-unknown).
#[test]
fn concurrent_writes_converge_to_single_value() {
    let values = stapl::rts::execute_collect(RtsConfig::default(), 4, |loc| {
        let a = PArray::new(loc, 1, usize::MAX);
        loc.rmi_fence();
        a.set_element(0, loc.id());
        loc.rmi_fence();
        a.get_element(0)
    });
    assert!(values[0] < 4, "value must be one of the writes");
    assert!(values.iter().all(|v| *v == values[0]), "all locations must agree: {values:?}");
}

/// Liveness: every method invocation gets an acknowledgment — a stress
/// mix of flavors completes (no lost messages under aggregation).
#[test]
fn liveness_under_mixed_flavors() {
    execute(RtsConfig::with_aggregation(32), 4, |loc| {
        let a = PArray::new(loc, 64, 0u64);
        loc.rmi_fence();
        let mut pending = Vec::new();
        for k in 0..64 {
            let g = (loc.id() * 17 + k * 5) % 64;
            match k % 3 {
                0 => a.set_element(g, k as u64),
                1 => pending.push(a.split_get_element(g)),
                _ => {
                    let _ = a.get_element(g);
                }
            }
        }
        for f in pending {
            let _ = f.get();
        }
        loc.rmi_fence();
    });
}
