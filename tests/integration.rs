//! Cross-crate integration tests: containers + views + algorithms + RTS
//! working together on multi-step workflows.

use stapl::containers::generators::{fill_mesh, fill_ssca2, Ssca2Params};
use stapl::containers::graph::{Directedness, PGraph};
use stapl::containers::list::PList;
use stapl::containers::matrix::PMatrix;
use stapl::core::interfaces::{
    DynamicPContainer, ElementRead, LocalIteration, PContainer,
};
use stapl::core::mapper::CyclicMapper;
use stapl::core::partition::{BlockCyclicPartition, MatrixLayout};
use stapl::prelude::*;

/// Generate → sort → prefix-sum → verify: a full numeric pipeline.
#[test]
fn numeric_pipeline() {
    execute(RtsConfig::default(), 3, |loc| {
        let a = PArray::new(loc, 90, 0u64);
        // Deterministic "random" fill.
        p_generate(&a, |i| ((i * 7919 + 13) % 1000) as u64);
        let before_sum = p_sum(&a);
        p_sort(&a);
        assert!(p_is_sorted(&a));
        assert_eq!(p_sum(&a), before_sum, "sorting must preserve the multiset");
        p_prefix_sum_u64(&a);
        // The last prefix equals the total.
        assert_eq!(a.get_element(89), before_sum);
        let _ = loc;
    });
}

/// Graph pipeline: SSCA2 generation → BFS reachability → connected
/// components over the undirected closure → PageRank sanity.
#[test]
fn graph_pipeline() {
    execute(RtsConfig::default(), 2, |loc| {
        let g: AlgoGraph = PGraph::new_static(loc, 48, Directedness::Directed, VProps::default());
        let p = Ssca2Params { n: 48, max_clique_size: 5, inter_clique_prob: 1.0, seed: 17 };
        fill_ssca2(loc, &g, &p, ());
        let (reached, levels) = bfs(&g, 0);
        assert!(reached > 40, "chained cliques should be mostly reachable");
        assert!(levels >= 2);
        let total = page_rank(&g, 8, 0.85);
        assert!((total - 1.0).abs() < 1e-9);
    });
}

/// Algorithms run identically over differently partitioned pArrays —
/// the decoupling the PCF promises.
#[test]
fn partition_transparency() {
    let sums: Vec<u64> = stapl::rts::execute_collect(RtsConfig::default(), 2, |loc| {
        let balanced = PArray::from_fn(loc, 60, |i| i as u64);
        let cyclic = PArray::with_partition(
            loc,
            Box::new(BlockCyclicPartition::new(60, 4, 3)),
            Box::new(CyclicMapper::new(loc.nlocs())),
            0u64,
        );
        p_generate(&cyclic, |i| i as u64);
        let s1 = p_sum(&balanced);
        let s2 = p_sum(&cyclic);
        assert_eq!(s1, s2);
        s1
    });
    assert_eq!(sums[0], (0..60).sum::<u64>());
}

/// Redistribution mid-computation: results are unchanged, placement is.
#[test]
fn redistribute_between_phases() {
    execute(RtsConfig::default(), 2, |loc| {
        let a = PArray::from_fn(loc, 40, |i| i as u64);
        let sum_before = p_sum(&a);
        a.redistribute(
            Box::new(stapl::core::partition::BlockedPartition::new(40, 5)),
            Box::new(CyclicMapper::new(loc.nlocs())),
        );
        assert_eq!(p_sum(&a), sum_before);
        // The new partition actually changed ownership granularity.
        assert_eq!(a.local_subdomains().len(), 4); // 8 blocks cyclic over 2
        a.rebalance();
        assert_eq!(a.local_subdomains().len(), 1);
        assert_eq!(p_sum(&a), sum_before);
        let _ = loc;
    });
}

/// List → array conversion via push_anywhere + collect, with algorithms
/// on both (the pList/pVector interoperability story of Chapter X).
#[test]
fn list_array_interop() {
    execute(RtsConfig::default(), 2, |loc| {
        let l: PList<u64> = PList::new(loc);
        for k in 0..20 {
            l.push_anywhere(loc.id() as u64 * 1000 + k);
        }
        l.commit();
        assert_eq!(l.global_size(), 40);
        let from_list = p_reduce(&l, |_, v| *v, |a, b| a + b).unwrap();
        // Mirror into an array by index.
        let a = PArray::new(loc, 40, 0u64);
        let mut k = 0;
        let base = loc.id() * 20;
        l.for_each_local(|_, v| {
            a.set_element(base + k, *v);
            k += 1;
        });
        loc.rmi_fence();
        assert_eq!(p_sum(&a), from_list);
        l.clear();
        l.commit();
        assert_eq!(l.global_size(), 0);
    });
}

/// Matrix viewed as linear 1-D data and processed by array algorithms
/// (the pView re-interpretation of Chapter III).
#[test]
fn matrix_linear_view_with_algorithms() {
    execute(RtsConfig::default(), 2, |loc| {
        let m = PMatrix::from_fn(loc, 8, 8, MatrixLayout::RowBlocked, |r, c| (r * 8 + c) as u64);
        let lin = stapl::views::matrix_view::LinearView::new(m.clone());
        let sum = p_reduce_view(&lin, |_, v| v, |a, b| a + b).unwrap();
        assert_eq!(sum, (0..64).sum::<u64>());
        // Mutate through the view, observe through the matrix.
        p_for_each_view(&lin, |v| *v += 1);
        assert_eq!(m.get_element((7, 7)), 64);
        let _ = loc;
    });
}

/// The thread-safety managers plug into containers end-to-end.
#[test]
fn custom_thread_safety_manager_on_array() {
    use stapl::core::thread_safety::{
        HashedLockManager, LockingPolicyTable, ThreadSafety,
    };
    execute(RtsConfig::default(), 2, |loc| {
        let ths = ThreadSafety::new(
            LockingPolicyTable::dynamic_default(),
            std::sync::Arc::new(HashedLockManager::new(8)),
        );
        let a = PArray::with_options(
            loc,
            Box::new(stapl::core::partition::BalancedPartition::new(32, loc.nlocs())),
            Box::new(CyclicMapper::new(loc.nlocs())),
            0u64,
            stapl::containers::array::ArrayStorage::Contiguous,
            ths,
        );
        for i in 0..32 {
            a.set_element(i, i as u64);
        }
        loc.rmi_fence();
        assert_eq!(p_sum(&a), (0..32).sum::<u64>());
    });
}

/// Nested-parallelism composition (Fig. 61): outer map over a composed
/// container invoking an inner reduction, then a global reduction.
#[test]
fn nested_algorithm_invocation() {
    use stapl::containers::composed::LocalArray;
    execute(RtsConfig::default(), 2, |loc| {
        let rows = 10;
        let pa: PArray<LocalArray<u64>> =
            PArray::from_fn(loc, rows, |r| LocalArray::from_fn(6, move |c| (r * 6 + c) as u64));
        // Inner algorithm: per-row sum at the owner; outer: global max.
        let mut local_best = 0u64;
        pa.for_each_local(|_, row| {
            let inner_sum: u64 = row.iter().sum();
            local_best = local_best.max(inner_sum);
        });
        let best = loc.allreduce(local_best, u64::max);
        // Last row has the largest values: sum = 54+55+..+59.
        assert_eq!(best, (54..60).sum::<u64>());
    });
}

/// Weak-scaling smoke over location counts: results identical regardless
/// of nlocs (determinism of the SPMD algorithms).
#[test]
fn results_independent_of_location_count() {
    let mut answers = Vec::new();
    for nlocs in [1, 2, 4] {
        let r = stapl::rts::execute_collect(RtsConfig::default(), nlocs, |loc| {
            let g: AlgoGraph =
                PGraph::new_static(loc, 30, Directedness::Directed, VProps::default());
            fill_mesh(loc, &g, 5, 6, ());
            let sources = find_sources(&g);
            let (reached, levels) = bfs(&g, 0);
            (sources.len(), reached, levels)
        });
        answers.push(r[0]);
    }
    assert_eq!(answers[0], answers[1]);
    assert_eq!(answers[1], answers[2]);
    assert_eq!(answers[0].1, 30); // mesh fully reachable
}
