//! Property-based tests: distributed containers against sequential
//! reference models, and algebraic invariants of the PCF concepts.

use proptest::prelude::*;
use stapl::containers::list::PList;
use stapl::core::domain::{FiniteDomain, Range1d, Range2d};
use stapl::core::interfaces::{AssociativeContainer, ElementRead, ElementWrite, PContainer};
use stapl::core::partition::{
    BalancedPartition, BlockCyclicPartition, BlockedPartition, IndexPartition, SplitterPartition,
};
use stapl::core::partition::KeyPartition;
use stapl::prelude::*;

fn cover_exactly_once(p: &dyn IndexPartition) {
    let n = p.global_size();
    let mut seen = vec![0u8; n];
    for b in 0..p.num_subdomains() {
        for g in p.subdomain(b).iter() {
            seen[g] += 1;
            assert_eq!(p.find(g), b);
        }
    }
    assert!(seen.iter().all(|&c| c == 1));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Definition 9: every 1-D partition family covers the domain with
    /// disjoint sub-domains, and `find` inverts `subdomain`.
    #[test]
    fn partitions_are_partitions(n in 1usize..400, p in 1usize..12, block in 1usize..17) {
        cover_exactly_once(&BalancedPartition::new(n, p));
        cover_exactly_once(&BlockedPartition::new(n, block));
        cover_exactly_once(&BlockCyclicPartition::new(n, p, block));
    }

    /// Ordered partitions preserve the element order across sub-domains
    /// (Definition 10) for contiguous families.
    #[test]
    fn ordered_partition_preserves_order(n in 1usize..300, p in 1usize..10) {
        let part = BalancedPartition::new(n, p);
        let mut last: Option<usize> = None;
        for b in 0..part.num_subdomains() {
            for g in part.subdomain(b).iter() {
                if let Some(prev) = last {
                    prop_assert!(g == prev + 1, "linearization must be contiguous");
                }
                last = Some(g);
            }
        }
    }

    /// Range1d: offset/nth round-trip and next/prev inversion.
    #[test]
    fn range1d_navigation(lo in 0usize..50, len in 1usize..60) {
        let d = Range1d::new(lo, lo + len);
        for g in d.iter() {
            prop_assert_eq!(d.nth(d.offset(&g)), Some(g));
            if let Some(nx) = d.next(g) {
                prop_assert_eq!(d.prev(nx), Some(g));
            }
        }
        prop_assert_eq!(d.size(), len);
    }

    /// Range2d row-major linearization: enumerate() agrees with offset().
    #[test]
    fn range2d_linearization(r in 1usize..8, c in 1usize..8) {
        let d = Range2d::with_shape(r, c);
        for (k, g) in d.enumerate().into_iter().enumerate() {
            prop_assert_eq!(d.offset(&g), k);
            prop_assert_eq!(d.nth(k), Some(g));
        }
    }

    /// Splitter partitions map keys monotonically (Fig. 58's order
    /// preservation).
    #[test]
    fn splitter_partition_monotone(mut splitters in proptest::collection::vec(0i64..1000, 0..6)) {
        splitters.sort_unstable();
        splitters.dedup();
        let p = SplitterPartition::new(splitters);
        for k in (-50i64..1050).step_by(7) {
            prop_assert!(p.find(&k) <= p.find(&(k + 1)));
            prop_assert!(p.find(&k) < p.num_subdomains());
        }
    }
}

proptest! {
    // Distributed model checks spawn threads per case; keep cases modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// pArray under a random sequence of scattered writes equals a Vec
    /// written with the same final values.
    #[test]
    fn parray_matches_vec_model(
        n in 4usize..64,
        writes in proptest::collection::vec((0usize..64, 0u64..1000), 1..40),
    ) {
        let writes: Vec<(usize, u64)> =
            writes.into_iter().map(|(i, v)| (i % n, v)).collect();
        let mut model = vec![0u64; n];
        // Last-writer-wins in program order: location 0 performs all
        // writes in order (same-source same-element ordering guarantee).
        for (i, v) in &writes {
            model[*i] = *v;
        }
        let w2 = writes.clone();
        let got = stapl::rts::execute_collect(RtsConfig::default(), 2, move |loc| {
            let a = PArray::new(loc, n, 0u64);
            loc.rmi_fence();
            if loc.id() == 0 {
                for (i, v) in &w2 {
                    a.set_element(*i, *v);
                }
            }
            loc.rmi_fence();
            (0..n).map(|i| a.get_element(i)).collect::<Vec<_>>()
        });
        prop_assert_eq!(&got[0], &model);
        prop_assert_eq!(&got[1], &model);
    }

    /// pList: per-location appends preserve FIFO order inside each
    /// location's segment and concatenate by location order.
    #[test]
    fn plist_matches_segmented_model(
        counts in proptest::collection::vec(0usize..12, 2..4)
    ) {
        let nlocs = counts.len();
        let c2 = counts.clone();
        let got = stapl::rts::execute_collect(RtsConfig::default(), nlocs, move |loc| {
            let l: PList<usize> = PList::new(loc);
            for k in 0..c2[loc.id()] {
                l.push_anywhere(loc.id() * 100 + k);
            }
            l.commit();
            l.collect_ordered()
        });
        let mut model = Vec::new();
        for (id, c) in counts.iter().enumerate() {
            for k in 0..*c {
                model.push(id * 100 + k);
            }
        }
        prop_assert_eq!(&got[0], &model);
    }

    /// pHashMap equals a HashMap given single-writer keys.
    #[test]
    fn phashmap_matches_hashmap_model(
        pairs in proptest::collection::vec((0u32..100, 0u64..1000), 1..50),
        erases in proptest::collection::vec(0u32..100, 0..20),
    ) {
        let mut model = std::collections::HashMap::new();
        for (k, v) in &pairs {
            model.insert(*k, *v);
        }
        for k in &erases {
            model.remove(k);
        }
        let p2 = pairs.clone();
        let e2 = erases.clone();
        let model2 = model.clone();
        let sizes = stapl::rts::execute_collect(RtsConfig::default(), 2, move |loc| {
            let model = &model2;
            let m: stapl::containers::associative::PHashMap<u32, u64> =
                stapl::containers::associative::PHashMap::new(loc);
            if loc.id() == 0 {
                for (k, v) in &p2 {
                    m.insert_async(*k, *v);
                }
            }
            m.commit();
            if loc.id() == 1 {
                for k in &e2 {
                    m.erase_async(*k);
                }
            }
            m.commit();
            for k in 0..100u32 {
                let got = m.find(k);
                assert_eq!(got, model.get(&k).copied(), "key {k}");
            }
            m.global_size()
        });
        prop_assert_eq!(sizes[0], model.len());
    }

    /// p_sort equals the std sort of the same multiset.
    #[test]
    fn psort_matches_std_sort(mut vals in proptest::collection::vec(0u64..500, 1..80)) {
        let input = vals.clone();
        vals.sort_unstable();
        let n = input.len();
        let got = stapl::rts::execute_collect(RtsConfig::default(), 2, move |loc| {
            let a = PArray::new(loc, n, 0u64);
            p_generate(&a, |i| input[i]);
            p_sort(&a);
            (0..n).map(|i| a.get_element(i)).collect::<Vec<_>>()
        });
        prop_assert_eq!(&got[0], &vals);
    }

    /// p_prefix_sum equals the sequential inclusive scan.
    #[test]
    fn prefix_sum_matches_scan(vals in proptest::collection::vec(0u64..100, 1..60)) {
        let n = vals.len();
        let mut expect = vals.clone();
        for i in 1..n {
            expect[i] += expect[i - 1];
        }
        let v2 = vals.clone();
        let got = stapl::rts::execute_collect(RtsConfig::default(), 3, move |loc| {
            let a = PArray::new(loc, n, 0u64);
            p_generate(&a, |i| v2[i]);
            p_prefix_sum_u64(&a);
            (0..n).map(|i| a.get_element(i)).collect::<Vec<_>>()
        });
        prop_assert_eq!(&got[0], &expect);
    }

    /// List ranking positions are the inverse of the successor chain for
    /// an arbitrary permutation list.
    #[test]
    fn list_ranking_inverts_permutation(seed in 0u64..10_000) {
        let n = 24usize;
        // Deterministic permutation from the seed.
        let mut order: Vec<usize> = (0..n).collect();
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
        for i in (1..n).rev() {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            order.swap(i, (s as usize) % (i + 1));
        }
        let ord2 = order.clone();
        let got = stapl::rts::execute_collect(RtsConfig::default(), 2, move |loc| {
            let succ = PArray::from_fn(loc, n, |i| {
                let at = ord2.iter().position(|&x| x == i).unwrap();
                if at + 1 < n { ord2[at + 1] } else { stapl::algorithms::list_ranking::NIL }
            });
            let pos = list_positions(&succ, n);
            (0..n).map(|i| pos.get_element(i)).collect::<Vec<_>>()
        });
        for (expect, &elem) in order.iter().enumerate() {
            prop_assert_eq!(got[0][elem], expect as u64);
        }
    }
}
