//! Smoke test: every example in `examples/` must run to completion on a
//! small input (2 locations, reduced problem sizes where the example
//! takes a size argument). Guards against examples rotting while the
//! library moves on.

use std::process::Command;

/// Runs `cargo run --example <name> -- <args>` with the same cargo that
/// is running this test and asserts a zero exit status.
fn run_example(name: &str, args: &[&str]) {
    let cargo = env!("CARGO");
    let mut cmd = Command::new(cargo);
    cmd.args(["run", "--example", name, "--"]).args(args);
    let out = cmd.output().unwrap_or_else(|e| panic!("failed to spawn cargo for {name}: {e}"));
    assert!(
        out.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        out.status,
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
}

#[test]
fn quickstart_runs() {
    run_example("quickstart", &["2"]);
}

#[test]
fn composition_rowmin_runs() {
    run_example("composition_rowmin", &["2"]);
}

#[test]
fn euler_tour_runs() {
    run_example("euler_tour", &["2", "63"]);
}

#[test]
fn graph_pagerank_runs() {
    run_example("graph_pagerank", &["2"]);
}

#[test]
fn mapreduce_wordcount_runs() {
    run_example("mapreduce_wordcount", &["2", "5000"]);
}
