//! Offline stand-in for the [`crossbeam`](https://docs.rs/crossbeam)
//! channel API used by this workspace (`unbounded`, `Sender`,
//! `Receiver`), implemented over `std::sync::mpsc`. See
//! `vendor/README.md` for why this exists.

pub mod channel {
    //! Multi-producer channels with the `crossbeam-channel` calling
    //! convention (`Sender` is `Clone + Sync`, `try_recv` returns a
    //! `Result`).

    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// Sending half of an unbounded channel; cheap to clone, shareable
    /// across threads by reference.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `t`; fails only if the receiver was dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            self.0.send(t)
        }
    }

    /// Receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> Receiver<T> {
        /// Dequeues a message if one is ready, without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Blocks until a message arrives or all senders are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }
    }

    /// Creates an unbounded MPSC channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{unbounded, TryRecvError};

    #[test]
    fn send_try_recv_round_trip() {
        let (tx, rx) = unbounded::<u32>();
        assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        tx.send(7).unwrap();
        assert_eq!(rx.try_recv().unwrap(), 7);
    }

    #[test]
    fn senders_shared_across_threads() {
        let (tx, rx) = unbounded::<usize>();
        std::thread::scope(|s| {
            for t in 0..4 {
                let tx = tx.clone();
                s.spawn(move || tx.send(t).unwrap());
            }
        });
        let mut got: Vec<usize> = (0..4).map(|_| rx.recv().unwrap()).collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }
}
