//! Offline stand-in for the subset of [`rand`](https://docs.rs/rand)
//! this workspace uses: [`rngs::StdRng`] (xoshiro256++), seeded via
//! [`SeedableRng::seed_from_u64`], with [`Rng::random`] /
//! [`Rng::random_range`] (imported here as `RngExt`) for sampling. Deterministic for a given
//! seed. See `vendor/README.md`.

use std::ops::{Range, RangeInclusive};

/// Source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed
    /// (expanded through SplitMix64, as the real `rand` does).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented for every
/// [`RngCore`] — the real `rand` 0.9 extension trait name.
pub trait Rng: RngCore {
    /// A uniformly distributed value of `T` over its standard domain
    /// (`f64`/`f32` in `[0, 1)`, integers over their full range,
    /// `bool` fair).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.random::<f64>() < p
    }

    /// A uniform value in `range`; panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<R: RngCore> Rng for R {}

/// The alias this workspace imports the extension trait under.
pub use self::Rng as RngExt;

/// Types with a standard distribution for [`RngExt::random`].
pub trait Standard {
    fn sample<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore>(rng: &mut R) -> f64 {
        // 53 mantissa bits -> [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

/// Integers that can be drawn uniformly from a range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi]` (inclusive); requires `lo <= hi`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased draw from `[0, span]` via rejection on the top `2^64 % n`
/// values (Lemire-style widening multiply is overkill here).
fn uniform_u64<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    if span == u64::MAX {
        return rng.next_u64();
    }
    let n = span + 1;
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let x = rng.next_u64();
        if x <= zone {
            return x % n;
        }
    }
}

macro_rules! sample_uniform_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                lo + uniform_u64(rng, (hi - lo) as u64) as $t
            }
        }
    )*};
}
sample_uniform_uint!(u8, u16, u32, u64, usize);

macro_rules! sample_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore>(rng: &mut R, lo: $t, hi: $t) -> $t {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
    )*};
}
sample_uniform_int!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        let hi = self.end;
        let lo = self.start;
        // end is exclusive: sample [lo, end-1] by rejecting end itself.
        loop {
            let v = T::sample_inclusive(rng, lo, hi);
            if v < hi {
                return v;
            }
        }
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample from empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-50..=50);
            assert!((-50..=50).contains(&w));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[rng.random_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
