//! Offline stand-in for the subset of
//! [`proptest`](https://docs.rs/proptest) this workspace uses: the
//! [`proptest!`] macro over integer-range, tuple, and
//! [`collection::vec`] strategies, with `prop_assert!`-style assertions
//! and [`test_runner::ProptestConfig`] controlling the case count.
//!
//! Differences from the real crate: cases are generated from a
//! deterministic per-test seed (test name + case index), and failing
//! inputs are **not shrunk** — the panic message reports the case seed
//! so a failure is reproducible by rerunning the test. See
//! `vendor/README.md`.

pub mod test_runner {
    //! Runner configuration.

    /// Controls how many random cases each property runs.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::StdRng;
    use rand::{RngExt, SampleRange};
    use std::ops::{Range, RangeInclusive};

    /// Generates one random value per case.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws a value from `rng`.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;
    }

    impl<T> Strategy for Range<T>
    where
        T: Copy,
        Range<T>: SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<T> Strategy for RangeInclusive<T>
    where
        T: Copy,
        RangeInclusive<T>: SampleRange<T>,
    {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            rng.random_range(self.clone())
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;
    use std::ops::Range;

    /// Admissible length specifications for [`vec()`].
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_excl: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(
                r.start < r.end,
                "proptest stand-in: empty vec size range {}..{}",
                r.start,
                r.end
            );
            SizeRange { lo: r.start, hi_excl: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_excl: n + 1 }
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length lies in `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `vec(0u64..100, 1..40)`: vectors of 1..40 draws from the element
    /// strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let len = if self.size.lo + 1 >= self.size.hi_excl {
                self.size.lo
            } else {
                rng.random_range(self.size.lo..self.size.hi_excl)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Deterministic per-case seed: FNV-1a over the test name, mixed with
/// the case index. Printed on failure so a case can be re-examined.
#[doc(hidden)]
pub fn __case_seed(test_name: &str, case: u32) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

#[doc(hidden)]
pub fn __rng_for(seed: u64) -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(seed)
}

/// Reports which case failed when a property panics: the assertion
/// unwinds through this guard's `Drop`, which prints the test name,
/// case index, and seed to stderr next to the panic message.
#[doc(hidden)]
pub struct __CaseGuard {
    pub test: &'static str,
    pub case: u32,
    pub seed: u64,
}

impl Drop for __CaseGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            eprintln!(
                "proptest stand-in: property '{}' failed at case {} (seed {:#x})",
                self.test, self.case, self.seed
            );
        }
    }
}

/// Defines property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` that generates inputs for `cases` seeds and runs
/// the body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($p:pat in $s:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..__config.cases {
                let __seed = $crate::__case_seed(stringify!($name), __case);
                let __guard = $crate::__CaseGuard {
                    test: stringify!($name),
                    case: __case,
                    seed: __seed,
                };
                let mut __rng = $crate::__rng_for(__seed);
                $(let $p = $crate::strategy::Strategy::generate(&($s), &mut __rng);)*
                // One scope per case so non-Copy inputs drop before the
                // next generation round.
                {
                    $body
                }
                drop(__guard);
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

/// `assert!` under the name property-test bodies use.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` under the name property-test bodies use.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` under the name property-test bodies use.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

pub mod prelude {
    //! Everything a property-test file needs in scope.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;

    #[test]
    fn vec_strategy_respects_bounds() {
        let s = crate::collection::vec(0u64..10, 2..5);
        let mut rng = crate::__rng_for(1);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself: patterns, tuples, trailing strategies.
        #[test]
        fn macro_generates_in_range(n in 1usize..50, (a, b) in (0u32..10, 0i64..5)) {
            prop_assert!((1..50).contains(&n));
            prop_assert!(a < 10);
            prop_assert!(b < 5);
        }

        #[test]
        fn mut_patterns_work(mut v in crate::collection::vec(0u64..100, 0..6)) {
            v.sort_unstable();
            prop_assert!(v.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
