//! Offline stand-in for the raw-lock subset of
//! [`parking_lot`](https://docs.rs/parking_lot): `RawMutex` and
//! `RawRwLock` plus the `lock_api` traits that give them their methods.
//! Spin-based with `yield_now` backoff — adequate for the short critical
//! sections the thread-safety managers guard. See `vendor/README.md`.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod lock_api {
    //! The trait layer of the real `lock_api` crate, reduced to the
    //! methods this workspace calls. `INIT` is a const so locks can be
    //! created in const contexts and collected into `Vec`s.

    /// A raw (unowned, manually paired) mutual-exclusion lock.
    pub trait RawMutex {
        /// An unlocked lock.
        const INIT: Self;

        /// Acquires the lock, blocking until available.
        fn lock(&self);

        /// Attempts to acquire without blocking; `true` on success.
        fn try_lock(&self) -> bool;

        /// Releases the lock.
        ///
        /// # Safety
        /// Must be paired with a successful [`RawMutex::lock`] or
        /// [`RawMutex::try_lock`] by the current context.
        unsafe fn unlock(&self);
    }

    /// A raw readers-writer lock.
    pub trait RawRwLock {
        /// An unlocked lock.
        const INIT: Self;

        /// Acquires a shared (read) lock.
        fn lock_shared(&self);

        /// Acquires an exclusive (write) lock.
        fn lock_exclusive(&self);

        /// Releases a shared lock.
        ///
        /// # Safety
        /// Must be paired with [`RawRwLock::lock_shared`].
        unsafe fn unlock_shared(&self);

        /// Releases an exclusive lock.
        ///
        /// # Safety
        /// Must be paired with [`RawRwLock::lock_exclusive`].
        unsafe fn unlock_exclusive(&self);
    }
}

/// Test-and-test-and-set spinlock with yield backoff.
pub struct RawMutex {
    state: AtomicUsize,
}

impl lock_api::RawMutex for RawMutex {
    const INIT: RawMutex = RawMutex { state: AtomicUsize::new(0) };

    fn lock(&self) {
        let mut spins = 0u32;
        loop {
            if self
                .state
                .compare_exchange_weak(0, 1, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                return;
            }
            backoff(&mut spins);
            while self.state.load(Ordering::Relaxed) != 0 {
                backoff(&mut spins);
            }
        }
    }

    fn try_lock(&self) -> bool {
        self.state
            .compare_exchange(0, 1, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
    }

    // SAFETY: trait contract — the caller holds the lock, so state is 1
    // and a Release store of 0 publishes the critical section.
    unsafe fn unlock(&self) {
        self.state.store(0, Ordering::Release);
    }
}

const WRITER: usize = usize::MAX;

/// Spin-based readers-writer lock: the state counts readers, with
/// `usize::MAX` marking an exclusive writer. Writers CAS `0 -> WRITER`;
/// readers increment when no writer holds the lock. Writers announce
/// themselves in `writers_waiting`, which blocks *new* readers — without
/// this, sustained reader traffic would livelock writers (the real
/// parking_lot blocks new readers the same way once a writer queues).
pub struct RawRwLock {
    state: AtomicUsize,
    writers_waiting: AtomicUsize,
}

impl lock_api::RawRwLock for RawRwLock {
    const INIT: RawRwLock =
        RawRwLock { state: AtomicUsize::new(0), writers_waiting: AtomicUsize::new(0) };

    fn lock_shared(&self) {
        let mut spins = 0u32;
        loop {
            if self.writers_waiting.load(Ordering::Relaxed) == 0 {
                let s = self.state.load(Ordering::Relaxed);
                if s != WRITER
                    && self
                        .state
                        .compare_exchange_weak(s, s + 1, Ordering::Acquire, Ordering::Relaxed)
                        .is_ok()
                {
                    return;
                }
            }
            backoff(&mut spins);
        }
    }

    fn lock_exclusive(&self) {
        self.writers_waiting.fetch_add(1, Ordering::Relaxed);
        let mut spins = 0u32;
        loop {
            if self
                .state
                .compare_exchange_weak(0, WRITER, Ordering::Acquire, Ordering::Relaxed)
                .is_ok()
            {
                self.writers_waiting.fetch_sub(1, Ordering::Relaxed);
                return;
            }
            backoff(&mut spins);
        }
    }

    // SAFETY: trait contract — the caller holds a shared lock, so state
    // counts it (≥ 1, not WRITER) and the decrement cannot underflow.
    unsafe fn unlock_shared(&self) {
        self.state.fetch_sub(1, Ordering::Release);
    }

    // SAFETY: trait contract — the caller holds the exclusive lock, so
    // state is WRITER and storing 0 reopens it.
    unsafe fn unlock_exclusive(&self) {
        self.state.store(0, Ordering::Release);
    }
}

fn backoff(spins: &mut u32) {
    if *spins < 6 {
        for _ in 0..(1u32 << *spins) {
            std::hint::spin_loop();
        }
        *spins += 1;
    } else {
        std::thread::yield_now();
    }
}

// stapl-lint: allow(undocumented-unsafe) — test bodies pair every unlock
// with a lock taken a few lines up; per-site comments would only restate
// the control flow.
#[cfg(test)]
mod tests {
    use super::lock_api::{RawMutex as _, RawRwLock as _};
    use super::*;
    use std::sync::atomic::AtomicI64;

    #[test]
    fn mutex_excludes() {
        let m = RawMutex::INIT;
        let inside = AtomicI64::new(0);
        let viol = AtomicI64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..500 {
                        m.lock();
                        if inside.fetch_add(1, Ordering::SeqCst) != 0 {
                            viol.fetch_add(1, Ordering::SeqCst);
                        }
                        std::thread::yield_now();
                        inside.fetch_sub(1, Ordering::SeqCst);
                        unsafe { m.unlock() }
                    }
                });
            }
        });
        assert_eq!(viol.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn try_lock_fails_when_held() {
        let m = RawMutex::INIT;
        m.lock();
        assert!(!m.try_lock());
        unsafe { m.unlock() }
        assert!(m.try_lock());
        unsafe { m.unlock() }
    }

    #[test]
    fn rwlock_counts_readers_and_excludes_writer() {
        let l = RawRwLock::INIT;
        l.lock_shared();
        l.lock_shared();
        // A writer cannot sneak in while readers hold the lock.
        assert_eq!(l.state.load(Ordering::SeqCst), 2);
        unsafe { l.unlock_shared() }
        unsafe { l.unlock_shared() }
        l.lock_exclusive();
        assert_eq!(l.state.load(Ordering::SeqCst), WRITER);
        unsafe { l.unlock_exclusive() }
    }

    #[test]
    fn writer_not_starved_by_reader_churn() {
        use std::sync::atomic::AtomicBool;
        let l = RawRwLock::INIT;
        let got_write = AtomicBool::new(false);
        std::thread::scope(|s| {
            // 4 reader threads churn: there is almost always a reader
            // holding the lock unless new readers are being blocked.
            for _ in 0..4 {
                s.spawn(|| {
                    while !got_write.load(Ordering::Relaxed) {
                        l.lock_shared();
                        std::hint::spin_loop();
                        unsafe { l.unlock_shared() }
                    }
                });
            }
            s.spawn(|| {
                l.lock_exclusive();
                got_write.store(true, Ordering::Relaxed);
                unsafe { l.unlock_exclusive() }
            });
        });
        assert!(got_write.load(Ordering::Relaxed));
    }
}
