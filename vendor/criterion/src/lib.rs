//! Offline stand-in for the subset of
//! [`criterion`](https://docs.rs/criterion) this workspace uses. Keeps
//! the calling convention (`criterion_group!` / `criterion_main!`,
//! groups, `Bencher::iter`) but measures with a plain wall-clock loop:
//! a short warm-up, then `sample_size` samples whose mean and minimum
//! are printed. No statistics, plots, or CLI; `cargo bench` runs every
//! target and prints one line per benchmark. See `vendor/README.md`.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` keeps working; prefer
/// `std::hint::black_box` in new code.
pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter,
/// printed as `name/param`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("ctor", 1024)` prints as `ctor/1024`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Clone, Copy)]
struct Settings {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Settings {
    fn default() -> Self {
        Settings {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Number of samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Upper bound on time spent measuring one benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.settings.measurement_time = d;
        self
    }

    /// Time spent warming up before measuring.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.settings.warm_up_time = d;
        self
    }

    /// No-op (the real crate disables gnuplot/plotters output).
    pub fn without_plots(self) -> Self {
        self
    }

    /// No-op (the real crate reads CLI filters); kept for
    /// call-compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), settings: self.settings, _parent: self }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", &id.into().id, self.settings, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into().id, self.settings, &mut f);
        self
    }

    /// Benchmarks `f` under `id`, passing `input` through.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.into().id, self.settings, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (nothing to flush in the stand-in).
    pub fn finish(self) {}
}

/// Passed to the benchmark closure; call [`Bencher::iter`] with the
/// code under test.
pub struct Bencher {
    settings: Settings,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`: warm-up, then up to `sample_size` samples
    /// bounded by `measurement_time`.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.settings.warm_up_time {
            black_box(routine());
        }
        let budget = Instant::now();
        for _ in 0..self.settings.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget.elapsed() > self.settings.measurement_time {
                break;
            }
        }
    }
}

fn run_one(group: &str, id: &str, settings: Settings, f: &mut dyn FnMut(&mut Bencher)) {
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    let mut b = Bencher { settings, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<60} (no samples)");
        return;
    }
    let total: Duration = b.samples.iter().sum();
    let mean = total / b.samples.len() as u32;
    let min = b.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{label:<60} mean {:>12?}  min {:>12?}  ({} samples)",
        mean,
        min,
        b.samples.len()
    );
}

/// Defines a function that runs the listed targets, either with a
/// custom `config = ...` expression or the default [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut c = $config;
            $( $target(&mut c); )*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        }
    };
}

/// Defines `main` to run the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $( $group(); )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_records() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("t");
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| {
                runs += 1;
                (0..n).sum::<u64>()
            })
        });
        g.finish();
        assert!(runs >= 3);
    }
}
