//! Offline stand-in for a wire codec crate (the bincode-style subset this
//! workspace uses): fixed-width little-endian primitives written to and
//! read from byte buffers, with explicit end-of-input errors on the read
//! side.
//!
//! The encoding is deliberately trivial — `u8`/`u32`/`u64` in little-endian
//! order plus raw byte runs — because the caller (the serialized RMI
//! transport in `stapl-rts`) defines its own frame structure on top. No
//! varints, no tags, no self-description: every field's width is fixed by
//! the schema of the frame being read.

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) over a byte
/// stream, computed incrementally so callers can checksum disjoint byte
/// runs (e.g. a frame header and payload around the checksum field
/// itself). `Crc32::new().update(b"123456789").finish() == 0xCBF43926`.
#[derive(Clone, Copy, Debug)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    pub fn update(mut self, bytes: &[u8]) -> Self {
        let table = crc_table();
        for &b in bytes {
            let idx = (self.state ^ u32::from(b)) & 0xFF;
            self.state = (self.state >> 8) ^ table[idx as usize];
        }
        self
    }

    pub fn finish(self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot convenience over [`Crc32`].
pub fn crc32(bytes: &[u8]) -> u32 {
    Crc32::new().update(bytes).finish()
}

fn crc_table() -> &'static [u32; 256] {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut v = i as u32;
            for _ in 0..8 {
                v = if v & 1 != 0 { (v >> 1) ^ 0xEDB8_8320 } else { v >> 1 };
            }
            *slot = v;
        }
        table
    })
}

/// Read-side failure: the buffer ended before the requested field.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnexpectedEof {
    /// Byte offset at which the read was attempted.
    pub at: usize,
    /// Bytes the failed read needed.
    pub wanted: usize,
    /// Bytes that remained.
    pub remaining: usize,
}

impl std::fmt::Display for UnexpectedEof {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unexpected end of input at byte {}: wanted {} bytes, {} remain",
            self.at, self.wanted, self.remaining
        )
    }
}

impl std::error::Error for UnexpectedEof {}

/// Appends fixed-width little-endian fields to a caller-owned buffer, so
/// per-destination aggregation buffers can be reused across messages.
pub struct Writer<'a> {
    buf: &'a mut Vec<u8>,
}

impl<'a> Writer<'a> {
    pub fn new(buf: &'a mut Vec<u8>) -> Self {
        Writer { buf }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a raw byte run (the caller's schema must fix or encode its
    /// length; nothing is prefixed here).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes written so far into the underlying buffer (including bytes
    /// present before this writer was created).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Reads fixed-width little-endian fields from a byte slice, tracking the
/// current offset and failing with [`UnexpectedEof`] instead of panicking.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], UnexpectedEof> {
        if self.remaining() < n {
            return Err(UnexpectedEof { at: self.pos, wanted: n, remaining: self.remaining() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    pub fn u8(&mut self) -> Result<u8, UnexpectedEof> {
        Ok(self.take(1)?[0])
    }

    pub fn u32(&mut self) -> Result<u32, UnexpectedEof> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte slice")))
    }

    pub fn u64(&mut self) -> Result<u64, UnexpectedEof> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte slice")))
    }

    /// Reads a raw byte run of schema-determined length.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], UnexpectedEof> {
        self.take(n)
    }

    /// Current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_width() {
        let mut buf = Vec::new();
        let mut w = Writer::new(&mut buf);
        w.u8(0xAB);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.raw(b"frame");
        assert_eq!(w.len(), 1 + 4 + 8 + 5);

        let mut r = Reader::new(&buf);
        assert_eq!(r.u8(), Ok(0xAB));
        assert_eq!(r.u32(), Ok(0xDEAD_BEEF));
        assert_eq!(r.u64(), Ok(u64::MAX - 1));
        assert_eq!(r.raw(5), Ok(&b"frame"[..]));
        assert!(r.is_empty());
    }

    #[test]
    fn little_endian_layout_is_stable() {
        let mut buf = Vec::new();
        Writer::new(&mut buf).u32(0x0102_0304);
        assert_eq!(buf, [0x04, 0x03, 0x02, 0x01]);
    }

    #[test]
    fn writer_appends_to_existing_contents() {
        let mut buf = vec![0xFF];
        let mut w = Writer::new(&mut buf);
        w.u8(1);
        assert_eq!(w.len(), 2);
        assert_eq!(buf, [0xFF, 1]);
    }

    #[test]
    fn eof_reports_offset_and_need() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u8(), Ok(1));
        let err = r.u32().unwrap_err();
        assert_eq!(err, UnexpectedEof { at: 1, wanted: 4, remaining: 1 });
        assert!(err.to_string().contains("wanted 4"));
        // A failed read consumes nothing.
        assert_eq!(r.u8(), Ok(2));
        assert_eq!(r.raw(1).unwrap_err().wanted, 1);
    }

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The canonical CRC-32/IEEE check vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_is_incremental_over_disjoint_runs() {
        let whole = crc32(b"header|payload");
        let split = Crc32::new().update(b"header|").update(b"payload").finish();
        assert_eq!(whole, split);
        // Any single-bit flip changes the checksum.
        let mut corrupt = b"header|payload".to_vec();
        corrupt[3] ^= 0x10;
        assert_ne!(crc32(&corrupt), whole);
    }

    #[test]
    fn zero_length_raw_is_fine() {
        let mut buf = Vec::new();
        Writer::new(&mut buf).raw(&[]);
        assert!(Reader::new(&buf).raw(0).unwrap().is_empty());
    }
}
