//! The repository must sweep clean: plain `cargo test` enforces the RMI
//! discipline, not just the dedicated CI lint job. Any new violation is
//! either fixed or carries a justified `stapl-lint: allow(...)`.

use std::path::Path;

#[test]
fn repository_sweeps_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        stapl_lint::workspace::is_workspace_root(&root),
        "expected the stapl workspace at {}",
        root.display()
    );
    let files = stapl_lint::sweep_files(&root);
    assert!(files.len() > 50, "sweep looks truncated: {} files", files.len());
    let lints = stapl_lint::run(&root, &files, true);

    let rendered: Vec<String> = lints.findings.iter().map(|f| f.render()).collect();
    assert!(
        lints.findings.is_empty(),
        "workspace has unsuppressed lint findings:\n{}",
        rendered.join("\n")
    );

    let unused: Vec<String> = lints
        .suppressions
        .iter()
        .filter(|s| !s.used)
        .map(|s| format!("{}:{}", s.file, s.line))
        .collect();
    assert!(unused.is_empty(), "stale suppressions (remove them): {unused:?}");

    // Suppressions are only honest if they say why.
    let unjustified: Vec<String> = lints
        .suppressions
        .iter()
        .filter(|s| s.note.is_empty())
        .map(|s| format!("{}:{}", s.file, s.line))
        .collect();
    assert!(
        unjustified.is_empty(),
        "suppressions without a justification: {unjustified:?}"
    );
}
