//! Fixture self-test: every rule fires on its bad fixture at exactly the
//! `EXPECT-<code>` marker lines, stays silent on the good fixture, and
//! the suppression / JSON machinery round-trips.

use std::path::{Path, PathBuf};
use std::process::Command;

use stapl_lint::{findings_from_json, run, sweep_files, to_json, LintRun, Rule};

fn fixtures() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests").join("fixtures")
}

/// 1-based lines of `file` carrying an `EXPECT-<code>` marker.
fn marker_lines(file: &Path, code: &str) -> Vec<u32> {
    let text = std::fs::read_to_string(file).expect("fixture readable");
    let tag = format!("EXPECT-{code}");
    text.lines()
        .enumerate()
        .filter(|(_, l)| l.contains(&tag))
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

fn run_single(name: &str) -> LintRun {
    let dir = fixtures();
    run(&dir, &[dir.join(name)], false)
}

fn check_bad(name: &str, rule: Rule) {
    let lints = run_single(name);
    let markers = marker_lines(&fixtures().join(name), rule.code());
    assert!(!markers.is_empty(), "{name} must carry EXPECT markers");
    let mut lines: Vec<u32> = lints.findings.iter().map(|f| f.line).collect();
    lines.sort();
    assert_eq!(
        lines, markers,
        "{name}: findings must hit exactly the marked lines; got {:#?}",
        lints.findings
    );
    for f in &lints.findings {
        assert_eq!(f.rule, rule, "{name}: unexpected rule in {f:?}");
        assert_eq!(f.file, name);
        assert!(!f.hint.is_empty(), "{name}: every diagnostic carries a fix hint");
    }
}

fn check_good(name: &str) {
    let lints = run_single(name);
    assert!(
        lints.findings.is_empty(),
        "{name} must be clean; got {:#?}",
        lints.findings
    );
}

#[test]
fn l1_blocking_in_handler() {
    check_bad("l1_bad.rs", Rule::BlockingInHandler);
    check_good("l1_good.rs");
}

#[test]
fn l2_borrow_across_poll() {
    check_bad("l2_bad.rs", Rule::BorrowAcrossPoll);
    check_good("l2_good.rs");
}

#[test]
fn l3_divergent_collective() {
    check_bad("l3_bad.rs", Rule::DivergentCollective);
    check_good("l3_good.rs");
}

#[test]
fn l6_undocumented_unsafe() {
    check_bad("l6_bad.rs", Rule::UndocumentedUnsafe);
    check_good("l6_good.rs");
}

/// Runs the cross-file checks over a mini-workspace fixture tree.
fn run_workspace(tree: &str) -> LintRun {
    let root = fixtures().join(tree);
    let files = sweep_files(&root);
    assert!(!files.is_empty(), "{tree}: sweep must find the mini crates");
    run(&root, &files, true)
}

#[test]
fn l4_counter_gate_drift() {
    let lints = run_workspace("l4_bad");
    let by = |file: &str, frag: &str| {
        lints
            .findings
            .iter()
            .filter(|f| f.file.ends_with(file) && f.message.contains(frag))
            .count()
    };
    assert_eq!(by("stats.rs", "never incremented"), 1, "{:#?}", lints.findings);
    assert_eq!(by("stats.rs", "no \"gated\" list"), 2, "unlisted + dead_counter");
    assert_eq!(by("trace.rs", "not a counter field"), 1, "ghost_counter");
    assert_eq!(by("BENCH_mini.json", "stale name gates nothing"), 0);
    assert_eq!(by("BENCH_mini.json", "not a counter field"), 1, "stale_counter");
    assert_eq!(lints.findings.len(), 5, "{:#?}", lints.findings);
    assert!(lints.findings.iter().all(|f| f.rule == Rule::CounterGateDrift));

    let clean = run_workspace("l4_good");
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
    assert_eq!(clean.suppressed, 1, "the justified ungated counter");
}

#[test]
fn l5_knob_doc_drift() {
    let lints = run_workspace("l5_bad");
    let has = |file: &str, frag: &str| {
        lints.findings.iter().any(|f| f.file.ends_with(file) && f.message.contains(frag))
    };
    assert!(has("config.rs", "STAPL_BETA"), "{:#?}", lints.findings);
    assert!(has("README.md", "STAPL_GAMMA"));
    assert!(has("fault.rs", "`spin`"));
    assert_eq!(lints.findings.len(), 3, "{:#?}", lints.findings);
    assert!(lints.findings.iter().all(|f| f.rule == Rule::KnobDocDrift));

    let clean = run_workspace("l5_good");
    assert!(clean.findings.is_empty(), "{:#?}", clean.findings);
}

#[test]
fn suppressions_silence_and_audit() {
    let lints = run_single("suppressed.rs");
    assert!(lints.findings.is_empty(), "{:#?}", lints.findings);
    assert_eq!(lints.suppressed, 3, "unsafe + handler fence + unsafe");
    assert_eq!(lints.suppressions.len(), 2);
    assert!(lints.suppressions.iter().all(|s| s.used));
    assert!(lints.suppressions.iter().all(|s| !s.note.is_empty()));
}

#[test]
fn json_report_round_trips() {
    for name in ["l1_bad.rs", "l2_bad.rs", "l3_bad.rs", "l6_bad.rs"] {
        let lints = run_single(name);
        let parsed = findings_from_json(&to_json(&lints)).expect("report parses");
        assert_eq!(parsed, lints.findings, "{name}");
    }
}

#[test]
fn cli_exit_codes_and_json() {
    let bin = env!("CARGO_BIN_EXE_stapl-lint");
    let dir = fixtures();

    let bad = Command::new(bin)
        .args(["--root", dir.to_str().unwrap(), "--json", "l1_bad.rs"])
        .output()
        .expect("bin runs");
    assert_eq!(bad.status.code(), Some(1), "findings exit 1");
    let json = String::from_utf8(bad.stdout).unwrap();
    let parsed = findings_from_json(&json).expect("CLI --json parses");
    assert_eq!(parsed.len(), 2);
    assert!(parsed.iter().all(|f| f.rule == Rule::BlockingInHandler));

    let good = Command::new(bin)
        .args(["--root", dir.to_str().unwrap(), "--deny-all", "l1_good.rs"])
        .output()
        .expect("bin runs");
    assert_eq!(good.status.code(), Some(0), "clean file exits 0");

    let usage = Command::new(bin).arg("--no-such-flag").output().expect("bin runs");
    assert_eq!(usage.status.code(), Some(2), "usage error exits 2");
}
