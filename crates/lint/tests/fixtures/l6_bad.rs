// L6 fixture: unsafe without a stated invariant.

pub fn read_raw(ptr: *const u64) -> u64 {
    unsafe { *ptr } // EXPECT-L6
}

pub unsafe fn reinterpret(bytes: &[u8]) -> &[u32] { // EXPECT-L6
    core::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / 4)
}
