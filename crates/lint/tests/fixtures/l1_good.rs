// L1 fixture (clean): handlers stay non-blocking; waiting happens at the
// issuing site, outside any handler closure.

fn notify_peer(loc: &Location, peer: usize) {
    loc.async_rmi(peer, move |l| {
        l.note_arrival();
    });
    loc.rmi_fence();
}

fn read_split_phase(loc: &Location, gid: usize) {
    let fut = loc.split_request(gid, |elem| elem.fetch_neighbor());
    loc.poll_or_relax();
    fut.wait();
}
