// L3 fixture (clean): collectives hoisted out of id guards, symmetric
// splits where both branches reach one, and non-id data guards.

fn report(loc: &Location) {
    let total = loc.allreduce_sum(1);
    if loc.id() == 0 {
        log(total);
    }
}

fn symmetric(loc: &Location) {
    if loc.id() == 0 {
        loc.broadcast(42);
    } else {
        loc.broadcast(0);
    }
}

fn data_guard(loc: &Location, pending: usize) {
    if pending == 0 {
        loc.rmi_fence();
    }
}
