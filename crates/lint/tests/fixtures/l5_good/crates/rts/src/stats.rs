pub(crate) struct Stats {}
