pub fn load() {
    let _ = std::env::var("STAPL_ALPHA");
    let _ = std::env::var("STAPL_FAULTS");
}
