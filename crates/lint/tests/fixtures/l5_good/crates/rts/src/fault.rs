pub fn parse(key: &str) {
    match key {
        "drop" => {}
        _ => {}
    }
}
