// L6 fixture (clean): every unsafe site states its invariant — the std
// `// SAFETY:` comment for blocks, the rustdoc `# Safety` section for
// an unsafe fn's caller contract.

pub fn read_raw(ptr: *const u64) -> u64 {
    // SAFETY: callers only pass addresses of live pool slots, which are
    // valid and aligned for u64.
    unsafe { *ptr }
}

/// Reinterprets a byte slice as `u32`s.
///
/// # Safety
/// `bytes` must be 4-byte aligned and its length a multiple of 4.
pub unsafe fn reinterpret(bytes: &[u8]) -> &[u32] {
    // SAFETY: alignment and length are this fn's documented contract.
    unsafe { core::slice::from_raw_parts(bytes.as_ptr().cast(), bytes.len() / 4) }
}
