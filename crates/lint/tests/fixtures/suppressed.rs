// Suppression fixture: real violations silenced both ways — a trailing
// comment (line scope) and an own-line comment (item scope).

pub fn read_raw(ptr: *const u64) -> u64 {
    unsafe { *ptr } // stapl-lint: allow(undocumented-unsafe) — fixture: line-scoped
}

// stapl-lint: allow(L6, L1) — fixture: item-scoped, covers the whole fn
pub fn both(loc: &Location, ptr: *mut u64) {
    loc.async_rmi(1, move |l| l.rmi_fence());
    unsafe { drop_in_place(ptr) };
}
