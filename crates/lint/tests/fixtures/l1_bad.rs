// L1 fixture: handlers run inside the polling loop of the target
// location — blocking there deadlocks the loop that would make progress.
// Marked lines must each raise exactly one diagnostic.

fn notify_peer(loc: &Location, peer: usize) {
    loc.async_rmi(peer, move |l| {
        l.note_arrival();
        l.rmi_fence(); // EXPECT-L1
    });
}

fn read_through_directory(loc: &Location, gid: usize) {
    loc.dir_route_ret(gid, |elem| {
        let fut = elem.fetch_neighbor();
        fut.wait() // EXPECT-L1
    });
}
