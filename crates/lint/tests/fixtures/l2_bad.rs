// L2 fixture: a RefCell storage borrow held across a poll point — a
// handler delivered by the poll can touch the same container and panic
// on the double borrow.

fn drain(loc: &Location, store: &RefCell<Vec<u64>>) {
    let guard = store.borrow_mut();
    loc.poll(); // EXPECT-L2
    drop(guard);
}

fn scan(view: &VectorView) {
    view.with_slice(|s| {
        let mut sum = 0;
        for x in s {
            sum += x;
        }
        rmi_fence(); // EXPECT-L2
        sum
    });
}
