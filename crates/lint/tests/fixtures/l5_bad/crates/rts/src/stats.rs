pub(crate) struct Stats {}
