pub fn parse(key: &str) {
    match key {
        "drop" => {}
        "spin" => {} // EXPECT-L5: sub-key absent from the README row
        _ => {}
    }
}
