pub fn load() {
    let _ = std::env::var("STAPL_ALPHA");
    let _ = std::env::var("STAPL_BETA"); // EXPECT-L5: missing from README
    let _ = std::env::var("STAPL_FAULTS");
}
