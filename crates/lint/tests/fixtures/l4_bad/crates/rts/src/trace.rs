impl TraceEventKind {
    pub fn gating_counter(self) -> Option<&'static str> {
        match self {
            TraceEventKind::RmiSend => Some("remote_requests"),
            TraceEventKind::Ghost => Some("ghost_counter"), // EXPECT-L4: not a Stats field
            _ => None,
        }
    }
}
