use std::sync::atomic::AtomicU64;

pub(crate) struct Stats {
    pub remote_requests: AtomicU64,
    pub unlisted: AtomicU64, // EXPECT-L4: incremented but gated nowhere
    pub dead_counter: AtomicU64, // EXPECT-L4 x2: never incremented, never gated
}
