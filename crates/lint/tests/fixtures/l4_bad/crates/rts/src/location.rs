pub fn run(loc: &Location) {
    bump!(loc, remote_requests);
    loc.inner.stats.unlisted.fetch_add(1, Ordering::Relaxed);
}
