pub fn load() {
    let _ = std::env::var("STAPL_MINI");
}
