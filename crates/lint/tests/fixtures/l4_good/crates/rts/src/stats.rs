use std::sync::atomic::AtomicU64;

pub(crate) struct Stats {
    pub remote_requests: AtomicU64,
    // stapl-lint: allow(counter-gate-drift) — fixture: flush counts are
    // timing-dependent, so this stays ungated by design.
    pub flushes: AtomicU64,
}
