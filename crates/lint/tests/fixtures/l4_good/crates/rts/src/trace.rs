impl TraceEventKind {
    pub fn gating_counter(self) -> Option<&'static str> {
        match self {
            TraceEventKind::RmiSend => Some("remote_requests"),
            _ => None,
        }
    }
}
