// L3 fixture: collectives lexically gated on the location id — the
// locations failing the guard never arrive, so the collective hangs.

fn report(loc: &Location) {
    if loc.id() == 0 {
        let total = loc.allreduce_sum(1); // EXPECT-L3
        log(total);
    }
}

fn half_fence(loc: &Location, last: usize) {
    if loc.id() != last {
        loc.rmi_fence(); // EXPECT-L3
    } else {
        loc.flush();
    }
}
