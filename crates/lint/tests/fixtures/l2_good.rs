// L2 fixture (clean): guards end (by scope or explicit drop) before any
// poll point, and with_slice closures never poll.

fn drain_scoped(loc: &Location, store: &RefCell<Vec<u64>>) {
    {
        let guard = store.borrow_mut();
        consume(&guard);
    }
    loc.poll();
}

fn drain_dropped(loc: &Location, store: &RefCell<Vec<u64>>) {
    let guard = store.borrow_mut();
    consume(&guard);
    drop(guard);
    loc.poll();
}

fn scan(view: &VectorView, loc: &Location) {
    let sum = view.with_slice(|s| s.iter().copied().sum::<u64>());
    loc.rmi_fence();
    report(sum);
}
