//! Cross-file workspace checks: L4 counter/trace/gate drift and L5
//! knob-doc drift.
//!
//! These rules tie four artifacts together that otherwise drift apart
//! silently:
//!
//! * **L4** — every counter field of `rts/src/stats.rs` must (a) be
//!   incremented somewhere in the workspace (`bump!(loc, field)` or
//!   `.field.fetch_add`), (b) appear in at least one `"gated"` list in
//!   `bench/baselines/BENCH_*.json` (deterministic counters are gated;
//!   timing-dependent ones carry an explicit suppression stating why
//!   not), and (c) if `TraceEventKind::gating_counter()` pairs a trace
//!   event with it — the DESIGN.md determinism contract — the name must
//!   be a real counter *and* gated. Stale names in baselines' gated
//!   lists are flagged too.
//! * **L5** — every `STAPL_*` env var read in `rts/src/config.rs` (plus
//!   the `STAPL_FAULTS` sub-keys matched in `rts/src/fault.rs`) must
//!   appear in the README knob table, and every `STAPL_*` var the README
//!   knob table documents must be read by `config.rs`.

use std::collections::BTreeMap;
use std::path::Path;

use crate::lexer::{lex, matching_close, str_lit_value, LexedFile, TokKind};
use crate::{Finding, Rule};

/// Relative paths of the artifacts the workspace checks correlate. A
/// directory missing any of them is not a stapl workspace root and the
/// checks are skipped (the CLI reports which probe failed under
/// `--verbose`-style debugging via the returned option).
pub struct WorkspacePaths {
    pub stats: &'static str,
    pub trace: &'static str,
    pub config: &'static str,
    pub fault: &'static str,
    pub baselines: &'static str,
    pub readme: &'static str,
}

impl Default for WorkspacePaths {
    fn default() -> Self {
        WorkspacePaths {
            stats: "crates/rts/src/stats.rs",
            trace: "crates/rts/src/trace.rs",
            config: "crates/rts/src/config.rs",
            fault: "crates/rts/src/fault.rs",
            baselines: "bench/baselines",
            readme: "README.md",
        }
    }
}

/// True when `root` has the artifacts the workspace checks need.
pub fn is_workspace_root(root: &Path) -> bool {
    let p = WorkspacePaths::default();
    root.join(p.stats).is_file() && root.join(p.config).is_file() && root.join(p.readme).is_file()
}

/// Runs L4 + L5 against `root`. `swept` supplies the already-lexed
/// workspace files (path → lexed) so increment scanning doesn't re-read
/// the tree; files outside the sweep are read on demand.
pub fn check(root: &Path, swept: &BTreeMap<String, LexedFile>) -> Vec<Finding> {
    let mut out = Vec::new();
    let p = WorkspacePaths::default();
    let lexed = |rel: &str| -> Option<LexedFile> {
        let abs = root.join(rel);
        std::fs::read_to_string(abs).ok().map(|s| lex(&s))
    };

    // ---- L4: counters vs increments vs baselines vs trace pairing ----
    if let Some(stats) = lexed(p.stats) {
        let counters = counter_fields(&stats);
        let incremented = incremented_counters(swept, p.stats);
        let gated = gated_counters(&root.join(p.baselines));
        let trace_paired = lexed(p.trace).map(|t| trace_paired_counters(&t)).unwrap_or_default();

        for (name, line) in &counters {
            if !incremented.contains(name) {
                out.push(Finding {
                    file: p.stats.to_string(),
                    line: *line,
                    rule: Rule::CounterGateDrift,
                    message: format!(
                        "counter `{name}` is never incremented anywhere in the \
                         workspace (no `bump!` or `fetch_add` site)"
                    ),
                    hint: "dead counters mislead dashboards: wire it up or remove \
                           the field (and note the removal in DESIGN.md)"
                        .to_string(),
                });
            }
            if !gated.contains_key(name.as_str()) {
                out.push(Finding {
                    file: p.stats.to_string(),
                    line: *line,
                    rule: Rule::CounterGateDrift,
                    message: format!(
                        "counter `{name}` appears in no \"gated\" list under \
                         bench/baselines/ — regressions in it are invisible to CI"
                    ),
                    hint: "add it to a harness area's gated counters (plus the \
                           baselines), or suppress here stating why it is \
                           timing-dependent and ungateable"
                        .to_string(),
                });
            }
        }
        for (name, line) in &trace_paired {
            if !counters.iter().any(|(c, _)| c == name) {
                out.push(Finding {
                    file: p.trace.to_string(),
                    line: *line,
                    rule: Rule::CounterGateDrift,
                    message: format!(
                        "`TraceEventKind::gating_counter` names `{name}`, which is \
                         not a counter field of rts/src/stats.rs"
                    ),
                    hint: "the determinism contract maps trace kinds to real \
                           counters — fix the name or the field"
                        .to_string(),
                });
            } else if !gated.contains_key(name.as_str()) {
                out.push(Finding {
                    file: p.trace.to_string(),
                    line: *line,
                    rule: Rule::CounterGateDrift,
                    message: format!(
                        "counter `{name}` is trace-paired (deterministic by the \
                         DESIGN.md contract) but appears in no \"gated\" list \
                         under bench/baselines/"
                    ),
                    hint: "a counter the determinism contract vouches for should \
                           be regression-gated: add it to an area's gated list"
                        .to_string(),
                });
            }
        }
        for (name, (file, line)) in &gated {
            if !counters.iter().any(|(c, _)| c == name) {
                out.push(Finding {
                    file: file.clone(),
                    line: *line,
                    rule: Rule::CounterGateDrift,
                    message: format!(
                        "baseline gates `{name}`, which is not a counter field of \
                         rts/src/stats.rs (renamed or removed?)"
                    ),
                    hint: "regenerate the baselines or fix the gated list — a \
                           stale name gates nothing"
                        .to_string(),
                });
            }
        }
    }

    // ---- L5: STAPL_* knobs vs the README knob table ----
    if let Some(config) = lexed(p.config) {
        let read_vars = stapl_literals(&config);
        let readme_text = std::fs::read_to_string(root.join(p.readme)).unwrap_or_default();
        let (table_vars, table_text) = readme_knob_table(&readme_text);

        for (var, line) in &read_vars {
            if !table_vars.contains_key(var.as_str()) {
                out.push(Finding {
                    file: p.config.to_string(),
                    line: *line,
                    rule: Rule::KnobDocDrift,
                    message: format!(
                        "env knob `{var}` is read here but missing from the \
                         README knob table"
                    ),
                    hint: "every runtime knob needs a README row: variable, \
                           default, and one-line meaning"
                        .to_string(),
                });
            }
        }
        for (var, line) in &table_vars {
            if !read_vars.iter().any(|(v, _)| v == var) {
                out.push(Finding {
                    file: p.readme.to_string(),
                    line: *line,
                    rule: Rule::KnobDocDrift,
                    message: format!(
                        "README knob table documents `{var}` but \
                         rts/src/config.rs never reads it"
                    ),
                    hint: "delete the stale row or wire the knob back up".to_string(),
                });
            }
        }
        if let Some(fault) = lexed(p.fault) {
            for (key, line) in fault_subkeys(&fault) {
                if !table_text.contains(&format!("{key}:")) {
                    out.push(Finding {
                        file: p.fault.to_string(),
                        line,
                        rule: Rule::KnobDocDrift,
                        message: format!(
                            "`STAPL_FAULTS` sub-key `{key}` is parsed here but \
                             not shown in the README knob table's STAPL_FAULTS row"
                        ),
                        hint: "extend the STAPL_FAULTS example in the README knob \
                               table to mention every sub-key"
                            .to_string(),
                    });
                }
            }
        }
    }

    out
}

/// `(name, line)` of every `AtomicU64` field of `struct Stats`.
fn counter_fields(stats: &LexedFile) -> Vec<(String, u32)> {
    let toks = &stats.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Ident
            && toks[i].text == "Stats"
            && i >= 1
            && toks[i - 1].text == "struct"
        {
            let Some(open) = toks[i..].iter().position(|t| t.text == "{").map(|o| i + o) else {
                continue;
            };
            let close = matching_close(toks, open);
            let mut j = open + 1;
            while j + 2 < close {
                // Pattern: `name : AtomicU64 ,`
                if toks[j].kind == TokKind::Ident
                    && toks[j + 1].text == ":"
                    && toks[j + 2].text == "AtomicU64"
                {
                    out.push((toks[j].text.clone(), toks[j].line));
                    j += 3;
                } else {
                    j += 1;
                }
            }
            break;
        }
    }
    out
}

/// Counter names that some swept file (other than stats.rs itself) bumps
/// via `bump!(loc, name[, n])` or `.name.fetch_add(...)`.
fn incremented_counters(
    swept: &BTreeMap<String, LexedFile>,
    stats_rel: &str,
) -> std::collections::BTreeSet<String> {
    let mut out = std::collections::BTreeSet::new();
    for (path, file) in swept {
        if path.ends_with(stats_rel) {
            continue;
        }
        let toks = &file.toks;
        for i in 0..toks.len() {
            // `bump!(loc, field)` — any ident inside the macro args.
            if toks[i].kind == TokKind::Ident
                && toks[i].text == "bump"
                && toks.get(i + 1).is_some_and(|t| t.text == "!")
                && toks.get(i + 2).is_some_and(|t| t.text == "(")
            {
                let close = matching_close(toks, i + 2);
                for t in &toks[i + 3..close] {
                    if t.kind == TokKind::Ident {
                        out.insert(t.text.clone());
                    }
                }
            }
            // `.field . fetch_add (`
            if toks[i].kind == TokKind::Ident
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|t| t.text == ".")
                && toks.get(i + 2).is_some_and(|t| t.text == "fetch_add")
            {
                out.insert(toks[i].text.clone());
            }
        }
    }
    out
}

/// Counter names appearing in any `"gated": [...]` list under the
/// baselines dir, mapped to one `(file, line)` occurrence.
fn gated_counters(dir: &Path) -> BTreeMap<String, (String, u32)> {
    let mut out = BTreeMap::new();
    let Ok(entries) = std::fs::read_dir(dir) else { return out };
    let mut paths: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in paths {
        let Ok(text) = std::fs::read_to_string(&path) else { continue };
        let rel = path
            .file_name()
            .map(|n| format!("bench/baselines/{}", n.to_string_lossy()))
            .unwrap_or_default();
        for (lineno, line) in text.lines().enumerate() {
            let Some(pos) = line.find("\"gated\"") else { continue };
            let Some(open) = line[pos..].find('[') else { continue };
            let Some(close) = line[pos + open..].find(']') else { continue };
            let list = &line[pos + open + 1..pos + open + close];
            for item in list.split(',') {
                let name = item.trim().trim_matches('"');
                if !name.is_empty() {
                    out.entry(name.to_string())
                        .or_insert_with(|| (rel.clone(), lineno as u32 + 1));
                }
            }
        }
    }
    out
}

/// Counter names returned as `Some("name")` by
/// `TraceEventKind::gating_counter` in trace.rs, with lines.
fn trace_paired_counters(trace: &LexedFile) -> Vec<(String, u32)> {
    let toks = &trace.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident
            && toks[i].text == "gating_counter"
            && toks.get(i + 1).is_some_and(|t| t.text == "("))
        {
            continue;
        }
        // Body: the next `{` after the signature.
        let Some(open) = toks[i..].iter().position(|t| t.text == "{").map(|o| i + o) else {
            continue;
        };
        let close = matching_close(toks, open);
        let mut j = open;
        while j + 2 < close {
            if toks[j].kind == TokKind::Ident
                && toks[j].text == "Some"
                && toks[j + 1].text == "("
                && toks[j + 2].kind == TokKind::Lit
            {
                if let Some(name) = str_lit_value(&toks[j + 2].text) {
                    out.push((name.to_string(), toks[j + 2].line));
                }
            }
            j += 1;
        }
        break;
    }
    out
}

/// `STAPL_*` string literals in config.rs (the env vars actually read),
/// with lines, deduplicated.
fn stapl_literals(config: &LexedFile) -> Vec<(String, u32)> {
    let mut out: Vec<(String, u32)> = Vec::new();
    for t in &config.toks {
        if t.kind != TokKind::Lit {
            continue;
        }
        let Some(v) = str_lit_value(&t.text) else { continue };
        if v.starts_with("STAPL_") && !out.iter().any(|(n, _)| n == v) {
            out.push((v.to_string(), t.line));
        }
    }
    out
}

/// Fault-schedule sub-keys: string literals matched with `=>` arms in
/// fault.rs (`"drop" => ...`).
fn fault_subkeys(fault: &LexedFile) -> Vec<(String, u32)> {
    let toks = &fault.toks;
    let mut out: Vec<(String, u32)> = Vec::new();
    for i in 0..toks.len() {
        if toks[i].kind == TokKind::Lit
            && toks.get(i + 1).is_some_and(|t| t.text == "=")
            && toks.get(i + 2).is_some_and(|t| t.text == ">")
        {
            if let Some(v) = str_lit_value(&toks[i].text) {
                let is_key =
                    !v.is_empty() && v.chars().all(|c| c.is_ascii_lowercase() || c == '_');
                if is_key && !out.iter().any(|(n, _)| n == v) {
                    out.push((v.to_string(), toks[i].line));
                }
            }
        }
    }
    out
}

/// `STAPL_*` variables mentioned in README *table rows* (lines starting
/// with `|`), with lines — plus the concatenated table text for sub-key
/// checks. Prose mentions outside tables are ignored.
fn readme_knob_table(readme: &str) -> (BTreeMap<String, u32>, String) {
    let mut vars = BTreeMap::new();
    let mut table_text = String::new();
    for (lineno, line) in readme.lines().enumerate() {
        if !line.trim_start().starts_with('|') {
            continue;
        }
        table_text.push_str(line);
        table_text.push('\n');
        let bytes = line.as_bytes();
        let mut k = 0;
        while let Some(pos) = line[k..].find("STAPL_") {
            let start = k + pos;
            let mut end = start;
            while end < bytes.len()
                && (bytes[end].is_ascii_uppercase() || bytes[end] == b'_' || bytes[end].is_ascii_digit())
            {
                end += 1;
            }
            let var = &line[start..end];
            if var.len() > "STAPL_".len() {
                vars.entry(var.to_string()).or_insert(lineno as u32 + 1);
            }
            k = end;
        }
    }
    (vars, table_text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn counter_fields_parse() {
        let f = lex("pub(crate) struct Stats { pub a: AtomicU64, pub b_c: AtomicU64 }\nstruct Other { x: u64 }");
        let fields = counter_fields(&f);
        let names: Vec<&str> = fields.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a", "b_c"]);
    }

    #[test]
    fn increments_found_via_bump_and_fetch_add() {
        let mut swept = BTreeMap::new();
        swept.insert(
            "crates/rts/src/location.rs".to_string(),
            lex("fn f(loc: &L) { bump!(loc, hits); loc.stats.misses.fetch_add(1, O); }"),
        );
        let inc = incremented_counters(&swept, "crates/rts/src/stats.rs");
        assert!(inc.contains("hits"));
        assert!(inc.contains("misses"));
        assert!(!inc.contains("stats"));
    }

    #[test]
    fn trace_pairs_and_fault_keys_parse() {
        let t = lex("impl K { pub fn gating_counter(self) -> Option<&'static str> { match self { K::A => Some(\"remote_requests\"), K::B => None } } }");
        let pairs = trace_paired_counters(&t);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, "remote_requests");

        let f = lex("fn parse() { match key { \"drop\" => x(), \"delay_us\" => y(), _ => return Err(format!(\"bad {k}\")) } }");
        let keys = fault_subkeys(&f);
        let names: Vec<&str> = keys.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["drop", "delay_us"]);
    }

    #[test]
    fn readme_table_vars_only_from_table_rows() {
        let md = "Set STAPL_IGNORED=1 in prose.\n| `aggregation` | 16 | `STAPL_AGGREGATION` | how many |\n| `trace` | 0 | `STAPL_TRACE` (0/1) | on/off |\n";
        let (vars, text) = readme_knob_table(md);
        assert!(vars.contains_key("STAPL_AGGREGATION"));
        assert!(vars.contains_key("STAPL_TRACE"));
        assert!(!vars.contains_key("STAPL_IGNORED"));
        assert!(text.contains("aggregation"));
    }

    #[test]
    fn stapl_literals_dedup() {
        let f = lex("fn f() { get(\"STAPL_A\"); get(\"STAPL_A\"); get(\"STAPL_B\"); get(\"other\"); }");
        let v = stapl_literals(&f);
        assert_eq!(v.len(), 2);
    }
}
