//! A small hand-rolled Rust lexer: enough token fidelity for the
//! discipline lints, none of the weight of `syn` (which the offline
//! vendored-deps policy rules out).
//!
//! The lexer produces a flat token stream with per-token line numbers and
//! `{}`/`()`/`[]` nesting depth, plus a side list of comments (the rules
//! need comments for `// SAFETY:` adjacency and `// stapl-lint: allow`
//! suppressions). String/char/raw-string literals are lexed as single
//! `Lit` tokens so rule patterns can never match identifiers inside
//! string data; lifetimes are distinguished from char literals so `'a`
//! does not swallow the rest of the file.

/// Token classification; just enough structure for pattern scans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// Single punctuation character (`.`, `=`, `|`, `;`, ...).
    Punct,
    /// Opening delimiter: `(`, `[`, or `{`.
    Open,
    /// Closing delimiter: `)`, `]`, or `}`.
    Close,
    /// String / raw-string / byte-string / char / numeric literal, or a
    /// lifetime (`'a`) — atoms the rules never need to look inside.
    Lit,
}

/// One lexed token.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    /// The token text. For `Lit` this is the raw source slice (quotes
    /// included for strings); rules that care about string contents strip
    /// the quotes via [`str_lit_value`].
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// `{}`/`()`/`[]` nesting depth *outside* this token: an `Open` carries
    /// the depth of the scope it opens from, and its matching `Close`
    /// carries that same depth.
    pub depth: u32,
}

/// One comment (line or block), kept separate from the token stream.
#[derive(Clone, Debug)]
pub struct Comment {
    /// 1-based line of the comment's first character.
    pub line: u32,
    /// 1-based line of the comment's last character (same as `line` for
    /// line comments).
    pub end_line: u32,
    /// Full comment text including the `//` / `/* */` markers.
    pub text: String,
    /// True when nothing but whitespace precedes the comment on its line.
    pub own_line: bool,
}

/// A lexed source file: tokens, comments, and the raw lines (rules use the
/// raw lines for adjacency checks).
pub struct LexedFile {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
    pub lines: Vec<String>,
}

/// Lexes `src`. Malformed input (unterminated string, stray delimiter)
/// degrades gracefully: the lexer never panics, it just stops refining —
/// an analyzer must survive any bytes a sweep feeds it.
pub fn lex(src: &str) -> LexedFile {
    let b: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line: u32 = 1;
    let mut depth: u32 = 0;
    let mut line_had_code = false;

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                line_had_code = false;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                comments.push(Comment {
                    line,
                    end_line: line,
                    text: b[start..i].iter().collect(),
                    own_line: !line_had_code,
                });
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let start = i;
                let start_line = line;
                let own = !line_had_code;
                let mut nest = 1;
                i += 2;
                while i < b.len() && nest > 0 {
                    if b[i] == '\n' {
                        line += 1;
                    } else if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        nest += 1;
                        i += 1;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        nest -= 1;
                        i += 1;
                    }
                    i += 1;
                }
                comments.push(Comment {
                    line: start_line,
                    end_line: line,
                    text: b[start..i.min(b.len())].iter().collect(),
                    own_line: own,
                });
                line_had_code = false;
            }
            '"' => {
                let (text, nl) = lex_string(&b, &mut i);
                toks.push(Tok { kind: TokKind::Lit, text, line, depth });
                line += nl;
                line_had_code = true;
            }
            '\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): a lifetime is `'` + ident chars *not* closed by
                // a matching quote right after.
                let is_lifetime = i + 1 < b.len()
                    && (b[i + 1].is_alphanumeric() || b[i + 1] == '_')
                    && b[i + 1] != '\\'
                    && !(i + 2 < b.len() && b[i + 2] == '\'');
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                        i += 1;
                    }
                    toks.push(Tok {
                        kind: TokKind::Lit,
                        text: b[start..i].iter().collect(),
                        line,
                        depth,
                    });
                } else {
                    let start = i;
                    i += 1; // opening quote
                    if i < b.len() && b[i] == '\\' {
                        i += 2; // escape + escaped char
                        // Multi-char escapes (\x41, \u{..}) run to the quote.
                        while i < b.len() && b[i] != '\'' {
                            i += 1;
                        }
                    } else if i < b.len() {
                        i += 1; // the char itself
                    }
                    if i < b.len() && b[i] == '\'' {
                        i += 1; // closing quote
                    }
                    toks.push(Tok {
                        kind: TokKind::Lit,
                        text: b[start..i.min(b.len())].iter().collect(),
                        line,
                        depth,
                    });
                }
                line_had_code = true;
            }
            'r' | 'b' if starts_string_prefix(&b, i) => {
                let start = i;
                // Skip the prefix (`r`, `b`, `br`, `rb`) up to `#`s/quote.
                while i < b.len() && (b[i] == 'r' || b[i] == 'b') {
                    i += 1;
                }
                if i < b.len() && b[i] == '\'' {
                    // b'x' byte char: reuse the char path.
                    i += 1;
                    if i < b.len() && b[i] == '\\' {
                        i += 2;
                        while i < b.len() && b[i] != '\'' {
                            i += 1;
                        }
                    } else if i < b.len() {
                        i += 1;
                    }
                    if i < b.len() && b[i] == '\'' {
                        i += 1;
                    }
                } else {
                    let mut hashes = 0;
                    while i < b.len() && b[i] == '#' {
                        hashes += 1;
                        i += 1;
                    }
                    if i < b.len() && b[i] == '"' {
                        if hashes == 0 && b[start] != 'r' && !b[start..i].contains(&'r') {
                            // Plain b"..." — escapes apply.
                            let (_, nl) = lex_string(&b, &mut i);
                            line += nl;
                        } else {
                            // Raw string: runs to `"` followed by `hashes` #s.
                            i += 1;
                            loop {
                                if i >= b.len() {
                                    break;
                                }
                                if b[i] == '\n' {
                                    line += 1;
                                    i += 1;
                                    continue;
                                }
                                if b[i] == '"' {
                                    let mut ok = true;
                                    for k in 0..hashes {
                                        if b.get(i + 1 + k) != Some(&'#') {
                                            ok = false;
                                            break;
                                        }
                                    }
                                    if ok {
                                        i += 1 + hashes;
                                        break;
                                    }
                                }
                                i += 1;
                            }
                        }
                    }
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: b[start..i.min(b.len())].iter().collect(),
                    line,
                    depth,
                });
                line_had_code = true;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                    depth,
                });
                line_had_code = true;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len()
                    && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.')
                    // `1..n` range: stop the number before `..`.
                    && !(b[i] == '.' && b.get(i + 1) == Some(&'.'))
                {
                    i += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lit,
                    text: b[start..i].iter().collect(),
                    line,
                    depth,
                });
                line_had_code = true;
            }
            '(' | '[' | '{' => {
                toks.push(Tok { kind: TokKind::Open, text: c.to_string(), line, depth });
                depth += 1;
                i += 1;
                line_had_code = true;
            }
            ')' | ']' | '}' => {
                depth = depth.saturating_sub(1);
                toks.push(Tok { kind: TokKind::Close, text: c.to_string(), line, depth });
                i += 1;
                line_had_code = true;
            }
            _ => {
                toks.push(Tok { kind: TokKind::Punct, text: c.to_string(), line, depth });
                i += 1;
                line_had_code = true;
            }
        }
    }

    LexedFile {
        toks,
        comments,
        lines: src.lines().map(str::to_string).collect(),
    }
}

/// True when position `i` starts a raw/byte string or byte-char prefix
/// (`r"`, `r#`, `b"`, `b'`, `br`, `rb` forms) rather than a plain ident.
fn starts_string_prefix(b: &[char], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == 'r' || b[j] == 'b') && j - i < 2 {
        j += 1;
    }
    match b.get(j) {
        Some('"') | Some('\'') => true,
        Some('#') => {
            // r#"..."# raw string vs r#ident raw identifier: a raw string
            // has `"` after the hashes.
            let mut k = j;
            while b.get(k) == Some(&'#') {
                k += 1;
            }
            b.get(k) == Some(&'"')
        }
        _ => false,
    }
}

/// Lexes a plain `"..."` string starting at `b[*i] == '"'`; advances `*i`
/// past the closing quote and returns `(text, newlines_crossed)`.
fn lex_string(b: &[char], i: &mut usize) -> (String, u32) {
    let start = *i;
    let mut nl = 0;
    *i += 1;
    while *i < b.len() {
        match b[*i] {
            '\\' => *i += 2,
            '"' => {
                *i += 1;
                break;
            }
            '\n' => {
                nl += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    (b[start..(*i).min(b.len())].iter().collect(), nl)
}

/// Unquotes a plain string `Lit` token (`"x"` → `x`); `None` for
/// non-string literals. Escape sequences are left as-is — the rules only
/// compare literals that contain none.
pub fn str_lit_value(text: &str) -> Option<&str> {
    let t = text.strip_prefix('"')?;
    t.strip_suffix('"')
}

/// Index of the `Close` matching the `Open` at `toks[open]`, or
/// `toks.len()` if unbalanced (graceful degradation on malformed input).
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    debug_assert_eq!(toks[open].kind, TokKind::Open);
    let d = toks[open].depth;
    for (off, t) in toks[open + 1..].iter().enumerate() {
        if t.kind == TokKind::Close && t.depth == d {
            return open + 1 + off;
        }
    }
    toks.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idents_puncts_and_depth() {
        let f = lex("fn a() { b.c(1); }");
        let texts: Vec<&str> = f.toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["fn", "a", "(", ")", "{", "b", ".", "c", "(", "1", ")", ";", "}"]);
        assert_eq!(f.toks[4].depth, 0); // `{` opens from depth 0
        assert_eq!(f.toks[8].depth, 1); // inner `(`
        assert_eq!(matching_close(&f.toks, 4), 12);
    }

    #[test]
    fn strings_hide_identifiers() {
        let f = lex(r#"let x = "sync_rmi(barrier)"; call();"#);
        assert!(f.toks.iter().all(|t| t.kind != TokKind::Ident || t.text != "sync_rmi"));
        assert_eq!(str_lit_value("\"abc\""), Some("abc"));
    }

    #[test]
    fn raw_strings_and_chars() {
        let f = lex("let a = r#\"barrier()\"#; let c = '\\n'; let l: &'static str = s;");
        assert!(f.toks.iter().all(|t| t.text != "barrier"));
        // 'static lexed as one lifetime atom, not a runaway char literal.
        assert!(f.toks.iter().any(|t| t.kind == TokKind::Lit && t.text == "'static"));
        assert!(f.toks.iter().any(|t| t.kind == TokKind::Ident && t.text == "str"));
    }

    #[test]
    fn comments_collected_not_tokenized() {
        let f = lex("a(); // trailing note\n// SAFETY: fine\nb();");
        assert_eq!(f.comments.len(), 2);
        assert!(!f.comments[0].own_line);
        assert!(f.comments[1].own_line);
        assert_eq!(f.comments[1].line, 2);
        assert!(f.toks.iter().all(|t| t.text != "SAFETY"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = lex("/* outer /* inner */ still\ncomment */ code();");
        assert_eq!(f.comments.len(), 1);
        assert_eq!(f.comments[0].line, 1);
        assert_eq!(f.comments[0].end_line, 2);
        assert!(f.toks.iter().any(|t| t.text == "code"));
        assert_eq!(f.toks[0].line, 2);
    }

    #[test]
    fn lines_advance_through_strings() {
        let f = lex("let a = \"x\ny\";\nfinal_tok();");
        let ft = f.toks.iter().find(|t| t.text == "final_tok").unwrap();
        assert_eq!(ft.line, 3);
    }

    #[test]
    fn unterminated_string_does_not_hang() {
        let f = lex("let a = \"never closed");
        assert!(f.toks.iter().any(|t| t.kind == TokKind::Lit));
    }
}
