//! `stapl-lint` — a workspace-wide RMI-discipline static analyzer.
//!
//! The STAPL runtime's correctness story rests on discipline the type
//! system cannot see: handlers must not block (they run inside the
//! polling loop), collectives must be reached by every location, storage
//! borrows must not be held across poll points, counters must stay wired
//! to gates, knobs to docs, and `unsafe` to stated invariants. This crate
//! checks those rules as named, suppressible lints over a hand-rolled
//! token-level lexer (no `syn` — the workspace builds offline with
//! vendored deps only). See DESIGN.md "Static analysis: stapl-lint".
//!
//! Rule catalog:
//!
//! | code | slug                  | checks                                   |
//! |------|-----------------------|------------------------------------------|
//! | L1   | blocking-in-handler   | blocking calls in RMI-handler closures   |
//! | L2   | borrow-across-poll    | borrow guards live across poll points    |
//! | L3   | divergent-collective  | collectives under location-id guards     |
//! | L4   | counter-gate-drift    | stats ↔ increments ↔ baselines ↔ trace   |
//! | L5   | knob-doc-drift        | `STAPL_*` env vars ↔ README knob table   |
//! | L6   | undocumented-unsafe   | `unsafe` without `// SAFETY:`            |

pub mod lexer;
pub mod rules;
pub mod suppress;
pub mod workspace;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use lexer::LexedFile;
use suppress::Suppression;

/// The six lint rules. Suppressible by slug or code via
/// `// stapl-lint: allow(<rule>)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    BlockingInHandler,
    BorrowAcrossPoll,
    DivergentCollective,
    CounterGateDrift,
    KnobDocDrift,
    UndocumentedUnsafe,
}

impl Rule {
    pub const ALL: [Rule; 6] = [
        Rule::BlockingInHandler,
        Rule::BorrowAcrossPoll,
        Rule::DivergentCollective,
        Rule::CounterGateDrift,
        Rule::KnobDocDrift,
        Rule::UndocumentedUnsafe,
    ];

    /// Kebab-case rule name used in diagnostics and `allow(...)`.
    pub fn slug(self) -> &'static str {
        match self {
            Rule::BlockingInHandler => "blocking-in-handler",
            Rule::BorrowAcrossPoll => "borrow-across-poll",
            Rule::DivergentCollective => "divergent-collective",
            Rule::CounterGateDrift => "counter-gate-drift",
            Rule::KnobDocDrift => "knob-doc-drift",
            Rule::UndocumentedUnsafe => "undocumented-unsafe",
        }
    }

    /// Short code (`L1`..`L6`), also accepted in `allow(...)`.
    pub fn code(self) -> &'static str {
        match self {
            Rule::BlockingInHandler => "L1",
            Rule::BorrowAcrossPoll => "L2",
            Rule::DivergentCollective => "L3",
            Rule::CounterGateDrift => "L4",
            Rule::KnobDocDrift => "L5",
            Rule::UndocumentedUnsafe => "L6",
        }
    }

    /// Parses a slug or code, case-insensitively.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL
            .into_iter()
            .find(|r| r.slug().eq_ignore_ascii_case(name) || r.code().eq_ignore_ascii_case(name))
    }
}

/// One diagnostic: `file:line: rule: message (hint)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the sweep root (stable across machines — the
    /// JSON output must diff cleanly in CI).
    pub file: String,
    pub line: u32,
    pub rule: Rule,
    pub message: String,
    pub hint: String,
}

impl Finding {
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} [{}]: {}\n    hint: {}",
            self.file,
            self.line,
            self.rule.slug(),
            self.rule.code(),
            self.message,
            self.hint
        )
    }
}

/// Result of one full lint run.
pub struct LintRun {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Count of findings silenced by suppressions.
    pub suppressed: usize,
    /// Every suppression seen, with its `used` flag set.
    pub suppressions: Vec<Suppression>,
    /// Number of files lexed and scanned.
    pub files_scanned: usize,
}

/// Directories under the root a default sweep visits.
const SWEEP_DIRS: &[&str] = &["src", "crates", "vendor", "examples", "tests"];

/// Directory names pruned from the sweep: build output and the lint's
/// own deliberately-bad fixtures. Checked against the entry name only,
/// so a fixture tree can itself be swept by pointing the root inside it.
fn excluded(path: &Path) -> bool {
    path.file_name().is_some_and(|n| n == "target" || n == "fixtures")
}

/// Collects the `.rs` files of a default sweep under `root`, sorted.
pub fn sweep_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for dir in SWEEP_DIRS {
        collect_rs(&root.join(dir), &mut out);
    }
    out.sort();
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if excluded(&path) {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Lints the given files (paths shown relative to `root` when possible)
/// plus, when `root` is a stapl workspace and `with_workspace_checks`,
/// the cross-file L4/L5 rules.
pub fn run(root: &Path, files: &[PathBuf], with_workspace_checks: bool) -> LintRun {
    let mut lexed: BTreeMap<String, LexedFile> = BTreeMap::new();
    for path in files {
        let Ok(src) = std::fs::read_to_string(path) else { continue };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        lexed.insert(rel, lexer::lex(&src));
    }

    let mut findings = Vec::new();
    let mut sups: Vec<Suppression> = Vec::new();
    for (rel, file) in &lexed {
        findings.extend(rules::blocking_in_handler(rel, file));
        findings.extend(rules::borrow_across_poll(rel, file));
        findings.extend(rules::divergent_collective(rel, file));
        findings.extend(rules::undocumented_unsafe(rel, file));
        sups.extend(suppress::collect(rel, file));
    }
    if with_workspace_checks && workspace::is_workspace_root(root) {
        findings.extend(workspace::check(root, &lexed));
    }

    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
    findings.dedup();

    let files_scanned = lexed.len();
    let (findings, suppressed) = suppress::apply(findings, &mut sups);
    LintRun { findings, suppressed, suppressions: sups, files_scanned }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Serializes a run as the machine-readable report:
/// `{"version":1,"files_scanned":N,"suppressed":N,"findings":[...]}`.
pub fn to_json(run: &LintRun) -> String {
    let mut s = format!(
        "{{\n  \"version\": 1,\n  \"files_scanned\": {},\n  \"suppressed\": {},\n  \"findings\": [",
        run.files_scanned, run.suppressed
    );
    for (i, f) in run.findings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"code\": \"{}\", \
             \"message\": \"{}\", \"hint\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            f.rule.slug(),
            f.rule.code(),
            json_escape(&f.message),
            json_escape(&f.hint)
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

/// Parses the findings array back out of [`to_json`] output — the
/// schema's round-trip contract, used by tests and any tooling that
/// consumes the report. Returns `None` on malformed input.
pub fn findings_from_json(json: &str) -> Option<Vec<Finding>> {
    let start = json.find("\"findings\"")?;
    let open = start + json[start..].find('[')?;
    // The array ends at the matching `]`; findings objects contain no
    // nested arrays, so the first `]` after the last object closes it.
    let close = open + json[open..].find("\n  ]")?;
    let body = &json[open + 1..close];
    let mut out = Vec::new();
    for obj in body.split("},") {
        let obj = obj.trim().trim_start_matches('{').trim_end_matches(['}', '\n', ' ']);
        if obj.is_empty() {
            continue;
        }
        let field = |key: &str| -> Option<String> {
            let k = format!("\"{key}\": ");
            let p = obj.find(&k)? + k.len();
            let rest = &obj[p..];
            if let Some(rest) = rest.strip_prefix('"') {
                let mut val = String::new();
                let mut chars = rest.chars();
                while let Some(c) = chars.next() {
                    match c {
                        '\\' => match chars.next() {
                            Some('n') => val.push('\n'),
                            Some('t') => val.push('\t'),
                            Some('r') => val.push('\r'),
                            Some(e) => val.push(e),
                            None => return None,
                        },
                        '"' => return Some(val),
                        c => val.push(c),
                    }
                }
                None
            } else {
                Some(rest.split([',', '}']).next()?.trim().to_string())
            }
        };
        out.push(Finding {
            file: field("file")?,
            line: field("line")?.parse().ok()?,
            rule: Rule::from_name(&field("rule")?)?,
            message: field("message")?,
            hint: field("hint")?,
        });
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_names_round_trip() {
        for r in Rule::ALL {
            assert_eq!(Rule::from_name(r.slug()), Some(r));
            assert_eq!(Rule::from_name(r.code()), Some(r));
            assert_eq!(Rule::from_name(&r.code().to_lowercase()), Some(r));
        }
        assert_eq!(Rule::from_name("no-such-rule"), None);
    }

    #[test]
    fn json_round_trips() {
        let run = LintRun {
            findings: vec![
                Finding {
                    file: "a/b.rs".into(),
                    line: 7,
                    rule: Rule::UndocumentedUnsafe,
                    message: "quote \" and \\ backslash\nnewline".into(),
                    hint: "h".into(),
                },
                Finding {
                    file: "c.rs".into(),
                    line: 1,
                    rule: Rule::KnobDocDrift,
                    message: "m".into(),
                    hint: "tab\there".into(),
                },
            ],
            suppressed: 3,
            suppressions: Vec::new(),
            files_scanned: 2,
        };
        let json = to_json(&run);
        let parsed = findings_from_json(&json).expect("parses");
        assert_eq!(parsed, run.findings);
        assert!(json.contains("\"suppressed\": 3"));
    }

    #[test]
    fn empty_findings_round_trip() {
        let run = LintRun {
            findings: Vec::new(),
            suppressed: 0,
            suppressions: Vec::new(),
            files_scanned: 0,
        };
        assert_eq!(findings_from_json(&to_json(&run)), Some(Vec::new()));
    }

    #[test]
    fn render_is_clickable() {
        let f = Finding {
            file: "crates/rts/src/lib.rs".into(),
            line: 42,
            rule: Rule::BlockingInHandler,
            message: "m".into(),
            hint: "h".into(),
        };
        let r = f.render();
        assert!(r.starts_with("crates/rts/src/lib.rs:42: blocking-in-handler [L1]:"));
    }
}
