//! `// stapl-lint: allow(<rule>)` suppressions.
//!
//! A suppression comment names one or more rules (by slug or `L<n>` code,
//! or `all`) and silences matching findings in its scope:
//!
//! * trailing after code — that line only;
//! * on its own line — the next code line, and when that line begins an
//!   item (`fn`, `impl`, `struct`, a field, ...) the whole item through
//!   its closing brace or `;`.
//!
//! Suppressions are expected to carry a justification after the closing
//! paren (`// stapl-lint: allow(undocumented-unsafe) — vendored shim`);
//! `--list-suppressions` audits them all, flagging unused ones, so a
//! stale allow is visible instead of silently rotting.

use crate::lexer::{LexedFile, TokKind};
use crate::{Finding, Rule};

/// One parsed suppression comment.
#[derive(Clone, Debug)]
pub struct Suppression {
    pub file: String,
    /// Line of the comment itself.
    pub line: u32,
    /// `None` means `allow(all)`.
    pub rules: Vec<Option<Rule>>,
    /// Inclusive line range the suppression covers.
    pub from: u32,
    pub to: u32,
    /// Justification text after `allow(...)`, if any.
    pub note: String,
    /// Set during filtering when the suppression silenced ≥1 finding.
    pub used: bool,
}

const MARKER: &str = "stapl-lint:";

/// Extracts every suppression from a lexed file.
pub fn collect(path: &str, file: &LexedFile) -> Vec<Suppression> {
    let mut out = Vec::new();
    for c in &file.comments {
        // Doc comments describe suppressions; they don't carry them —
        // and the marker must *start* the comment, so prose that merely
        // mentions `stapl-lint: allow(...)` (like this crate's own docs)
        // is not a suppression.
        if c.text.starts_with("///") || c.text.starts_with("//!") || c.text.starts_with("/**") {
            continue;
        }
        let content = c.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = content.strip_prefix(MARKER) else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix("allow") else { continue };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else { continue };
        let Some(close) = rest.find(')') else { continue };
        let names = &rest[..close];
        let note = rest[close + 1..].trim().trim_start_matches(['—', '-', ' ']).to_string();
        let mut rules = Vec::new();
        for name in names.split(',') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("all") {
                rules.push(None);
            } else if let Some(r) = Rule::from_name(name) {
                rules.push(Some(r));
            }
            // Unknown rule names are skipped: an allow for a rule this
            // version doesn't know suppresses nothing (and shows up as
            // unused in the audit).
        }
        let (from, to) = scope_of(file, c);
        out.push(Suppression {
            file: path.to_string(),
            line: c.line,
            rules,
            from,
            to,
            note,
            used: false,
        });
    }
    out
}

/// The inclusive line range a suppression comment covers.
fn scope_of(file: &LexedFile, c: &crate::lexer::Comment) -> (u32, u32) {
    if !c.own_line {
        return (c.line, c.line);
    }
    // First code token after the comment.
    let Some(start) = file.toks.iter().position(|t| t.line > c.end_line) else {
        return (c.line, c.end_line);
    };
    let d = file.toks[start].depth;
    let mut end_line = file.toks[start].line;
    let mut j = start;
    while j < file.toks.len() {
        let t = &file.toks[j];
        if t.depth < d {
            break;
        }
        end_line = t.line;
        if t.depth == d {
            // `;` ends statements/items; `,` ends struct fields and enum
            // variants (so a field-level allow doesn't bleed into the
            // next field). Item-level code never uses bare `,`.
            if t.kind == TokKind::Punct && (t.text == ";" || t.text == ",") {
                break;
            }
            if t.kind == TokKind::Open && t.text == "{" {
                let close = crate::lexer::matching_close(&file.toks, j);
                end_line = file.toks.get(close).map_or(end_line, |t| t.line);
                break;
            }
        }
        j += 1;
    }
    (c.line, end_line)
}

/// Splits `findings` into (kept, suppressed_count), marking used
/// suppressions. A finding is suppressed by any suppression in the same
/// file whose line range contains it and whose rule list matches.
pub fn apply(findings: Vec<Finding>, sups: &mut [Suppression]) -> (Vec<Finding>, usize) {
    let mut kept = Vec::new();
    let mut suppressed = 0;
    for f in findings {
        let mut hit = false;
        for s in sups.iter_mut() {
            if s.file == f.file
                && s.from <= f.line
                && f.line <= s.to
                && s.rules.iter().any(|r| r.is_none() || *r == Some(f.rule))
            {
                s.used = true;
                hit = true;
            }
        }
        if hit {
            suppressed += 1;
        } else {
            kept.push(f);
        }
    }
    (kept, suppressed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn finding(file: &str, line: u32, rule: Rule) -> Finding {
        Finding {
            file: file.into(),
            line,
            rule,
            message: "m".into(),
            hint: "h".into(),
        }
    }

    #[test]
    fn trailing_comment_covers_its_line_only() {
        let f = lex("unsafe { x() } // stapl-lint: allow(undocumented-unsafe) — test shim\nunsafe { y() }");
        let mut sups = collect("a.rs", &f);
        assert_eq!(sups.len(), 1);
        assert_eq!((sups[0].from, sups[0].to), (1, 1));
        assert_eq!(sups[0].note, "test shim");
        let (kept, n) = apply(
            vec![finding("a.rs", 1, Rule::UndocumentedUnsafe), finding("a.rs", 2, Rule::UndocumentedUnsafe)],
            &mut sups,
        );
        assert_eq!((kept.len(), n), (1, 1));
        assert!(sups[0].used);
    }

    #[test]
    fn own_line_comment_covers_the_following_item() {
        let src = "// stapl-lint: allow(L6) — whole fn is a shim\nfn f() {\n    unsafe { a() }\n    unsafe { b() }\n}\nunsafe fn g() {}";
        let f = lex(src);
        let mut sups = collect("a.rs", &f);
        assert_eq!((sups[0].from, sups[0].to), (1, 5));
        let (kept, n) = apply(
            vec![
                finding("a.rs", 3, Rule::UndocumentedUnsafe),
                finding("a.rs", 4, Rule::UndocumentedUnsafe),
                finding("a.rs", 6, Rule::UndocumentedUnsafe),
            ],
            &mut sups,
        );
        assert_eq!((kept.len(), n), (1, 2));
        assert_eq!(kept[0].line, 6);
    }

    #[test]
    fn rule_mismatch_does_not_suppress() {
        let f = lex("// stapl-lint: allow(borrow-across-poll)\nunsafe fn g() {}");
        let mut sups = collect("a.rs", &f);
        let (kept, n) = apply(vec![finding("a.rs", 2, Rule::UndocumentedUnsafe)], &mut sups);
        assert_eq!((kept.len(), n), (1, 0));
        assert!(!sups[0].used);
    }

    #[test]
    fn allow_all_and_multiple_rules() {
        let f = lex("// stapl-lint: allow(all)\nfn f() { let g = c.borrow(); loc.poll(); }");
        let mut sups = collect("a.rs", &f);
        let (kept, _) = apply(vec![finding("a.rs", 2, Rule::BorrowAcrossPoll)], &mut sups);
        assert!(kept.is_empty());

        let f2 = lex("x(); // stapl-lint: allow(L1, L2)");
        let sups2 = collect("b.rs", &f2);
        assert_eq!(sups2[0].rules.len(), 2);
    }

    #[test]
    fn prose_mentions_are_not_suppressions() {
        let src = "/// Silence with `// stapl-lint: allow(L6)`.\nfn f() {}\n//! also stapl-lint: allow(L1)\n// see stapl-lint: allow(L2) for details";
        assert!(collect("a.rs", &lex(src)).is_empty());
    }

    #[test]
    fn field_suppression_covers_one_declaration() {
        let src = "struct S {\n    // stapl-lint: allow(counter-gate-drift) — timing-dependent\n    pub a: AtomicU64,\n    pub b: AtomicU64,\n}";
        let f = lex(src);
        let sups = collect("s.rs", &f);
        assert!(sups[0].from <= 3 && 3 <= sups[0].to, "covers its own field");
        assert!(sups[0].to < 4, "must not bleed into the next field");
    }
}
