//! CLI for `stapl-lint`.
//!
//! ```text
//! stapl-lint [--root DIR] [--json] [--deny-all] [--list-suppressions] [PATH...]
//! ```
//!
//! With no PATHs, sweeps the workspace under `--root` (default: the
//! current directory, walking up to the workspace root if invoked from a
//! crate directory) and runs the cross-file L4/L5 checks. With explicit
//! PATHs, lints just those files/directories and skips L4/L5 (they only
//! make sense against the whole workspace).
//!
//! Exit status: 0 clean, 1 findings present (or, under `--deny-all`,
//! unused suppressions), 2 usage error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use stapl_lint as lint;

const USAGE: &str = "\
usage: stapl-lint [options] [PATH...]

options:
  --root DIR            workspace root to sweep and resolve paths against
  --json                emit the machine-readable report on stdout
  --deny-all            exit 1 on any finding or unused suppression (CI mode)
  --list-suppressions   audit every `stapl-lint: allow(...)` comment
  --help                show this help

rules: blocking-in-handler (L1), borrow-across-poll (L2),
       divergent-collective (L3), counter-gate-drift (L4),
       knob-doc-drift (L5), undocumented-unsafe (L6)
suppress with: // stapl-lint: allow(<rule>[, <rule>...]) — justification";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut deny_all = false;
    let mut list_sups = false;
    let mut paths: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("stapl-lint: --root needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--list-suppressions" => list_sups = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ if arg.starts_with("--") => {
                eprintln!("stapl-lint: unknown option `{arg}`\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }

    let root = root.unwrap_or_else(find_root);
    let explicit = !paths.is_empty();
    let files = if explicit {
        let mut out = Vec::new();
        for p in &paths {
            let p = if p.is_absolute() { p.clone() } else { root.join(p) };
            if p.is_dir() {
                out.extend(lint::sweep_files(&p));
                // sweep_files only looks in the standard subdirs; also
                // take .rs files directly under an arbitrary dir arg.
                collect_dir(&p, &mut out);
            } else if p.is_file() {
                out.push(p);
            } else {
                eprintln!("stapl-lint: no such path: {}", p.display());
                return ExitCode::from(2);
            }
        }
        out.sort();
        out.dedup();
        out
    } else {
        lint::sweep_files(&root)
    };

    let run = lint::run(&root, &files, !explicit);

    if list_sups {
        for s in &run.suppressions {
            let rules: Vec<&str> = s
                .rules
                .iter()
                .map(|r| r.map_or("all", |r| r.slug()))
                .collect();
            let status = if s.used { "used" } else { "UNUSED" };
            let note = if s.note.is_empty() { "(no justification)" } else { s.note.as_str() };
            println!(
                "{}:{}: allow({}) [{}] lines {}-{} — {}",
                s.file, s.line, rules.join(", "), status, s.from, s.to, note
            );
        }
        println!(
            "{} suppression(s), {} unused",
            run.suppressions.len(),
            run.suppressions.iter().filter(|s| !s.used).count()
        );
    }

    if json {
        print!("{}", lint::to_json(&run));
    } else if !list_sups {
        for f in &run.findings {
            println!("{}", f.render());
        }
        println!(
            "stapl-lint: {} file(s) scanned, {} finding(s), {} suppressed",
            run.files_scanned,
            run.findings.len(),
            run.suppressed
        );
    }

    let unused = run.suppressions.iter().filter(|s| !s.used).count();
    if !run.findings.is_empty() || (deny_all && unused > 0) {
        if deny_all && unused > 0 && run.findings.is_empty() {
            eprintln!("stapl-lint: {unused} unused suppression(s) — remove stale allows (--list-suppressions shows them)");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Workspace root: the current dir, or the nearest ancestor that looks
/// like the stapl workspace (has `crates/` and a `Cargo.toml`).
fn find_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        if dir.join("crates").is_dir() && dir.join("Cargo.toml").is_file() {
            return dir.to_path_buf();
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

/// Recursively collects `.rs` files under `dir` (used for explicit
/// directory args that aren't one of the standard sweep roots).
fn collect_dir(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.components().any(|c| c.as_os_str() == "target") {
            continue;
        }
        if path.is_dir() {
            collect_dir(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
