//! The per-file token rules: L1 blocking-in-handler, L2
//! borrow-across-poll, L3 divergent-collective, L6 undocumented-unsafe.
//! (L4/L5 are cross-file workspace checks; see `workspace.rs`.)
//!
//! Every rule is a linear scan over the lexed token stream with a little
//! delimiter bookkeeping — deliberately syntactic. The rules accept a
//! small false-negative rate (e.g. a handler closure built far from its
//! registration site) in exchange for zero parser dependencies and
//! predictable behavior on any input; DESIGN.md "Static analysis"
//! documents the contract.

use crate::lexer::{matching_close, LexedFile, Tok, TokKind};
use crate::{Finding, Rule};

/// RTS calls whose closure argument executes inside the polling loop of
/// another location (a handler context).
const HANDLER_ENTRY: &[&str] = &[
    "async_rmi",
    "sync_rmi",
    "split_rmi",
    "send_request",
    "dir_route",
    "dir_route_ret",
    "dir_route_hinted",
    "dir_route_ret_hinted",
];

/// Calls that block on remote progress: waiting inside a handler deadlocks
/// the polling loop that would deliver the awaited response.
const BLOCKING: &[&str] = &[
    "sync_rmi",
    "rmi_fence",
    "barrier",
    "allreduce",
    "allreduce_sum",
    "allreduce_max_f64",
    "broadcast",
    "allgather",
    "exclusive_scan",
];

/// Collective operations every location must reach (L3's subject, and
/// blocking calls for L1's purposes — they are all in [`BLOCKING`]).
const COLLECTIVES: &[&str] = &[
    "barrier",
    "rmi_fence",
    "allreduce",
    "allreduce_sum",
    "allreduce_max_f64",
    "broadcast",
    "allgather",
    "exclusive_scan",
];

/// Calls that poll the runtime (and may execute handlers reentrantly):
/// holding a `RefCell` storage borrow across one risks a double-borrow
/// panic when a delivered handler touches the same container.
const POLL_POINTS: &[&str] = &["poll", "poll_or_relax", "barrier", "rmi_fence", "sync_rmi"];

/// Direct-borrow accessors whose closure runs with the container storage
/// borrowed: a poll point inside is a borrow held across a poll.
const WITH_BORROW_ENTRY: &[&str] = &[
    "with_slice",
    "with_slice_mut",
    "with_segment",
    "with_segment_mut",
    "with_row_slice",
    "with_row_slice_mut",
];

/// True when `toks[i]` is a *call* of the identifier (followed by `(`,
/// and not a declaration `fn name(`).
fn is_call(toks: &[Tok], i: usize) -> bool {
    toks[i].kind == TokKind::Ident
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Open && t.text == "(")
        && (i == 0 || toks[i - 1].text != "fn")
}

/// True when `toks[i]` is a method call `.name(`.
fn is_method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks[i].kind == TokKind::Ident
        && toks[i].text == name
        && i > 0
        && toks[i - 1].text == "."
        && toks.get(i + 1).is_some_and(|t| t.kind == TokKind::Open && t.text == "(")
}

/// True when the `|` at `toks[i]` begins a closure rather than acting as
/// a binary/bit-or: decided from the preceding significant token.
fn starts_closure(toks: &[Tok], i: usize) -> bool {
    if i == 0 {
        return true;
    }
    let prev = &toks[i - 1];
    match prev.kind {
        // `x | y`, `f(a)|b`, `1 | 2`, `"s" | _` are or-patterns/bit-ors.
        TokKind::Close | TokKind::Lit => false,
        TokKind::Ident => matches!(prev.text.as_str(), "move" | "return" | "else" | "match"),
        _ => prev.text != "|", // `||` boolean-or after an expression
    }
}

/// The token range of one closure body found inside `range`, along with
/// the index just past it. `start` must point at the opening `|`.
fn closure_body(toks: &[Tok], start: usize, range_end: usize) -> (usize, usize) {
    let pipe_depth = toks[start].depth;
    let mut j = start + 1;
    // Find the closing `|` of the parameter list (same nesting depth).
    while j < range_end && !(toks[j].text == "|" && toks[j].depth == pipe_depth) {
        j += 1;
    }
    j += 1; // past closing `|`
    // Body: a brace block (possibly after `-> Type`) or a bare expression
    // running to the next `,` at the pipe's depth.
    let mut k = j;
    while k < range_end {
        let t = &toks[k];
        if t.kind == TokKind::Open && t.text == "{" && t.depth == pipe_depth {
            return (k + 1, matching_close(toks, k).min(range_end));
        }
        if t.text == "," && t.depth == pipe_depth {
            return (j, k);
        }
        if t.depth < pipe_depth {
            break;
        }
        k += 1;
    }
    (j, range_end)
}

/// Scans `range` of `toks` for closure literals and calls `f` with each
/// closure body range.
fn for_each_closure_body(
    toks: &[Tok],
    range: (usize, usize),
    f: &mut impl FnMut((usize, usize)),
) {
    let mut j = range.0;
    while j < range.1 {
        if toks[j].text == "|" && toks[j].kind == TokKind::Punct && starts_closure(toks, j) {
            let body = closure_body(toks, j, range.1);
            f(body);
            j = body.1.max(j + 1);
        } else {
            j += 1;
        }
    }
}

/// L1: blocking / collective calls inside closures passed to RMI issue or
/// handler-registration calls.
pub fn blocking_in_handler(path: &str, file: &LexedFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(is_call(toks, i) && HANDLER_ENTRY.contains(&toks[i].text.as_str())) {
            continue;
        }
        let entry = toks[i].text.clone();
        let close = matching_close(toks, i + 1);
        for_each_closure_body(toks, (i + 2, close), &mut |(b0, b1)| {
            for k in b0..b1 {
                let blocked = if is_call(toks, k) && BLOCKING.contains(&toks[k].text.as_str()) {
                    Some(toks[k].text.clone())
                } else if is_method_call(toks, k, "wait") {
                    Some("wait".to_string())
                } else {
                    None
                };
                if let Some(name) = blocked {
                    out.push(Finding {
                        file: path.to_string(),
                        line: toks[k].line,
                        rule: Rule::BlockingInHandler,
                        message: format!(
                            "blocking `{name}` inside a closure passed to `{entry}` \
                             — RMI handlers run inside the polling loop, so waiting \
                             there deadlocks"
                        ),
                        hint: "make the handler non-blocking: reply via a split-phase \
                               RMI / reply token instead of waiting in place"
                            .to_string(),
                    });
                }
            }
        });
    }
    out
}

/// L2: a `RefCell` borrow guard live across a poll point in the same
/// block, or a poll point inside a `with_slice`/`with_segment` closure
/// (which runs with the storage borrowed).
pub fn borrow_across_poll(path: &str, file: &LexedFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();

    // Leg 1: let-bound borrow guards vs later poll points.
    struct Guard {
        name: String,
        line: u32,
        depth: u32,
    }
    let mut guards: Vec<Guard> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = &toks[i];
        if t.kind == TokKind::Close && t.text == "}" {
            // Block interiors sit one level deeper than the brace tokens:
            // a guard declared at depth d dies when a `}` at depth < d
            // closes its block.
            guards.retain(|g| g.depth <= t.depth);
            i += 1;
            continue;
        }
        if t.kind == TokKind::Ident && t.text == "let" {
            let stmt_depth = t.depth;
            // Statement extent: to the `;` at this depth.
            let mut end = i + 1;
            while end < toks.len() && !(toks[end].text == ";" && toks[end].depth == stmt_depth) {
                if toks[end].depth < stmt_depth {
                    break;
                }
                end += 1;
            }
            // Bound name: first ident after `let` that isn't `mut`.
            let name = toks[i + 1..end]
                .iter()
                .find(|t| t.kind == TokKind::Ident && t.text != "mut")
                .map(|t| t.text.clone());
            // RHS that *is* a closure literal defines code, not a borrow.
            let eq = (i..end).find(|&k| toks[k].text == "=" && toks[k].depth == stmt_depth);
            let rhs_is_closure = eq.is_some_and(|e| {
                toks.get(e + 1).is_some_and(|t| t.text == "|" || t.text == "move")
            });
            let borrows = !rhs_is_closure
                && (i..end).any(|k| {
                    is_method_call(toks, k, "borrow") || is_method_call(toks, k, "borrow_mut")
                });
            if let (Some(name), true) = (name, borrows) {
                if name != "_" {
                    guards.push(Guard { name, line: t.line, depth: stmt_depth });
                }
            }
            i = end.max(i + 1);
            continue;
        }
        // `drop(g)` releases the guard early.
        if is_call(toks, i) && t.text == "drop" {
            if let Some(arg) = toks.get(i + 2) {
                if arg.kind == TokKind::Ident {
                    guards.retain(|g| g.name != arg.text);
                }
            }
        }
        let polls = (is_call(toks, i) && POLL_POINTS.contains(&t.text.as_str()))
            || is_method_call(toks, i, "wait");
        if polls {
            if let Some(g) = guards.last() {
                out.push(Finding {
                    file: path.to_string(),
                    line: t.line,
                    rule: Rule::BorrowAcrossPoll,
                    message: format!(
                        "`{}` reached while the borrow guard `{}` (line {}) is \
                         still live — a handler delivered by the poll can hit a \
                         double borrow",
                        t.text, g.name, g.line
                    ),
                    hint: format!(
                        "drop `{}` (end its scope or call `drop`) before polling, \
                         fencing, or waiting",
                        g.name
                    ),
                });
            }
        }
        i += 1;
    }

    // Leg 2: poll points inside with_slice/with_segment closures.
    for i in 0..toks.len() {
        if !(is_call(toks, i) && WITH_BORROW_ENTRY.contains(&toks[i].text.as_str())) {
            continue;
        }
        let entry = toks[i].text.clone();
        let close = matching_close(toks, i + 1);
        for_each_closure_body(toks, (i + 2, close), &mut |(b0, b1)| {
            for k in b0..b1 {
                let polls = (is_call(toks, k) && POLL_POINTS.contains(&toks[k].text.as_str()))
                    || is_method_call(toks, k, "wait");
                if polls {
                    out.push(Finding {
                        file: path.to_string(),
                        line: toks[k].line,
                        rule: Rule::BorrowAcrossPoll,
                        message: format!(
                            "`{}` inside the closure passed to `{entry}` — the \
                             container storage stays borrowed for the whole \
                             closure, so polling here can double-borrow",
                            toks[k].text
                        ),
                        hint: format!(
                            "copy what you need out of the `{entry}` closure and \
                             poll/wait after it returns"
                        ),
                    });
                }
            }
        });
    }
    out
}

/// True when the condition token range looks like a location-id guard:
/// an id accessor (`.id(`, `this_id`, `*_id`) compared with `==`/`!=`.
fn is_location_id_condition(toks: &[Tok], range: (usize, usize)) -> bool {
    let mut has_id = false;
    let mut has_cmp = false;
    for k in range.0..range.1 {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && (t.text == "id" || t.text == "this_id" || t.text.ends_with("_id"))
            && k > range.0
            && (toks[k - 1].text == "." || toks.get(k + 1).is_some_and(|n| n.text == "("))
        {
            has_id = true;
        }
        if (t.text == "=" || t.text == "!") && toks.get(k + 1).is_some_and(|n| n.text == "=") {
            has_cmp = true;
        }
    }
    has_id && has_cmp
}

/// Collects collective calls in `range`, as `(index, name)`.
fn collectives_in(toks: &[Tok], range: (usize, usize)) -> Vec<(usize, String)> {
    (range.0..range.1)
        .filter(|&k| is_call(toks, k) && COLLECTIVES.contains(&toks[k].text.as_str()))
        .map(|k| (k, toks[k].text.clone()))
        .collect()
}

/// L3: a collective call lexically nested under a location-id conditional
/// — only some locations reach it, so the collective hangs.
///
/// A symmetric `if id == 0 { collective } else { collective }` split is
/// *not* flagged: every location still reaches a collective.
pub fn divergent_collective(path: &str, file: &LexedFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "if") {
            continue;
        }
        let if_depth = toks[i].depth;
        // Condition: tokens up to the `{` at the same depth.
        let mut body_open = i + 1;
        while body_open < toks.len()
            && !(toks[body_open].kind == TokKind::Open
                && toks[body_open].text == "{"
                && toks[body_open].depth == if_depth)
        {
            if toks[body_open].depth < if_depth {
                break;
            }
            body_open += 1;
        }
        if body_open >= toks.len() || toks[body_open].kind != TokKind::Open {
            continue;
        }
        if !is_location_id_condition(toks, (i + 1, body_open)) {
            continue;
        }
        let body_close = matching_close(toks, body_open);
        let then_collectives = collectives_in(toks, (body_open + 1, body_close));
        // Else branch (plain or else-if chain), if any.
        let mut else_collectives = Vec::new();
        let mut has_else = false;
        if toks.get(body_close + 1).is_some_and(|t| t.text == "else") {
            has_else = true;
            // The else extent runs to the close of the last brace block of
            // the chain at this depth.
            let mut j = body_close + 2;
            while j < toks.len() && toks[j].depth >= if_depth {
                if toks[j].kind == TokKind::Open && toks[j].text == "{" && toks[j].depth == if_depth
                {
                    let c = matching_close(toks, j);
                    else_collectives.extend(collectives_in(toks, (j + 1, c)));
                    j = c + 1;
                    // Chain continues only via `else`.
                    if !toks.get(j).is_some_and(|t| t.text == "else") {
                        break;
                    }
                } else {
                    j += 1;
                }
            }
        }
        let flag = |list: &[(usize, String)], out: &mut Vec<Finding>| {
            for (k, name) in list {
                out.push(Finding {
                    file: path.to_string(),
                    line: toks[*k].line,
                    rule: Rule::DivergentCollective,
                    message: format!(
                        "collective `{name}` under a location-id conditional — \
                         locations failing the guard never reach it, so the \
                         collective hangs"
                    ),
                    hint: "hoist the collective out of the id guard (or give the \
                           other branch a matching collective)"
                        .to_string(),
                });
            }
        };
        if !then_collectives.is_empty() && (!has_else || else_collectives.is_empty()) {
            flag(&then_collectives, &mut out);
        }
        if !else_collectives.is_empty() && then_collectives.is_empty() {
            flag(&else_collectives, &mut out);
        }
    }
    out
}

/// L6: every `unsafe` block / fn / impl needs an adjacent `// SAFETY:`
/// comment stating the invariant (uppercase, the std convention).
pub fn undocumented_unsafe(path: &str, file: &LexedFile) -> Vec<Finding> {
    let toks = &file.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "unsafe") {
            continue;
        }
        let line = toks[i].line;
        let site = match toks.get(i + 1).map(|t| t.text.as_str()) {
            Some("{") => "block",
            Some("fn") => "fn",
            Some("impl") => "impl",
            Some("trait") => "trait",
            _ => "item",
        };
        if has_adjacent_safety_comment(file, line) {
            continue;
        }
        out.push(Finding {
            file: path.to_string(),
            line,
            rule: Rule::UndocumentedUnsafe,
            message: format!("`unsafe` {site} without an adjacent `// SAFETY:` comment"),
            hint: "state the invariant that makes this sound in a `// SAFETY:` \
                   comment directly above the `unsafe`"
                .to_string(),
        });
    }
    out
}

/// True when a safety comment is adjacent to `line`: on the line itself,
/// anywhere in the contiguous comment/attribute run directly above it, or
/// on the first line inside the block (`unsafe { // SAFETY:` style).
/// Accepts the std `// SAFETY:` convention and the rustdoc `# Safety`
/// section heading (the `missing_safety_doc` convention for declaring an
/// `unsafe fn`'s caller contract).
fn has_adjacent_safety_comment(file: &LexedFile, line: u32) -> bool {
    let commented = |l: u32| {
        file.comments.iter().any(|c| {
            c.line <= l
                && l <= c.end_line
                && (c.text.contains("SAFETY:") || c.text.contains("# Safety"))
        })
    };
    if commented(line) || commented(line + 1) {
        return true;
    }
    // Walk the contiguous comment/attribute run above.
    let mut l = line - 1;
    while l >= 1 {
        let idx = (l - 1) as usize;
        let Some(text) = file.lines.get(idx) else { break };
        let t = text.trim_start();
        let is_comment_line = file.comments.iter().any(|c| c.line <= l && l <= c.end_line);
        if !(is_comment_line || t.starts_with("#[") || t.starts_with("#![")) {
            break;
        }
        if commented(l) {
            return true;
        }
        l -= 1;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn run(rule: fn(&str, &LexedFile) -> Vec<Finding>, src: &str) -> Vec<Finding> {
        rule("test.rs", &lex(src))
    }

    #[test]
    fn l1_fires_on_sync_inside_async_closure() {
        let f = run(
            blocking_in_handler,
            "fn f(loc: &Location) { loc.async_rmi(1, h, move |t, l| { l.sync_rmi(0, h2, |x, _| x.v); }); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("sync_rmi"));
        assert!(f[0].message.contains("async_rmi"));
    }

    #[test]
    fn l1_clean_on_nonblocking_handler_and_outside_waits() {
        let f = run(
            blocking_in_handler,
            "fn f(loc: &Location) { loc.async_rmi(1, h, move |t, _| t.bump(1)); loc.barrier(); }",
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l1_fires_on_wait_in_dir_route() {
        let f = run(
            blocking_in_handler,
            "fn f() { dir_route(obj, pol, g, move |rep, l| { fut.wait(); }); }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("wait"));
    }

    #[test]
    fn l1_ignores_names_in_strings_and_or_expressions() {
        let f = run(
            blocking_in_handler,
            r#"fn f() { loc.async_rmi(1, h, move |t, _| { t.log("call barrier() later"); let m = a | b; }); }"#,
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn l2_fires_on_guard_across_poll() {
        let f = run(
            borrow_across_poll,
            "fn f(loc: &Location) { let g = cell.borrow_mut(); g.push(1); loc.poll(); }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains('g'));
    }

    #[test]
    fn l2_clean_when_dropped_or_scoped() {
        let ok = "fn f(loc: &Location) { { let g = cell.borrow(); use_it(&g); } loc.poll(); \
                  let h = cell.borrow(); drop(h); loc.barrier(); }";
        assert!(run(borrow_across_poll, ok).is_empty());
    }

    #[test]
    fn l2_fires_inside_with_slice_closure() {
        let f = run(
            borrow_across_poll,
            "fn f(a: &PArray<u64>) { a.with_slice(run, |s| { loc.barrier(); s.len() }); }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("with_slice"));
    }

    #[test]
    fn l2_closure_binding_is_not_a_guard() {
        let ok = "fn f(loc: &Location) { let reader = |c: &Cell| c.borrow().len(); loc.poll(); }";
        assert!(run(borrow_across_poll, ok).is_empty());
    }

    #[test]
    fn l3_fires_on_guarded_barrier() {
        let f = run(
            divergent_collective,
            "fn f(loc: &Location) { if loc.id() == 0 { loc.barrier(); } }",
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("barrier"));
    }

    #[test]
    fn l3_clean_on_symmetric_split_and_plain_guards() {
        let ok = "fn f(loc: &Location) { \
                  if loc.id() == 0 { loc.broadcast(0, v); } else { loc.broadcast(0, w); } \
                  if loc.id() == 0 { println(); } loc.barrier(); }";
        assert!(run(divergent_collective, ok).is_empty());
    }

    #[test]
    fn l3_fires_on_collective_only_in_else() {
        let f = run(
            divergent_collective,
            "fn f(loc: &Location) { if loc.id() != 0 { work(); } else { loc.rmi_fence(); } }",
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("rmi_fence"));
    }

    #[test]
    fn l3_ignores_non_id_conditions() {
        let ok = "fn f(loc: &Location) { if done == 0 { loc.barrier(); } }";
        assert!(run(divergent_collective, ok).is_empty());
    }

    #[test]
    fn l6_fires_without_safety_comment() {
        let f = run(undocumented_unsafe, "fn f() { unsafe { danger() } }");
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("SAFETY"));
    }

    #[test]
    fn l6_accepts_adjacent_safety_comments() {
        for ok in [
            "fn f() { // SAFETY: checked above\n unsafe { danger() } }",
            "fn f() { unsafe { // SAFETY: checked\n danger() } }",
            "fn f() { unsafe { danger() } // SAFETY: trailing\n }",
            "// SAFETY: the invariant\n#[inline]\nunsafe fn g() {}",
            "/// Releases the lock.\n///\n/// # Safety\n/// Caller must hold it.\nunsafe fn g() {}",
        ] {
            assert!(run(undocumented_unsafe, ok).is_empty(), "{ok}");
        }
    }

    #[test]
    fn l6_lowercase_safety_is_not_enough() {
        let f = run(undocumented_unsafe, "// Safety: close but wrong case\nunsafe fn g() {}");
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn l6_doc_comment_does_not_break_the_run() {
        let ok = "// SAFETY: real invariant\n/// docs\nunsafe fn g() {}";
        assert!(run(undocumented_unsafe, ok).is_empty());
    }
}
