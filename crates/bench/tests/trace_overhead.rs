//! The trace-disabled path must be free: `RtsConfig::base()` (trace off)
//! and a traced run of the *same* seeded scenario must produce identical
//! deterministic counters — tracing reads the counters' world but never
//! writes it. Pure timing counters (batching, fence rounds, steals) are
//! excluded exactly as they are from the harness's gated lists.
//!
//! The wall-clock side of the overhead claim lives in
//! `benches/trace_overhead.rs`; this test is the stats-level guard CI can
//! gate on.

use stapl_rts::{execute_collect, execute_collect_traced, RtsConfig, StatsSnapshot};

/// Counters whose values depend only on program flow, never on timing.
const DETERMINISTIC: &[&str] = &[
    "local_invocations",
    "remote_requests",
    "responses_sent",
    "tasks_executed",
    "dir_cache_hits",
    "dir_cache_misses",
    "dir_cache_stale",
    "bulk_requests",
    "localized_chunks",
    "element_fallbacks",
    "segment_requests",
    "gather_items",
];

/// A fixed mixed-traffic scenario: async fan-out, sync round trips, and a
/// collective, all flow-deterministic at a given P.
///
/// Deltas are taken from `local_stats()` (this thread's counter twins),
/// not the global `stats()`: a global snapshot taken at scenario entry
/// races the other locations' first sends, so its per-location delta
/// depends on thread-start order.
fn scenario(loc: &stapl_rts::Location) -> StatsSnapshot {
    let before = loc.local_stats();
    let (h, _rep) = loc.register(std::cell::Cell::new(0u64));
    for peer in 0..loc.nlocs() {
        loc.async_rmi(peer, h, |c: &std::cell::Cell<u64>, _| c.set(c.get() + 1));
    }
    let next = (loc.id() + 1) % loc.nlocs();
    for i in 0..16u64 {
        let got: u64 = loc.sync_rmi(next, h, move |c: &std::cell::Cell<u64>, _| c.get() + i);
        std::hint::black_box(got);
    }
    assert_eq!(loc.allreduce_sum(1), loc.nlocs() as u64);
    loc.rmi_fence();
    loc.local_stats().since(&before)
}

#[test]
fn tracing_adds_zero_counter_traffic() {
    let p = 4;
    let off = execute_collect(RtsConfig::base(), p, scenario).remove(0);
    let cfg = RtsConfig { trace: true, ..RtsConfig::base() };
    let (mut traced, trace) = execute_collect_traced(cfg, p, scenario);
    let on = traced.remove(0);
    let trace = trace.expect("tracing enabled");
    assert!(trace.total_events() > 0, "traced run must actually record events");
    for name in DETERMINISTIC {
        assert_eq!(
            off.counter(name),
            on.counter(name),
            "counter {name} changed when tracing was enabled"
        );
    }
    // And the untraced run really ran untraced: no buffers were kept.
    let (_, none) = execute_collect_traced(RtsConfig::base(), p, scenario);
    assert!(none.is_none(), "trace off must not allocate per-location buffers");
}
