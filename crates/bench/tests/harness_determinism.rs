//! Run-to-run determinism of the harness: the whole point of gating CI
//! on counters instead of wall-clock is that two runs at the same knobs
//! produce *identical* gated counter values. This re-runs every area at
//! the kick-tires tier and asserts exact equality, counter by counter —
//! if a scenario picks up an unseeded RNG or a timing-dependent counter
//! sneaks into a `gated` list, this is the test that catches it.

use stapl_bench::harness::{run_area, Tier, AREAS};

#[test]
fn gated_counters_are_identical_across_runs() {
    for area in AREAS {
        let a = run_area(area, Tier::KickTires).expect("known area");
        let b = run_area(area, Tier::KickTires).expect("known area");
        assert_eq!(a.records.len(), b.records.len(), "{area}: record count drifted");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.id, rb.id, "{area}: record order drifted");
            assert_eq!(ra.gated, rb.gated, "{area}/{}: gated set drifted", ra.id);
            for g in &ra.gated {
                assert_eq!(
                    ra.counters.counter(g),
                    rb.counters.counter(g),
                    "{area}/{}: gated counter {g} differs between runs",
                    ra.id
                );
            }
        }
    }
}
