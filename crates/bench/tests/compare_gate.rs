//! End-to-end tests for the `bench-compare` binary: fixture baseline vs
//! identical / regressed / improved / missing-area fresh runs, asserting
//! the exit codes CI keys off (0 pass, 1 regression, 2 unusable input)
//! and the human-readable report.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

const BIN: &str = env!("CARGO_BIN_EXE_bench-compare");

/// A fresh scratch directory per test (unique by test name).
fn scratch(test: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("stapl-bench-compare-gate")
        .join(format!("{}-{}", test, std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_area(dir: &Path, area: &str, records: &[(&str, &[(&str, u64)])]) {
    let mut recs = String::new();
    for (i, (id, counters)) in records.iter().enumerate() {
        let gated: Vec<String> =
            counters.iter().map(|(k, _)| format!("\"{k}\"")).collect();
        let body: Vec<String> =
            counters.iter().map(|(k, v)| format!("\"{k}\": {v}")).collect();
        recs.push_str(&format!(
            "{}{{\"id\": \"{id}\", \"wall_s\": 0.001, \"gated\": [{}], \"counters\": {{{}}}}}",
            if i > 0 { ", " } else { "" },
            gated.join(", "),
            body.join(", ")
        ));
    }
    let text = format!(
        "{{\"schema\": 1, \"area\": \"{area}\", \"tier\": \"kick-tires\", \"records\": [{recs}]}}"
    );
    std::fs::write(dir.join(format!("BENCH_{area}.json")), text).unwrap();
}

fn run_compare(baseline: &Path, fresh: &Path, extra: &[&str]) -> Output {
    Command::new(BIN)
        .arg(baseline)
        .arg(fresh)
        .args(extra)
        .output()
        .expect("bench-compare spawns")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn identical_runs_pass() {
    let root = scratch("identical");
    let (base, fresh) = (root.join("base"), root.join("fresh"));
    for d in [&base, &fresh] {
        std::fs::create_dir_all(d).unwrap();
        write_area(d, "localization", &[("copy/a", &[("remote_requests", 100)])]);
    }
    let out = run_compare(&base, &fresh, &["--exact"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("PASS"));
}

#[test]
fn counter_regression_fails_with_report() {
    let root = scratch("regressed");
    let (base, fresh) = (root.join("base"), root.join("fresh"));
    std::fs::create_dir_all(&base).unwrap();
    std::fs::create_dir_all(&fresh).unwrap();
    write_area(&base, "localization", &[("copy/a", &[("remote_requests", 100)])]);
    write_area(&fresh, "localization", &[("copy/a", &[("remote_requests", 250)])]);
    let out = run_compare(&base, &fresh, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let report = stdout(&out);
    assert!(report.contains("REGRESSION localization/copy/a"), "{report}");
    assert!(report.contains("remote_requests 100 -> 250"), "{report}");
    assert!(report.contains("FAIL"), "{report}");
}

#[test]
fn improvement_passes_and_is_reported() {
    let root = scratch("improved");
    let (base, fresh) = (root.join("base"), root.join("fresh"));
    std::fs::create_dir_all(&base).unwrap();
    std::fs::create_dir_all(&fresh).unwrap();
    write_area(&base, "dynamic", &[("traversal", &[("segment_requests", 200)])]);
    write_area(&fresh, "dynamic", &[("traversal", &[("segment_requests", 20)])]);
    let out = run_compare(&base, &fresh, &[]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let report = stdout(&out);
    assert!(report.contains("improved"), "{report}");
    assert!(report.contains("1 improvements"), "{report}");
}

#[test]
fn missing_area_file_fails() {
    let root = scratch("missing-area");
    let (base, fresh) = (root.join("base"), root.join("fresh"));
    std::fs::create_dir_all(&base).unwrap();
    std::fs::create_dir_all(&fresh).unwrap();
    write_area(&base, "localization", &[("copy/a", &[("remote_requests", 10)])]);
    write_area(&base, "executor", &[("gen", &[("tasks_executed", 64)])]);
    // Fresh run only produced one of the two areas.
    write_area(&fresh, "localization", &[("copy/a", &[("remote_requests", 10)])]);
    let out = run_compare(&base, &fresh, &[]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("fresh run produced no BENCH_executor.json"));
}

#[test]
fn missing_record_fails() {
    let root = scratch("missing-record");
    let (base, fresh) = (root.join("base"), root.join("fresh"));
    std::fs::create_dir_all(&base).unwrap();
    std::fs::create_dir_all(&fresh).unwrap();
    write_area(
        &base,
        "directory",
        &[("hot/a", &[("remote_requests", 10)]), ("hot/b", &[("remote_requests", 10)])],
    );
    write_area(&fresh, "directory", &[("hot/a", &[("remote_requests", 10)])]);
    let out = run_compare(&base, &fresh, &["--exact"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("record missing"), "{}", stdout(&out));
}

#[test]
fn tolerance_flags_change_the_verdict() {
    let root = scratch("tolerance");
    let (base, fresh) = (root.join("base"), root.join("fresh"));
    std::fs::create_dir_all(&base).unwrap();
    std::fs::create_dir_all(&fresh).unwrap();
    write_area(&base, "localization", &[("copy/a", &[("remote_requests", 100)])]);
    write_area(&fresh, "localization", &[("copy/a", &[("remote_requests", 104)])]);
    // +4 on 100: within the default 5% gate...
    let out = run_compare(&base, &fresh, &[]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    // ...a regression under --exact...
    let out = run_compare(&base, &fresh, &["--exact"]);
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    // ...and fine again with a generous explicit tolerance.
    let out = run_compare(&base, &fresh, &["--tol-rel", "0.10"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
}

#[test]
fn unusable_inputs_exit_2() {
    let root = scratch("unusable");
    let (base, fresh) = (root.join("base"), root.join("fresh"));
    std::fs::create_dir_all(&fresh).unwrap();
    // Baseline dir doesn't exist.
    let out = run_compare(&base, &fresh, &[]);
    assert_eq!(out.status.code(), Some(2));
    // Malformed baseline JSON.
    std::fs::create_dir_all(&base).unwrap();
    std::fs::write(base.join("BENCH_localization.json"), "{not json").unwrap();
    std::fs::write(fresh.join("BENCH_localization.json"), "{}").unwrap();
    let out = run_compare(&base, &fresh, &[]);
    assert_eq!(out.status.code(), Some(2));
    // Bad usage.
    let out = Command::new(BIN).arg("only-one-dir").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
