//! Run-to-run determinism of the **trace** layer, mirroring
//! `harness_determinism.rs`: timestamps and durations are advisory, but
//! event *counts* and histogram *sample counts* must be byte-identical
//! across two seeded runs — for every event kind whose
//! [`TraceEventKind::gating_counter`] is in the record's gated set. Kinds
//! gated on nothing (flushes, steal probes, barrier/fence spans) are
//! timing-dependent by design and deliberately skipped, exactly like the
//! non-gated counters in the harness.

use stapl_bench::harness::{run_area, Tier, AREAS};
use stapl_rts::TraceEventKind;

#[test]
fn gated_trace_counts_are_identical_across_runs() {
    for area in AREAS {
        let a = run_area(area, Tier::KickTires).expect("known area");
        let b = run_area(area, Tier::KickTires).expect("known area");
        assert_eq!(a.records.len(), b.records.len(), "{area}: record count drifted");
        for (ra, rb) in a.records.iter().zip(&b.records) {
            assert_eq!(ra.id, rb.id, "{area}: record order drifted");
            let mut compared = 0usize;
            for kind in TraceEventKind::ALL {
                let Some(counter) = kind.gating_counter() else { continue };
                if !ra.gated.contains(&counter) {
                    continue;
                }
                assert_eq!(
                    ra.trace.count(kind),
                    rb.trace.count(kind),
                    "{area}/{}: event count for {} differs between runs",
                    ra.id,
                    kind.name()
                );
                compared += 1;
                // A span kind's histogram holds exactly one sample per
                // span; its count must be as deterministic as the events.
                if let Some(i) = kind.histogram_index() {
                    let name = stapl_rts::HISTOGRAM_NAMES[i];
                    assert_eq!(
                        ra.trace.histogram(name).expect("known histogram").count(),
                        rb.trace.histogram(name).expect("known histogram").count(),
                        "{area}/{}: histogram {name} sample count differs between runs",
                        ra.id
                    );
                    assert_eq!(
                        ra.trace.count(kind),
                        ra.trace.histogram(name).expect("known histogram").count(),
                        "{area}/{}: histogram {name} out of sync with its span kind",
                        ra.id
                    );
                }
            }
            assert!(compared > 0, "{area}/{}: no gated trace kinds compared", ra.id);
        }
    }
}
