//! End-to-end schema check: a real traced execution, exported as Chrome
//! trace-event JSON, must pass the structural validator the CI
//! `trace-smoke` step uses — span pairs matched per location lane,
//! instants present, one pid per location.

use stapl_bench::trace_check::validate_chrome_trace;
use stapl_rts::{execute_collect_traced, RtsConfig, TraceEventKind};

fn traced_run(p: usize) -> stapl_rts::RunTrace {
    let cfg = RtsConfig { trace: true, ..RtsConfig::base() };
    let (_, trace) = execute_collect_traced(cfg, p, |loc| {
        let next = (loc.id() + 1) % loc.nlocs();
        let (h, _rep) = loc.register(std::cell::Cell::new(loc.id() as u64));
        for i in 0..8u64 {
            let got: u64 =
                loc.sync_rmi(next, h, move |c: &std::cell::Cell<u64>, _| c.get() + i);
            assert_eq!(got, next as u64 + i);
        }
        loc.barrier();
    });
    trace.expect("tracing enabled")
}

#[test]
fn exported_trace_passes_the_validator() {
    let rt = traced_run(4);
    let text = rt.to_chrome_json();
    let check = validate_chrome_trace(&text).expect("emitted trace must validate");
    // One lane per location, and the scenario's spans/instants all there.
    assert_eq!(check.lanes, 4, "one (pid, tid) lane per location");
    assert!(check.spans > 0, "barrier/fence/sync-rmi spans expected");
    assert!(check.instants > 0, "rmi_send/rmi_execute instants expected");
    let sends: u64 = rt.locs.iter().map(|l| l.count(TraceEventKind::RmiSend)).sum();
    assert!(sends >= 8 * 4, "every sync_rmi issues at least one send");
}

#[test]
fn merged_multi_run_trace_passes_the_validator() {
    // The `experiments --trace` path: several executions merged into one
    // file, each run's locations in a disjoint pid range.
    let mut lines = Vec::new();
    for run in 0..3u64 {
        traced_run(2).push_chrome_events(1 + run * 1000, &format!("run {run}"), &mut lines);
    }
    let text = format!("[\n{}\n]\n", lines.join(",\n"));
    let check = validate_chrome_trace(&text).expect("merged trace must validate");
    assert_eq!(check.lanes, 6, "3 runs x 2 locations, no pid collisions");
}
