//! `bench-compare` — gate a fresh benchmark run against checked-in
//! `BENCH_*.json` baselines.
//!
//! ```text
//! bench-compare <baseline-dir> <fresh-dir> [--tol-rel R] [--tol-abs N] [--exact]
//! ```
//!
//! Exit codes: 0 = pass (improvements allowed), 1 = counter regression /
//! missing area / missing record, 2 = usage or unreadable input.

use std::process::exit;

use stapl_bench::compare::{compare_dirs, Tolerance};

const USAGE: &str = "usage: bench-compare <baseline-dir> <fresh-dir> \
                     [--tol-rel R] [--tol-abs N] [--exact]";

fn main() {
    let mut dirs: Vec<String> = Vec::new();
    let mut tol = Tolerance::default_gate();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exact" => tol = Tolerance::exact(),
            "--tol-rel" => match args.next().and_then(|v| v.parse::<f64>().ok()) {
                Some(v) if v >= 0.0 => tol.rel = v,
                _ => usage_error("--tol-rel needs a non-negative number"),
            },
            "--tol-abs" => match args.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(v) => tol.abs = v,
                _ => usage_error("--tol-abs needs a non-negative integer"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other if other.starts_with('-') => {
                usage_error(&format!("unknown flag {other}"));
            }
            dir => dirs.push(dir.to_string()),
        }
    }
    if dirs.len() != 2 {
        usage_error("expected exactly <baseline-dir> <fresh-dir>");
    }
    let baseline = std::path::Path::new(&dirs[0]);
    let fresh = std::path::Path::new(&dirs[1]);
    match compare_dirs(baseline, fresh, tol) {
        Ok(outcome) => {
            println!("{}", outcome.report());
            exit(if outcome.passed() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("bench-compare: {e}");
            exit(2);
        }
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("bench-compare: {msg}\n{USAGE}");
    exit(2);
}
