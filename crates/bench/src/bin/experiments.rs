//! Regenerates every table and figure of the paper's evaluation as
//! paper-style series (scaled to a laptop; see EXPERIMENTS.md).
//!
//! Usage:
//!   cargo run --release -p stapl-bench --bin experiments            # all
//!   cargo run --release -p stapl-bench --bin experiments fig31      # one
//!
//! Figure ids: fig27 fig28 fig30 fig31 fig32 fig33 fig34 fig39 fig40
//!             fig41 fig42 fig43 fig44 fig49 fig51 fig52 fig53 fig56
//!             fig59 fig60 fig62 agg ths executor directory localize
//!             dynamic transport

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stapl_algorithms::prelude::*;
use stapl_bench::{
    fmt_per_op, fmt_time, harness, skewed_generate, time_kernel, time_kernel_nofence, ExecMode,
    Table, BENCH_SEED,
};
use stapl_containers::associative::PHashMap;
use stapl_containers::composed::LocalArray;
use stapl_containers::generators::*;
use stapl_containers::graph::{Directedness, GraphPartitionKind, PGraph};
use stapl_containers::list::PList;
use stapl_containers::matrix::PMatrix;
use stapl_containers::vector::PVector;
use stapl_containers::array::{ArrayStorage, PArray};
use stapl_core::interfaces::*;
use stapl_core::mapper::CyclicMapper;
use stapl_core::partition::{BalancedPartition, MatrixLayout};
use stapl_core::thread_safety::*;
use stapl_rts::{execute_collect, execute_collect_traced, RtsConfig};

const PS: [usize; 3] = [1, 2, 4];

/// Global observability switches, set once in `main` before any
/// experiment runs and consulted by [`run`] (the single funnel every
/// experiment's executions go through). Chrome event lines accumulate
/// here across executions; `runs` numbers them so each gets a disjoint
/// pid range in the merged timeline.
struct TraceCtx {
    trace: bool,
    metrics: bool,
    chrome: Vec<String>,
    runs: u64,
}

static TRACE: std::sync::Mutex<TraceCtx> =
    std::sync::Mutex::new(TraceCtx { trace: false, metrics: false, chrome: Vec::new(), runs: 0 });

fn run<R: Send>(cfg: RtsConfig, p: usize, f: impl Fn(&stapl_rts::Location) -> R + Send + Sync) -> R {
    let wanted = {
        let t = TRACE.lock().expect("trace ctx poisoned");
        t.trace || t.metrics
    };
    if !wanted {
        return execute_collect(cfg, p, f).remove(0);
    }
    let cfg = RtsConfig { trace: true, ..cfg };
    let (mut results, trace) = execute_collect_traced(cfg, p, f);
    let rt = trace.expect("tracing requested");
    let mut t = TRACE.lock().expect("trace ctx poisoned");
    let run_idx = t.runs;
    t.runs += 1;
    if t.trace {
        // 1000 pids per execution keeps locations of different runs in
        // disjoint ranges of the merged timeline.
        rt.push_chrome_events(1 + run_idx * 1000, &format!("run {run_idx}"), &mut t.chrome);
    }
    if t.metrics {
        print_run_metrics(run_idx, &rt);
    }
    results.remove(0)
}

/// `--metrics`: one row per location of one execution — event volume,
/// RMI traffic, and the latency quantiles the trace histograms carry.
fn print_run_metrics(run_idx: u64, rt: &stapl_rts::RunTrace) {
    use stapl_rts::TraceEventKind;
    let q = |l: &stapl_rts::LocationTrace, name: &str, pick: fn(&stapl_rts::LatencyHistogram) -> u64| {
        let h = l.histogram(name).expect("known histogram");
        if h.count() == 0 { "-".to_string() } else { fmt_time(pick(h) as f64 * 1e-9) }
    };
    let mut t = Table::new(
        &format!("trace metrics: run {run_idx} (P={})", rt.nlocs),
        &[
            "loc", "events", "sends", "execs", "tasks", "sync n", "sync p50", "sync p99",
            "wait p99", "barrier p99",
        ],
    );
    for l in &rt.locs {
        t.row(vec![
            l.loc.to_string(),
            (l.events.len() as u64 + l.dropped).to_string(),
            l.count(TraceEventKind::RmiSend).to_string(),
            l.count(TraceEventKind::RmiExecute).to_string(),
            l.count(TraceEventKind::TaskSpan).to_string(),
            l.histogram("sync_rmi").expect("known histogram").count().to_string(),
            q(l, "sync_rmi", stapl_rts::LatencyHistogram::p50),
            q(l, "sync_rmi", stapl_rts::LatencyHistogram::p99),
            q(l, "future_wait", stapl_rts::LatencyHistogram::p99),
            q(l, "barrier_wait", stapl_rts::LatencyHistogram::p99),
        ]);
    }
    t.print();
}

/// Writes the accumulated Chrome trace-event lines of every traced
/// execution as one JSON array (the format `chrome://tracing` / Perfetto
/// load directly).
fn write_chrome_trace(path: &str) {
    let t = TRACE.lock().expect("trace ctx poisoned");
    let body = format!("[\n{}\n]\n", t.chrome.join(",\n"));
    if let Err(e) = std::fs::write(path, &body) {
        eprintln!("experiments: writing trace {path}: {e}");
        std::process::exit(2);
    }
    println!(
        "wrote {path} ({} events from {} traced executions)",
        t.chrome.len(),
        t.runs
    );
}

/// Fig. 27: pArray constructor time for various sizes / location counts.
fn fig27() {
    let mut t = Table::new(
        "Fig. 27: pArray constructor time (total size sweep, per P)",
        &["P", "n", "time", "per elem"],
    );
    for p in PS {
        for n in [100_000usize, 400_000, 1_600_000] {
            let secs = run(RtsConfig::default(), p, move |loc| {
                time_kernel_nofence(loc, || {
                    std::hint::black_box(PArray::new(loc, n, 0u64));
                })
            });
            t.row(vec![p.to_string(), n.to_string(), fmt_time(secs), fmt_per_op(secs, n)]);
        }
    }
    t.print();
}

/// Fig. 28: purely local method invocations for various container sizes.
fn fig28() {
    let mut t = Table::new(
        "Fig. 28: pArray local methods (per-op cost vs container size, P=2)",
        &["n", "set_element", "get_element", "apply_set"],
    );
    for n in [10_000usize, 100_000, 1_000_000] {
        let ops = 50_000usize;
        let (s, g, a) = run(RtsConfig::default(), 2, move |loc| {
            let arr = PArray::new(loc, n, 0u64);
            let lo = loc.id() * (n / loc.nlocs());
            let set = time_kernel(loc, || {
                for k in 0..ops {
                    arr.set_element(lo + k % (n / loc.nlocs()), k as u64);
                }
            });
            let get = time_kernel_nofence(loc, || {
                for k in 0..ops {
                    std::hint::black_box(arr.get_element(lo + k % (n / loc.nlocs())));
                }
            });
            let app = time_kernel(loc, || {
                for k in 0..ops {
                    arr.apply_set(lo + k % (n / loc.nlocs()), |v| *v += 1);
                }
            });
            (set, get, app)
        });
        t.row(vec![
            n.to_string(),
            fmt_per_op(s, ops),
            fmt_per_op(g, ops),
            fmt_per_op(a, ops),
        ]);
    }
    t.print();
}

/// Figs. 29/30: set (async) vs get (sync) vs split-phase get, remote.
fn fig30() {
    let mut t = Table::new(
        "Figs. 29/30: method flavors on remote elements (per-op cost)",
        &["P", "set async", "get sync", "split-phase get (batch 64)"],
    );
    let ops = 20_000usize;
    for p in [2usize, 4] {
        let (s, g, sp) = run(RtsConfig::default(), p, move |loc| {
            let n = 100_000;
            let arr = PArray::new(loc, n, 0u64);
            // Remote victim indices: owned by the next location.
            let peer_lo = ((loc.id() + 1) % loc.nlocs()) * (n / loc.nlocs());
            let set = time_kernel(loc, || {
                for k in 0..ops {
                    arr.set_element(peer_lo + k % 1000, k as u64);
                }
            });
            let get = time_kernel_nofence(loc, || {
                for k in 0..ops / 10 {
                    std::hint::black_box(arr.get_element(peer_lo + k % 1000));
                }
            });
            let split = time_kernel_nofence(loc, || {
                let mut futs = Vec::with_capacity(64);
                for k in 0..ops / 10 {
                    futs.push(arr.split_get_element(peer_lo + k % 1000));
                    if futs.len() == 64 {
                        for f in futs.drain(..) {
                            std::hint::black_box(f.get());
                        }
                    }
                }
                for f in futs {
                    std::hint::black_box(f.get());
                }
            });
            (set, get, split)
        });
        t.row(vec![
            p.to_string(),
            fmt_per_op(s, ops),
            fmt_per_op(g, ops / 10),
            fmt_per_op(sp, ops / 10),
        ]);
    }
    t.print();
}

/// Fig. 31: per-op cost as the fraction of remote invocations grows.
fn fig31() {
    let mut t = Table::new(
        "Fig. 31: pArray set_element vs %% remote invocations (P=2)",
        &["% remote", "per op", "slowdown vs 0%"],
    );
    let ops = 40_000usize;
    let mut base = 0.0f64;
    for pct in [0usize, 25, 50, 75, 100] {
        let secs = run(RtsConfig::default(), 2, move |loc| {
            let n = 100_000;
            let arr = PArray::new(loc, n, 0u64);
            let half = n / loc.nlocs();
            let my_lo = loc.id() * half;
            let peer_lo = (loc.id() + 1) % loc.nlocs() * half;
            let mut rng = StdRng::seed_from_u64(BENCH_SEED + 7 + loc.id() as u64);
            let idx: Vec<usize> = (0..ops)
                .map(|k| {
                    if rng.random_range(0..100) < pct {
                        peer_lo + k % half
                    } else {
                        my_lo + k % half
                    }
                })
                .collect();
            time_kernel(loc, || {
                for (k, i) in idx.iter().enumerate() {
                    arr.set_element(*i, k as u64);
                }
            })
        });
        if pct == 0 {
            base = secs;
        }
        t.row(vec![
            pct.to_string(),
            fmt_per_op(secs, ops),
            format!("{:.1}x", secs / base),
        ]);
    }
    t.print();
}

/// Fig. 32: local vs remote per-op cost across container sizes.
fn fig32() {
    let mut t = Table::new(
        "Fig. 32: local vs remote set_element across sizes (P=2)",
        &["n", "local", "remote", "remote/local"],
    );
    let ops = 30_000usize;
    for n in [10_000usize, 100_000, 1_000_000] {
        let (l, r) = run(RtsConfig::default(), 2, move |loc| {
            let arr = PArray::new(loc, n, 0u64);
            let half = n / loc.nlocs();
            let my_lo = loc.id() * half;
            let peer_lo = (loc.id() + 1) % loc.nlocs() * half;
            let local = time_kernel(loc, || {
                for k in 0..ops {
                    arr.set_element(my_lo + k % half, k as u64);
                }
            });
            let remote = time_kernel(loc, || {
                for k in 0..ops {
                    arr.set_element(peer_lo + k % half, k as u64);
                }
            });
            (local, remote)
        });
        t.row(vec![
            n.to_string(),
            fmt_per_op(l, ops),
            fmt_per_op(r, ops),
            format!("{:.1}x", r / l),
        ]);
    }
    t.print();
}

/// Fig. 33: generic algorithms on pArray, weak scaling (N per location
/// fixed).
fn fig33() {
    let mut t = Table::new(
        "Fig. 33: generic algorithms on pArray (weak scaling, 200k/loc)",
        &["P", "p_generate", "p_for_each", "p_accumulate", "per-elem for_each"],
    );
    let per = 200_000usize;
    for p in PS {
        let n = per * p;
        let (tg, tf, ta) = run(RtsConfig::default(), p, move |loc| {
            let arr = PArray::new(loc, n, 0u64);
            let tg = time_kernel_nofence(loc, || p_generate(&arr, |i| i as u64));
            let tf = time_kernel_nofence(loc, || p_for_each(&arr, |v| *v += 1));
            let ta = time_kernel_nofence(loc, || {
                std::hint::black_box(p_sum(&arr));
            });
            (tg, tf, ta)
        });
        t.row(vec![
            p.to_string(),
            fmt_time(tg),
            fmt_time(tf),
            fmt_time(ta),
            fmt_per_op(tf, n),
        ]);
    }
    t.print();
}

/// Fig. 34 + Tables XXII/XXIII: memory consumption, measured vs
/// theoretical, contiguous vs per-element allocation.
fn fig34() {
    let mut t = Table::new(
        "Fig. 34 / Tables XXII-XXIII: pArray memory (P=2, u64 elements)",
        &["n", "storage", "data B", "metadata B", "theoretical B", "data/theory"],
    );
    for n in [10_000usize, 100_000] {
        for (name, storage) in [("contiguous", ArrayStorage::Contiguous), ("boxed", ArrayStorage::Boxed)] {
            let m = run(RtsConfig::default(), 2, move |loc| {
                let arr = PArray::with_options(
                    loc,
                    Box::new(BalancedPartition::new(n, loc.nlocs())),
                    Box::new(CyclicMapper::new(loc.nlocs())),
                    0u64,
                    storage,
                    ThreadSafety::unlocked(),
                );
                arr.memory_size()
            });
            let theory = n * std::mem::size_of::<u64>();
            t.row(vec![
                n.to_string(),
                name.into(),
                m.data.to_string(),
                m.metadata.to_string(),
                theory.to_string(),
                format!("{:.2}x", m.data as f64 / theory as f64),
            ]);
        }
    }
    t.print();
}

/// Fig. 39: pList method costs.
fn fig39() {
    let mut t = Table::new(
        "Fig. 39: pList methods (per-op cost, P=2)",
        &["method", "per op"],
    );
    let ops = 30_000usize;
    let (anywhere, back, insert, erase) = run(RtsConfig::default(), 2, move |loc| {
        let l: PList<u64> = PList::new(loc);
        let t_any = time_kernel(loc, || {
            for k in 0..ops {
                l.push_anywhere(k as u64);
            }
        });
        let t_back = time_kernel(loc, || {
            for k in 0..ops / 10 {
                PList::push_back(&l, k as u64);
            }
        });
        let anchor = l.push_anywhere(0);
        loc.rmi_fence();
        let t_ins = time_kernel(loc, || {
            for k in 0..ops / 10 {
                SequenceContainer::insert_before_async(&l, anchor, k as u64);
            }
        });
        let gids: Vec<_> = {
            let mut v = Vec::new();
            l.for_each_local(|g, _| v.push(g));
            v
        };
        let t_er = time_kernel(loc, || {
            for g in gids.iter().take(ops / 10) {
                SequenceContainer::erase_async(&l, *g);
            }
        });
        (t_any, t_back, t_ins, t_er)
    });
    t.row(vec!["push_anywhere (local)".into(), fmt_per_op(anywhere, ops)]);
    t.row(vec!["push_back (global end)".into(), fmt_per_op(back, ops / 10)]);
    t.row(vec!["insert_before (async)".into(), fmt_per_op(insert, ops / 10)]);
    t.row(vec!["erase (async)".into(), fmt_per_op(erase, ops / 10)]);
    t.print();
}

/// Fig. 40: the same generic algorithms on pArray vs pList.
fn fig40() {
    let mut t = Table::new(
        "Fig. 40: p_generate / p_for_each / p_accumulate — pArray vs pList (100k/loc, P=2)",
        &["container", "p_generate", "p_for_each", "p_accumulate"],
    );
    let per = 100_000usize;
    let (ag, af, aa) = run(RtsConfig::default(), 2, move |loc| {
        let arr = PArray::new(loc, per * loc.nlocs(), 0u64);
        (
            time_kernel_nofence(loc, || p_generate(&arr, |i| i as u64)),
            time_kernel_nofence(loc, || p_for_each(&arr, |v| *v += 1)),
            time_kernel_nofence(loc, || {
                std::hint::black_box(p_sum(&arr));
            }),
        )
    });
    let (lg, lf, la) = run(RtsConfig::default(), 2, move |loc| {
        let l: PList<u64> = PList::new(loc);
        for k in 0..per {
            l.push_anywhere(k as u64);
        }
        l.commit();
        (
            time_kernel_nofence(loc, || {
                l.for_each_local_mut(|_, v| *v = 1);
                loc.barrier();
            }),
            time_kernel_nofence(loc, || p_for_each(&l, |v| *v += 1)),
            time_kernel_nofence(loc, || {
                std::hint::black_box(p_reduce(&l, |_, v| *v, |a, b| a + b));
            }),
        )
    });
    t.row(vec!["pArray".into(), fmt_time(ag), fmt_time(af), fmt_time(aa)]);
    t.row(vec!["pList".into(), fmt_time(lg), fmt_time(lf), fmt_time(la)]);
    t.print();
}

/// Fig. 41: placement on the same node vs different nodes (node model).
fn fig41() {
    let mut t = Table::new(
        "Fig. 41: p_for_each + fence, same-node vs cross-node placement (P=4)",
        &["placement", "time", "note"],
    );
    let per = 100_000usize;
    for (name, cfg) in [
        ("same node", RtsConfig::default()),
        ("different nodes", RtsConfig::clustered(1, 30_000, 300)),
    ] {
        let secs = run(cfg, 4, move |loc| {
            let arr = PArray::new(loc, per * loc.nlocs(), 0u64);
            time_kernel_nofence(loc, || p_for_each(&arr, |v| *v += 1))
        });
        t.row(vec![name.into(), fmt_time(secs), "fence crosses the interconnect".into()]);
    }
    t.print();
}

/// Fig. 42: pList vs pVector under a mixed read/write/insert/delete load.
fn fig42() {
    let mut t = Table::new(
        "Fig. 42: pList vs pVector, mixed operations (40k ops/loc, P=2)",
        &["% insert+delete", "pList", "pVector", "winner"],
    );
    let ops = 40_000usize;
    let n0 = 20_000usize;
    for dyn_pct in [0usize, 20, 50] {
        let list_t = run(RtsConfig::default(), 2, move |loc| {
            let l: PList<u64> = PList::new(loc);
            let mut gids: Vec<_> = (0..n0 / 2).map(|k| l.push_anywhere(k as u64)).collect();
            loc.rmi_fence();
            let mut rng = StdRng::seed_from_u64(BENCH_SEED + 3 + loc.id() as u64);
            time_kernel(loc, || {
                for k in 0..ops {
                    let g = gids[rng.random_range(0..gids.len())];
                    if rng.random_range(0..100) < dyn_pct {
                        if k % 2 == 0 {
                            gids.push(l.push_anywhere(k as u64));
                        } else {
                            SequenceContainer::erase_async(&l, g);
                        }
                    } else if k % 2 == 0 {
                        l.set_element(g, k as u64);
                    } else {
                        std::hint::black_box(l.try_get(g));
                    }
                }
            })
        });
        let vec_t = run(RtsConfig::default(), 2, move |loc| {
            let v: PVector<u64> = PVector::new(loc, n0, 0);
            let mut rng = StdRng::seed_from_u64(BENCH_SEED + 3 + loc.id() as u64);
            time_kernel(loc, || {
                for k in 0..ops {
                    let i = rng.random_range(0..n0);
                    if rng.random_range(0..100) < dyn_pct {
                        if k % 2 == 0 {
                            v.insert_async(i, k as u64);
                        } else {
                            v.erase_async(i);
                        }
                    } else if k % 2 == 0 {
                        v.set_element(i, k as u64);
                    } else {
                        std::hint::black_box(v.get_element(i));
                    }
                }
            })
        });
        let winner = if list_t < vec_t { "pList" } else { "pVector" };
        t.row(vec![
            dyn_pct.to_string(),
            fmt_time(list_t),
            fmt_time(vec_t),
            winner.into(),
        ]);
    }
    t.print();
}

/// Fig. 43: Euler tour weak scaling (tree vertices per location fixed).
fn fig43() {
    let mut t = Table::new(
        "Fig. 43: Euler tour weak scaling (8k vertices/loc)",
        &["P", "n", "time", "per arc"],
    );
    for p in PS {
        let n = 8_000 * p;
        let secs = run(RtsConfig::default(), p, move |loc| {
            let g: PGraph<(), ()> = PGraph::new_static(loc, n, Directedness::Undirected, ());
            fill_binary_tree(loc, &g, ());
            time_kernel_nofence(loc, || {
                std::hint::black_box(euler_tour(&g, 0));
            })
        });
        t.row(vec![p.to_string(), n.to_string(), fmt_time(secs), fmt_per_op(secs, 2 * (n - 1))]);
    }
    t.print();
}

/// Fig. 44: Euler tour applications for two tree sizes.
fn fig44() {
    let mut t = Table::new(
        "Fig. 44: Euler tour + applications (P=2)",
        &["n", "tour", "tour+apps"],
    );
    for n in [8_000usize, 16_000] {
        let (tt, ta) = run(RtsConfig::default(), 2, move |loc| {
            let g: PGraph<(), ()> = PGraph::new_static(loc, n, Directedness::Undirected, ());
            fill_binary_tree(loc, &g, ());
            let tt = time_kernel_nofence(loc, || {
                std::hint::black_box(euler_tour(&g, 0));
            });
            let ta = time_kernel_nofence(loc, || {
                std::hint::black_box(euler_applications(&g, 0));
            });
            (tt, ta)
        });
        t.row(vec![n.to_string(), fmt_time(tt), fmt_time(ta)]);
    }
    t.print();
}

/// Figs. 49/50: pGraph method costs with the SSCA2 generator, static vs
/// dynamic partitions.
fn fig49() {
    let mut t = Table::new(
        "Figs. 49/50: pGraph add_edge with SSCA2 workload (4k vertices, P=2)",
        &["partition", "edges", "build time", "per edge"],
    );
    let n = 4_000usize;
    for kind in [None, Some(GraphPartitionKind::DynamicFwd), Some(GraphPartitionKind::DynamicTwoPhase)] {
        let (secs, edges) = run(RtsConfig::default(), 2, move |loc| {
            let g = match kind {
                None => static_digraph(loc, n),
                Some(k) => dynamic_digraph_with_vertices(loc, n, k),
            };
            let params = Ssca2Params { n, max_clique_size: 8, inter_clique_prob: 0.05, seed: BENCH_SEED + 42 };
            let secs = time_kernel_nofence(loc, || {
                fill_ssca2(loc, &g, &params, ());
            });
            (secs, g.num_edges())
        });
        let name = match kind {
            None => "static",
            Some(GraphPartitionKind::DynamicFwd) => "dynamic + forwarding",
            _ => "dynamic, two-phase",
        };
        t.row(vec![name.into(), edges.to_string(), fmt_time(secs), fmt_per_op(secs, edges)]);
    }
    t.print();
}

/// Fig. 51: find-sources under the three address-resolution strategies.
fn fig51() {
    let mut t = Table::new(
        "Fig. 51: find_sources — static vs dynamic(fwd) vs dynamic(no fwd) (P=2)",
        &["partition", "n", "time", "sources"],
    );
    for kind in [None, Some(GraphPartitionKind::DynamicFwd), Some(GraphPartitionKind::DynamicTwoPhase)] {
        for n in [2_000usize, 8_000] {
            let (secs, ns) = run(RtsConfig::default(), 2, move |loc| {
                let g: AlgoGraph = match kind {
                    None => PGraph::new_static(loc, n, Directedness::Directed, VProps::default()),
                    Some(k) => {
                        let g = PGraph::new_dynamic(loc, Directedness::Directed, k);
                        let per = n.div_ceil(loc.nlocs());
                        for vd in loc.id() * per..((loc.id() + 1) * per).min(n) {
                            g.add_vertex_with_descriptor(vd, VProps::default());
                        }
                        g.commit();
                        g
                    }
                };
                fill_dag_with_sources(loc, &g, 4, 0.2, 9, ());
                let mut count = 0;
                let secs = time_kernel_nofence(loc, || {
                    count = find_sources(&g).len();
                });
                (secs, count)
            });
            let name = match kind {
                None => "static",
                Some(GraphPartitionKind::DynamicFwd) => "dynamic + forwarding",
                _ => "dynamic, two-phase",
            };
            t.row(vec![name.into(), n.to_string(), fmt_time(secs), ns.to_string()]);
        }
    }
    t.print();
}

/// Fig. 52: partition comparison on a traversal workload.
fn fig52() {
    let mut t = Table::new(
        "Fig. 52: pGraph partitions compared on BFS (4k vertices, P=2)",
        &["partition", "bfs time"],
    );
    for kind in [None, Some(GraphPartitionKind::DynamicFwd), Some(GraphPartitionKind::DynamicTwoPhase)] {
        let secs = run(RtsConfig::default(), 2, move |loc| {
            let n = 4_000;
            let g: AlgoGraph = match kind {
                None => PGraph::new_static(loc, n, Directedness::Directed, VProps::default()),
                Some(k) => {
                    let g = PGraph::new_dynamic(loc, Directedness::Directed, k);
                    let per = n / loc.nlocs();
                    for vd in loc.id() * per..(loc.id() + 1) * per {
                        g.add_vertex_with_descriptor(vd, VProps::default());
                    }
                    g.commit();
                    g
                }
            };
            fill_mesh(loc, &g, 40, 100, ());
            time_kernel_nofence(loc, || {
                std::hint::black_box(bfs(&g, 0));
            })
        });
        let name = match kind {
            None => "static",
            Some(GraphPartitionKind::DynamicFwd) => "dynamic + forwarding",
            _ => "dynamic, two-phase",
        };
        t.row(vec![name.into(), fmt_time(secs)]);
    }
    t.print();
}

/// Figs. 53/54/55: pGraph algorithm suite, weak scaling.
fn fig53() {
    let mut t = Table::new(
        "Figs. 53-55: pGraph algorithms (weak scaling, 2k vertices/loc, SSCA2)",
        &["P", "n", "find_sources", "BFS", "CC", "PageRank(5)"],
    );
    for p in PS {
        let n = 2_000 * p;
        let (fs, b, cc, pr) = run(RtsConfig::default(), p, move |loc| {
            let g: AlgoGraph =
                PGraph::new_static(loc, n, Directedness::Directed, VProps::default());
            let params = Ssca2Params { n, max_clique_size: 6, inter_clique_prob: 0.1, seed: BENCH_SEED + 5 };
            fill_ssca2(loc, &g, &params, ());
            let fs = time_kernel_nofence(loc, || {
                std::hint::black_box(find_sources(&g));
            });
            let b = time_kernel_nofence(loc, || {
                std::hint::black_box(bfs(&g, 0));
            });
            let cc = time_kernel_nofence(loc, || {
                std::hint::black_box(connected_components(&g));
            });
            let pr = time_kernel_nofence(loc, || {
                std::hint::black_box(page_rank(&g, 5, 0.85));
            });
            (fs, b, cc, pr)
        });
        t.row(vec![
            p.to_string(),
            n.to_string(),
            fmt_time(fs),
            fmt_time(b),
            fmt_time(cc),
            fmt_time(pr),
        ]);
    }
    t.print();
}

/// Fig. 56: PageRank on square vs skinny meshes.
fn fig56() {
    let mut t = Table::new(
        "Fig. 56: PageRank, square vs skinny mesh (10 iters, P=2)",
        &["mesh", "boundary verts", "time"],
    );
    for (rows, cols) in [(100usize, 100usize), (10, 1000)] {
        let (secs, boundary) = run(RtsConfig::default(), 2, move |loc| {
            let g: AlgoGraph =
                PGraph::new_static(loc, rows * cols, Directedness::Directed, VProps::default());
            fill_mesh(loc, &g, rows, cols, ());
            let bv = stapl_views::graph_view::GraphView::boundary(g.clone());
            let boundary = loc.allreduce_sum(bv.local_len() as u64);
            let secs = time_kernel_nofence(loc, || {
                std::hint::black_box(page_rank(&g, 10, 0.85));
            });
            (secs, boundary)
        });
        t.row(vec![format!("{rows}x{cols}"), boundary.to_string(), fmt_time(secs)]);
    }
    t.print();
}

/// Fig. 59: MapReduce word count, weak scaling.
fn fig59() {
    let mut t = Table::new(
        "Fig. 59: MapReduce word count (100k words/loc, zipf vocab 20k)",
        &["P", "total words", "distinct", "time", "per word"],
    );
    for p in PS {
        let words = 100_000usize;
        let (secs, distinct) = run(RtsConfig::default(), p, move |loc| {
            let text = synthetic_corpus(loc, words, 20_000, BENCH_SEED);
            let mut out = 0;
            let secs = time_kernel_nofence(loc, || {
                let counts = word_count(loc, &text);
                out = counts.global_size();
            });
            (secs, out)
        });
        t.row(vec![
            p.to_string(),
            (words * p).to_string(),
            distinct.to_string(),
            fmt_time(secs),
            fmt_per_op(secs, words * p),
        ]);
    }
    t.print();
}

/// Fig. 60: generic algorithms over associative containers.
fn fig60() {
    let mut t = Table::new(
        "Fig. 60: generic algorithms on pHashMap (weak scaling, 50k pairs/loc)",
        &["P", "insert (async)", "p_count_if", "find (sync, local keys)"],
    );
    for p in PS {
        let per = 50_000usize;
        let (ti, tc, tf) = run(RtsConfig::default(), p, move |loc| {
            let m: PHashMap<u64, u64> = PHashMap::new(loc);
            let base = (loc.id() as u64) << 32;
            let ti = time_kernel(loc, || {
                for k in 0..per as u64 {
                    m.insert_async(base | k, k);
                }
            });
            m.commit();
            let mut local_keys = Vec::new();
            m.for_each_local(|k, _| local_keys.push(*k));
            let tc = time_kernel_nofence(loc, || {
                let mut n = 0u64;
                m.for_each_local(|_, v| {
                    if *v % 2 == 0 {
                        n += 1;
                    }
                });
                std::hint::black_box(loc.allreduce_sum(n));
            });
            let tf = time_kernel_nofence(loc, || {
                for k in local_keys.iter().take(per / 5) {
                    std::hint::black_box(m.find(*k));
                }
            });
            (ti, tc, tf)
        });
        t.row(vec![
            p.to_string(),
            fmt_per_op(ti, per),
            fmt_time(tc),
            fmt_per_op(tf, per / 5),
        ]);
    }
    t.print();
}

/// Fig. 62: composed containers vs pMatrix on row-min.
fn fig62() {
    let mut t = Table::new(
        "Fig. 62: row-min — pArray<pArray> vs pList<pArray> vs pMatrix (512x256)",
        &["P", "pArray<pArray>", "pList<pArray>", "pMatrix rows"],
    );
    const ROWS: usize = 512;
    const COLS: usize = 256;
    for p in [1usize, 2, 4] {
        let (ta, tl, tm) = run(RtsConfig::default(), p, move |loc| {
            let pa: PArray<LocalArray<i64>> =
                PArray::from_fn(loc, ROWS, |r| LocalArray::from_fn(COLS, move |c| ((r * 13 + c) % 97) as i64));
            let ta = time_kernel_nofence(loc, || {
                let mut best = i64::MAX;
                pa.for_each_local(|_, row| best = best.min(*row.iter().min().unwrap()));
                std::hint::black_box(loc.allreduce(best, i64::min));
            });
            let pl: PList<LocalArray<i64>> = PList::new(loc);
            for r in 0..ROWS {
                if r % loc.nlocs() == loc.id() {
                    pl.push_anywhere(LocalArray::from_fn(COLS, move |c| ((r * 13 + c) % 97) as i64));
                }
            }
            pl.commit();
            let tl = time_kernel_nofence(loc, || {
                let mut best = i64::MAX;
                pl.for_each_local(|_, row| best = best.min(*row.iter().min().unwrap()));
                std::hint::black_box(loc.allreduce(best, i64::min));
            });
            let m = PMatrix::from_fn(loc, ROWS, COLS, MatrixLayout::RowBlocked, |r, c| {
                ((r * 13 + c) % 97) as i64
            });
            let rows_view = stapl_views::matrix_view::RowsView::new(m);
            let tm = time_kernel_nofence(loc, || {
                let mut best = i64::MAX;
                for rr in rows_view.local_rows() {
                    for r in rr.iter() {
                        best = best.min(rows_view.read_row(r).into_iter().min().unwrap());
                    }
                }
                std::hint::black_box(loc.allreduce(best, i64::min));
            });
            (ta, tl, tm)
        });
        t.row(vec![p.to_string(), fmt_time(ta), fmt_time(tl), fmt_time(tm)]);
    }
    t.print();
}

/// Ablation: RMI aggregation factor (the RTS bandwidth optimization).
fn agg() {
    let mut t = Table::new(
        "Ablation: aggregation factor vs remote async cost (P=2, 40k ops)",
        &["aggregation", "per op", "batches"],
    );
    let ops = 40_000usize;
    for a in [1usize, 4, 16, 64, 256] {
        let (secs, batches) = run(RtsConfig::with_aggregation(a), 2, move |loc| {
            let arr = PArray::new(loc, 100_000, 0u64);
            let peer_lo = (loc.id() + 1) % loc.nlocs() * 50_000;
            let before = loc.stats().batches_sent;
            let secs = time_kernel(loc, || {
                for k in 0..ops {
                    arr.set_element(peer_lo + k % 50_000, k as u64);
                }
            });
            (secs, loc.stats().batches_sent - before)
        });
        t.row(vec![a.to_string(), fmt_per_op(secs, ops), batches.to_string()]);
    }
    t.print();
}

/// Ablation: thread-safety manager overhead on the method fast path.
fn ths() {
    let mut t = Table::new(
        "Ablation: thread-safety manager overhead (local set_element, P=2)",
        &["manager", "per op"],
    );
    let ops = 100_000usize;
    let managers: Vec<(&str, std::sync::Arc<dyn ThreadSafetyManager>)> = vec![
        ("NoLock", std::sync::Arc::new(NoLockManager)),
        ("GlobalMutex", std::sync::Arc::new(GlobalMutexManager::default())),
        ("HashedLocks(64)", std::sync::Arc::new(HashedLockManager::new(64))),
        ("RwLock", std::sync::Arc::new(RwLockManager::default())),
    ];
    for (name, mgr) in managers {
        let secs = run(RtsConfig::default(), 2, move |loc| {
            let ths = ThreadSafety::new(LockingPolicyTable::dynamic_default(), mgr.clone());
            let arr = PArray::with_options(
                loc,
                Box::new(BalancedPartition::new(100_000, loc.nlocs())),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0u64,
                ArrayStorage::Contiguous,
                ths,
            );
            let lo = loc.id() * 50_000;
            time_kernel(loc, || {
                for k in 0..ops {
                    arr.set_element(lo + k % 50_000, k as u64);
                }
            })
        });
        t.row(vec![name.into(), fmt_per_op(secs, ops)]);
    }
    t.print();
}

/// PARAGRAPH executor on the skewed-workload scenario: lock-step SPMD vs
/// executor vs executor-with-stealing. The per-element work is a
/// simulated service latency (sleep), skewed 16x onto the last quarter
/// of the index space — the trailing location's block under the balanced
/// distribution. Stealing lets idle locations overlap that latency, so
/// it wins even on a single-core host; the uniform rows show the
/// executor's scheduling overhead when there is no skew to exploit.
fn executor_exp() {
    let mut t = Table::new(
        "PARAGRAPH executor: skewed vs uniform workload (P=4, n=256)",
        &["workload", "mode", "time", "speedup vs spmd", "stolen", "steal reqs", "steal %"],
    );
    for (workload, light, heavy) in [("skewed 16x", 50u64, 800u64), ("uniform", 50, 50)] {
        let mut spmd_time = None;
        for mode in [ExecMode::Spmd, ExecMode::Executor, ExecMode::Steal] {
            // Best of three: single runs of a sleep-based workload carry
            // timer-slack jitter.
            let (secs, stats) = (0..3)
                .map(|_| skewed_generate(4, 256, light, heavy, mode))
                .min_by(|a, b| a.0.total_cmp(&b.0))
                .expect("three runs");
            let base = *spmd_time.get_or_insert(secs);
            t.row(vec![
                workload.into(),
                mode.label().into(),
                fmt_time(secs),
                format!("{:.2}x", base / secs),
                stats.tasks_stolen.to_string(),
                stats.steal_requests.to_string(),
                format!("{:.0}%", stats.steal_fraction() * 100.0),
            ]);
        }
    }
    t.print();
}

/// Directory locality: per-location owner caches on the dynamic-pGraph
/// resolution path, hot-key and traversal scenarios, cache on vs off.
/// With the cache off every access pays the home hop (2 remote requests
/// per read under forwarding); with it on, repeated accesses route
/// straight to the cached owner (1 request) — the remote-request column
/// is the proof.
fn directory_exp() {
    let mut t = Table::new(
        "Directory locality: owner cache on/off (P=4, dynamic pGraph, forwarding)",
        &["scenario", "cache", "time", "remote reqs", "hits", "stale", "hit rate"],
    );
    let mut hot_reqs = [0u64; 2]; // [on, off] for the closing summary
    for (scenario, hot) in [("hot-key", true), ("traversal", false)] {
        for cache in [true, false] {
            let cfg = RtsConfig { dir_cache: cache, ..RtsConfig::base() };
            let (secs, reqs, stats) = run(cfg, 4, move |loc| {
                let g: PGraph<u64, ()> = PGraph::new_dynamic(
                    loc,
                    Directedness::Directed,
                    GraphPartitionKind::DynamicFwd,
                );
                let n = 64usize;
                for vd in 0..n {
                    if vd % loc.nlocs() == loc.id() {
                        g.add_vertex_with_descriptor(vd, vd as u64);
                    }
                }
                g.commit();
                let before = loc.stats().remote_requests;
                let secs = time_kernel_nofence(loc, || {
                    if hot {
                        // Four hot vertices owned by the next location,
                        // hammered — the regime the cache is built for.
                        let base = (loc.id() + 1) % loc.nlocs();
                        for k in 0..2000 {
                            let vd = base + (k % 4) * loc.nlocs();
                            std::hint::black_box(g.vertex_property(vd));
                        }
                    } else {
                        // Repeated full sweeps over the vertex set.
                        for _ in 0..40 {
                            for vd in 0..n {
                                std::hint::black_box(g.vertex_property(vd));
                            }
                        }
                    }
                });
                loc.rmi_fence();
                (secs, loc.stats().remote_requests - before, loc.stats())
            });
            if hot {
                hot_reqs[usize::from(!cache)] = reqs;
            }
            t.row(vec![
                scenario.into(),
                if cache { "on" } else { "off" }.into(),
                fmt_time(secs),
                reqs.to_string(),
                stats.dir_cache_hits.to_string(),
                stats.dir_cache_stale.to_string(),
                format!("{:.0}%", stats.dir_cache_hit_rate() * 100.0),
            ]);
        }
    }
    t.print();
    println!(
        "hot-key remote requests: {} cached vs {} uncached ({:.2}x reduction)",
        hot_reqs[0],
        hot_reqs[1],
        hot_reqs[1] as f64 / hot_reqs[0].max(1) as f64
    );
}

/// Localization + bulk-range transport: element-wise vs chunk-at-a-time
/// `p_copy` over aligned / shifted / strided / misaligned placements at
/// P ∈ {1,2,4}. The remote-request and bulk-request columns are the
/// proof: the localized path issues O(contiguous runs) messages where the
/// element-wise path issues O(N). Asserts the counter claims (stats-based
/// so the CI perf-smoke job is wall-clock-independent).
fn localize_exp() {
    use stapl_core::partition::{BlockCyclicPartition, BlockedPartition, IndexPartition};

    let n = 40_000usize;
    let mut t = Table::new(
        "Localization: element-wise vs localized p_copy (40k u64)",
        &["scenario", "P", "mode", "time", "remote reqs", "bulk reqs", "localized chunks"],
    );
    let scenarios = ["aligned", "shifted", "strided", "misaligned"];
    // remote-request deltas of the misaligned scenario at P=4, [localized,
    // element-wise], for the closing assertion.
    let mut misaligned_p4 = [0u64; 2];
    for scenario in scenarios {
        for p in PS {
            let mut per_mode = [0u64; 2];
            for (mode_ix, localized) in [(0usize, true), (1usize, false)] {
                let (secs, remote, bulk, chunks) = run(RtsConfig::default(), p, move |loc| {
                    let nlocs = loc.nlocs();
                    let src = PArray::from_fn(loc, n, |i| i as u64);
                    let dst = match scenario {
                        "aligned" => PArray::new(loc, n, 0u64),
                        "shifted" => {
                            // Same blocks, placement rotated by one:
                            // every element lands remote.
                            let part = BalancedPartition::new(n, nlocs);
                            let parts = IndexPartition::num_subdomains(&part);
                            PArray::with_partition(
                                loc,
                                Box::new(part),
                                Box::new(stapl_core::mapper::GeneralMapper::new(
                                    nlocs,
                                    (0..parts).map(|b| (b + 1) % nlocs).collect(),
                                )),
                                0u64,
                            )
                        }
                        "strided" => PArray::with_partition(
                            loc,
                            Box::new(BlockCyclicPartition::new(n, nlocs, 64)),
                            Box::new(CyclicMapper::new(nlocs)),
                            0u64,
                        ),
                        _ => {
                            // Off-by-17 block bounds AND rotated placement:
                            // off-grid boundaries, nearly everything remote.
                            let part = BlockedPartition::new(n, n / nlocs + 17);
                            let parts = IndexPartition::num_subdomains(&part);
                            PArray::with_partition(
                                loc,
                                Box::new(part),
                                Box::new(stapl_core::mapper::GeneralMapper::new(
                                    nlocs,
                                    (0..parts).map(|b| (b + 1) % nlocs).collect(),
                                )),
                                0u64,
                            )
                        }
                    };
                    loc.rmi_fence();
                    let before = loc.stats();
                    let secs = time_kernel(loc, || {
                        if localized {
                            p_copy(&src, &dst);
                        } else {
                            p_copy_elementwise(&src, &dst);
                        }
                    });
                    let after = loc.stats();
                    loc.barrier();
                    // Verify the copy regardless of mode.
                    for i in (0..n).step_by(n / 16) {
                        assert_eq!(dst.get_element(i), i as u64, "{scenario}: copy corrupted");
                    }
                    (
                        secs,
                        after.remote_requests - before.remote_requests,
                        after.bulk_requests - before.bulk_requests,
                        after.localized_chunks - before.localized_chunks,
                    )
                });
                per_mode[mode_ix] = remote;
                if scenario == "misaligned" && p == 4 {
                    misaligned_p4[mode_ix] = remote;
                }
                t.row(vec![
                    scenario.into(),
                    p.to_string(),
                    if localized { "localized" } else { "element-wise" }.into(),
                    fmt_time(secs),
                    remote.to_string(),
                    bulk.to_string(),
                    chunks.to_string(),
                ]);
            }
            // The localized path must never issue more remote traffic than
            // the element-wise baseline, on any scenario at any P.
            assert!(
                per_mode[0] <= per_mode[1],
                "{scenario} P={p}: localized path sent {} remote requests vs {} element-wise",
                per_mode[0],
                per_mode[1]
            );
            // Non-degenerate (communicating) scenarios must win by >= 10x.
            if p > 1 && scenario != "aligned" {
                assert!(
                    per_mode[0] * 10 <= per_mode[1],
                    "{scenario} P={p}: localized path should coarsen remote traffic >= 10x \
                     (got {} vs {})",
                    per_mode[0],
                    per_mode[1]
                );
            }
        }
    }
    t.print();
    println!(
        "misaligned p_copy at P=4: {} remote requests localized vs {} element-wise \
         ({:.0}x coarsening; O(runs) vs O(N))",
        misaligned_p4[0],
        misaligned_p4[1],
        misaligned_p4[1] as f64 / misaligned_p4[0].max(1) as f64
    );
    assert!(
        misaligned_p4[0] < (n / 100) as u64,
        "misaligned localized copy must be O(runs): {} remote requests for n={n}",
        misaligned_p4[0]
    );
    assert!(
        misaligned_p4[1] >= (n / 2) as u64,
        "element-wise baseline should be O(N): {} remote requests for n={n}",
        misaligned_p4[1]
    );
}

/// Dynamic-container bulk transport: segment-at-a-time vs element-wise
/// over pList slabs and pAssoc buckets. Three stats-asserted scenarios
/// (wall-clock-independent, so the CI perf-smoke job is stable):
///
/// * traversal — location 0 reads the whole pList: GID walk
///   (`next_gid` + `try_get` per element, O(N) sync RMIs) vs one
///   `get_segment` per slab (O(slabs));
/// * copy — `p_copy_segmented` vs `p_copy_elementwise` between twin
///   pLists whose destination slabs were all migrated one location over
///   (every write remote);
/// * word-count — `p_map_reduce_kv` over a `MapView` of documents
///   (local combine + one merge RMI per (owner, bucket)) vs the per-pair
///   `map_reduce` shuffle, result checked against a sequential model.
fn dynamic_exp() {
    use std::collections::HashMap;
    use stapl_views::assoc_view::MapView;

    let per = 500usize; // pList elements per location
    let mut t = Table::new(
        "Dynamic bulk transport: segmented vs element-wise (pList slabs, pAssoc buckets)",
        &["scenario", "P", "mode", "time", "remote reqs", "segment reqs"],
    );
    // remote-request deltas at P=4, [segmented, element-wise], per scenario.
    let mut traversal_p4 = [0u64; 2];
    let mut copy_p4 = [0u64; 2];
    let mut wordcount_p4 = [0u64; 2];

    for p in PS {
        for (mode_ix, segmented) in [(0usize, true), (1usize, false)] {
            let (secs, remote, segs) = run(RtsConfig::default(), p, move |loc| {
                let l: PList<u64> = PList::new(loc);
                for i in 0..per {
                    l.push_anywhere((loc.id() * per + i) as u64);
                }
                l.commit();
                loc.rmi_fence();
                let before = loc.stats();
                let n = per * loc.nlocs();
                let secs = time_kernel_nofence(loc, || {
                    if loc.id() == 0 {
                        let (mut sum, mut count) = (0u64, 0usize);
                        if segmented {
                            for sid in l.segments() {
                                for (_, v) in l.get_segment(sid) {
                                    sum += v;
                                    count += 1;
                                }
                            }
                        } else {
                            let mut cur = l.front_gid();
                            while let Some(g) = cur {
                                sum += l.try_get(g).expect("live element");
                                count += 1;
                                cur = l.next_gid(g);
                            }
                        }
                        assert_eq!(count, n, "traversal must visit every element");
                        assert_eq!(sum, (n as u64 - 1) * n as u64 / 2, "traversal corrupted");
                    }
                });
                loc.barrier();
                let after = loc.stats();
                (
                    secs,
                    after.remote_requests - before.remote_requests,
                    after.segment_requests - before.segment_requests,
                )
            });
            if p == 4 {
                traversal_p4[mode_ix] = remote;
            }
            t.row(vec![
                "pList traversal".into(),
                p.to_string(),
                if segmented { "segmented" } else { "element-wise" }.into(),
                fmt_time(secs),
                remote.to_string(),
                segs.to_string(),
            ]);
        }
    }

    for p in PS {
        for (mode_ix, segmented) in [(0usize, true), (1usize, false)] {
            let (secs, remote, segs) = run(RtsConfig::default(), p, move |loc| {
                let src: PList<u64> = PList::new(loc);
                let dst: PList<u64> = PList::new(loc);
                for i in 0..per {
                    src.push_anywhere((loc.id() * per + i) as u64);
                    dst.push_anywhere(0);
                }
                src.commit();
                dst.commit();
                // Rotate every dst slab one location over: every write is
                // remote, and stale owner hints must self-heal.
                if loc.id() == 0 {
                    for sid in 0..loc.nlocs() {
                        dst.migrate_bcontainer(sid, (sid + 1) % loc.nlocs());
                    }
                }
                loc.rmi_fence();
                let before = loc.stats();
                loc.barrier();
                let secs = time_kernel_nofence(loc, || {
                    if segmented {
                        p_copy_segmented(&src, &dst);
                    } else {
                        p_copy_elementwise(&src, &dst);
                    }
                });
                let after = loc.stats();
                loc.barrier();
                assert!(p_equal_segmented(&src, &dst), "copy corrupted");
                (
                    secs,
                    after.remote_requests - before.remote_requests,
                    after.segment_requests - before.segment_requests,
                )
            });
            if p == 4 {
                copy_p4[mode_ix] = remote;
            }
            t.row(vec![
                "pList copy (migrated dst)".into(),
                p.to_string(),
                if segmented { "segmented" } else { "element-wise" }.into(),
                fmt_time(secs),
                remote.to_string(),
                segs.to_string(),
            ]);
        }
    }

    let words_per_loc = 2_000usize;
    for p in PS {
        for (mode_ix, chunked) in [(0usize, true), (1usize, false)] {
            let (secs, remote, segs) = run(RtsConfig::default(), p, move |loc| {
                // Distributed documents: one corpus shard per location.
                let docs: PHashMap<u64, String> = PHashMap::new(loc);
                let text = synthetic_corpus(loc, words_per_loc, 500, BENCH_SEED);
                docs.insert_async(loc.id() as u64, text.clone());
                docs.commit();
                // Sequential model over the full collection.
                let texts: Vec<String> = loc.allgather(text);
                let mut model: HashMap<String, u64> = HashMap::new();
                for t in &texts {
                    for w in t.split_whitespace() {
                        *model.entry(w.to_string()).or_insert(0) += 1;
                    }
                }
                let counts: PHashMap<String, u64> = PHashMap::new(loc);
                loc.rmi_fence();
                let before = loc.stats();
                loc.barrier();
                let secs = time_kernel_nofence(loc, || {
                    if chunked {
                        word_count_kv(&MapView::new(docs.clone()), &counts);
                    } else {
                        let mine = &texts[loc.id()];
                        map_reduce(
                            &counts,
                            mine.split_whitespace(),
                            |w, emit| emit(w.to_string(), 1),
                            0,
                            |acc, v| *acc += v,
                        );
                    }
                });
                let after = loc.stats();
                // Both shuffles must reproduce the sequential model exactly.
                assert_eq!(counts.global_size(), model.len(), "distinct-word count");
                if loc.id() == 0 {
                    let mut got = counts.collect_ordered();
                    got.sort_unstable();
                    let mut want: Vec<(String, u64)> = model.into_iter().collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "word counts disagree with the sequential model");
                }
                loc.barrier();
                (
                    secs,
                    after.remote_requests - before.remote_requests,
                    after.segment_requests - before.segment_requests,
                )
            });
            if p == 4 {
                wordcount_p4[mode_ix] = remote;
            }
            t.row(vec![
                "word count (MapView)".into(),
                p.to_string(),
                if chunked { "chunked kv" } else { "per-pair" }.into(),
                fmt_time(secs),
                remote.to_string(),
                segs.to_string(),
            ]);
        }
    }
    t.print();

    println!(
        "P=4 remote requests, segmented vs element-wise — traversal: {} vs {} ({:.0}x), \
         copy: {} vs {} ({:.0}x), word count: {} vs {} ({:.0}x)",
        traversal_p4[0],
        traversal_p4[1],
        traversal_p4[1] as f64 / traversal_p4[0].max(1) as f64,
        copy_p4[0],
        copy_p4[1],
        copy_p4[1] as f64 / copy_p4[0].max(1) as f64,
        wordcount_p4[0],
        wordcount_p4[1],
        wordcount_p4[1] as f64 / wordcount_p4[0].max(1) as f64,
    );
    assert!(
        traversal_p4[0] * 10 <= traversal_p4[1],
        "segmented pList traversal must issue >= 10x fewer remote requests than the \
         element-wise walk at P=4 (got {} vs {})",
        traversal_p4[0],
        traversal_p4[1]
    );
    assert!(
        copy_p4[0] * 10 <= copy_p4[1],
        "segmented pList copy must issue >= 10x fewer remote requests than the \
         element-wise copy at P=4 (got {} vs {})",
        copy_p4[0],
        copy_p4[1]
    );
    assert!(
        wordcount_p4[0] * 5 <= wordcount_p4[1],
        "the bucket-grained shuffle must issue >= 5x fewer remote requests than the \
         per-pair shuffle at P=4 (got {} vs {})",
        wordcount_p4[0],
        wordcount_p4[1]
    );
}

/// Pluggable transport: the same copy / traversal kernels re-run with the
/// **serialized** wire backend, which encodes every remote request as a
/// byte frame and so turns `bytes_sent` / `messages_serialized` into real
/// bytes-on-the-wire counters. Stats-asserted (wall-clock independent, so
/// the CI perf-smoke job is stable):
///
/// * copy — misaligned `p_copy`: element-wise (one frame per element) vs
///   the bulk-range path (one frame per contiguous run);
/// * traversal — location 0 reads a pList: per-element GID walk (a sync
///   request + response frame pair per element) vs `get_segment` per slab;
/// * control — the closure backend runs the same bulk copy shipping boxed
///   closures: zero serialized messages, zero wire bytes.
///
/// The transport is forced per scenario (explicit field override), so the
/// comparison means the same thing under the `STAPL_TRANSPORT=serialized`
/// CI leg as in a default run.
fn transport_exp() {
    use stapl_core::partition::{BlockedPartition, IndexPartition};
    use stapl_rts::{StatsSnapshot, TransportKind};

    let n = 4096usize;
    let per = 500usize;
    let mut t = Table::new(
        "Transport: bytes on the wire, element-wise vs bulk vs segment (serialized backend)",
        &["scenario", "P", "mode", "time", "remote reqs", "msgs serialized", "bytes sent", "bytes/msg"],
    );

    // Misaligned p_copy (off-by-17 block bounds, rotated placement) under
    // the chosen backend; counters scoped to the kernel.
    let copy = |p: usize, localized: bool, kind: TransportKind| -> (f64, StatsSnapshot) {
        run(RtsConfig { transport: kind, ..RtsConfig::default() }, p, move |loc| {
            let nlocs = loc.nlocs();
            let src = PArray::from_fn(loc, n, |i| i as u64);
            let part = BlockedPartition::new(n, n / nlocs + 17);
            let parts = IndexPartition::num_subdomains(&part);
            let dst = PArray::with_partition(
                loc,
                Box::new(part),
                Box::new(stapl_core::mapper::GeneralMapper::new(
                    nlocs,
                    (0..parts).map(|b| (b + 1) % nlocs).collect(),
                )),
                0u64,
            );
            loc.rmi_fence();
            let before = loc.stats();
            let secs = time_kernel(loc, || {
                if localized {
                    p_copy(&src, &dst);
                } else {
                    p_copy_elementwise(&src, &dst);
                }
            });
            let delta = loc.stats().since(&before);
            loc.barrier();
            for i in (0..n).step_by(n / 16) {
                assert_eq!(dst.get_element(i), i as u64, "copy corrupted");
            }
            (secs, delta)
        })
    };

    // Location 0 reads the whole pList over the wire backend.
    let traverse = |p: usize, segmented: bool| -> (f64, StatsSnapshot) {
        let cfg = RtsConfig { transport: TransportKind::Serialized, ..RtsConfig::default() };
        run(cfg, p, move |loc| {
            let l: PList<u64> = PList::new(loc);
            for i in 0..per {
                l.push_anywhere((loc.id() * per + i) as u64);
            }
            l.commit();
            loc.rmi_fence();
            let before = loc.stats();
            let n = per * loc.nlocs();
            let secs = time_kernel_nofence(loc, || {
                if loc.id() == 0 {
                    let (mut sum, mut count) = (0u64, 0usize);
                    if segmented {
                        for sid in l.segments() {
                            for (_, v) in l.get_segment(sid) {
                                sum += v;
                                count += 1;
                            }
                        }
                    } else {
                        let mut cur = l.front_gid();
                        while let Some(g) = cur {
                            sum += l.try_get(g).expect("live element");
                            count += 1;
                            cur = l.next_gid(g);
                        }
                    }
                    assert_eq!(count, n, "traversal must visit every element");
                    assert_eq!(sum, (n as u64 - 1) * n as u64 / 2, "traversal corrupted");
                }
            });
            let delta = loc.stats().since(&before);
            loc.barrier();
            (secs, delta)
        })
    };

    let mut row = |scenario: &str, p: usize, mode: &str, r: &(f64, StatsSnapshot)| {
        t.row(vec![
            scenario.into(),
            p.to_string(),
            mode.into(),
            fmt_time(r.0),
            r.1.remote_requests.to_string(),
            r.1.messages_serialized.to_string(),
            r.1.bytes_sent.to_string(),
            format!("{:.1}", r.1.bytes_per_message()),
        ]);
    };

    // Kernel deltas at P=4, [coarse, element-wise], for the closing asserts.
    let mut copy_p4 = [StatsSnapshot::default(); 2];
    let mut trav_p4 = [StatsSnapshot::default(); 2];
    for p in PS {
        for (ix, localized) in [(0usize, true), (1usize, false)] {
            let r = copy(p, localized, TransportKind::Serialized);
            if p == 4 {
                copy_p4[ix] = r.1;
            }
            row("copy/misaligned", p, if localized { "bulk" } else { "element-wise" }, &r);
        }
    }
    for p in PS {
        for (ix, segmented) in [(0usize, true), (1usize, false)] {
            let r = traverse(p, segmented);
            if p == 4 {
                trav_p4[ix] = r.1;
            }
            row("plist-traversal", p, if segmented { "segmented" } else { "element-wise" }, &r);
        }
    }
    let ctl = copy(4, true, TransportKind::Closure);
    row("copy/misaligned", 4, "bulk (closure control)", &ctl);
    t.print();

    println!(
        "P=4 bytes on the wire, coarse vs element-wise — copy: {} vs {} ({:.0}x), \
         plist traversal: {} vs {} ({:.0}x)",
        copy_p4[0].bytes_sent,
        copy_p4[1].bytes_sent,
        copy_p4[1].bytes_sent as f64 / copy_p4[0].bytes_sent.max(1) as f64,
        trav_p4[0].bytes_sent,
        trav_p4[1].bytes_sent,
        trav_p4[1].bytes_sent as f64 / trav_p4[0].bytes_sent.max(1) as f64,
    );
    // The acceptance claim: the bulk-range path must move >= 10x fewer
    // bytes than element-wise transfer at P=4.
    assert!(
        copy_p4[0].bytes_sent * 10 <= copy_p4[1].bytes_sent,
        "bulk p_copy must put >= 10x fewer bytes on the wire than element-wise at P=4 \
         (got {} vs {})",
        copy_p4[0].bytes_sent,
        copy_p4[1].bytes_sent
    );
    assert!(
        trav_p4[0].bytes_sent * 10 <= trav_p4[1].bytes_sent,
        "segmented pList traversal must put >= 10x fewer bytes on the wire than the \
         GID walk at P=4 (got {} vs {})",
        trav_p4[0].bytes_sent,
        trav_p4[1].bytes_sent
    );
    // Wire-backend structure: exactly one frame per remote request, every
    // frame at least the 13-byte header (kind + handler + length + CRC32).
    for s in [&copy_p4[0], &copy_p4[1], &trav_p4[0], &trav_p4[1]] {
        assert_eq!(
            s.messages_serialized, s.remote_requests,
            "serialized backend must encode one frame per remote request"
        );
        assert!(
            s.bytes_sent >= 13 * s.messages_serialized,
            "every frame carries at least the 13-byte header"
        );
    }
    // And the closure backend never touches the wire counters.
    assert_eq!(ctl.1.messages_serialized, 0, "closure backend must not serialize");
    assert_eq!(ctl.1.bytes_sent, 0, "closure backend must not count wire bytes");
}

fn chaos_exp() {
    use stapl_core::partition::{BlockedPartition, IndexPartition};
    use stapl_rts::{FaultSchedule, StatsSnapshot, TransportKind};
    use std::cell::RefCell;

    let n = 2048usize;
    let mut t = Table::new(
        "Chaos soak: mixed container traffic under escalating fault schedules \
         (serialized backend, ack/retransmit recovery)",
        &["profile", "P", "time", "dropped", "retransmits", "crc rejects", "acks", "divergence"],
    );

    // Mixed soak workload: an all-pairs async-increment storm (many small
    // batches), a misaligned bulk p_copy (container traffic), and a fenced
    // sync-read phase. Returns every location's observation digest (via
    // allgather, so one run() result carries all of them) plus the kernel
    // counter delta.
    let soak = |p: usize, cfg: RtsConfig| -> (f64, Vec<Vec<u64>>, StatsSnapshot) {
        run(cfg, p, move |loc| {
            let nlocs = loc.nlocs();
            let me = loc.id();
            let (h, rep) = loc.register(RefCell::new(0u64));
            let src = PArray::from_fn(loc, n, |i| (i * 3 + 1) as u64);
            let part = BlockedPartition::new(n, n / nlocs + 17);
            let parts = IndexPartition::num_subdomains(&part);
            let dst = PArray::with_partition(
                loc,
                Box::new(part),
                Box::new(stapl_core::mapper::GeneralMapper::new(
                    nlocs,
                    (0..parts).map(|b| (b + 1) % nlocs).collect(),
                )),
                0u64,
            );
            loc.rmi_fence();
            let before = loc.stats();
            let secs = time_kernel(loc, || {
                for round in 1..=3u64 {
                    for dest in 0..nlocs {
                        if dest != me {
                            for j in 1..=4u64 {
                                let add = round * j;
                                loc.async_rmi(dest, h, move |c: &RefCell<u64>, _| {
                                    *c.borrow_mut() += add;
                                });
                            }
                        }
                    }
                    loc.rmi_fence();
                }
                p_copy(&src, &dst);
            });
            let delta = loc.stats().since(&before);
            loc.barrier();
            // Observation digest: own counter, every location's counter via
            // sync round trips, and sampled copy results — everything the
            // fault schedule could plausibly have corrupted or lost.
            let mut digest = vec![*rep.borrow()];
            for d in 0..nlocs {
                digest.push(loc.sync_rmi(d, h, |c: &RefCell<u64>, _| *c.borrow()));
            }
            for i in (0..n).step_by(97) {
                digest.push(dst.get_element(i));
            }
            let all = loc.allgather(digest);
            (secs, all, delta)
        })
    };

    // The clean closure-backend reference digests, per P.
    let clean: Vec<Vec<Vec<u64>>> =
        PS.iter().map(|&p| soak(p, RtsConfig::default()).1).collect();

    let profiles: &[(&str, &str)] = &[
        ("mild", "drop:0.01,corrupt:0.005"),
        ("medium", "drop:0.1,dup:0.05,reorder:0.1,corrupt:0.05"),
        ("severe", "drop:0.3,dup:0.1,reorder:0.2,corrupt:0.15,delay_us:10"),
        ("brutal", "drop:1.0"),
    ];
    let mut severe_p4 = StatsSnapshot::default();
    for (name, profile) in profiles {
        for (pi, &p) in PS.iter().enumerate() {
            let mut cfg =
                RtsConfig { transport: TransportKind::Serialized, ..RtsConfig::default() };
            cfg.faults = FaultSchedule::parse(profile).expect("soak profile parses");
            cfg.fault_seed = 0xC4A0_5EED ^ p as u64;
            cfg.retransmit_rto_us = 2_000;
            let (secs, digests, d) = soak(p, cfg);
            let diverged = digests != clean[pi];
            t.row(vec![
                name.to_string(),
                p.to_string(),
                fmt_time(secs),
                d.frames_dropped.to_string(),
                d.retransmits.to_string(),
                d.checksum_failures.to_string(),
                d.acks_sent.to_string(),
                if diverged { "DIVERGED".into() } else { "none".into() },
            ]);
            // The soak's whole point: an adversarial fabric may cost
            // retransmissions, but it may not change one observed value.
            assert!(
                !diverged,
                "soak diverged from the clean reference under profile `{profile}` at P={p}"
            );
            if *name == "severe" && p == 4 {
                severe_p4 = d;
            }
            if p > 1 {
                // Recovery must pay for injected damage, never multiply it.
                assert!(
                    d.retransmits <= 4 * (d.frames_dropped + d.checksum_failures) + 16,
                    "retransmit overhead unbounded under `{profile}` at P={p}: \
                     {} redrives for {} drops + {} rejections",
                    d.retransmits,
                    d.frames_dropped,
                    d.checksum_failures
                );
            }
        }
    }
    t.print();

    // The acceptance claim: at P=4 the severe profile actually exercised
    // every recovery path — losses injected, corrupt batches rejected by
    // CRC, both redriven — with zero divergence (asserted above).
    assert!(severe_p4.frames_dropped > 0, "severe profile never dropped a batch");
    assert!(severe_p4.checksum_failures > 0, "severe profile never corrupted a batch");
    assert!(severe_p4.retransmits > 0, "severe profile never forced a redrive");
    assert!(severe_p4.acks_sent > 0, "reliable delivery sent no acknowledgments");
    println!(
        "P=4 severe soak: {} requests recovered through {} retransmissions \
         ({} dropped, {} CRC-rejected) — zero divergence",
        severe_p4.remote_requests,
        severe_p4.retransmits,
        severe_p4.frames_dropped,
        severe_p4.checksum_failures,
    );
}

/// Every experiment id, in report order. Single source of truth for
/// dispatch, `--list`, and the unknown-id error message.
const EXPERIMENTS: &[(&str, fn())] = &[
    ("fig27", fig27),
    ("fig28", fig28),
    ("fig30", fig30),
    ("fig31", fig31),
    ("fig32", fig32),
    ("fig33", fig33),
    ("fig34", fig34),
    ("fig39", fig39),
    ("fig40", fig40),
    ("fig41", fig41),
    ("fig42", fig42),
    ("fig43", fig43),
    ("fig44", fig44),
    ("fig49", fig49),
    ("fig51", fig51),
    ("fig52", fig52),
    ("fig53", fig53),
    ("fig56", fig56),
    ("fig59", fig59),
    ("fig60", fig60),
    ("fig62", fig62),
    ("agg", agg),
    ("ths", ths),
    ("executor", executor_exp),
    ("directory", directory_exp),
    ("localize", localize_exp),
    ("dynamic", dynamic_exp),
    ("transport", transport_exp),
    ("chaos", chaos_exp),
];

fn list_experiments() {
    println!("experiments: {}", EXPERIMENTS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" "));
    println!("harness areas (--json): {}", harness::AREAS.join(" "));
}

const USAGE: &str = "usage: experiments [--trace FILE] [--metrics] [all | <id>...] \
     | --list | --json DIR [--tier T] [<area>...] | --validate-trace FILE";

fn usage_error(msg: &str) -> ! {
    eprintln!("experiments: {msg}");
    eprintln!("{USAGE}");
    eprintln!("  ids: {}", EXPERIMENTS.iter().map(|(n, _)| *n).collect::<Vec<_>>().join(" "));
    eprintln!("  areas: {} (default all)", harness::AREAS.join(" "));
    eprintln!("  tiers: kick-tires lite full (default kick-tires)");
    eprintln!("  --trace FILE: write a Chrome trace-event JSON timeline of every execution");
    eprintln!("  --metrics: print per-location event counts and latency quantiles");
    eprintln!("  --validate-trace FILE: check a trace file's structure and exit");
    std::process::exit(2);
}

/// `--validate-trace FILE`: structural check of a Chrome trace-event file
/// (the `trace-smoke` CI step); exit 0 when loadable, 2 otherwise.
fn run_validate_trace(path: &str) -> ! {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("experiments: reading {path}: {e}");
        std::process::exit(2);
    });
    match stapl_bench::trace_check::validate_chrome_trace(&text) {
        Ok(check) => {
            println!(
                "{path}: ok ({} events, {} spans, {} instants, {} lanes)",
                check.events, check.spans, check.instants, check.lanes
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("{path}: invalid trace: {e}");
            std::process::exit(2);
        }
    }
}

/// `--json DIR [--tier T] [<area>...]`: run the tiered harness and write
/// one `BENCH_<area>.json` per area into DIR. The paper-style figure
/// experiments above print tables for humans; this mode is the
/// machine-readable perf-trajectory feed that `bench-compare` gates on.
fn run_json_mode(mut rest: std::iter::Peekable<impl Iterator<Item = String>>) {
    let Some(dir) = rest.next() else { usage_error("--json needs an output DIR") };
    let dir = std::path::PathBuf::from(dir);
    let mut tier = harness::Tier::KickTires;
    let mut areas: Vec<String> = Vec::new();
    while let Some(arg) = rest.next() {
        match arg.as_str() {
            "--tier" => {
                let t = rest.next().unwrap_or_default();
                tier = harness::Tier::parse(&t)
                    .unwrap_or_else(|| usage_error(&format!("unknown tier {t:?}")));
            }
            a if harness::AREAS.contains(&a) => areas.push(a.to_string()),
            // Accept the experiment spelling for the localization area.
            "localize" => areas.push("localization".to_string()),
            other => usage_error(&format!("unknown area {other:?}")),
        }
    }
    if areas.is_empty() {
        areas = harness::AREAS.iter().map(|a| a.to_string()).collect();
    }
    for area in &areas {
        let report = harness::run_area(area, tier).expect("area validated above");
        let path = report.write_to(&dir).unwrap_or_else(|e| {
            eprintln!("experiments: writing {area}: {e}");
            std::process::exit(2);
        });
        println!(
            "wrote {} ({} records, tier {})",
            path.display(),
            report.records.len(),
            tier.name()
        );
    }
}

fn main() {
    // Peel off the observability flags first: they compose with any list
    // of experiment ids (but not with --json, whose harness runs scope
    // their own tracing into BENCH_*.json).
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    let mut trace_path: Option<String> = None;
    let mut i = 0;
    while i < raw.len() {
        match raw[i].as_str() {
            "--trace" => {
                if i + 1 >= raw.len() {
                    usage_error("--trace needs an output FILE");
                }
                trace_path = Some(raw.remove(i + 1));
                raw.remove(i);
                TRACE.lock().expect("trace ctx poisoned").trace = true;
            }
            "--metrics" => {
                raw.remove(i);
                TRACE.lock().expect("trace ctx poisoned").metrics = true;
            }
            "--validate-trace" => {
                if i + 1 >= raw.len() {
                    usage_error("--validate-trace needs a FILE");
                }
                run_validate_trace(&raw[i + 1]);
            }
            _ => i += 1,
        }
    }
    let mut args = raw.into_iter().peekable();
    match args.peek().map(String::as_str) {
        None => {
            for (_, f) in EXPERIMENTS {
                f();
            }
        }
        Some("--list") | Some("-l") => list_experiments(),
        Some("--help") | Some("-h") => {
            println!("{USAGE}");
            list_experiments();
        }
        Some("--json") => {
            args.next();
            run_json_mode(args);
        }
        Some(_) => {
            let names: Vec<String> = args.collect();
            if names.iter().any(|n| n == "all") {
                if names.len() > 1 {
                    usage_error("'all' cannot be combined with other ids");
                }
                for (_, f) in EXPERIMENTS {
                    f();
                }
            } else {
                // Validate every name before running anything: a typo
                // half-way through a list must not leave a partial
                // (expensive) run.
                let mut picked: Vec<fn()> = Vec::new();
                for name in &names {
                    match EXPERIMENTS.iter().find(|(n, _)| n == name) {
                        Some((_, f)) => picked.push(*f),
                        None => usage_error(&format!("unknown experiment id {name:?}")),
                    }
                }
                for f in picked {
                    f();
                }
            }
        }
    }
    if let Some(path) = &trace_path {
        write_chrome_trace(path);
    }
}
