//! # stapl-bench — harness shared by the evaluation benchmarks
//!
//! Implements the measurement kernel of Fig. 24 (time `N/P` method
//! invocations per location plus the closing fence; report the maximum
//! over locations) and table printing for the paper-style series.
//!
//! Every table and figure of the paper's evaluation (Chapters VIII–XIII)
//! maps to a Criterion bench target in `benches/` and to a subcommand of
//! the `experiments` binary (`cargo run --release -p stapl-bench --bin
//! experiments`), which prints the same rows/series the paper reports.
//! `EXPERIMENTS.md` records the measured shapes next to the paper's
//! claims.

use std::time::Instant;

use stapl_rts::Location;

pub mod compare;
pub mod harness;
pub mod json;
pub mod trace_check;

pub use harness::BENCH_SEED;

/// Times `f` on every location and returns the maximum elapsed seconds
/// (the Fig. 24 kernel: the reported time includes the fence).
///
/// **Collective.**
pub fn time_kernel(loc: &Location, f: impl FnOnce()) -> f64 {
    loc.barrier();
    let t = Instant::now();
    f();
    loc.rmi_fence();
    let elapsed = t.elapsed().as_secs_f64();
    loc.allreduce_max_f64(elapsed)
}

/// Times `f` without an implicit fence (for synchronous-method kernels
/// where every call already completed).
pub fn time_kernel_nofence(loc: &Location, f: impl FnOnce()) -> f64 {
    loc.barrier();
    let t = Instant::now();
    f();
    let elapsed = t.elapsed().as_secs_f64();
    loc.allreduce_max_f64(elapsed)
}

/// A paper-style series table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (w, c) in widths.iter().zip(cells) {
                s.push_str(&format!(" {c:>w$} |"));
            }
            s
        };
        println!("{}", line(&self.headers));
        println!("{}", "-".repeat(widths.iter().sum::<usize>() + 3 * widths.len()));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

// ---------------------------------------------------------------------
// Skewed-workload scenario (PARAGRAPH executor evaluation)
// ---------------------------------------------------------------------

/// How the skewed-workload scenario schedules its element work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Lock-step SPMD loop over local chunks + fence (the pre-PARAGRAPH
    /// baseline): each location grinds through its own elements.
    Spmd,
    /// PARAGRAPH executor with stealing disabled: task scheduling, but
    /// every task runs on its home location.
    Executor,
    /// PARAGRAPH executor with the work-stealing path enabled.
    Steal,
}

impl ExecMode {
    pub fn label(&self) -> &'static str {
        match self {
            ExecMode::Spmd => "spmd",
            ExecMode::Executor => "executor",
            ExecMode::Steal => "executor+steal",
        }
    }
}

/// **The skewed scenario.** Fills a balanced pArray with `dst[k] = k`,
/// where deriving each element takes a simulated per-element service
/// time (sleep): `light_us` µs for the first three quarters of the index
/// space and `heavy_us` µs for the last quarter — so under the balanced
/// distribution the trailing location(s) carry most of the work. This
/// models irregular per-element latency (out-of-core fetches, remote
/// lookups), the regime where a task-dependence-graph executor pays off:
/// sleeps overlap across location threads even on a single core, so the
/// lock-step SPMD baseline serializes the heavy quarter on one location
/// while the stealing executor spreads it.
///
/// Returns (max-over-locations seconds, global runtime stats) and
/// asserts the result array is correct in every mode.
pub fn skewed_generate(
    p: usize,
    n: usize,
    light_us: u64,
    heavy_us: u64,
    mode: ExecMode,
) -> (f64, stapl_rts::StatsSnapshot) {
    use stapl_algorithms::map_func::p_generate_view;
    use stapl_algorithms::paragraph_algos::p_generate_pg;
    use stapl_containers::array::PArray;
    use stapl_core::interfaces::ElementRead;
    use stapl_paragraph::executor::ExecPolicy;
    use stapl_views::array_view::ArrayView;

    stapl_rts::execute_collect(stapl_rts::RtsConfig::default(), p, move |loc| {
        let a = PArray::new(loc, n, 0u64);
        let v = ArrayView::new(a.clone());
        let gen = move |k: usize| {
            let us = if k >= n - n / 4 { heavy_us } else { light_us };
            std::thread::sleep(std::time::Duration::from_micros(us));
            k as u64
        };
        let secs = time_kernel(loc, || match mode {
            ExecMode::Spmd => p_generate_view(&v, gen),
            ExecMode::Executor => p_generate_pg(&v, ExecPolicy::no_stealing(), gen),
            ExecMode::Steal => p_generate_pg(&v, ExecPolicy::default(), gen),
        });
        // Every mode must produce the identical array.
        for i in (0..n).step_by((n / 16).max(1)) {
            assert_eq!(a.get_element(i), i as u64, "mode {mode:?} corrupted element {i}");
        }
        (secs, loc.stats())
    })
    .remove(0)
}

/// Formats seconds with µs resolution.
pub fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3}s")
    } else if secs >= 1e-3 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{:.1}us", secs * 1e6)
    }
}

/// Per-element cost — the normalization that makes weak scaling legible
/// on a single-core host: flat per-element cost across P means the
/// framework adds no per-location overhead (see EXPERIMENTS.md,
/// "Reading the numbers on one core").
pub fn fmt_per_op(secs: f64, ops: usize) -> String {
    if ops == 0 || secs == 0.0 {
        return "-".into();
    }
    format!("{:.0}ns/op", secs * 1e9 / ops as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn kernel_times_are_positive_and_agreed() {
        let times = stapl_rts::execute_collect(RtsConfig::default(), 2, |loc| {
            time_kernel(loc, || {
                std::hint::black_box((0..1000u64).sum::<u64>());
            })
        });
        assert!(times[0] > 0.0);
        assert_eq!(times[0], times[1], "allreduce_max must agree everywhere");
    }

    #[test]
    fn kernel_includes_pending_asyncs() {
        execute(RtsConfig::with_aggregation(64), 2, |loc| {
            let obj = stapl_core::pobject::PObject::register(loc, 0u64);
            loc.rmi_fence();
            let t = time_kernel(loc, || {
                for _ in 0..100 {
                    obj.invoke_at(1 - loc.id(), |c, _| *c.borrow_mut() += 1);
                }
            });
            assert!(t > 0.0);
            // After the kernel (which fences), all increments landed.
            assert_eq!(*obj.local(), 100);
        });
    }

    #[test]
    fn table_prints_without_panic() {
        let mut t = Table::new("demo", &["P", "time"]);
        t.row(vec!["1".into(), fmt_time(0.001)]);
        t.row(vec!["2".into(), fmt_time(2.5)]);
        t.print();
        assert_eq!(fmt_per_op(1.0, 1_000_000_000), "1ns/op");
        assert_eq!(fmt_per_op(0.0, 10), "-");
    }
}
