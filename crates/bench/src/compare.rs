//! Baseline comparison for `BENCH_*.json` reports: the policy half of the
//! perf-regression gate (`bench-compare` is a thin CLI over this).
//!
//! Wall-clock is **advisory** — CI machines are too noisy to gate on —
//! so the gate runs on the deterministic `StatsSnapshot` counters each
//! record declares in its `"gated"` list. Every gated counter has a
//! regression *direction*:
//!
//! * traffic counters (`remote_requests`, `bulk_requests`,
//!   `element_fallbacks`, `segment_requests`, `gather_items`,
//!   `dir_cache_misses`, `dir_cache_stale`, and the serialized
//!   transport's `bytes_sent` / `messages_serialized`) regress
//!   **upward** — doing more wire work for the same scenario is the
//!   failure; doing less is an improvement and passes (with a note, so
//!   baselines get refreshed);
//! * benefit counters (`localized_chunks`, `dir_cache_hits`) regress
//!   **downward** — the optimization silently stopped applying;
//! * anything else (e.g. `tasks_executed`) is an exactness check: drift
//!   in either direction beyond tolerance is a regression.
//!
//! Tolerance per counter is `max(tol_abs, baseline * tol_rel)`; `--exact`
//! sets both to zero, which is what the determinism self-test uses.
//! Missing fresh files, missing record ids, and missing gated counters
//! are regressions (a deleted benchmark must be a deliberate baseline
//! update, not a silent skip); extra fresh records — e.g. a lite run
//! diffed against kick-tires baselines, tiers are supersets — are
//! informational only.

use std::collections::BTreeMap;
use std::path::Path;

use crate::harness::{ParsedArea, ParsedRecord};

/// Allowed drift for a gated counter: `max(abs, baseline * rel)`.
#[derive(Clone, Copy, Debug)]
pub struct Tolerance {
    pub rel: f64,
    pub abs: u64,
}

impl Tolerance {
    /// The CI default: counters are deterministic by construction, but a
    /// hair of slack keeps the gate from firing on incidental ±1 drift
    /// in large counters while still catching real path changes.
    pub fn default_gate() -> Tolerance {
        Tolerance { rel: 0.05, abs: 2 }
    }

    /// Zero slack — for the run-twice determinism self-test.
    pub fn exact() -> Tolerance {
        Tolerance { rel: 0.0, abs: 0 }
    }

    fn slack(&self, baseline: u64) -> u64 {
        let rel = (baseline as f64 * self.rel).ceil() as u64;
        self.abs.max(rel)
    }
}

/// The direction(s) in which drift beyond slack counts as a regression;
/// drift the other way is an improvement.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Direction {
    Up,
    Down,
    Both,
}

fn direction_of(counter: &str) -> Direction {
    match counter {
        "remote_requests" | "bulk_requests" | "element_fallbacks" | "segment_requests"
        | "gather_items" | "dir_cache_misses" | "dir_cache_stale" | "bytes_sent"
        | "messages_serialized"
        // Reliability counters (chaos area): for a fixed fault schedule
        // more drops / redrives / rejections / poison means the recovery
        // machinery got *less* efficient — upward drift is the regression.
        | "frames_dropped" | "retransmits" | "checksum_failures" | "acks_sent"
        | "poisoned_responses" => Direction::Up,
        "localized_chunks" | "dir_cache_hits" => Direction::Down,
        _ => Direction::Both,
    }
}

/// The outcome of diffing one fresh run against one baseline directory.
pub struct CompareOutcome {
    /// Human-readable report lines, in emission order.
    pub lines: Vec<String>,
    /// Gate failures: counter regressions, missing files/records/counters.
    pub regressions: usize,
    /// Gated counters that moved in the *good* direction beyond slack.
    pub improvements: usize,
    /// (record, counter) pairs actually compared.
    pub compared: usize,
}

impl CompareOutcome {
    pub fn passed(&self) -> bool {
        self.regressions == 0
    }

    pub fn report(&self) -> String {
        self.lines.join("\n")
    }
}

fn read_area(path: &Path) -> Result<ParsedArea, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("{}: {e}", path.display()))?;
    ParsedArea::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

/// Lists the `BENCH_*.json` files in `dir`, sorted by name.
fn bench_files(dir: &Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut out = Vec::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(entry.path());
        }
    }
    out.sort();
    Ok(out)
}

fn pct(baseline: f64, fresh: f64) -> String {
    if baseline <= 0.0 {
        return "n/a".into();
    }
    format!("{:+.1}%", (fresh - baseline) / baseline * 100.0)
}

/// Diffs every `BENCH_*.json` under `baseline_dir` against its
/// counterpart in `fresh_dir`. `Err` means the inputs themselves were
/// unusable (missing baseline dir, malformed JSON) — callers exit 2;
/// a returned outcome with `regressions > 0` is the gate firing (exit 1).
pub fn compare_dirs(
    baseline_dir: &Path,
    fresh_dir: &Path,
    tol: Tolerance,
) -> Result<CompareOutcome, String> {
    let baseline_files = bench_files(baseline_dir)?;
    if baseline_files.is_empty() {
        return Err(format!("no BENCH_*.json baselines in {}", baseline_dir.display()));
    }
    let mut out = CompareOutcome {
        lines: Vec::new(),
        regressions: 0,
        improvements: 0,
        compared: 0,
    };
    for base_path in baseline_files {
        let file_name = base_path.file_name().expect("bench file name").to_owned();
        let baseline = read_area(&base_path)?;
        let fresh_path = fresh_dir.join(&file_name);
        if !fresh_path.exists() {
            out.regressions += 1;
            out.lines.push(format!(
                "REGRESSION {}: fresh run produced no {} (area dropped?)",
                baseline.area,
                file_name.to_string_lossy()
            ));
            continue;
        }
        let fresh = read_area(&fresh_path)?;
        compare_area(&baseline, &fresh, tol, &mut out);
    }
    out.lines.push(format!(
        "summary: {} gated counters compared, {} regressions, {} improvements -> {}",
        out.compared,
        out.regressions,
        out.improvements,
        if out.passed() { "PASS" } else { "FAIL" }
    ));
    Ok(out)
}

fn compare_area(
    baseline: &ParsedArea,
    fresh: &ParsedArea,
    tol: Tolerance,
    out: &mut CompareOutcome,
) {
    let fresh_by_id: BTreeMap<&str, &ParsedRecord> =
        fresh.records.iter().map(|r| (r.id.as_str(), r)).collect();
    for b in &baseline.records {
        let Some(f) = fresh_by_id.get(b.id.as_str()) else {
            out.regressions += 1;
            out.lines.push(format!(
                "REGRESSION {}/{}: record missing from fresh run",
                baseline.area, b.id
            ));
            continue;
        };
        compare_record(&baseline.area, b, f, tol, out);
    }
    let extra = fresh
        .records
        .iter()
        .filter(|f| !baseline.records.iter().any(|b| b.id == f.id))
        .count();
    if extra > 0 {
        out.lines.push(format!(
            "note {}: {extra} fresh record(s) have no baseline (higher tier?) — not gated",
            baseline.area
        ));
    }
}

fn compare_record(
    area: &str,
    b: &ParsedRecord,
    f: &ParsedRecord,
    tol: Tolerance,
    out: &mut CompareOutcome,
) {
    for counter in &b.gated {
        let base = match b.counters.get(counter) {
            Some(v) => *v,
            // Baseline predates the counter: nothing to gate against.
            None => continue,
        };
        let Some(&val) = f.counters.get(counter) else {
            out.regressions += 1;
            out.lines.push(format!(
                "REGRESSION {area}/{}: gated counter {counter} missing from fresh run",
                b.id
            ));
            continue;
        };
        out.compared += 1;
        let slack = tol.slack(base);
        let (grew, drift) =
            if val >= base { (true, val - base) } else { (false, base - val) };
        if drift <= slack {
            continue;
        }
        let bad = match direction_of(counter) {
            Direction::Up => grew,
            Direction::Down => !grew,
            Direction::Both => true,
        };
        if bad {
            out.regressions += 1;
            out.lines.push(format!(
                "REGRESSION {area}/{}: {counter} {base} -> {val} (allowed +/-{slack})",
                b.id
            ));
        } else {
            out.improvements += 1;
            out.lines.push(format!(
                "improved {area}/{}: {counter} {base} -> {val} — consider refreshing baselines",
                b.id
            ));
        }
    }
    // Wall-clock: advisory only. Flag big swings so a human looks, but
    // never gate — CI machines are shared and noisy.
    if b.wall_s > 0.0 && f.wall_s > 0.0 {
        let ratio = f.wall_s / b.wall_s;
        if !(0.5..=2.0).contains(&ratio) {
            out.lines.push(format!(
                "wall-clock {area}/{}: {:.2e}s -> {:.2e}s ({}) [advisory]",
                b.id,
                b.wall_s,
                f.wall_s,
                pct(b.wall_s, f.wall_s)
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: &str, gated: &[&str], counters: &[(&str, u64)], wall_s: f64) -> ParsedRecord {
        ParsedRecord {
            id: id.into(),
            wall_s,
            gated: gated.iter().map(|s| s.to_string()).collect(),
            counters: counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            trace_events: Default::default(),
        }
    }

    fn area(records: Vec<ParsedRecord>) -> ParsedArea {
        ParsedArea {
            schema: crate::harness::SCHEMA_VERSION,
            area: "localization".into(),
            tier: "kick-tires".into(),
            records,
        }
    }

    fn outcome() -> CompareOutcome {
        CompareOutcome { lines: Vec::new(), regressions: 0, improvements: 0, compared: 0 }
    }

    #[test]
    fn identical_records_pass() {
        let b = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 100)], 1.0)]);
        let f = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 100)], 1.0)]);
        let mut out = outcome();
        compare_area(&b, &f, Tolerance::exact(), &mut out);
        assert_eq!(out.regressions, 0);
        assert_eq!(out.compared, 1);
    }

    #[test]
    fn traffic_counter_up_is_regression_down_is_improvement() {
        let tol = Tolerance::default_gate();
        let b = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 100)], 1.0)]);
        let worse = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 120)], 1.0)]);
        let better = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 50)], 1.0)]);
        let mut out = outcome();
        compare_area(&b, &worse, tol, &mut out);
        assert_eq!((out.regressions, out.improvements), (1, 0));
        let mut out = outcome();
        compare_area(&b, &better, tol, &mut out);
        assert_eq!((out.regressions, out.improvements), (0, 1));
    }

    #[test]
    fn benefit_counter_down_is_regression() {
        let tol = Tolerance::default_gate();
        let b = area(vec![rec("a", &["localized_chunks"], &[("localized_chunks", 40)], 1.0)]);
        let worse = area(vec![rec("a", &["localized_chunks"], &[("localized_chunks", 0)], 1.0)]);
        let mut out = outcome();
        compare_area(&b, &worse, tol, &mut out);
        assert_eq!(out.regressions, 1);
        assert!(out.lines[0].contains("localized_chunks 40 -> 0"), "{}", out.lines[0]);
    }

    #[test]
    fn exactness_counter_drifts_both_ways() {
        let b = area(vec![rec("a", &["tasks_executed"], &[("tasks_executed", 128)], 1.0)]);
        for fresh_v in [120u64, 136] {
            let f = area(vec![rec("a", &["tasks_executed"], &[("tasks_executed", fresh_v)], 1.0)]);
            let mut out = outcome();
            compare_area(&b, &f, Tolerance::exact(), &mut out);
            assert_eq!(out.regressions, 1, "{fresh_v} should regress");
        }
    }

    #[test]
    fn tolerance_slack_absorbs_small_drift() {
        let tol = Tolerance { rel: 0.05, abs: 2 };
        // 5% of 100 = 5: drift of 5 passes, 6 fails.
        let b = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 100)], 1.0)]);
        let ok = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 105)], 1.0)]);
        let bad = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 106)], 1.0)]);
        let mut out = outcome();
        compare_area(&b, &ok, tol, &mut out);
        assert_eq!(out.regressions, 0);
        let mut out = outcome();
        compare_area(&b, &bad, tol, &mut out);
        assert_eq!(out.regressions, 1);
        // abs floor dominates for tiny baselines: 3 -> 5 passes.
        let b = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 3)], 1.0)]);
        let f = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 5)], 1.0)]);
        let mut out = outcome();
        compare_area(&b, &f, tol, &mut out);
        assert_eq!(out.regressions, 0);
    }

    #[test]
    fn missing_record_and_counter_are_regressions() {
        let b = area(vec![
            rec("a", &["remote_requests"], &[("remote_requests", 10)], 1.0),
            rec("b", &["remote_requests"], &[("remote_requests", 10)], 1.0),
        ]);
        let f = area(vec![rec("a", &["remote_requests"], &[], 1.0)]);
        let mut out = outcome();
        compare_area(&b, &f, Tolerance::default_gate(), &mut out);
        // record "b" missing + counter missing from record "a".
        assert_eq!(out.regressions, 2);
        assert!(out.lines.iter().any(|l| l.contains("record missing")));
        assert!(out.lines.iter().any(|l| l.contains("counter remote_requests missing")));
    }

    #[test]
    fn extra_fresh_records_are_informational() {
        let b = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 10)], 1.0)]);
        let f = area(vec![
            rec("a", &["remote_requests"], &[("remote_requests", 10)], 1.0),
            rec("lite-only", &["remote_requests"], &[("remote_requests", 999)], 1.0),
        ]);
        let mut out = outcome();
        compare_area(&b, &f, Tolerance::exact(), &mut out);
        assert_eq!(out.regressions, 0);
        assert!(out.lines.iter().any(|l| l.contains("no baseline")));
    }

    #[test]
    fn wall_clock_is_advisory_only() {
        let b = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 10)], 0.001)]);
        let f = area(vec![rec("a", &["remote_requests"], &[("remote_requests", 10)], 0.1)]);
        let mut out = outcome();
        compare_area(&b, &f, Tolerance::exact(), &mut out);
        assert_eq!(out.regressions, 0, "100x wall-clock must not gate");
        assert!(out.lines.iter().any(|l| l.contains("advisory")));
    }
}
