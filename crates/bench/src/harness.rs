//! Tiered benchmark harness: parameterized scenarios → `BENCH_*.json`.
//!
//! This is the repo's perf-trajectory subsystem (ROADMAP item 5, shaped
//! after pSTL-Bench's micro-benchmark suites and the ruler artifact's
//! kick-tires / lite / full tier scripts). Each **area** groups scenarios
//! around one optimization the repo reproduced and must not regress:
//!
//! * `localization` — bulk-range transport + view localization (PR 4):
//!   `p_copy` localized vs element-wise over aligned / shifted / strided /
//!   misaligned placements, aggregation and `bulk_threshold` knobs;
//! * `directory` — owner caches with epoch invalidation (PR 3): hot-key
//!   and traversal access on a dynamic pGraph, cache on vs off;
//! * `dynamic` — segment-at-a-time transport for pList / pAssoc (PR 5):
//!   segmented vs element-wise traversal and copy-onto-migrated-slabs,
//!   bucket-grained vs per-pair MapReduce shuffle, and the
//!   gather-vs-broadcast `collect_ordered` data paths;
//! * `executor` — the PARAGRAPH task-graph executor (PR 2): SPMD vs
//!   executor vs executor+stealing on uniform and skewed workloads;
//! * `transport` — the serialized wire backend (PR 8): the same copy and
//!   traversal kernels re-run with every RMI encoded as a wire frame, so
//!   `bytes_sent` / `messages_serialized` become real, gateable
//!   bytes-on-the-wire counters (plus a closure-backend zero-bytes
//!   control);
//! * `chaos` — fault injection + reliable delivery (PR 9): an async-RMI
//!   storm under seeded fault schedules (total drop, total corruption, a
//!   mixed profile), gating the recovery counters
//!   (`frames_dropped` / `retransmits` / `checksum_failures` / `acks_sent`)
//!   so the reliability layer's overhead cannot silently grow — with
//!   zero divergence of the final container state asserted in-run.
//!
//! Each scenario runs in its **own** [`execute_collect_traced`] execution
//! with an explicit [`RtsConfig`] built from [`RtsConfig::base`] (environment
//! `STAPL_*` overrides deliberately do **not** apply — records must mean
//! the same thing on every machine), and counters are scoped with
//! [`StatsSnapshot::since`] around the timed kernel, so back-to-back
//! scenarios in one process cannot cross-contaminate records. All
//! generators are seeded from [`BENCH_SEED`]: two runs at the same knobs
//! produce **identical** gated counter values (asserted by
//! `tests/harness_determinism.rs`), which is what lets `bench-compare`
//! gate CI on counters while wall-clock stays advisory.

use stapl_algorithms::prelude::*;
use stapl_containers::array::PArray;
use stapl_containers::associative::PHashMap;
use stapl_containers::graph::{Directedness, GraphPartitionKind, PGraph};
use stapl_containers::list::PList;
use stapl_core::interfaces::*;
use stapl_core::mapper::{CyclicMapper, GeneralMapper};
use stapl_core::partition::{
    BalancedPartition, BlockCyclicPartition, BlockedPartition, IndexPartition,
};
use stapl_paragraph::executor::ExecPolicy;
use stapl_rts::{
    execute_collect_traced, FaultSchedule, Location, RtsConfig, StatsSnapshot, TraceSummary,
    TransportKind,
};
use stapl_views::array_view::ArrayView;
use stapl_views::assoc_view::MapView;

use crate::json::{escape, fmt_f64, Json};
use crate::time_kernel;

/// The one fixed seed threaded through every scenario generator (corpus
/// synthesis, graph generators, index shuffles). Centralizing it keeps
/// harness runs reproducible and makes "is this seeded?" greppable.
pub const BENCH_SEED: u64 = 0x57A9_15EED;

/// Schema version stamped into every `BENCH_*.json`; bump on breaking
/// format changes so `bench-compare` can refuse mixed-schema diffs.
pub const SCHEMA_VERSION: u64 = 1;

/// The benchmark areas, in emission order. `BENCH_<area>.json` baselines
/// for each are checked into `bench/baselines/`.
pub const AREAS: [&str; 6] =
    ["localization", "directory", "dynamic", "executor", "transport", "chaos"];

/// Benchmark tiers, each a strict superset of the previous one — so a
/// lite or full run still contains every kick-tires record and can be
/// compared against the kick-tires baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// < 1 minute on a laptop; what CI gates on.
    KickTires,
    /// A few minutes: more placements, more P values, knob sweeps.
    Lite,
    /// The whole sweep, sized for a real machine evaluation.
    Full,
}

impl Tier {
    pub fn parse(s: &str) -> Option<Tier> {
        match s {
            "kick-tires" | "kick_tires" | "kicktires" => Some(Tier::KickTires),
            "lite" => Some(Tier::Lite),
            "full" => Some(Tier::Full),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            Tier::KickTires => "kick-tires",
            Tier::Lite => "lite",
            Tier::Full => "full",
        }
    }
}

/// One measured scenario: a stable id, the knobs it ran under, its
/// wall-clock (advisory), the counter snapshot scoped to the kernel, and
/// the subset of counters that are deterministic for this scenario and
/// therefore CI-gated. Timing-dependent counters (batches, fence rounds,
/// steals) stay in `counters` for the record but are never gated.
pub struct BenchRecord {
    pub id: String,
    pub knobs: Vec<(&'static str, String)>,
    pub wall_s: f64,
    pub gated: Vec<&'static str>,
    pub counters: StatsSnapshot,
    /// Trace summary of the whole scenario execution (setup + kernel +
    /// verification — tracing is per-run, not scoped like `counters`).
    /// Serialized as the advisory `"trace"` block: event counts are
    /// deterministic for gated kinds, histogram durations never are.
    pub trace: TraceSummary,
}

/// All records of one area at one tier.
pub struct AreaReport {
    pub area: &'static str,
    pub tier: Tier,
    pub records: Vec<BenchRecord>,
}

// ---------------------------------------------------------------------
// Measurement scoping
// ---------------------------------------------------------------------

/// Times `kernel` collectively and returns `(max-over-locations seconds,
/// counter delta scoped to the kernel)`. The leading fence drains setup
/// traffic out of the window; the trailing barrier keeps every location
/// from issuing post-kernel (e.g. verification) requests until all
/// locations have read their delta.
///
/// **Collective.**
pub fn timed_scoped(loc: &Location, kernel: impl FnOnce()) -> (f64, StatsSnapshot) {
    loc.rmi_fence();
    let before = loc.stats();
    let secs = time_kernel(loc, kernel);
    let delta = loc.stats().since(&before);
    loc.barrier();
    (secs, delta)
}

fn knob(name: &'static str, value: impl ToString) -> (&'static str, String) {
    (name, value.to_string())
}

/// Runs one scenario with tracing forced on and returns `(wall_s, counter
/// delta, run-wide trace summary)`. Tracing does not touch the Stats
/// counters (asserted by `tests/trace_overhead.rs`), so records measured
/// through this helper gate on exactly the same values as untraced runs.
fn traced(
    cfg: RtsConfig,
    p: usize,
    f: impl Fn(&Location) -> (f64, StatsSnapshot) + Send + Sync,
) -> (f64, StatsSnapshot, TraceSummary) {
    let cfg = RtsConfig { trace: true, ..cfg };
    let (mut results, trace) = execute_collect_traced(cfg, p, f);
    let (secs, delta) = results.remove(0);
    (secs, delta, trace.expect("tracing enabled for harness runs").summary())
}

// ---------------------------------------------------------------------
// Area: localization (PR 4 — bulk-range transport + view localization)
// ---------------------------------------------------------------------

const LOCALIZATION_GATED: &[&str] = &[
    "remote_requests",
    "bulk_requests",
    "localized_chunks",
    "element_fallbacks",
    // Localization converts remote element traffic into direct local
    // invocations, so their count is placement-determined too.
    "local_invocations",
];

/// `p_copy` between a balanced source and a destination whose placement
/// forces the given amount of misalignment; localized vs element-wise.
fn localization_copy(
    p: usize,
    n: usize,
    placement: &'static str,
    localized: bool,
    cfg: RtsConfig,
) -> (f64, StatsSnapshot, TraceSummary) {
    traced(cfg, p, move |loc| {
        let nlocs = loc.nlocs();
        let src = PArray::from_fn(loc, n, |i| i as u64);
        let dst = match placement {
            "aligned" => PArray::new(loc, n, 0u64),
            "shifted" => {
                // Same block bounds, placement rotated by one location:
                // every element lands remote, but runs stay whole blocks.
                let part = BalancedPartition::new(n, nlocs);
                let parts = IndexPartition::num_subdomains(&part);
                PArray::with_partition(
                    loc,
                    Box::new(part),
                    Box::new(GeneralMapper::new(nlocs, (0..parts).map(|b| (b + 1) % nlocs).collect())),
                    0u64,
                )
            }
            "strided" => PArray::with_partition(
                loc,
                Box::new(BlockCyclicPartition::new(n, nlocs, 64)),
                Box::new(CyclicMapper::new(nlocs)),
                0u64,
            ),
            "misaligned" => {
                // Off-by-17 block bounds AND rotated placement: off-grid
                // boundaries, nearly everything remote.
                let part = BlockedPartition::new(n, n / nlocs + 17);
                let parts = IndexPartition::num_subdomains(&part);
                PArray::with_partition(
                    loc,
                    Box::new(part),
                    Box::new(GeneralMapper::new(nlocs, (0..parts).map(|b| (b + 1) % nlocs).collect())),
                    0u64,
                )
            }
            other => panic!("unknown placement {other}"),
        };
        let (secs, delta) = timed_scoped(loc, || {
            if localized {
                p_copy(&src, &dst);
            } else {
                p_copy_elementwise(&src, &dst);
            }
        });
        for i in (0..n).step_by((n / 16).max(1)) {
            assert_eq!(dst.get_element(i), i as u64, "{placement}: copy corrupted at {i}");
        }
        (secs, delta)
    })
}

fn localization_area(tier: Tier) -> Vec<BenchRecord> {
    let n = 4096usize;
    let mut specs: Vec<(usize, usize, &'static str, bool, usize, usize)> = Vec::new();
    // (p, n, placement, localized, aggregation, bulk_threshold)
    for placement in ["aligned", "misaligned"] {
        for p in [1usize, 4] {
            for localized in [true, false] {
                specs.push((p, n, placement, localized, 16, 2));
            }
        }
    }
    // Knob sweep on the interesting cell: aggregation and the
    // bulk-threshold ablation (huge threshold = bulk path disabled).
    for agg in [1usize, 64] {
        specs.push((4, n, "misaligned", true, agg, 2));
    }
    specs.push((4, n, "misaligned", true, 16, usize::MAX / 2));
    if tier >= Tier::Lite {
        for placement in ["shifted", "strided"] {
            for localized in [true, false] {
                specs.push((2, n, placement, localized, 16, 2));
                specs.push((4, 40_000, placement, localized, 16, 2));
            }
        }
        specs.push((2, n, "misaligned", true, 16, 2));
        specs.push((4, 40_000, "misaligned", true, 16, 2));
        specs.push((4, 40_000, "misaligned", false, 16, 2));
    }
    if tier >= Tier::Full {
        for placement in ["aligned", "shifted", "strided", "misaligned"] {
            for localized in [true, false] {
                specs.push((8, 160_000, placement, localized, 16, 2));
            }
        }
    }
    specs
        .into_iter()
        .map(|(p, n, placement, localized, agg, bulk)| {
            let cfg = RtsConfig {
                aggregation: agg,
                bulk_threshold: bulk,
                ..RtsConfig::base()
            };
            let (wall_s, counters, trace) = localization_copy(p, n, placement, localized, cfg);
            let mode = if localized { "localized" } else { "element-wise" };
            let bulk_label = if bulk > n { "off".to_string() } else { bulk.to_string() };
            BenchRecord {
                id: format!("copy/{placement}/p{p}/n{n}/{mode}/agg{agg}/bulk{bulk_label}"),
                knobs: vec![
                    knob("p", p),
                    knob("n", n),
                    knob("placement", placement),
                    knob("mode", mode),
                    knob("aggregation", agg),
                    knob("bulk_threshold", bulk_label),
                ],
                wall_s,
                gated: LOCALIZATION_GATED.to_vec(),
                counters,
                trace,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Area: directory (PR 3 — owner caches with epoch invalidation)
// ---------------------------------------------------------------------

const DIRECTORY_GATED: &[&str] = &[
    "remote_requests",
    "dir_cache_hits",
    "dir_cache_misses",
    "dir_cache_stale",
    // Every routed read replies exactly once, so the reply count tracks
    // the (deterministic) read schedule.
    "responses_sent",
];

/// Hot-key or sweep reads over a dynamic (forwarding) pGraph; the owner
/// cache turns the 2-hop home-forwarded read into 1 hop on repeats.
fn directory_access(
    p: usize,
    nverts: usize,
    reads: usize,
    hot: bool,
    cfg: RtsConfig,
) -> (f64, StatsSnapshot, TraceSummary) {
    traced(cfg, p, move |loc| {
        let g: PGraph<u64, ()> =
            PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
        for vd in 0..nverts {
            if vd % loc.nlocs() == loc.id() {
                g.add_vertex_with_descriptor(vd, vd as u64);
            }
        }
        g.commit();
        let (secs, delta) = timed_scoped(loc, || {
            if hot {
                // Four hot vertices owned by the next location, hammered.
                let base = (loc.id() + 1) % loc.nlocs();
                for k in 0..reads {
                    let vd = base + (k % 4) * loc.nlocs();
                    std::hint::black_box(g.vertex_property(vd));
                }
            } else {
                // Repeated full sweeps over the vertex set.
                let sweeps = reads / nverts;
                for _ in 0..sweeps {
                    for vd in 0..nverts {
                        std::hint::black_box(g.vertex_property(vd));
                    }
                }
            }
        });
        (secs, delta)
    })
}

fn directory_area(tier: Tier) -> Vec<BenchRecord> {
    let nverts = 64usize;
    let reads = 640usize;
    // (p, reads, hot, cache, aggregation)
    let mut specs: Vec<(usize, usize, bool, bool, usize)> = Vec::new();
    for hot in [true, false] {
        for cache in [true, false] {
            specs.push((4, reads, hot, cache, 16));
        }
    }
    for agg in [1usize, 64] {
        specs.push((4, reads, true, true, agg));
    }
    if tier >= Tier::Lite {
        for cache in [true, false] {
            specs.push((2, reads, true, cache, 16));
            specs.push((4, 6400, true, cache, 16));
        }
    }
    if tier >= Tier::Full {
        for cache in [true, false] {
            specs.push((8, 25_600, true, cache, 16));
            specs.push((8, 25_600, false, cache, 16));
        }
    }
    specs
        .into_iter()
        .map(|(p, reads, hot, cache, agg)| {
            let cfg = RtsConfig { dir_cache: cache, aggregation: agg, ..RtsConfig::base() };
            let (wall_s, counters, trace) = directory_access(p, nverts, reads, hot, cfg);
            let scenario = if hot { "hot-key" } else { "traversal" };
            let cache_label = if cache { "on" } else { "off" };
            BenchRecord {
                id: format!("{scenario}/p{p}/reads{reads}/cache-{cache_label}/agg{agg}"),
                knobs: vec![
                    knob("p", p),
                    knob("vertices", nverts),
                    knob("reads", reads),
                    knob("scenario", scenario),
                    knob("dir_cache", cache_label),
                    knob("aggregation", agg),
                ],
                wall_s,
                gated: DIRECTORY_GATED.to_vec(),
                counters,
                trace,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Area: dynamic (PR 5 — segment transport, kv shuffle, gather paths)
// ---------------------------------------------------------------------

const DYNAMIC_GATED: &[&str] =
    &["remote_requests", "segment_requests", "gather_items", "responses_sent"];

/// Location 0 reads the whole pList: one `get_segment` per slab vs the
/// element-wise GID walk. Takes the config so the `transport` area can
/// re-run the same kernel over the serialized wire backend.
fn dynamic_traversal(
    p: usize,
    per: usize,
    segmented: bool,
    cfg: RtsConfig,
) -> (f64, StatsSnapshot, TraceSummary) {
    traced(cfg, p, move |loc| {
        let l: PList<u64> = PList::new(loc);
        for i in 0..per {
            l.push_anywhere((loc.id() * per + i) as u64);
        }
        l.commit();
        let n = per * loc.nlocs();
        let (secs, delta) = timed_scoped(loc, || {
            if loc.id() == 0 {
                let (mut sum, mut count) = (0u64, 0usize);
                if segmented {
                    for sid in l.segments() {
                        for (_, v) in l.get_segment(sid) {
                            sum += v;
                            count += 1;
                        }
                    }
                } else {
                    let mut cur = l.front_gid();
                    while let Some(g) = cur {
                        sum += l.try_get(g).expect("live element");
                        count += 1;
                        cur = l.next_gid(g);
                    }
                }
                assert_eq!(count, n, "traversal must visit every element");
                assert_eq!(sum, (n as u64 - 1) * n as u64 / 2, "traversal corrupted");
            }
        });
        (secs, delta)
    })
}

/// `p_copy` between twin pLists after every destination slab migrated one
/// location over (every write remote, stale owner hints self-heal).
fn dynamic_copy_migrated(p: usize, per: usize, segmented: bool) -> (f64, StatsSnapshot, TraceSummary) {
    traced(RtsConfig::base(), p, move |loc| {
        let src: PList<u64> = PList::new(loc);
        let dst: PList<u64> = PList::new(loc);
        for i in 0..per {
            src.push_anywhere((loc.id() * per + i) as u64);
            dst.push_anywhere(0);
        }
        src.commit();
        dst.commit();
        if loc.id() == 0 {
            for sid in 0..loc.nlocs() {
                dst.migrate_bcontainer(sid, (sid + 1) % loc.nlocs());
            }
        }
        let (secs, delta) = timed_scoped(loc, || {
            if segmented {
                p_copy_segmented(&src, &dst);
            } else {
                p_copy_elementwise(&src, &dst);
            }
        });
        assert!(p_equal_segmented(&src, &dst), "copy corrupted");
        (secs, delta)
    })
}

/// MapReduce word count over a `MapView` of per-location documents:
/// bucket-grained local-combine shuffle vs the per-pair shuffle.
fn dynamic_wordcount(p: usize, words_per_loc: usize, chunked: bool) -> (f64, StatsSnapshot, TraceSummary) {
    traced(RtsConfig::base(), p, move |loc| {
        let docs: PHashMap<u64, String> = PHashMap::new(loc);
        let text = synthetic_corpus(loc, words_per_loc, 300, BENCH_SEED);
        docs.insert_async(loc.id() as u64, text.clone());
        docs.commit();
        let texts: Vec<String> = loc.allgather(text);
        let counts: PHashMap<String, u64> = PHashMap::new(loc);
        let (secs, delta) = timed_scoped(loc, || {
            if chunked {
                word_count_kv(&MapView::new(docs.clone()), &counts);
            } else {
                let mine = &texts[loc.id()];
                map_reduce(
                    &counts,
                    mine.split_whitespace(),
                    |w, emit| emit(w.to_string(), 1),
                    0,
                    |acc, v| *acc += v,
                );
            }
        });
        // Distinct-word count must match a sequential model of the corpus.
        let mut distinct: Vec<&str> =
            texts.iter().flat_map(|t| t.split_whitespace()).collect();
        distinct.sort_unstable();
        distinct.dedup();
        assert_eq!(counts.global_size(), distinct.len(), "distinct-word count diverged");
        (secs, delta)
    })
}

/// The data-collecting paths: `collect_ordered` one-sided gather (O(N) on
/// the wire) and the opt-in `collect_ordered_bcast` (O(N·P)); the
/// `gather_items` counter is the bytes-on-the-wire proxy.
fn dynamic_collect(p: usize, per: usize, bcast: bool) -> (f64, StatsSnapshot, TraceSummary) {
    traced(RtsConfig::base(), p, move |loc| {
        let m: PHashMap<u64, u64> = PHashMap::new(loc);
        for i in 0..per {
            let k = (loc.id() * per + i) as u64;
            m.insert_async(k, k * 2);
        }
        m.commit();
        let n = per * loc.nlocs();
        let (secs, delta) = timed_scoped(loc, || {
            if bcast {
                let all = m.collect_ordered_bcast();
                assert_eq!(all.len(), n);
            } else if loc.id() == 0 {
                let all = m.collect_ordered();
                assert_eq!(all.len(), n);
            }
        });
        (secs, delta)
    })
}

fn dynamic_area(tier: Tier) -> Vec<BenchRecord> {
    let per = 200usize;
    let words = 800usize;
    let mut records = Vec::new();
    let mut push =
        |id: String, knobs: Vec<(&'static str, String)>, r: (f64, StatsSnapshot, TraceSummary)| {
            records.push(BenchRecord {
                id,
                knobs,
                wall_s: r.0,
                gated: DYNAMIC_GATED.to_vec(),
                counters: r.1,
                trace: r.2,
            });
        };
    for segmented in [true, false] {
        let mode = if segmented { "segmented" } else { "element-wise" };
        push(
            format!("plist-traversal/p4/per{per}/{mode}"),
            vec![knob("p", 4), knob("per_loc", per), knob("mode", mode)],
            dynamic_traversal(4, per, segmented, RtsConfig::base()),
        );
    }
    for chunked in [true, false] {
        let mode = if chunked { "chunked-kv" } else { "per-pair" };
        push(
            format!("word-count/p4/words{words}/{mode}"),
            vec![knob("p", 4), knob("words_per_loc", words), knob("mode", mode)],
            dynamic_wordcount(4, words, chunked),
        );
    }
    for bcast in [false, true] {
        let mode = if bcast { "bcast" } else { "gather" };
        push(
            format!("collect-ordered/p4/per{per}/{mode}"),
            vec![knob("p", 4), knob("per_loc", per), knob("mode", mode)],
            dynamic_collect(4, per, bcast),
        );
    }
    if tier >= Tier::Lite {
        for segmented in [true, false] {
            let mode = if segmented { "segmented" } else { "element-wise" };
            push(
                format!("plist-copy-migrated/p4/per{per}/{mode}"),
                vec![knob("p", 4), knob("per_loc", per), knob("mode", mode)],
                dynamic_copy_migrated(4, per, segmented),
            );
            push(
                format!("plist-traversal/p2/per{per}/{mode}"),
                vec![knob("p", 2), knob("per_loc", per), knob("mode", mode)],
                dynamic_traversal(2, per, segmented, RtsConfig::base()),
            );
        }
    }
    if tier >= Tier::Full {
        for segmented in [true, false] {
            let mode = if segmented { "segmented" } else { "element-wise" };
            push(
                format!("plist-traversal/p8/per2000/{mode}"),
                vec![knob("p", 8), knob("per_loc", 2000), knob("mode", mode)],
                dynamic_traversal(8, 2000, segmented, RtsConfig::base()),
            );
        }
        for chunked in [true, false] {
            let mode = if chunked { "chunked-kv" } else { "per-pair" };
            push(
                format!("word-count/p8/words8000/{mode}"),
                vec![knob("p", 8), knob("words_per_loc", 8000), knob("mode", mode)],
                dynamic_wordcount(8, 8000, chunked),
            );
        }
    }
    records
}

// ---------------------------------------------------------------------
// Area: executor (PR 2 — PARAGRAPH task-graph executor)
// ---------------------------------------------------------------------

/// Only the task count is deterministic: how many tasks get *stolen* (and
/// the steal-probe RMI traffic with them) depends on thread timing, so
/// those counters ship in the record but are never gated.
const EXECUTOR_GATED: &[&str] = &["tasks_executed"];

#[derive(Clone, Copy, PartialEq, Eq)]
enum ExecutorMode {
    Spmd,
    NoSteal,
    Steal,
}

impl ExecutorMode {
    fn label(self) -> &'static str {
        match self {
            ExecutorMode::Spmd => "spmd",
            ExecutorMode::NoSteal => "executor",
            ExecutorMode::Steal => "executor-steal",
        }
    }
}

/// `p_generate` of `dst[k] = k` with a simulated per-element service time:
/// `light_us` µs except the last quarter of the index space at `heavy_us`
/// µs (the PR 2 skewed scenario). Kick-tires runs it at zero sleep — the
/// scheduling overhead and task accounting are the signal, and the record
/// stays sub-millisecond.
fn executor_generate(
    p: usize,
    n: usize,
    light_us: u64,
    heavy_us: u64,
    mode: ExecutorMode,
) -> (f64, StatsSnapshot, TraceSummary) {
    traced(RtsConfig::base(), p, move |loc| {
        let a = PArray::new(loc, n, 0u64);
        let v = ArrayView::new(a.clone());
        let gen = move |k: usize| {
            let us = if k >= n - n / 4 { heavy_us } else { light_us };
            if us > 0 {
                std::thread::sleep(std::time::Duration::from_micros(us));
            }
            k as u64
        };
        let (secs, delta) = timed_scoped(loc, || match mode {
            ExecutorMode::Spmd => p_generate_view(&v, gen),
            ExecutorMode::NoSteal => p_generate_pg(&v, ExecPolicy::no_stealing(), gen),
            ExecutorMode::Steal => p_generate_pg(&v, ExecPolicy::default(), gen),
        });
        for i in (0..n).step_by((n / 16).max(1)) {
            assert_eq!(a.get_element(i), i as u64, "mode {} corrupted {i}", mode.label());
        }
        (secs, delta)
    })
}

fn executor_area(tier: Tier) -> Vec<BenchRecord> {
    // (p, n, light_us, heavy_us, workload label)
    let mut specs: Vec<(usize, usize, u64, u64, &'static str, ExecutorMode)> = Vec::new();
    for mode in [ExecutorMode::Spmd, ExecutorMode::NoSteal, ExecutorMode::Steal] {
        specs.push((4, 128, 0, 0, "uniform-0us", mode));
    }
    if tier >= Tier::Lite {
        for mode in [ExecutorMode::Spmd, ExecutorMode::Steal] {
            specs.push((4, 256, 50, 800, "skewed-16x", mode));
        }
    }
    if tier >= Tier::Full {
        for mode in [ExecutorMode::Spmd, ExecutorMode::NoSteal, ExecutorMode::Steal] {
            specs.push((4, 1024, 50, 800, "skewed-16x-large", mode));
            specs.push((8, 512, 50, 50, "uniform-50us", mode));
        }
    }
    specs
        .into_iter()
        .map(|(p, n, light, heavy, workload, mode)| {
            let (wall_s, counters, trace) = executor_generate(p, n, light, heavy, mode);
            BenchRecord {
                id: format!("generate/{workload}/p{p}/n{n}/{}", mode.label()),
                knobs: vec![
                    knob("p", p),
                    knob("n", n),
                    knob("workload", workload),
                    knob("light_us", light),
                    knob("heavy_us", heavy),
                    knob("mode", mode.label()),
                ],
                wall_s,
                gated: EXECUTOR_GATED.to_vec(),
                counters,
                trace,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Area: transport (PR 8 — pluggable serialized wire backend)
// ---------------------------------------------------------------------

/// Under the serialized backend every remote request is encoded as a wire
/// frame, so `bytes_sent` and `messages_serialized` are real traffic
/// counters: frame size is the 13-byte header (kind + handler + length +
/// CRC32) plus `size_of` the request capture, and the request mix is
/// seeded, so both are deterministic and
/// gateable. A capture that grows — or a path that quietly falls back
/// from bulk frames to per-element ones — moves `bytes_sent` and fires
/// the gate. `serialize_ns` is wall-clock and is never gated; neither are
/// batch/flush counts (timing-dependent).
///
/// Caveat on magnitudes: relocation is a shallow byte copy, so a `Vec`
/// inside a bulk capture is charged as its 24-byte handle, not its heap
/// payload. The bulk-vs-element-wise ratios below are driven by the
/// O(runs)-vs-O(N) *frame count*, which holds either way.
const TRANSPORT_GATED: &[&str] = &[
    "remote_requests",
    "messages_serialized",
    "bytes_sent",
    "bulk_requests",
    "segment_requests",
];

fn transport_area(tier: Tier) -> Vec<BenchRecord> {
    let n = 4096usize;
    let per = 200usize;
    // Same aggregation/bulk knobs as the localization area's default cell,
    // with the transport swapped out from under the containers.
    let wire = || RtsConfig {
        transport: TransportKind::Serialized,
        aggregation: 16,
        bulk_threshold: 2,
        ..RtsConfig::base()
    };
    let closure = || RtsConfig { aggregation: 16, bulk_threshold: 2, ..RtsConfig::base() };
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut push = |id: String,
                    backend: &'static str,
                    knobs: Vec<(&'static str, String)>,
                    r: (f64, StatsSnapshot, TraceSummary)| {
        let mut all = vec![knob("backend", backend)];
        all.extend(knobs);
        records.push(BenchRecord {
            id,
            knobs: all,
            wall_s: r.0,
            gated: TRANSPORT_GATED.to_vec(),
            counters: r.1,
            trace: r.2,
        });
    };

    // Bytes on the wire, element-wise vs bulk-range: misaligned p_copy at
    // P=4 (the paper's bandwidth argument, measured in frame bytes).
    let mut copy_bytes = [0u64; 2]; // [bulk, element-wise]
    for (ix, localized) in [(0usize, true), (1usize, false)] {
        let mode = if localized { "bulk" } else { "element-wise" };
        let r = localization_copy(4, n, "misaligned", localized, wire());
        copy_bytes[ix] = r.1.bytes_sent;
        push(
            format!("wire-copy/misaligned/p4/n{n}/{mode}"),
            "serialized",
            vec![knob("p", 4), knob("n", n), knob("mode", mode)],
            r,
        );
    }
    // The serialized backend's acceptance claim: the bulk-range path puts
    // >= 10x fewer bytes on the wire than element-wise at P=4.
    assert!(
        copy_bytes[0] * 10 <= copy_bytes[1],
        "bulk p_copy must put >= 10x fewer bytes on the wire than element-wise at P=4 \
         (got {} vs {})",
        copy_bytes[0],
        copy_bytes[1]
    );

    // Segment-at-a-time vs per-element GID walk over a pList, on the wire.
    let mut trav_bytes = [0u64; 2]; // [segmented, element-wise]
    for (ix, segmented) in [(0usize, true), (1usize, false)] {
        let mode = if segmented { "segmented" } else { "element-wise" };
        let r = dynamic_traversal(4, per, segmented, wire());
        trav_bytes[ix] = r.1.bytes_sent;
        push(
            format!("wire-plist-traversal/p4/per{per}/{mode}"),
            "serialized",
            vec![knob("p", 4), knob("per_loc", per), knob("mode", mode)],
            r,
        );
    }
    assert!(
        trav_bytes[0] * 10 <= trav_bytes[1],
        "segmented traversal must put >= 10x fewer bytes on the wire than the GID walk \
         at P=4 (got {} vs {})",
        trav_bytes[0],
        trav_bytes[1]
    );

    // Closure-backend control: the same bulk copy ships boxed closures —
    // nothing is serialized, zero bytes on the wire.
    let r = localization_copy(4, n, "misaligned", true, closure());
    assert_eq!(r.1.bytes_sent, 0, "closure backend must not count wire bytes");
    assert_eq!(r.1.messages_serialized, 0, "closure backend must not serialize");
    push(
        format!("wire-copy/misaligned/p4/n{n}/bulk/closure-control"),
        "closure",
        vec![knob("p", 4), knob("n", n), knob("mode", "bulk")],
        r,
    );

    if tier >= Tier::Lite {
        for (localized, mode) in [(true, "bulk"), (false, "element-wise")] {
            let r = localization_copy(4, 40_000, "misaligned", localized, wire());
            push(
                format!("wire-copy/misaligned/p4/n40000/{mode}"),
                "serialized",
                vec![knob("p", 4), knob("n", 40_000), knob("mode", mode)],
                r,
            );
        }
        for (segmented, mode) in [(true, "segmented"), (false, "element-wise")] {
            let r = dynamic_traversal(2, per, segmented, wire());
            push(
                format!("wire-plist-traversal/p2/per{per}/{mode}"),
                "serialized",
                vec![knob("p", 2), knob("per_loc", per), knob("mode", mode)],
                r,
            );
        }
    }
    if tier >= Tier::Full {
        for (localized, mode) in [(true, "bulk"), (false, "element-wise")] {
            let r = localization_copy(8, 160_000, "misaligned", localized, wire());
            push(
                format!("wire-copy/misaligned/p8/n160000/{mode}"),
                "serialized",
                vec![knob("p", 8), knob("n", 160_000), knob("mode", mode)],
                r,
            );
        }
    }
    records
}

// ---------------------------------------------------------------------
// Area: chaos (PR 9 — fault injection + reliable delivery)
// ---------------------------------------------------------------------

/// Recovery-cost counters of the reliable transport under a *fixed seeded
/// fault schedule*: at `aggregation = 1` every request is its own batch,
/// batch sequence numbers are assigned in program order, and the
/// injector's drop/dup/reorder/corrupt draws are a pure function of
/// (seed, src, dest, seq) — so the counters are deterministic and
/// gateable. Upward drift means recovery got less efficient (e.g. a
/// protocol change started redriving batches that were not lost).
/// `poisoned_responses` gates at zero: no handler in the storm panics.
/// The retransmission timer is set generously (25 ms) so redrives answer
/// injected loss, not scheduler hiccups; residual timing noise is inside
/// the compare gate's tolerance.
const CHAOS_GATED: &[&str] = &[
    "remote_requests",
    "frames_dropped",
    "retransmits",
    "checksum_failures",
    "acks_sent",
    "poisoned_responses",
];

/// An all-pairs async-increment storm: `k` requests per peer per round,
/// `rounds` fenced rounds. Verifies the final per-location sum on every
/// location — zero divergence under the fault schedule is part of every
/// record, not a separate test.
fn chaos_storm(p: usize, k: u64, rounds: u64, cfg: RtsConfig) -> (f64, StatsSnapshot, TraceSummary) {
    traced(cfg, p, move |loc| {
        let (h, rep) = loc.register(std::cell::RefCell::new(0u64));
        loc.rmi_fence();
        let (secs, delta) = timed_scoped(loc, || {
            for round in 1..=rounds {
                for dest in 0..loc.nlocs() {
                    if dest != loc.id() {
                        for j in 1..=k {
                            let add = round * j;
                            loc.async_rmi(dest, h, move |c: &std::cell::RefCell<u64>, _| {
                                *c.borrow_mut() += add;
                            });
                        }
                    }
                }
                loc.rmi_fence();
            }
        });
        let per_src: u64 = (1..=rounds).map(|r| (1..=k).map(|j| r * j).sum::<u64>()).sum();
        assert_eq!(
            *rep.borrow(),
            per_src * (loc.nlocs() as u64 - 1),
            "chaos storm diverged on location {} — the fault schedule leaked through \
             the reliability layer",
            loc.id()
        );
        (secs, delta)
    })
}

fn chaos_area(tier: Tier) -> Vec<BenchRecord> {
    let cfg_for = |profile: &str| {
        let mut cfg = RtsConfig { transport: TransportKind::Serialized, ..RtsConfig::base() };
        cfg.aggregation = 1; // one batch per request: seeded draws are program-order stable
        cfg.retransmit_rto_us = 25_000;
        cfg.faults = FaultSchedule::parse(profile).expect("bundled profile parses");
        cfg.fault_seed = BENCH_SEED;
        cfg
    };
    let (p, k, rounds) = (4usize, 5u64, 4u64);
    let mut records: Vec<BenchRecord> = Vec::new();
    let mut push = |id: String,
                    profile: &'static str,
                    p: usize,
                    r: (f64, StatsSnapshot, TraceSummary)| {
        records.push(BenchRecord {
            id,
            knobs: vec![
                knob("profile", if profile.is_empty() { "none" } else { profile }),
                knob("p", p),
                knob("k", k),
                knob("rounds", rounds),
                knob("aggregation", 1),
                knob("rto_us", 25_000),
            ],
            wall_s: r.0,
            gated: CHAOS_GATED.to_vec(),
            counters: r.1,
            trace: r.2,
        });
    };

    // Lossless control: the reliability machinery must be free when the
    // fabric is clean — any nonzero recovery counter is a protocol bug
    // (e.g. the retransmission timer firing on acknowledged batches).
    let r = chaos_storm(p, k, rounds, cfg_for(""));
    let d = &r.1;
    assert_eq!(d.frames_dropped, 0, "clean fabric must drop nothing");
    assert_eq!(d.retransmits, 0, "clean fabric must not redrive");
    assert_eq!(d.checksum_failures, 0, "clean fabric must not reject");
    push(format!("storm/clean/p{p}"), "", p, r);

    // Total loss: every first transmission is dropped, so every batch is
    // recovered by exactly one redrive — drops and retransmits both equal
    // the request count (one request per batch at aggregation 1).
    let r = chaos_storm(p, k, rounds, cfg_for("drop:1.0"));
    let d = &r.1;
    assert!(d.frames_dropped >= d.remote_requests, "every batch must be dropped once");
    assert!(d.retransmits >= d.remote_requests, "every dropped batch must be redriven");
    assert_eq!(d.checksum_failures, 0, "drops are not corruption");
    push(format!("storm/drop-all/p{p}"), "drop:1.0", p, r);

    // Total corruption: every first transmission has one bit flipped, is
    // rejected by its CRC (never executed), and is redriven.
    let r = chaos_storm(p, k, rounds, cfg_for("corrupt:1.0"));
    let d = &r.1;
    assert!(d.checksum_failures >= d.remote_requests, "every batch must be rejected once");
    assert!(d.retransmits >= d.remote_requests, "every rejected batch must be redriven");
    push(format!("storm/corrupt-all/p{p}"), "corrupt:1.0", p, r);

    // Mixed profile: the realistic soak point — all five fault kinds at
    // once, with the retransmit overhead bounded relative to the injected
    // damage (redrives answer losses, they don't multiply).
    let mixed = "drop:0.2,dup:0.1,reorder:0.2,corrupt:0.1,delay_us:5";
    let r = chaos_storm(p, k, rounds, cfg_for(mixed));
    let d = &r.1;
    assert!(d.frames_dropped > 0 && d.retransmits > 0 && d.checksum_failures > 0);
    assert!(
        d.retransmits <= 4 * (d.frames_dropped + d.checksum_failures) + 16,
        "retransmit overhead unbounded: {} redrives for {} drops + {} rejections",
        d.retransmits,
        d.frames_dropped,
        d.checksum_failures
    );
    push(format!("storm/mixed/p{p}"), mixed, p, r);

    if tier >= Tier::Lite {
        let r = chaos_storm(2, k, rounds, cfg_for(mixed));
        push("storm/mixed/p2".to_string(), mixed, 2, r);
        let severe = "drop:0.4,dup:0.2,reorder:0.2,corrupt:0.2";
        let r = chaos_storm(p, k, rounds, cfg_for(severe));
        push(format!("storm/severe/p{p}"), severe, p, r);
    }
    if tier >= Tier::Full {
        let r = chaos_storm(8, k, rounds, cfg_for(mixed));
        push("storm/mixed/p8".to_string(), mixed, 8, r);
    }
    records
}

// ---------------------------------------------------------------------
// Driver + serialization
// ---------------------------------------------------------------------

/// Runs every scenario of `area` at `tier`. Returns `None` for an unknown
/// area name (callers print [`AREAS`]).
pub fn run_area(area: &str, tier: Tier) -> Option<AreaReport> {
    let records = match area {
        "localization" => localization_area(tier),
        "directory" => directory_area(tier),
        "dynamic" => dynamic_area(tier),
        "executor" => executor_area(tier),
        "transport" => transport_area(tier),
        "chaos" => chaos_area(tier),
        _ => return None,
    };
    let area = AREAS.iter().find(|a| **a == area).expect("known area");
    Some(AreaReport { area, tier, records })
}

impl AreaReport {
    /// Serializes the report as the `BENCH_<area>.json` schema: pretty
    /// enough for line-oriented git diffs (one counter per line), strict
    /// enough for [`Json::parse`].
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"schema\": {},\n", SCHEMA_VERSION));
        s.push_str(&format!("  \"area\": \"{}\",\n", escape(self.area)));
        s.push_str(&format!("  \"tier\": \"{}\",\n", self.tier.name()));
        s.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            s.push_str("    {\n");
            s.push_str(&format!("      \"id\": \"{}\",\n", escape(&r.id)));
            s.push_str("      \"knobs\": {");
            for (j, (k, v)) in r.knobs.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{}\": \"{}\"", escape(k), escape(v)));
            }
            s.push_str("},\n");
            s.push_str(&format!("      \"wall_s\": {},\n", fmt_f64(r.wall_s)));
            s.push_str("      \"gated\": [");
            for (j, g) in r.gated.iter().enumerate() {
                if j > 0 {
                    s.push_str(", ");
                }
                s.push_str(&format!("\"{g}\""));
            }
            s.push_str("],\n");
            s.push_str("      \"counters\": {\n");
            let counters = r.counters.counters();
            for (j, (name, v)) in counters.iter().enumerate() {
                let comma = if j + 1 < counters.len() { "," } else { "" };
                s.push_str(&format!("        \"{name}\": {v}{comma}\n"));
            }
            s.push_str("      },\n");
            s.push_str("      \"derived\": {\n");
            let derived = [
                ("aggregation_ratio", r.counters.aggregation_ratio()),
                ("steal_fraction", r.counters.steal_fraction()),
                ("dir_cache_hit_rate", r.counters.dir_cache_hit_rate()),
                ("localization_rate", r.counters.localization_rate()),
                ("remote_fraction", r.counters.remote_fraction()),
                ("bytes_per_message", r.counters.bytes_per_message()),
            ];
            for (j, (name, v)) in derived.iter().enumerate() {
                let comma = if j + 1 < derived.len() { "," } else { "" };
                s.push_str(&format!("        \"{name}\": {}{comma}\n", fmt_f64(*v)));
            }
            s.push_str("      },\n");
            // Advisory observability block (rts::trace): event counts are
            // deterministic for the gated kinds; histogram durations are
            // wall-clock-like and must never be gated or diffed strictly.
            s.push_str("      \"trace\": {\n");
            s.push_str(&format!("        \"dropped\": {},\n", r.trace.dropped));
            s.push_str("        \"events\": {\n");
            let events = r.trace.event_counts();
            for (j, (name, v)) in events.iter().enumerate() {
                let comma = if j + 1 < events.len() { "," } else { "" };
                s.push_str(&format!("          \"{name}\": {v}{comma}\n"));
            }
            s.push_str("        },\n");
            s.push_str("        \"histograms\": {\n");
            let hists = r.trace.histograms();
            for (j, (name, h)) in hists.iter().enumerate() {
                let comma = if j + 1 < hists.len() { "," } else { "" };
                s.push_str(&format!(
                    "          \"{name}\": {{\"count\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \
                     \"p99_ns\": {}, \"max_ns\": {}}}{comma}\n",
                    h.count(),
                    h.p50(),
                    h.p90(),
                    h.p99(),
                    h.max_ns()
                ));
            }
            s.push_str("        }\n");
            s.push_str("      }\n");
            s.push_str(if i + 1 < self.records.len() { "    },\n" } else { "    }\n" });
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// The `BENCH_<area>.json` file name for this report.
    pub fn file_name(&self) -> String {
        format!("BENCH_{}.json", self.area)
    }

    /// Writes the report into `dir` (created if missing); returns the path.
    pub fn write_to(&self, dir: &std::path::Path) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// A `BENCH_*.json` file read back for comparison (schema-tolerant: any
/// counter name is accepted, so old binaries can diff newer files).
#[derive(Debug)]
pub struct ParsedArea {
    pub schema: u64,
    pub area: String,
    pub tier: String,
    pub records: Vec<ParsedRecord>,
}

#[derive(Debug)]
pub struct ParsedRecord {
    pub id: String,
    pub wall_s: f64,
    pub gated: Vec<String>,
    pub counters: std::collections::BTreeMap<String, u64>,
    /// Event counts from the advisory `"trace"` block; empty when the
    /// file predates tracing. Never gated — kept for inspection only.
    pub trace_events: std::collections::BTreeMap<String, u64>,
}

impl ParsedArea {
    pub fn parse(text: &str) -> Result<ParsedArea, String> {
        let v = Json::parse(text)?;
        let schema = v
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("missing \"schema\"")?;
        if schema != SCHEMA_VERSION {
            return Err(format!("schema {schema} != supported {SCHEMA_VERSION}"));
        }
        let area = v.get("area").and_then(Json::as_str).ok_or("missing \"area\"")?.to_string();
        let tier = v.get("tier").and_then(Json::as_str).unwrap_or("unknown").to_string();
        let mut records = Vec::new();
        for r in v.get("records").and_then(Json::as_arr).ok_or("missing \"records\"")? {
            let id = r.get("id").and_then(Json::as_str).ok_or("record missing \"id\"")?;
            let wall_s = r.get("wall_s").and_then(Json::as_f64).unwrap_or(0.0);
            let gated = r
                .get("gated")
                .and_then(Json::as_arr)
                .map(|a| a.iter().filter_map(|g| g.as_str().map(String::from)).collect())
                .unwrap_or_default();
            let mut counters = std::collections::BTreeMap::new();
            if let Some(obj) = r.get("counters").and_then(Json::as_obj) {
                for (k, v) in obj {
                    counters.insert(
                        k.clone(),
                        v.as_u64().ok_or_else(|| format!("counter {k} not a u64 in {id}"))?,
                    );
                }
            }
            let mut trace_events = std::collections::BTreeMap::new();
            if let Some(obj) =
                r.get("trace").and_then(|t| t.get("events")).and_then(Json::as_obj)
            {
                for (k, v) in obj {
                    if let Some(n) = v.as_u64() {
                        trace_events.insert(k.clone(), n);
                    }
                }
            }
            records.push(ParsedRecord { id: id.to_string(), wall_s, gated, counters, trace_events });
        }
        Ok(ParsedArea { schema, area, tier, records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiers_parse_and_order() {
        assert_eq!(Tier::parse("kick-tires"), Some(Tier::KickTires));
        assert_eq!(Tier::parse("lite"), Some(Tier::Lite));
        assert_eq!(Tier::parse("full"), Some(Tier::Full));
        assert_eq!(Tier::parse("huge"), None);
        assert!(Tier::KickTires < Tier::Lite && Tier::Lite < Tier::Full);
        assert_eq!(Tier::KickTires.name(), "kick-tires");
    }

    #[test]
    fn unknown_area_is_none() {
        assert!(run_area("no-such-area", Tier::KickTires).is_none());
    }

    #[test]
    fn report_json_round_trips() {
        let report = AreaReport {
            area: "localization",
            tier: Tier::KickTires,
            records: vec![BenchRecord {
                id: "copy/misaligned/p4".into(),
                knobs: vec![("p", "4".into()), ("mode", "localized".into())],
                wall_s: 1.25e-4,
                gated: vec!["remote_requests"],
                counters: StatsSnapshot {
                    remote_requests: 4,
                    bulk_requests: 3,
                    ..Default::default()
                },
                trace: TraceSummary::default(),
            }],
        };
        let text = report.to_json();
        let parsed = ParsedArea::parse(&text).unwrap();
        assert_eq!(parsed.area, "localization");
        assert_eq!(parsed.tier, "kick-tires");
        assert_eq!(parsed.records.len(), 1);
        let r = &parsed.records[0];
        assert_eq!(r.id, "copy/misaligned/p4");
        assert_eq!(r.wall_s, 1.25e-4);
        assert_eq!(r.gated, vec!["remote_requests".to_string()]);
        assert_eq!(r.counters["remote_requests"], 4);
        assert_eq!(r.counters["bulk_requests"], 3);
        assert_eq!(r.counters["local_invocations"], 0);
        // The advisory trace block round-trips: every kind serialized,
        // parsed back as plain (name, count) pairs.
        assert_eq!(r.trace_events.len(), stapl_rts::KIND_COUNT);
        assert_eq!(r.trace_events["rmi_send"], 0);
        assert_eq!(r.trace_events["task_run"], 0);
    }

    #[test]
    fn parse_rejects_other_schemas() {
        let err = ParsedArea::parse("{\"schema\": 99, \"area\": \"x\", \"records\": []}")
            .unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(ParsedArea::parse("{}").is_err());
        assert!(ParsedArea::parse("not json").is_err());
    }
}
