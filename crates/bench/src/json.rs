//! Minimal JSON reader/writer for the `BENCH_*.json` trajectory files.
//!
//! The workspace builds with no registry access (vendor/README.md), so
//! instead of serde this module hand-rolls the small subset the benchmark
//! schema needs: objects, arrays, strings, numbers, booleans, and null.
//! The writer only emits what the parser accepts, so harness output always
//! round-trips through `bench-compare`.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Objects use a `BTreeMap` so emission order (and
/// therefore checked-in baseline diffs) is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer view of a number; exact only while the value fits in f64's
    /// 53-bit mantissa, which every counter the harness emits does.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// `obj[key]` for object values; `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj()?.get(key)
    }
}

/// Escapes a string for embedding in JSON output.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float so it parses back to the same value (Rust's shortest
/// round-trip `Display`); non-finite values degrade to 0, which JSON
/// cannot represent anyway.
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    let s = format!("{v}");
    s
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{}", fmt_f64(*n)),
            Json::Str(s) => write!(f, "\"{}\"", escape(s)),
            Json::Arr(a) => {
                write!(f, "[")?;
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(o) => {
                write!(f, "{{")?;
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "\"{}\":{}", escape(k), v)?;
                }
                write!(f, "}}")
            }
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c.is_ascii() => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 scalar: decode from a 4-byte window
                    // (validating the whole tail here would make parsing
                    // quadratic in the document size).
                    let end = (self.pos + 4).min(self.bytes.len());
                    let window = &self.bytes[self.pos..end];
                    let valid = match std::str::from_utf8(window) {
                        Ok(s) => s,
                        Err(e) if e.valid_up_to() > 0 => {
                            std::str::from_utf8(&window[..e.valid_up_to()]).unwrap()
                        }
                        Err(_) => return Err("invalid utf-8 in string".into()),
                    };
                    let c = valid.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" false ").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap(), Json::Num(42.0));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(Json::parse("\"hi\\n\"").unwrap(), Json::Str("hi\n".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = Json::parse(r#"{"a": [1, {"b": "x"}, null], "c": true}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Json::Bool(true)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(arr[2], Json::Null);
    }

    #[test]
    fn rejects_malformed() {
        for bad in ["", "{", "[1,", "{\"a\":}", "nul", "1 2", "{'a':1}", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn display_round_trips() {
        let src = r#"{"area":"dir","records":[{"id":"a/b","wall_s":0.000123,"counters":{"remote_requests":42},"ok":true,"note":null}]}"#;
        let v = Json::parse(src).unwrap();
        let emitted = v.to_string();
        assert_eq!(Json::parse(&emitted).unwrap(), v);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for f in [0.1, 1e-9, 123456.789, 2f64.powi(53), 5.7e-3] {
            let s = fmt_f64(f);
            assert_eq!(s.parse::<f64>().unwrap(), f, "{f} via {s}");
        }
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }

    #[test]
    fn u64_view_guards_precision() {
        assert_eq!(Json::Num(7.0).as_u64(), Some(7));
        assert_eq!(Json::Num(7.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(2f64.powi(60)).as_u64(), None, "beyond exact range");
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        let v = Json::Str("quote \" slash \\ tab \t".into());
        assert_eq!(Json::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn unicode_passes_through() {
        let v = Json::parse("\"héllo → wörld\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo → wörld"));
        assert_eq!(Json::parse("\"\\u0041\"").unwrap().as_str(), Some("A"));
    }
}
