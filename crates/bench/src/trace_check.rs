//! Structural validator for Chrome trace-event JSON emitted by
//! [`stapl_rts::RunTrace::to_chrome_json`] (and merged multi-run files
//! from `experiments --trace`).
//!
//! The checks mirror what `chrome://tracing` / Perfetto actually require
//! to render a timeline instead of an empty page:
//!
//! * the document is a JSON **array** of event objects;
//! * every event has a string `"name"`, a `"ph"` drawn from the phases we
//!   emit (`B`/`E`/`i`/`M`/`X`), and numeric `"ts"`, `"pid"`, `"tid"`
//!   (metadata `M` events are exempt from `ts`);
//! * within each `(pid, tid)` lane, `B`/`E` duration events pair up like
//!   brackets — every `E` closes the innermost open `B` **of the same
//!   name**, and no lane ends with an unclosed span;
//! * timestamps within a lane are monotonically non-decreasing (the rts
//!   serializer sorts before emitting; a violation means a merge bug).
//!
//! Used by the `--validate-trace` subcommand of `experiments` and the
//! `trace-smoke` CI step, so a schema regression fails the build rather
//! than a later by-hand Perfetto load.

use crate::json::Json;

/// Aggregate facts about a validated trace, for smoke-test assertions.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct TraceCheck {
    /// Total events, including metadata.
    pub events: usize,
    /// Matched `B`/`E` span pairs.
    pub spans: usize,
    /// Instant (`i`) events.
    pub instants: usize,
    /// Distinct `(pid, tid)` lanes carrying non-metadata events.
    pub lanes: usize,
}

/// Validates `text` as Chrome trace-event JSON; returns counts on success
/// and the first structural violation (with event index) on failure.
pub fn validate_chrome_trace(text: &str) -> Result<TraceCheck, String> {
    let doc = Json::parse(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = doc.as_arr().ok_or("top level is not a JSON array")?;
    let mut check = TraceCheck { events: events.len(), ..TraceCheck::default() };
    // Per-(pid, tid) lane state: open-span name stack + last timestamp.
    let mut lanes: std::collections::BTreeMap<(u64, u64), (Vec<String>, f64)> =
        std::collections::BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let obj = ev.as_obj().ok_or_else(|| format!("event {i}: not an object"))?;
        let name = obj
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string \"name\""))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i} ({name}): missing string \"ph\""))?;
        let pid = obj
            .get("pid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric \"pid\""))?;
        let tid = obj
            .get("tid")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric \"tid\""))?;
        if ph == "M" {
            continue; // metadata: no ts, never enters a lane
        }
        let ts = obj
            .get("ts")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("event {i} ({name}): missing numeric \"ts\""))?;
        let lane = lanes.entry((pid, tid)).or_insert_with(|| (Vec::new(), f64::NEG_INFINITY));
        if ts < lane.1 {
            return Err(format!(
                "event {i} ({name}): ts {ts} decreases within lane pid={pid} tid={tid}"
            ));
        }
        lane.1 = ts;
        match ph {
            "B" => lane.0.push(name.to_string()),
            "E" => {
                let open = lane.0.pop().ok_or_else(|| {
                    format!("event {i} ({name}): E with no open B in lane pid={pid} tid={tid}")
                })?;
                if open != name {
                    return Err(format!(
                        "event {i}: E \"{name}\" closes B \"{open}\" in lane pid={pid} tid={tid}"
                    ));
                }
                check.spans += 1;
            }
            "i" => check.instants += 1,
            "X" => {} // complete events carry their own dur; nothing to pair
            other => {
                return Err(format!("event {i} ({name}): unsupported phase \"{other}\""));
            }
        }
    }
    for ((pid, tid), (stack, _)) in &lanes {
        if let Some(open) = stack.last() {
            return Err(format!("unclosed span \"{open}\" in lane pid={pid} tid={tid}"));
        }
    }
    check.lanes = lanes.len();
    Ok(check)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_well_formed_trace() {
        let text = r#"[
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0,
             "args": {"name": "location 0"}},
            {"name": "fence", "ph": "B", "ts": 1.0, "pid": 1, "tid": 0},
            {"name": "sync_rmi", "ph": "B", "ts": 2.0, "pid": 1, "tid": 0},
            {"name": "rmi_send", "ph": "i", "ts": 2.5, "pid": 1, "tid": 0, "s": "t"},
            {"name": "sync_rmi", "ph": "E", "ts": 3.0, "pid": 1, "tid": 0},
            {"name": "fence", "ph": "E", "ts": 4.0, "pid": 1, "tid": 0}
        ]"#;
        let check = validate_chrome_trace(text).unwrap();
        assert_eq!(check, TraceCheck { events: 6, spans: 2, instants: 1, lanes: 1 });
    }

    #[test]
    fn rejects_mismatched_and_unclosed_spans() {
        let crossed = r#"[
            {"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "E", "ts": 2.0, "pid": 1, "tid": 0}
        ]"#;
        assert!(validate_chrome_trace(crossed).unwrap_err().contains("closes B"));
        let unclosed = r#"[{"name": "a", "ph": "B", "ts": 1.0, "pid": 1, "tid": 0}]"#;
        assert!(validate_chrome_trace(unclosed).unwrap_err().contains("unclosed"));
        let stray = r#"[{"name": "a", "ph": "E", "ts": 1.0, "pid": 1, "tid": 0}]"#;
        assert!(validate_chrome_trace(stray).unwrap_err().contains("no open B"));
    }

    #[test]
    fn rejects_structural_breakage() {
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace(r#"[{"ph": "i"}]"#).unwrap_err().contains("name"));
        assert!(validate_chrome_trace(r#"[{"name": "x", "ph": "i", "pid": 1, "tid": 0}]"#)
            .unwrap_err()
            .contains("ts"));
        assert!(validate_chrome_trace(
            r#"[{"name": "x", "ph": "Q", "ts": 1.0, "pid": 1, "tid": 0}]"#
        )
        .unwrap_err()
        .contains("phase"));
    }

    #[test]
    fn rejects_time_travel_within_a_lane() {
        let text = r#"[
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "i", "ts": 4.0, "pid": 1, "tid": 0}
        ]"#;
        assert!(validate_chrome_trace(text).unwrap_err().contains("decreases"));
        // Different lanes are independent timelines: no ordering constraint.
        let cross = r#"[
            {"name": "a", "ph": "i", "ts": 5.0, "pid": 1, "tid": 0},
            {"name": "b", "ph": "i", "ts": 4.0, "pid": 2, "tid": 0}
        ]"#;
        assert_eq!(validate_chrome_trace(cross).unwrap().lanes, 2);
    }
}
