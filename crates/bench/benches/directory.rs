//! Directory-locality benches: the hot-key workload on a dynamic pGraph
//! swept over owner-cache on/off × RMI aggregation factor, plus the cost
//! of a stale self-heal after vertex migration.
//!
//! See `experiments directory` for the paper-style table with the rts
//! stats (remote requests, hit rate) over a larger instance.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stapl_containers::graph::{Directedness, GraphPartitionKind, PGraph};
use stapl_core::interfaces::PContainer;
use stapl_rts::{execute, RtsConfig};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// Every location hammers a few vertices owned by its neighbor.
fn run_hot_key(dir_cache: bool, aggregation: usize, accesses: usize) {
    let cfg = RtsConfig { dir_cache, aggregation, ..RtsConfig::base() };
    execute(cfg, 4, move |loc| {
        let g: PGraph<u64, ()> =
            PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
        for vd in 0..32 {
            if vd % loc.nlocs() == loc.id() {
                g.add_vertex_with_descriptor(vd, vd as u64);
            }
        }
        g.commit();
        let base = (loc.id() + 1) % loc.nlocs();
        for k in 0..accesses {
            let vd = base + (k % 4) * loc.nlocs();
            std::hint::black_box(g.vertex_property(vd));
        }
        loc.rmi_fence();
    });
}

/// Cache on/off × aggregation sweep on the hot-key scenario.
fn hot_key(c: &mut Criterion) {
    let mut grp = c.benchmark_group("directory_hot_key");
    for aggregation in [1usize, 16, 64] {
        for dir_cache in [true, false] {
            let label = format!(
                "cache_{}/agg{}",
                if dir_cache { "on" } else { "off" },
                aggregation
            );
            grp.bench_function(label.as_str(), |b| {
                b.iter(|| run_hot_key(dir_cache, aggregation, 200))
            });
        }
    }
    grp.finish();
}

/// The price of churn: migrate a vertex, then have every location re-read
/// it — each read after a move takes the stale path (re-forward through
/// the home) exactly once before the cache re-fills.
fn migration_churn(c: &mut Criterion) {
    let mut grp = c.benchmark_group("directory_migration_churn");
    for dir_cache in [true, false] {
        let label = if dir_cache { "cache_on" } else { "cache_off" };
        grp.bench_function(label, |b| {
            b.iter(|| {
                let cfg = RtsConfig { dir_cache, ..RtsConfig::base() };
                execute(cfg, 4, |loc| {
                    let g: PGraph<u64, ()> = PGraph::new_dynamic(
                        loc,
                        Directedness::Directed,
                        GraphPartitionKind::DynamicFwd,
                    );
                    let vd = g.add_vertex(loc.id() as u64);
                    g.commit();
                    let all = loc.allgather(vd);
                    for round in 0..8 {
                        let victim = all[round % all.len()];
                        if loc.id() == 0 {
                            g.migrate_vertex(victim, (round + 1) % loc.nlocs());
                        }
                        loc.rmi_fence();
                        std::hint::black_box(g.vertex_property(victim));
                        loc.rmi_fence();
                    }
                });
            })
        });
    }
    grp.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = hot_key, migration_churn
}
criterion_main!(benches);
