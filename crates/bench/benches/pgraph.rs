//! Criterion benches for the pGraph evaluation: Figs. 49–56 (methods
//! with the SSCA2 workload, partition comparison with and without
//! forwarding, algorithm suite, PageRank meshes).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stapl_algorithms::prelude::*;
use stapl_containers::generators::*;
use stapl_containers::graph::{Directedness, GraphPartitionKind, PGraph};
use stapl_core::interfaces::PContainer;
use stapl_rts::{execute, RtsConfig};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(700))
        .warm_up_time(Duration::from_millis(200))
        .without_plots()
}

fn algo_static(loc: &stapl_rts::Location, n: usize) -> AlgoGraph {
    PGraph::new_static(loc, n, Directedness::Directed, VProps::default())
}

fn algo_dynamic(loc: &stapl_rts::Location, n: usize, kind: GraphPartitionKind) -> AlgoGraph {
    let g: AlgoGraph = PGraph::new_dynamic(loc, Directedness::Directed, kind);
    let per = n.div_ceil(loc.nlocs());
    for vd in loc.id() * per..((loc.id() + 1) * per).min(n) {
        g.add_vertex_with_descriptor(vd, VProps::default());
    }
    g.commit();
    g
}

/// Figs. 49/50: SSCA2 bulk edge insertion, static vs dynamic partitions.
fn fig49_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig49_pgraph_methods");
    let n = 2_000usize;
    let params = Ssca2Params { n, max_clique_size: 8, inter_clique_prob: 0.05, seed: stapl_bench::BENCH_SEED + 42 };
    for (name, kind) in [
        ("static", None),
        ("dyn_fwd", Some(GraphPartitionKind::DynamicFwd)),
        ("dyn_twophase", Some(GraphPartitionKind::DynamicTwoPhase)),
    ] {
        g.bench_function(BenchmarkId::new("ssca2_build", name), |b| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, |loc| {
                    let gr = match kind {
                        None => algo_static(loc, n),
                        Some(k) => algo_dynamic(loc, n, k),
                    };
                    fill_ssca2(loc, &gr, &params, ());
                })
            });
        });
    }
    g.finish();
}

/// Fig. 51: find-sources across resolution strategies.
fn fig51_find_sources(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig51_find_sources");
    let n = 2_000usize;
    for (name, kind) in [
        ("static", None),
        ("dyn_fwd", Some(GraphPartitionKind::DynamicFwd)),
        ("dyn_twophase", Some(GraphPartitionKind::DynamicTwoPhase)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, |loc| {
                    let gr = match kind {
                        None => algo_static(loc, n),
                        Some(k) => algo_dynamic(loc, n, k),
                    };
                    fill_dag_with_sources(loc, &gr, 4, 0.2, 9, ());
                    std::hint::black_box(find_sources(&gr));
                })
            });
        });
    }
    g.finish();
}

/// Fig. 52: partitions compared on a traversal.
fn fig52_partitions(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig52_pgraph_partitions");
    for (name, kind) in [
        ("static", None),
        ("dyn_fwd", Some(GraphPartitionKind::DynamicFwd)),
    ] {
        g.bench_function(BenchmarkId::new("bfs_mesh", name), |b| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, |loc| {
                    let gr = match kind {
                        None => algo_static(loc, 2_000),
                        Some(k) => algo_dynamic(loc, 2_000, k),
                    };
                    fill_mesh(loc, &gr, 20, 100, ());
                    std::hint::black_box(bfs(&gr, 0));
                })
            });
        });
    }
    g.finish();
}

/// Figs. 53–55: the algorithm suite on SSCA2 inputs.
fn fig53_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig53_pgraph_algos");
    let n = 2_000usize;
    let params = Ssca2Params { n, max_clique_size: 6, inter_clique_prob: 0.1, seed: stapl_bench::BENCH_SEED + 5 };
    g.bench_function("bfs", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let gr = algo_static(loc, n);
                fill_ssca2(loc, &gr, &params, ());
                std::hint::black_box(bfs(&gr, 0));
            })
        });
    });
    g.bench_function("connected_components", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let gr = algo_static(loc, n);
                fill_ssca2(loc, &gr, &params, ());
                std::hint::black_box(connected_components(&gr));
            })
        });
    });
    g.bench_function("pagerank_5iters", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let gr = algo_static(loc, n);
                fill_ssca2(loc, &gr, &params, ());
                std::hint::black_box(page_rank(&gr, 5, 0.85));
            })
        });
    });
    g.finish();
}

/// Fig. 56: PageRank, square vs skinny mesh.
fn fig56_pagerank_mesh(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig56_pagerank_mesh");
    for (name, rows, cols) in [("square_50x50", 50usize, 50usize), ("skinny_5x500", 5, 500)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, move |loc| {
                    let gr = algo_static(loc, rows * cols);
                    fill_mesh(loc, &gr, rows, cols, ());
                    std::hint::black_box(page_rank(&gr, 5, 0.85));
                })
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = fig49_methods, fig51_find_sources, fig52_partitions,
              fig53_algorithms, fig56_pagerank_mesh
}
criterion_main!(benches);
