//! Wall-clock cost of the trace layer on the localization kick-tires
//! kernel (misaligned `p_copy`, the heaviest RMI mix in the suite):
//!
//! * `off`  — `RtsConfig::base()`: the single `Option` branch per
//!   would-be event is all that remains; should be indistinguishable
//!   from the pre-trace baseline;
//! * `on`   — same kernel with per-location ring buffers recording.
//!
//! The stats-level half of the claim (zero counter traffic) is asserted
//! by `tests/trace_overhead.rs`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stapl_algorithms::map_func::p_copy;
use stapl_containers::array::PArray;
use stapl_core::mapper::GeneralMapper;
use stapl_core::partition::{BlockedPartition, IndexPartition};
use stapl_rts::{execute, RtsConfig};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

fn run_copy_misaligned(cfg: RtsConfig, n: usize) {
    let p = 4;
    execute(cfg, p, move |loc| {
        let nlocs = loc.nlocs();
        let src = PArray::from_fn(loc, n, |i| i as u64);
        let part = BlockedPartition::new(n, n / nlocs + 17);
        let parts = IndexPartition::num_subdomains(&part);
        let dst = PArray::with_partition(
            loc,
            Box::new(part),
            Box::new(GeneralMapper::new(nlocs, (0..parts).map(|b| (b + 1) % nlocs).collect())),
            0u64,
        );
        p_copy(&src, &dst);
    });
}

fn trace_overhead(c: &mut Criterion) {
    let n = 4096;
    let mut grp = c.benchmark_group("trace_overhead_copy_misaligned");
    grp.bench_function("off", |b| b.iter(|| run_copy_misaligned(RtsConfig::base(), n)));
    grp.bench_function("on", |b| {
        b.iter(|| run_copy_misaligned(RtsConfig { trace: true, ..RtsConfig::base() }, n))
    });
    grp.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = trace_overhead
}
criterion_main!(benches);
