//! Localization + bulk-transport benches: element-wise vs chunk-at-a-time
//! pAlgorithms over aligned, shifted, strided (block-cyclic), and
//! misaligned placements.
//!
//! See `experiments localize` for the paper-style table with the rts
//! stats (remote requests, bulk requests) over larger instances.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stapl_algorithms::map_func::{p_copy, p_copy_elementwise, p_for_each, p_for_each_view};
use stapl_containers::array::PArray;
use stapl_core::mapper::{CyclicMapper, GeneralMapper};
use stapl_core::partition::{
    BalancedPartition, BlockCyclicPartition, BlockedPartition, IndexPartition,
};
use stapl_rts::{execute, RtsConfig};
use stapl_views::array_view::ArrayView;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// dst placement per scenario; src is always balanced over P.
fn dst_for(scenario: &str, n: usize, nlocs: usize) -> PArrayFactory {
    let s = scenario.to_string();
    Box::new(move |loc: &stapl_rts::Location| match s.as_str() {
        "aligned" => PArray::with_partition(
            loc,
            Box::new(BalancedPartition::new(n, nlocs)),
            Box::new(CyclicMapper::new(nlocs)),
            0u64,
        ),
        "shifted" => {
            // Same blocks, placement rotated by one: everything remote.
            let part = BalancedPartition::new(n, nlocs);
            let parts = IndexPartition::num_subdomains(&part);
            PArray::with_partition(
                loc,
                Box::new(part),
                Box::new(GeneralMapper::new(
                    nlocs,
                    (0..parts).map(|b| (b + 1) % nlocs).collect(),
                )),
                0u64,
            )
        }
        "strided" => PArray::with_partition(
            loc,
            Box::new(BlockCyclicPartition::new(n, nlocs, 16)),
            Box::new(CyclicMapper::new(nlocs)),
            0u64,
        ),
        _ => PArray::with_partition(
            loc,
            Box::new(BlockedPartition::new(n, n / nlocs + 7)),
            Box::new(CyclicMapper::new(nlocs)),
            0u64,
        ),
    })
}

type PArrayFactory = Box<dyn Fn(&stapl_rts::Location) -> PArray<u64> + Send + Sync>;

fn run_copy(scenario: &'static str, n: usize, localized: bool) {
    let p = 4;
    let make_dst = dst_for(scenario, n, p);
    execute(RtsConfig::default(), p, move |loc| {
        let src = PArray::from_fn(loc, n, |i| i as u64);
        let dst = make_dst(loc);
        if localized {
            p_copy(&src, &dst);
        } else {
            p_copy_elementwise(&src, &dst);
        }
    });
}

/// Localized vs element-wise copy over the four placement scenarios.
fn copy_scenarios(c: &mut Criterion) {
    let mut grp = c.benchmark_group("localization_copy");
    for scenario in ["aligned", "shifted", "strided", "misaligned"] {
        for localized in [true, false] {
            let label = format!(
                "{scenario}/{}",
                if localized { "localized" } else { "elementwise" }
            );
            grp.bench_function(label.as_str(), |b| b.iter(|| run_copy(scenario, 20_000, localized)));
        }
    }
    grp.finish();
}

/// Native-view in-place update: chunked slice mutation vs the per-element
/// `apply` routing (both all-local; measures the RefCell/locate overhead).
fn native_for_each(c: &mut Criterion) {
    let mut grp = c.benchmark_group("localization_for_each");
    grp.bench_function("view_chunked", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 4, |loc| {
                let a = PArray::from_fn(loc, 40_000, |i| i as u64);
                let v = ArrayView::new(a);
                p_for_each_view(&v, |x| *x = x.wrapping_mul(3) + 1);
            })
        })
    });
    grp.bench_function("container_elementwise", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 4, |loc| {
                let a = PArray::from_fn(loc, 40_000, |i| i as u64);
                p_for_each(&a, |x| *x = x.wrapping_mul(3) + 1);
            })
        })
    });
    grp.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = copy_scenarios, native_for_each
}
criterion_main!(benches);
