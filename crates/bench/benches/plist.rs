//! Criterion benches for the pList evaluation: Figs. 39–44 (methods,
//! generic algorithms vs pArray, node placement, pList vs pVector,
//! Euler tour).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stapl_algorithms::prelude::*;
use stapl_containers::array::PArray;
use stapl_containers::generators::fill_binary_tree;
use stapl_containers::graph::{Directedness, PGraph};
use stapl_containers::list::PList;
use stapl_containers::vector::PVector;
use stapl_core::interfaces::*;
use stapl_rts::{execute, RtsConfig};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// Fig. 39: pList method costs.
fn fig39_list_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig39_plist_methods");
    g.bench_function("push_anywhere", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let l: PList<u64> = PList::new(loc);
                for k in 0..10_000 {
                    l.push_anywhere(k);
                }
                loc.rmi_fence();
            })
        });
    });
    g.bench_function("push_back_global_end", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let l: PList<u64> = PList::new(loc);
                for k in 0..2_000 {
                    PList::push_back(&l, k);
                }
                loc.rmi_fence();
            })
        });
    });
    g.bench_function("insert_before_async", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let l: PList<u64> = PList::new(loc);
                let anchor = l.push_anywhere(0);
                loc.rmi_fence();
                for k in 0..5_000 {
                    SequenceContainer::insert_before_async(&l, anchor, k);
                }
                loc.rmi_fence();
            })
        });
    });
    g.finish();
}

/// Fig. 40: generic algorithms on pArray vs pList.
fn fig40_array_vs_list(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig40_plist_algos");
    let per = 50_000usize;
    g.bench_function("p_for_each_parray", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let a = PArray::new(loc, per * loc.nlocs(), 0u64);
                p_for_each(&a, |v| *v += 1);
            })
        });
    });
    g.bench_function("p_for_each_plist", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let l: PList<u64> = PList::new(loc);
                for k in 0..per as u64 {
                    l.push_anywhere(k);
                }
                l.commit();
                p_for_each(&l, |v| *v += 1);
            })
        });
    });
    g.finish();
}

/// Fig. 41: same-node vs cross-node placement (node model).
fn fig41_node_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig41_node_placement");
    for (name, cfg) in [
        ("same_node", RtsConfig::default()),
        ("cross_node", RtsConfig::clustered(1, 30_000, 300)),
    ] {
        g.bench_with_input(BenchmarkId::new("p_for_each", name), &cfg, |b, cfg| {
            b.iter(|| {
                execute(cfg.clone(), 4, |loc| {
                    let a = PArray::new(loc, 50_000 * loc.nlocs(), 0u64);
                    p_for_each(&a, |v| *v += 1);
                })
            });
        });
    }
    g.finish();
}

/// Fig. 42: pList vs pVector under a mixed dynamic load.
fn fig42_list_vs_vector(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig42_list_vs_vector");
    let ops = 8_000usize;
    g.bench_function("plist_mixed", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let l: PList<u64> = PList::new(loc);
                let gids: Vec<_> = (0..1_000).map(|k| l.push_anywhere(k as u64)).collect();
                loc.rmi_fence();
                for k in 0..ops {
                    let gid = gids[k % gids.len()];
                    match k % 4 {
                        0 => l.set_element(gid, k as u64),
                        1 => {
                            std::hint::black_box(l.try_get(gid));
                        }
                        2 => {
                            l.push_anywhere(k as u64);
                        }
                        _ => SequenceContainer::insert_before_async(&l, gid, k as u64),
                    }
                }
                loc.rmi_fence();
            })
        });
    });
    g.bench_function("pvector_mixed", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let v: PVector<u64> = PVector::new(loc, 2_000, 0);
                for k in 0..ops {
                    let i = (k * 37) % 2_000;
                    match k % 4 {
                        0 => v.set_element(i, k as u64),
                        1 => {
                            std::hint::black_box(v.get_element(i));
                        }
                        2 => v.push_back(k as u64),
                        _ => v.insert_async(i, k as u64),
                    }
                }
                v.commit();
            })
        });
    });
    g.finish();
}

/// Fig. 43: Euler tour weak scaling.
fn fig43_euler_scaling(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig43_euler_scaling");
    g.sample_size(10);
    for p in [1usize, 2] {
        let n = 2_000 * p;
        g.bench_with_input(BenchmarkId::new("euler_tour", p), &p, |b, &p| {
            b.iter(|| {
                execute(RtsConfig::default(), p, |loc| {
                    let t: PGraph<(), ()> =
                        PGraph::new_static(loc, n, Directedness::Undirected, ());
                    fill_binary_tree(loc, &t, ());
                    std::hint::black_box(euler_tour(&t, 0));
                })
            });
        });
    }
    g.finish();
}

/// Fig. 44: tour + applications.
fn fig44_euler_apps(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig44_euler_apps");
    g.bench_function("applications_n4000", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let t: PGraph<(), ()> =
                    PGraph::new_static(loc, 4_000, Directedness::Undirected, ());
                fill_binary_tree(loc, &t, ());
                std::hint::black_box(euler_applications(&t, 0));
            })
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = fig39_list_methods, fig40_array_vs_list, fig41_node_placement,
              fig42_list_vs_vector, fig43_euler_scaling, fig44_euler_apps
}
criterion_main!(benches);
