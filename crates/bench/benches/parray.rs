//! Criterion benches for the pArray evaluation: Figs. 27–34
//! (constructor, local/remote methods, method flavors, remote mix,
//! generic algorithms, memory/storage ablation).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stapl_algorithms::prelude::*;
use stapl_containers::array::{ArrayStorage, PArray};
use stapl_core::interfaces::*;
use stapl_core::mapper::CyclicMapper;
use stapl_core::partition::BalancedPartition;
use stapl_core::thread_safety::ThreadSafety;
use stapl_rts::{execute, RtsConfig};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// Fig. 27: constructor across sizes and location counts.
fn fig27_ctor(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig27_parray_ctor");
    for p in [1usize, 2, 4] {
        for n in [50_000usize, 200_000] {
            g.bench_with_input(BenchmarkId::new(format!("P{p}"), n), &n, |b, &n| {
                b.iter(|| {
                    execute(RtsConfig::default(), p, |loc| {
                        std::hint::black_box(PArray::new(loc, n, 0u64));
                    })
                });
            });
        }
    }
    g.finish();
}

/// Fig. 28: local method invocations.
fn fig28_local_methods(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig28_parray_local");
    for n in [10_000usize, 100_000] {
        g.bench_with_input(BenchmarkId::new("set_local", n), &n, |b, &n| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, |loc| {
                    let a = PArray::new(loc, n, 0u64);
                    let half = n / loc.nlocs();
                    let lo = loc.id() * half;
                    for k in 0..10_000 {
                        a.set_element(lo + k % half, k as u64);
                    }
                    loc.rmi_fence();
                })
            });
        });
    }
    g.finish();
}

/// Figs. 29/30: sync vs async vs split-phase on remote elements.
fn fig30_method_flavors(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig30_parray_flavors");
    let ops = 4_000usize;
    g.bench_function("set_async_remote", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let a = PArray::new(loc, 20_000, 0u64);
                let peer = (loc.id() + 1) % 2 * 10_000;
                for k in 0..ops {
                    a.set_element(peer + k % 1_000, k as u64);
                }
                loc.rmi_fence();
            })
        });
    });
    g.bench_function("get_sync_remote", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let a = PArray::new(loc, 20_000, 0u64);
                let peer = (loc.id() + 1) % 2 * 10_000;
                for k in 0..ops / 4 {
                    std::hint::black_box(a.get_element(peer + k % 1_000));
                }
            })
        });
    });
    g.bench_function("get_split_phase_remote", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let a = PArray::new(loc, 20_000, 0u64);
                let peer = (loc.id() + 1) % 2 * 10_000;
                let mut futs = Vec::with_capacity(64);
                for k in 0..ops / 4 {
                    futs.push(a.split_get_element(peer + k % 1_000));
                    if futs.len() == 64 {
                        for f in futs.drain(..) {
                            std::hint::black_box(f.get());
                        }
                    }
                }
                for f in futs {
                    std::hint::black_box(f.get());
                }
            })
        });
    });
    g.finish();
}

/// Fig. 31: percentage of remote invocations.
fn fig31_remote_mix(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig31_parray_remote_mix");
    for pct in [0usize, 50, 100] {
        g.bench_with_input(BenchmarkId::new("pct_remote", pct), &pct, |b, &pct| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, |loc| {
                    let n = 20_000;
                    let a = PArray::new(loc, n, 0u64);
                    let half = n / 2;
                    let my = loc.id() * half;
                    let peer = (loc.id() + 1) % 2 * half;
                    for k in 0..8_000 {
                        let base = if k % 100 < pct { peer } else { my };
                        a.set_element(base + k % half, k as u64);
                    }
                    loc.rmi_fence();
                })
            });
        });
    }
    g.finish();
}

/// Fig. 32: local vs remote across container sizes.
fn fig32_local_remote(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig32_parray_local_remote");
    for (name, remote) in [("local", false), ("remote", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, |loc| {
                    let n = 100_000;
                    let a = PArray::new(loc, n, 0u64);
                    let half = n / 2;
                    let base = if remote { (loc.id() + 1) % 2 * half } else { loc.id() * half };
                    for k in 0..8_000 {
                        a.set_element(base + k % half, k as u64);
                    }
                    loc.rmi_fence();
                })
            });
        });
    }
    g.finish();
}

/// Fig. 33: generic algorithms (weak scaling over P).
fn fig33_algorithms(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig33_parray_algos");
    for p in [1usize, 2, 4] {
        let n = 100_000 * p;
        g.bench_with_input(BenchmarkId::new("p_for_each", p), &p, |b, &p| {
            b.iter(|| {
                execute(RtsConfig::default(), p, |loc| {
                    let a = PArray::new(loc, n, 1u64);
                    p_for_each(&a, |v| *v += 1);
                })
            });
        });
        g.bench_with_input(BenchmarkId::new("p_accumulate", p), &p, |b, &p| {
            b.iter(|| {
                execute(RtsConfig::default(), p, |loc| {
                    let a = PArray::new(loc, n, 1u64);
                    std::hint::black_box(p_sum(&a));
                })
            });
        });
    }
    g.finish();
}

/// Fig. 34: contiguous vs per-element allocation (the malloc study).
fn fig34_storage(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig34_parray_memory");
    for (name, storage) in [("contiguous", ArrayStorage::Contiguous), ("boxed", ArrayStorage::Boxed)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, move |loc| {
                    let a = PArray::with_options(
                        loc,
                        Box::new(BalancedPartition::new(100_000, loc.nlocs())),
                        Box::new(CyclicMapper::new(loc.nlocs())),
                        7u64,
                        storage,
                        ThreadSafety::unlocked(),
                    );
                    std::hint::black_box(a.memory_size());
                })
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = fig27_ctor, fig28_local_methods, fig30_method_flavors,
              fig31_remote_mix, fig32_local_remote, fig33_algorithms,
              fig34_storage
}
criterion_main!(benches);
