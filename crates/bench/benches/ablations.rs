//! Ablation benches for the design choices DESIGN.md calls out:
//! RMI aggregation factor, thread-safety manager overhead on the method
//! fast path, and directory resolution (forwarding vs two-phase).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stapl_containers::array::{ArrayStorage, PArray};
use stapl_core::directory::{dir_insert, dir_route_ret, DirectoryShard, HasDirectory, Resolution};
use stapl_core::interfaces::ElementWrite;
use stapl_core::mapper::CyclicMapper;
use stapl_core::partition::BalancedPartition;
use stapl_core::pobject::PObject;
use stapl_core::thread_safety::*;
use stapl_rts::{execute, RtsConfig};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// Aggregation factor sweep: remote async writes per message batch.
fn aggregation(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_aggregation");
    for a in [1usize, 16, 256] {
        g.bench_with_input(BenchmarkId::new("remote_asyncs", a), &a, |b, &a| {
            b.iter(|| {
                execute(RtsConfig::with_aggregation(a), 2, |loc| {
                    let arr = PArray::new(loc, 20_000, 0u64);
                    let peer = (loc.id() + 1) % 2 * 10_000;
                    for k in 0..10_000 {
                        arr.set_element(peer + k % 10_000, k as u64);
                    }
                    loc.rmi_fence();
                })
            });
        });
    }
    g.finish();
}

type ManagerFactory = fn() -> std::sync::Arc<dyn ThreadSafetyManager>;

/// Thread-safety manager overhead on the owner-side fast path.
fn thread_safety(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_thread_safety");
    let cases: Vec<(&str, ManagerFactory)> = vec![
        ("nolock", || std::sync::Arc::new(NoLockManager)),
        ("global_mutex", || std::sync::Arc::new(GlobalMutexManager::default())),
        ("hashed_64", || std::sync::Arc::new(HashedLockManager::new(64))),
        ("rwlock", || std::sync::Arc::new(RwLockManager::default())),
    ];
    for (name, make) in cases {
        g.bench_function(name, |b| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, |loc| {
                    let ths =
                        ThreadSafety::new(LockingPolicyTable::dynamic_default(), make());
                    let arr = PArray::with_options(
                        loc,
                        Box::new(BalancedPartition::new(40_000, loc.nlocs())),
                        Box::new(CyclicMapper::new(loc.nlocs())),
                        0u64,
                        ArrayStorage::Contiguous,
                        ths,
                    );
                    let lo = loc.id() * 20_000;
                    for k in 0..20_000 {
                        arr.set_element(lo + k, k as u64);
                    }
                    loc.rmi_fence();
                })
            });
        });
    }
    g.finish();
}

struct DirRep {
    dir: DirectoryShard<u64>,
    value: u64,
}

impl HasDirectory<u64> for DirRep {
    fn directory(&self) -> &DirectoryShard<u64> {
        &self.dir
    }

    fn directory_mut(&mut self) -> &mut DirectoryShard<u64> {
        &mut self.dir
    }

    fn owns_gid(&self, _g: &u64) -> bool {
        // The benched value is replicated per location; any directory-
        // recorded owner can serve it, so delivery always verifies.
        true
    }
}

/// Directory resolution: method forwarding vs two-phase lookup (the
/// micro-benchmark behind Fig. 51's macro effect).
fn resolution(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_resolution");
    for (name, policy) in [("forwarding", Resolution::Forwarding), ("two_phase", Resolution::TwoPhase)] {
        g.bench_with_input(BenchmarkId::new("routed_reads", name), &policy, |b, &policy| {
            b.iter(|| {
                execute(RtsConfig::default(), 2, move |loc| {
                    let obj = PObject::register(
                        loc,
                        DirRep { dir: DirectoryShard::new(), value: loc.id() as u64 },
                    );
                    loc.rmi_fence();
                    for gid in 0..64u64 {
                        if gid as usize % loc.nlocs() == loc.id() {
                            dir_insert(&obj, gid, loc.id(), loc.id());
                        }
                    }
                    loc.rmi_fence();
                    for gid in 0..512u64 {
                        std::hint::black_box(
                            dir_route_ret(&obj, policy, gid % 64, |cell, _, _| {
                                cell.borrow().value
                            })
                            .get(),
                        );
                    }
                })
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = aggregation, thread_safety, resolution
}
criterion_main!(benches);
