//! Criterion benches for the associative-container and composition
//! evaluation: Fig. 59 (MapReduce word count), Fig. 60 (generic
//! algorithms over associative containers), Fig. 62 (composed containers
//! vs pMatrix on row-min).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use stapl_algorithms::prelude::*;
use stapl_containers::array::PArray;
use stapl_containers::associative::PHashMap;
use stapl_containers::composed::LocalArray;
use stapl_containers::list::PList;
use stapl_containers::matrix::PMatrix;
use stapl_core::interfaces::*;
use stapl_core::partition::MatrixLayout;
use stapl_rts::{execute, RtsConfig};

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(600))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// Fig. 59: MapReduce word count, weak scaling over P.
fn fig59_mapreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig59_mapreduce");
    for p in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("word_count_20k_per_loc", p), &p, |b, &p| {
            b.iter(|| {
                execute(RtsConfig::default(), p, |loc| {
                    let text = synthetic_corpus(loc, 20_000, 5_000, 11);
                    std::hint::black_box(word_count(loc, &text));
                })
            });
        });
    }
    g.finish();
}

/// Fig. 60: generic algorithms over the pHashMap.
fn fig60_assoc_algos(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig60_assoc_algos");
    g.bench_function("insert_async_50k", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let m: PHashMap<u64, u64> = PHashMap::new(loc);
                let base = (loc.id() as u64) << 32;
                for k in 0..25_000u64 {
                    m.insert_async(base | k, k);
                }
                m.commit();
            })
        });
    });
    g.bench_function("count_even_values", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let m: PHashMap<u64, u64> = PHashMap::new(loc);
                let base = (loc.id() as u64) << 32;
                for k in 0..10_000u64 {
                    m.insert_async(base | k, k);
                }
                m.commit();
                let mut n = 0u64;
                m.for_each_local(|_, v| {
                    if *v % 2 == 0 {
                        n += 1;
                    }
                });
                std::hint::black_box(loc.allreduce_sum(n));
            })
        });
    });
    g.finish();
}

/// Fig. 62: composed pArray<pArray> / pList<pArray> / pMatrix row-min.
fn fig62_composition(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig62_composition");
    const ROWS: usize = 256;
    const COLS: usize = 128;
    g.bench_function("parray_of_arrays", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let pa: PArray<LocalArray<i64>> = PArray::from_fn(loc, ROWS, |r| {
                    LocalArray::from_fn(COLS, move |c| ((r * 13 + c) % 97) as i64)
                });
                let mut best = i64::MAX;
                pa.for_each_local(|_, row| best = best.min(*row.iter().min().unwrap()));
                std::hint::black_box(loc.allreduce(best, i64::min));
            })
        });
    });
    g.bench_function("plist_of_arrays", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let pl: PList<LocalArray<i64>> = PList::new(loc);
                for r in 0..ROWS {
                    if r % loc.nlocs() == loc.id() {
                        pl.push_anywhere(LocalArray::from_fn(COLS, move |c| {
                            ((r * 13 + c) % 97) as i64
                        }));
                    }
                }
                pl.commit();
                let mut best = i64::MAX;
                pl.for_each_local(|_, row| best = best.min(*row.iter().min().unwrap()));
                std::hint::black_box(loc.allreduce(best, i64::min));
            })
        });
    });
    g.bench_function("pmatrix_rows", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let m = PMatrix::from_fn(loc, ROWS, COLS, MatrixLayout::RowBlocked, |r, c| {
                    ((r * 13 + c) % 97) as i64
                });
                let rows = stapl_views::matrix_view::RowsView::new(m);
                let mut best = i64::MAX;
                for rr in rows.local_rows() {
                    for r in rr.iter() {
                        best = best.min(rows.read_row(r).into_iter().min().unwrap());
                    }
                }
                std::hint::black_box(loc.allreduce(best, i64::min));
            })
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = fig59_mapreduce, fig60_assoc_algos, fig62_composition
}
criterion_main!(benches);
