//! Dynamic-container bulk-transport benches: segment-at-a-time vs
//! element-wise over pList slabs, plus the bucket-grained vs per-pair
//! MapReduce shuffle.
//!
//! See `experiments dynamic` for the paper-style table with the rts stats
//! (remote requests, segment requests) over larger instances.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stapl_algorithms::map_func::p_copy_elementwise;
use stapl_algorithms::mapreduce::{map_reduce, synthetic_corpus, word_count_kv};
use stapl_algorithms::segmented::p_copy_segmented;
use stapl_containers::associative::PHashMap;
use stapl_containers::list::PList;
use stapl_core::interfaces::{AssociativeContainer, PContainer};
use stapl_rts::{execute, RtsConfig};
use stapl_views::assoc_view::MapView;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// Twin pLists with every destination slab migrated one location over, so
/// the copy pays full remote traffic in both modes.
fn run_copy(per: usize, segmented: bool) {
    execute(RtsConfig::default(), 4, move |loc| {
        let src: PList<u64> = PList::new(loc);
        let dst: PList<u64> = PList::new(loc);
        for i in 0..per {
            src.push_anywhere((loc.id() * per + i) as u64);
            dst.push_anywhere(0);
        }
        src.commit();
        dst.commit();
        if loc.id() == 0 {
            for sid in 0..loc.nlocs() {
                dst.migrate_bcontainer(sid, (sid + 1) % loc.nlocs());
            }
        }
        loc.rmi_fence();
        if segmented {
            p_copy_segmented(&src, &dst);
        } else {
            p_copy_elementwise(&src, &dst);
        }
    });
}

fn copy_modes(c: &mut Criterion) {
    let mut grp = c.benchmark_group("dynamic_copy");
    for segmented in [true, false] {
        let label = if segmented { "segmented" } else { "elementwise" };
        grp.bench_function(label, |b| b.iter(|| run_copy(2_000, segmented)));
    }
    grp.finish();
}

/// Word count over a distributed document collection: bucket-grained
/// `p_map_reduce_kv` vs the per-pair streaming shuffle.
fn run_word_count(words: usize, chunked: bool) {
    execute(RtsConfig::default(), 4, move |loc| {
        let docs: PHashMap<u64, String> = PHashMap::new(loc);
        let text = synthetic_corpus(loc, words, 300, 23);
        docs.insert_async(loc.id() as u64, text.clone());
        docs.commit();
        let counts: PHashMap<String, u64> = PHashMap::new(loc);
        if chunked {
            word_count_kv(&MapView::new(docs), &counts);
        } else {
            map_reduce(
                &counts,
                text.split_whitespace(),
                |w, emit| emit(w.to_string(), 1),
                0,
                |acc, v| *acc += v,
            );
        }
        assert!(counts.global_size() > 0);
    });
}

fn word_count_modes(c: &mut Criterion) {
    let mut grp = c.benchmark_group("dynamic_word_count");
    for chunked in [true, false] {
        let label = if chunked { "chunked_kv" } else { "per_pair" };
        grp.bench_function(label, |b| b.iter(|| run_word_count(5_000, chunked)));
    }
    grp.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = copy_modes, word_count_modes
}
criterion_main!(benches);
