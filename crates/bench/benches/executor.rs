//! PARAGRAPH executor benches: the skewed-workload scenario (SPMD
//! lock-step vs executor vs executor-with-stealing) plus the executor's
//! scheduling overhead on a uniform CPU-bound workload.
//!
//! See `experiments executor` for the paper-style table over a larger
//! instance.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use stapl_algorithms::paragraph_algos::p_for_each_pg;
use stapl_bench::{skewed_generate, ExecMode};
use stapl_containers::array::PArray;
use stapl_paragraph::executor::ExecPolicy;
use stapl_rts::{execute, RtsConfig};
use stapl_views::array_view::ArrayView;

fn short() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(900))
        .warm_up_time(Duration::from_millis(150))
        .without_plots()
}

/// The skewed latency-bound scenario at bench scale: 64 elements, the
/// heavy quarter 10x the light cost.
fn skewed(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_skewed");
    for mode in [ExecMode::Spmd, ExecMode::Executor, ExecMode::Steal] {
        g.bench_function(mode.label(), |b| {
            b.iter(|| skewed_generate(4, 64, 20, 200, mode));
        });
    }
    g.finish();
}

/// Scheduling overhead: a uniform, cheap, CPU-bound p_for_each where the
/// SPMD loop is the fast path — how much the task graph costs when it
/// buys nothing.
fn overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("executor_overhead_uniform");
    let run = |stealing: bool| {
        execute(RtsConfig::default(), 2, move |loc| {
            let a = PArray::from_fn(loc, 4096, |i| i as u64);
            let v = ArrayView::new(a);
            let policy =
                if stealing { ExecPolicy::default() } else { ExecPolicy::no_stealing() };
            p_for_each_pg(&v, policy, |x| *x = x.wrapping_mul(2654435761).rotate_left(7));
        });
    };
    g.bench_function("executor", |b| b.iter(|| run(false)));
    g.bench_function("executor+steal", |b| b.iter(|| run(true)));
    g.bench_function("spmd", |b| {
        b.iter(|| {
            execute(RtsConfig::default(), 2, |loc| {
                let a = PArray::from_fn(loc, 4096, |i| i as u64);
                let v = ArrayView::new(a);
                stapl_algorithms::map_func::p_for_each_view(&v, |x| {
                    *x = x.wrapping_mul(2654435761).rotate_left(7)
                });
            })
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = short();
    targets = skewed, overhead
}
criterion_main!(benches);
