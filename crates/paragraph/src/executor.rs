//! The per-location executor: schedules a [`PRange`] in dependence
//! order, driven by the RTS polling loop, with an intra-execution
//! work-stealing path for migratable ready tasks.
//!
//! One executor representative is registered per location (a `p_object`,
//! like any pContainer). Each holds:
//!
//! * a **ready deque** of its home tasks whose predecessors completed —
//!   the location pops from the front, thieves steal from the back,
//! * **pending-predecessor counts** for not-yet-ready home tasks, and
//! * an **inbox** of dataflow payloads produced by predecessors.
//!
//! Execution interleaves task bodies with [`Location::poll`], so steal
//! probes and readiness notifications are serviced between tasks — the
//! executor is "driven by" the same polling loop that makes sync RMIs
//! deadlock-free. When a location runs dry it first polls, then (if
//! stealing is enabled) probes peers round-robin with a synchronous RMI
//! that pops **half of the victim's migratable ready tasks** — and their
//! inboxes — from the cold end of its deque (steal-half, so one probe
//! moves enough work to matter even when the victim only answers between
//! long task bodies); the thief enqueues the batch, leaving it stealable
//! in turn, and executes the tasks against its own per-location
//! workfunction and view handles, so element accesses route through the
//! normal container RMI paths. Global termination is a completion counter on
//! location 0's representative: every task completion increments it
//! asynchronously, and idle locations probe it until all tasks are done.
//!
//! Steal and execution counters are surfaced through
//! [`stapl_rts::StatsSnapshot`] (`tasks_executed`, `tasks_stolen`,
//! `steal_requests`).

use std::collections::{HashMap, VecDeque};

use stapl_core::pobject::PObject;
use stapl_rts::{LocId, Location};

use crate::prange::{PRange, Task, TaskId};

/// Scheduling knobs for one executor run.
#[derive(Clone, Copy, Debug)]
pub struct ExecPolicy {
    /// Allow idle locations to steal migratable ready tasks from peers.
    pub stealing: bool,
    /// Task coarsening used by the `_pg` algorithm entry points when they
    /// build their graph: maximum view indices per task. `0` selects
    /// [`auto_grain`](crate::prange::auto_grain).
    pub grain: usize,
}

impl Default for ExecPolicy {
    fn default() -> Self {
        ExecPolicy { stealing: true, grain: 0 }
    }
}

impl ExecPolicy {
    /// Executor scheduling without the stealing path (tasks run only on
    /// their home locations, but still in dependence-graph order).
    pub fn no_stealing() -> Self {
        ExecPolicy { stealing: false, grain: 0 }
    }

    /// Overrides the task grain.
    pub fn with_grain(mut self, grain: usize) -> Self {
        self.grain = grain;
        self
    }

    /// Resolves the grain for a view of `len` indices on `nlocs`
    /// locations.
    pub fn grain_for(&self, len: usize, nlocs: usize) -> usize {
        if self.grain == 0 {
            crate::prange::auto_grain(len, nlocs)
        } else {
            self.grain
        }
    }
}

/// What one location did during a run (the global view lives in
/// [`stapl_rts::StatsSnapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecReport {
    /// Tasks this location executed (home + stolen).
    pub executed: u64,
    /// Of those, tasks stolen from another location's deque.
    pub stolen: u64,
}

/// Per-location scheduler state, registered as a p_object so peers can
/// notify successors, deliver payloads, and steal.
struct ExecRep<P> {
    /// Ready home tasks: popped from the front locally, stolen from the
    /// back.
    ready: VecDeque<TaskId>,
    /// Remaining predecessor counts of not-yet-ready home tasks.
    pending: HashMap<TaskId, usize>,
    /// Dataflow payloads delivered by completed predecessors, keyed by
    /// the consuming task.
    inbox: HashMap<TaskId, Vec<P>>,
    /// Replicated migratability flags (indexed by task id) so steal
    /// probes can be answered without access to the caller's `PRange`.
    migratable: Vec<bool>,
    /// Completed-task counter; authoritative only on location 0.
    completed_total: u64,
}

impl<P> ExecRep<P> {
    /// A predecessor of `t` completed (possibly delivering a payload).
    fn notify(&mut self, t: TaskId, payload: Option<P>) {
        if let Some(p) = payload {
            self.inbox.entry(t).or_default().push(p);
        }
        let left = self.pending.get_mut(&t).expect("notification for a task not pending here");
        *left -= 1;
        if *left == 0 {
            self.pending.remove(&t);
            self.ready.push_back(t);
        }
    }

    /// Pops half (rounded up) of the migratable ready tasks — and their
    /// inboxes — from the cold end of the deque, for a thief.
    ///
    /// Steal-half instead of steal-one: a victim busy in a long task body
    /// only answers probes between tasks, so each probe must transfer
    /// enough work to keep the thief busy for a comparable stretch. The
    /// thief enqueues the batch, which keeps it stealable in turn (by
    /// third locations or by the original owner stealing back), so the
    /// load keeps diffusing.
    fn steal_some(&mut self) -> Vec<(TaskId, Vec<P>)> {
        let candidates = self.ready.iter().filter(|&&t| self.migratable[t]).count();
        let take = candidates.div_ceil(2);
        let mut got = Vec::with_capacity(take);
        let mut i = self.ready.len();
        while i > 0 && got.len() < take {
            i -= 1;
            if self.migratable[self.ready[i]] {
                let tid = self.ready.remove(i).expect("index in range");
                let inputs = self.inbox.remove(&tid).unwrap_or_default();
                got.push((tid, inputs));
            }
        }
        got
    }
}

/// A handle binding a [`PRange`] to a scheduling policy; `run` executes
/// the graph collectively.
pub struct Executor<'a> {
    pr: &'a PRange,
    policy: ExecPolicy,
}

impl<'a> Executor<'a> {
    /// Binds `pr` to `policy`.
    ///
    /// # Panics
    /// Panics if the dependence edges contain a cycle: cyclic tasks never
    /// become ready, so `run` would otherwise spin forever. The check is
    /// one O(tasks + edges) Kahn pass — noise next to graph construction.
    pub fn new(pr: &'a PRange, policy: ExecPolicy) -> Self {
        assert!(pr.is_acyclic(), "pRange dependence edges contain a cycle");
        Executor { pr, policy }
    }

    /// **Collective.** Runs every task of the pRange exactly once,
    /// respecting dependence edges, and returns this location's tally.
    ///
    /// `work` is this location's workfunction: it receives the task and
    /// the payloads its predecessors produced (in arrival order — folds
    /// over them must be commutative as well as associative), and may
    /// return a payload delivered to each successor. It is *not*
    /// shipped between locations: a stolen task runs against the
    /// thief's own workfunction and captured view handles, which is why
    /// any per-element state it touches must be routed through container
    /// RMIs (or be location-independent).
    ///
    /// An `rmi_fence` runs before returning, so all RMIs issued by task
    /// bodies (e.g. view writes) are complete on exit.
    pub fn run<P, F>(&self, loc: &Location, mut work: F) -> ExecReport
    where
        P: Send + Clone + 'static,
        F: FnMut(&Task, Vec<P>) -> Option<P>,
    {
        let me = loc.id();
        let total = self.pr.num_tasks() as u64;
        let mut ready = VecDeque::new();
        let mut pending = HashMap::new();
        let mut migratable = vec![false; self.pr.num_tasks()];
        for t in self.pr.tasks() {
            // Hard assert (like the cycle check in `new`): a task homed on
            // a nonexistent location would never run and the scheduling
            // loop would spin forever waiting for completion.
            assert!(t.home < loc.nlocs(), "task {} homed on nonexistent location {}", t.id, t.home);
            migratable[t.id] = t.migratable;
            if t.home == me {
                if t.num_preds == 0 {
                    ready.push_back(t.id);
                } else {
                    pending.insert(t.id, t.num_preds);
                }
            }
        }
        let obj: PObject<ExecRep<P>> = PObject::register(
            loc,
            ExecRep { ready, pending, inbox: HashMap::new(), migratable, completed_total: 0 },
        );
        // Handles must agree before any peer can notify or steal.
        loc.barrier();

        let mut report = ExecReport::default();
        let mut next_victim = (me + 1) % loc.nlocs();
        // Consecutive iterations that found nothing to run, steal, or
        // service — used to back off the completion probing so idle
        // locations don't serialize on location 0's polling cadence.
        let mut dry = 0u32;
        // The scheduling loop exits through the completion probe; an
        // empty graph is already complete.
        loop {
            if total == 0 {
                break;
            }
            // 1. Run one ready home task, then poll so steal probes and
            //    notifications are serviced *between* task bodies.
            let next = {
                let mut rep = obj.local_mut();
                rep.ready
                    .pop_front()
                    .map(|tid| (tid, rep.inbox.remove(&tid).unwrap_or_default()))
            };
            if let Some((tid, inputs)) = next {
                self.run_task(loc, &obj, tid, inputs, &mut work);
                report.executed += 1;
                if self.pr.task(tid).home != me {
                    report.stolen += 1;
                    loc.note_task_stolen();
                }
                loc.poll();
                dry = 0;
                continue;
            }
            // 2. Dry deque: service incoming traffic, which may deliver
            //    readiness.
            if loc.poll() > 0 {
                dry = 0;
                continue;
            }
            // Push out buffered notifications peers may be waiting on.
            loc.flush_all();
            // 3. Steal: probe peers round-robin; a victim yields half of
            //    its migratable ready tasks, which we enqueue (and which
            //    thereby stay stealable by others, or by the owner
            //    stealing them back).
            if self.policy.stealing && loc.nlocs() > 1 {
                let batch = self.try_steal(loc, &obj, &mut next_victim);
                if !batch.is_empty() {
                    let mut rep = obj.local_mut();
                    for (tid, inputs) in batch {
                        if !inputs.is_empty() {
                            rep.inbox.insert(tid, inputs);
                        }
                        rep.ready.push_back(tid);
                    }
                    dry = 0;
                    continue;
                }
            }
            // 4. Nothing runnable anywhere we can see: probe global
            //    completion at location 0, backing off as dry sweeps
            //    accumulate so idle locations neither hammer location 0
            //    with sync RMIs nor serialize on its polling cadence.
            let done = obj.invoke_ret_at(0, |cell, _| cell.borrow().completed_total);
            if done == total {
                break;
            }
            dry = dry.saturating_add(1);
            if dry < 16 {
                std::thread::yield_now();
            } else {
                // Capped backoff: stay responsive to incoming probes and
                // notifications (the next poll services them) while idle.
                std::thread::sleep(std::time::Duration::from_micros(
                    50 * u64::from(dry.min(20)),
                ));
            }
        }
        // Drain in-flight RMIs (view writes from task bodies, stray
        // notifications, peers' steal probes) before handing back.
        loc.rmi_fence();
        report
    }

    /// Executes one task body and publishes its completion: payload to
    /// each successor's home, plus the global completion counter.
    fn run_task<P, F>(
        &self,
        loc: &Location,
        obj: &PObject<ExecRep<P>>,
        tid: TaskId,
        inputs: Vec<P>,
        work: &mut F,
    ) where
        P: Send + Clone + 'static,
        F: FnMut(&Task, Vec<P>) -> Option<P>,
    {
        let task = self.pr.task(tid);
        let t0 = loc.trace_clock();
        let out = work(task, inputs);
        loc.trace_span_end(stapl_rts::TraceEventKind::TaskSpan, t0, tid as u64);
        loc.note_task_executed();
        for &s in &task.succs {
            let payload = out.clone();
            obj.invoke_at(self.pr.task(s).home, move |cell, _| {
                cell.borrow_mut().notify(s, payload);
            });
        }
        obj.invoke_at(0, |cell, _| cell.borrow_mut().completed_total += 1);
    }

    /// One round-robin sweep over the peers; returns the first nonempty
    /// batch a victim gave up (empty when every peer came up dry).
    fn try_steal<P>(
        &self,
        loc: &Location,
        obj: &PObject<ExecRep<P>>,
        next_victim: &mut LocId,
    ) -> Vec<(TaskId, Vec<P>)>
    where
        P: Send + Clone + 'static,
    {
        let me = loc.id();
        let n = loc.nlocs();
        for k in 0..n {
            let victim = (*next_victim + k) % n;
            if victim == me {
                continue;
            }
            loc.note_steal_request();
            let got = obj.invoke_ret_at(victim, |cell, _| cell.borrow_mut().steal_some());
            if !got.is_empty() {
                loc.trace_instant(stapl_rts::TraceEventKind::StealSuccess, got.len() as u64);
                // Keep hitting a productive victim first next time.
                *next_victim = victim;
                return got;
            }
        }
        *next_victim = (me + 1) % n;
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prange::{
        map_task_graph, pipeline_task_graph, prange_from_view, reduce_task_graph, TaskKind,
    };
    use std::cell::RefCell;
    use stapl_containers::array::PArray;
    use stapl_core::domain::Range1d;
    use stapl_core::interfaces::ElementRead;
    use stapl_rts::{execute, execute_collect, RtsConfig};
    use stapl_views::array_view::ArrayView;
    use stapl_views::view::{ViewRead, ViewWrite};

    #[test]
    fn map_graph_processes_every_element_once() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::new(loc, 40, 0u64);
            let v = ArrayView::new(a.clone());
            let pr = map_task_graph(&v, 4);
            let exec = Executor::new(&pr, ExecPolicy::default());
            exec.run::<(), _>(loc, |task, _| {
                for k in task.range.iter() {
                    v.apply(k, |x| *x += 1);
                }
                None
            });
            // Exactly-once: every element incremented exactly one time.
            for i in 0..40 {
                assert_eq!(a.get_element(i), 1, "element {i}");
            }
        });
    }

    #[test]
    #[should_panic(expected = "contain a cycle")]
    fn cyclic_graph_is_rejected_at_construction() {
        let mut pr = PRange::new();
        let a = pr.add_task(Range1d::new(0, 1), 0, true, TaskKind::Map);
        let b = pr.add_task(Range1d::new(1, 2), 0, true, TaskKind::Map);
        pr.add_edge(a, b);
        pr.add_edge(b, a);
        let _ = Executor::new(&pr, ExecPolicy::default());
    }

    #[test]
    fn empty_graph_returns_immediately() {
        execute(RtsConfig::default(), 2, |loc| {
            let pr = PRange::new();
            let r = Executor::new(&pr, ExecPolicy::default()).run::<(), _>(loc, |_, _| None);
            assert_eq!(r, ExecReport::default());
        });
    }

    #[test]
    fn dependences_gate_execution_and_flow_payloads() {
        // Diamond: a -> {b, c} -> d, across two locations. d must receive
        // both payloads, which is only possible if b and c ran after a.
        execute(RtsConfig::default(), 2, |loc| {
            let mut pr = PRange::new();
            let a = pr.add_task(Range1d::new(0, 1), 0, false, TaskKind::Map);
            let b = pr.add_task(Range1d::new(1, 2), 0, false, TaskKind::Map);
            let c = pr.add_task(Range1d::new(2, 3), 1, false, TaskKind::Map);
            let d = pr.add_task(Range1d::new(3, 4), 1, false, TaskKind::Map);
            pr.add_edge(a, b);
            pr.add_edge(a, c);
            pr.add_edge(b, d);
            pr.add_edge(c, d);
            let d_inputs = RefCell::new(Vec::new());
            Executor::new(&pr, ExecPolicy::default()).run::<u64, _>(loc, |task, inputs| {
                if task.id == d {
                    *d_inputs.borrow_mut() = inputs.clone();
                }
                match task.id {
                    t if t == a => Some(7),
                    t if t == b => Some(inputs[0] * 10),
                    t if t == c => Some(inputs[0] * 100),
                    _ => None,
                }
            });
            if loc.id() == 1 {
                let mut got = d_inputs.into_inner();
                got.sort_unstable();
                assert_eq!(got, vec![70, 700]);
            }
        });
    }

    #[test]
    fn pipeline_stages_run_in_order_per_chunk() {
        execute(RtsConfig::default(), 2, |loc| {
            let n = 12;
            let a = PArray::new(loc, n, 0u64);
            let v = ArrayView::new(a.clone());
            let pr = pipeline_task_graph(&v, 3, 3);
            // Each stage multiplies by 10 and adds the stage number; the
            // final value proves stage order 0,1,2 per element.
            Executor::new(&pr, ExecPolicy::default()).run::<(), _>(loc, |task, _| {
                if let TaskKind::Stage(s) = task.kind {
                    for k in task.range.iter() {
                        v.apply(k, move |x| *x = *x * 10 + s as u64);
                    }
                }
                None
            });
            for i in 0..n {
                assert_eq!(a.get_element(i), 12, "element {i}: stages must apply as 0,1,2");
            }
        });
    }

    #[test]
    fn reduce_graph_folds_through_combines_to_root() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::from_fn(loc, 30, |i| i as u64);
            let v = ArrayView::new(a);
            let pr = reduce_task_graph(&v, 4);
            let root_out = RefCell::new(None::<u64>);
            Executor::new(&pr, ExecPolicy::default()).run::<u64, _>(loc, |task, inputs| {
                match task.kind {
                    TaskKind::Map => Some(task.range.iter().map(|k| v.get(k)).sum()),
                    TaskKind::Combine => Some(inputs.iter().sum()),
                    TaskKind::Root => {
                        let r = inputs.iter().sum();
                        *root_out.borrow_mut() = Some(r);
                        Some(r)
                    }
                    TaskKind::Stage(_) => None,
                }
            });
            let r = loc.broadcast(0, root_out.into_inner());
            assert_eq!(r, Some((0..30).sum::<u64>()));
        });
    }

    #[test]
    fn steal_path_executes_remote_homes_exactly_once() {
        // All tasks homed on location 0, each sleeping briefly: the other
        // three locations have nothing to do except steal. Verify
        // exactly-once execution plus a nonzero steal count.
        let reports = execute_collect(RtsConfig::default(), 4, |loc| {
            let a = PArray::new(loc, 32, 0u64);
            let v = ArrayView::new(a.clone());
            let mut pr = PRange::new();
            for t in 0..16 {
                pr.add_task(Range1d::new(t * 2, t * 2 + 2), 0, true, TaskKind::Map);
            }
            let rep = Executor::new(&pr, ExecPolicy::default()).run::<(), _>(loc, |task, _| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                for k in task.range.iter() {
                    v.apply(k, |x| *x += 1);
                }
                None
            });
            for i in 0..32 {
                assert_eq!(a.get_element(i), 1, "element {i} must be processed exactly once");
            }
            let snap = loc.stats();
            assert_eq!(snap.tasks_executed, 16);
            assert!(snap.steal_requests > 0);
            rep
        });
        let executed: u64 = reports.iter().map(|r| r.executed).sum();
        let stolen: u64 = reports.iter().map(|r| r.stolen).sum();
        assert_eq!(executed, 16);
        assert!(stolen > 0, "idle locations should have stolen from the loaded one");
        assert_eq!(reports[0].stolen, 0, "the home location cannot steal its own tasks");
    }

    #[test]
    fn stealing_disabled_keeps_tasks_home() {
        let reports = execute_collect(RtsConfig::default(), 3, |loc| {
            let a = PArray::new(loc, 30, 0u64);
            let v = ArrayView::new(a.clone());
            let pr = prange_from_view(&v, 5);
            let my_tasks = pr.tasks().iter().filter(|t| t.home == loc.id()).count() as u64;
            let rep = Executor::new(&pr, ExecPolicy::no_stealing()).run::<(), _>(loc, |task, _| {
                assert_eq!(task.home, loc.id(), "without stealing every task runs at home");
                for k in task.range.iter() {
                    v.apply(k, |x| *x += 1);
                }
                None
            });
            assert_eq!(rep.executed, my_tasks);
            assert_eq!(rep.stolen, 0);
            for i in 0..30 {
                assert_eq!(a.get_element(i), 1);
            }
            assert_eq!(loc.stats().tasks_stolen, 0);
            rep
        });
        // 30 elements at grain 5 -> 6 tasks across the 3 locations.
        assert_eq!(reports.iter().map(|r| r.executed).sum::<u64>(), 6);
    }

    #[test]
    fn non_migratable_tasks_never_move() {
        execute(RtsConfig::default(), 3, |loc| {
            let mut pr = PRange::new();
            for t in 0..9 {
                pr.add_task(Range1d::new(t, t + 1), 0, false, TaskKind::Map);
            }
            Executor::new(&pr, ExecPolicy::default()).run::<(), _>(loc, |task, _| {
                assert_eq!(loc.id(), 0, "non-migratable task {} ran on a thief", task.id);
                std::thread::sleep(std::time::Duration::from_millis(1));
                None
            });
            assert_eq!(loc.stats().tasks_stolen, 0);
        });
    }

    #[test]
    fn dependence_order_holds_under_stealing() {
        // A long chain homed on location 0 with migratable links: no
        // matter who executes each link, the chain order must hold —
        // checked through the flowing payload.
        execute(RtsConfig::default(), 4, |loc| {
            let mut pr = PRange::new();
            let mut prev = None;
            for t in 0..12 {
                let id = pr.add_task(Range1d::new(t, t + 1), 0, true, TaskKind::Map);
                if let Some(p) = prev {
                    pr.add_edge(p, id);
                }
                prev = Some(id);
            }
            let last_out = RefCell::new(None::<u64>);
            Executor::new(&pr, ExecPolicy::default()).run::<u64, _>(loc, |task, inputs| {
                std::thread::sleep(std::time::Duration::from_micros(200));
                let acc = inputs.first().copied().unwrap_or(0);
                let out = acc * 2 + 1;
                if task.id == 11 {
                    *last_out.borrow_mut() = Some(out);
                }
                Some(out)
            });
            // x_{n} = 2 x_{n-1} + 1, x_0 = 1 -> x_11 = 2^12 - 1.
            let r = loc.allreduce(last_out.into_inner(), |a, b| a.or(b));
            assert_eq!(r, Some((1 << 12) - 1));
        });
    }
}
