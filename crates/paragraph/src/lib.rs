//! # stapl-paragraph — the task-dependence-graph execution layer
//!
//! The paper (Chapter III) splits STAPL into a data side — pContainers
//! wrapped by pViews — and an execution side: the **PARAGRAPH**, a task
//! dependence graph scheduled by per-location executors. This crate
//! reproduces that execution side on top of `stapl-rts`:
//!
//! * [`prange::PRange`] — a view's domain coarsened into tasks with
//!   optional dependence edges (successor lists + pending-predecessor
//!   counts), built deterministically on every location;
//! * [`executor::Executor`] — the per-location scheduler: a ready deque
//!   drained between RTS polls, dataflow payloads delivered along edges,
//!   and an **intra-execution work-stealing** path that lets idle
//!   locations pull migratable ready tasks from loaded peers over
//!   synchronous RMIs;
//! * graph factories ([`prange::prange_from_view`],
//!   [`prange::map_task_graph`], [`prange::reduce_task_graph`],
//!   [`prange::pipeline_task_graph`]) that coarsen any
//!   [`ViewRead`](stapl_views::view::ViewRead) into the common shapes.
//!
//! The `_pg` entry points in `stapl-algorithms` (e.g. `p_for_each_pg`,
//! `p_reduce_pg`) port the pAlgorithms onto this executor; the lock-step
//! SPMD versions remain as the fast path for regular workloads. Steal
//! and execution counters are surfaced through
//! [`stapl_rts::StatsSnapshot`].
//!
//! ## Quick example
//!
//! ```
//! use stapl_paragraph::prelude::*;
//! use stapl_rts::{execute, RtsConfig};
//! use stapl_views::array_view::ArrayView;
//! use stapl_views::view::ViewWrite;
//! use stapl_containers::array::PArray;
//!
//! execute(RtsConfig::default(), 2, |loc| {
//!     let a = PArray::new(loc, 16, 0u64);
//!     let v = ArrayView::new(a.clone());
//!     let pr = map_task_graph(&v, 4);       // 4 tasks of 4 elements
//!     let exec = Executor::new(&pr, ExecPolicy::default());
//!     exec.run::<(), _>(loc, |task, _inputs| {
//!         for k in task.range.iter() {
//!             v.apply(k, |x| *x += 1);
//!         }
//!         None
//!     });
//!     use stapl_core::interfaces::ElementRead;
//!     assert_eq!(a.get_element(7), 1);
//! });
//! ```

pub mod executor;
pub mod prange;

pub mod prelude {
    pub use crate::executor::{ExecPolicy, ExecReport, Executor};
    pub use crate::prange::{
        auto_grain, map_task_graph, pipeline_task_graph, prange_from_view, reduce_task_graph,
        PRange, Task, TaskId, TaskKind,
    };
}
