//! pRange: a view's domain partitioned into coarsened tasks, optionally
//! connected by dependence edges.
//!
//! The paper's pRange is the bridge between the data side (pContainers /
//! pViews) and the execution side (the PARAGRAPH): it partitions a view's
//! domain into *tasks* — units of work coarse enough to amortize
//! scheduling — and records the dependences between them as successor
//! lists plus pending-predecessor counts. A pRange with no edges is a
//! parallel-do; a pRange with edges is a task dependence graph the
//! [`Executor`](crate::executor::Executor) schedules in topological
//! order, migrating `migratable` tasks between locations when
//! work-stealing is enabled.
//!
//! Construction is SPMD-deterministic: every location builds the same
//! replicated task list (like a partition, the graph is metadata — the
//! element data stays distributed). The factories at the bottom coarsen
//! any [`ViewRead`] into the common graph shapes: flat map graphs,
//! per-location reduction trees, and stage pipelines.

use stapl_core::domain::Range1d;
use stapl_rts::LocId;
use stapl_views::view::ViewRead;

/// Identifier of a task inside one [`PRange`] (dense, 0-based).
pub type TaskId = usize;

/// Role of a task inside a factory-built graph; workfunctions dispatch on
/// this to decide what a task does with its range and inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TaskKind {
    /// Processes its view-index range; the factories' leaf tasks.
    Map,
    /// Folds the payloads of its predecessors (one per location in
    /// [`reduce_task_graph`]).
    Combine,
    /// Final fold of the per-location combines; homed on location 0.
    Root,
    /// Stage `s` of a pipeline over a fixed chunk ([`pipeline_task_graph`]).
    Stage(u32),
}

/// One schedulable unit: a coarsened range of view indices plus its place
/// in the dependence graph.
#[derive(Clone, Debug)]
pub struct Task {
    /// Position in [`PRange::tasks`].
    pub id: TaskId,
    /// View-index range this task covers (empty for pure graph nodes such
    /// as combine/root tasks).
    pub range: Range1d,
    /// Location whose executor initially owns the task.
    pub home: LocId,
    /// Whether an idle location may steal this task once it is ready.
    /// Tasks whose workfunction touches location-private state (e.g. the
    /// local shard of a MapReduce input) must not migrate.
    pub migratable: bool,
    /// Role tag set by the graph factories.
    pub kind: TaskKind,
    /// Tasks that become runnable (closer) once this one completes.
    pub succs: Vec<TaskId>,
    /// Number of tasks that must complete before this one is ready.
    pub num_preds: usize,
}

/// A replicated task dependence graph over a view's domain.
///
/// Every location holds an identical copy (built deterministically by the
/// same SPMD calls), so task metadata never needs to be communicated —
/// only readiness notifications and payloads flow at run time.
#[derive(Clone, Debug, Default)]
pub struct PRange {
    tasks: Vec<Task>,
}

impl PRange {
    /// An empty graph; add tasks with [`PRange::add_task`].
    pub fn new() -> Self {
        PRange { tasks: Vec::new() }
    }

    /// Appends a task with no dependences and returns its id.
    pub fn add_task(
        &mut self,
        range: Range1d,
        home: LocId,
        migratable: bool,
        kind: TaskKind,
    ) -> TaskId {
        let id = self.tasks.len();
        self.tasks.push(Task { id, range, home, migratable, kind, succs: Vec::new(), num_preds: 0 });
        id
    }

    /// Adds a dependence edge: `succ` may not start before `pred`
    /// completes.
    ///
    /// # Panics
    /// Panics if either id is out of range or the edge is a self-loop.
    pub fn add_edge(&mut self, pred: TaskId, succ: TaskId) {
        assert!(pred < self.tasks.len() && succ < self.tasks.len(), "edge endpoint out of range");
        assert_ne!(pred, succ, "self-dependence would deadlock the executor");
        self.tasks[pred].succs.push(succ);
        self.tasks[succ].num_preds += 1;
    }

    /// All tasks, indexed by [`TaskId`].
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// The task with id `id`.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id]
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.tasks.len()
    }

    /// True when the graph has no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Total number of view indices covered by all task ranges.
    pub fn total_elements(&self) -> usize {
        self.tasks.iter().map(|t| t.range.len()).sum()
    }

    /// Kahn's algorithm: true when the dependence edges admit a schedule
    /// (no cycle). `Executor::new` asserts this in every build — cyclic
    /// tasks never become ready, so running one would spin forever.
    pub fn is_acyclic(&self) -> bool {
        let mut preds: Vec<usize> = self.tasks.iter().map(|t| t.num_preds).collect();
        let mut ready: Vec<TaskId> = (0..preds.len()).filter(|&t| preds[t] == 0).collect();
        let mut seen = 0usize;
        while let Some(t) = ready.pop() {
            seen += 1;
            for &s in &self.tasks[t].succs {
                preds[s] -= 1;
                if preds[s] == 0 {
                    ready.push(s);
                }
            }
        }
        seen == self.tasks.len()
    }
}

/// Default coarsening: about sixteen tasks per location, at least one
/// element per task — enough surplus tasks for stealing to balance skew
/// (and for steal probes, which victims only answer between task bodies,
/// to be serviced promptly) without drowning in per-task overhead.
pub fn auto_grain(len: usize, nlocs: usize) -> usize {
    len.div_ceil(nlocs * 16).max(1)
}

fn push_split(pr: &mut PRange, r: Range1d, grain: usize, home: LocId, kind: TaskKind) -> Vec<TaskId> {
    let mut ids = Vec::new();
    let mut lo = r.lo;
    while lo < r.hi {
        let hi = (lo + grain).min(r.hi);
        ids.push(pr.add_task(Range1d::new(lo, hi), home, true, kind));
        lo = hi;
    }
    ids
}

/// **Collective.** Coarsens `v`'s domain into an edge-free pRange: each
/// location's [`ViewRead::local_chunks`] are split into tasks of at most
/// `grain` indices, homed on that location and migratable. Pass `0` for
/// the [`auto_grain`] default.
///
/// The per-location chunk lists are allgathered so every location builds
/// the identical replicated graph.
pub fn prange_from_view<V: ViewRead>(v: &V, grain: usize) -> PRange {
    let loc = v.location();
    let grain = if grain == 0 { auto_grain(v.len(), loc.nlocs()) } else { grain };
    let mine: Vec<Range1d> = v.local_chunks();
    let all: Vec<Vec<Range1d>> = loc.allgather(mine);
    let mut pr = PRange::new();
    for (home, chunks) in all.iter().enumerate() {
        for &c in chunks {
            push_split(&mut pr, c, grain, home, TaskKind::Map);
        }
    }
    pr
}

/// **Collective.** The parallel-do graph behind `p_for_each_pg` and
/// friends: an alias of [`prange_from_view`], named for symmetry with the
/// other factories.
pub fn map_task_graph<V: ViewRead>(v: &V, grain: usize) -> PRange {
    prange_from_view(v, grain)
}

/// **Collective.** A two-level reduction tree: migratable leaf tasks per
/// [`prange_from_view`], a non-migratable [`TaskKind::Combine`] task per
/// location folding that location's leaf payloads, and a single
/// [`TaskKind::Root`] task on location 0 folding the combines. Empty for
/// an empty view.
pub fn reduce_task_graph<V: ViewRead>(v: &V, grain: usize) -> PRange {
    let loc = v.location();
    let mut pr = prange_from_view(v, grain);
    if pr.is_empty() {
        return pr;
    }
    let nlocs = loc.nlocs();
    let mut combines: Vec<TaskId> = Vec::new();
    for home in 0..nlocs {
        let leaves: Vec<TaskId> =
            pr.tasks().iter().filter(|t| t.home == home).map(|t| t.id).collect();
        if leaves.is_empty() {
            continue;
        }
        let c = pr.add_task(Range1d::new(0, 0), home, false, TaskKind::Combine);
        for l in leaves {
            pr.add_edge(l, c);
        }
        combines.push(c);
    }
    let root = pr.add_task(Range1d::new(0, 0), 0, false, TaskKind::Root);
    for c in combines {
        pr.add_edge(c, root);
    }
    pr
}

/// **Collective.** A `stages`-deep pipeline: the view's chunks become one
/// column of tasks per stage, with task `(s, chunk)` depending on
/// `(s-1, chunk)` — so different chunks flow through different stages
/// concurrently. Stage tasks carry [`TaskKind::Stage`] and are
/// migratable.
pub fn pipeline_task_graph<V: ViewRead>(v: &V, grain: usize, stages: u32) -> PRange {
    assert!(stages >= 1, "a pipeline needs at least one stage");
    let loc = v.location();
    let grain = if grain == 0 { auto_grain(v.len(), loc.nlocs()) } else { grain };
    let all: Vec<Vec<Range1d>> = loc.allgather(v.local_chunks());
    let mut pr = PRange::new();
    let mut prev_stage: Vec<TaskId> = Vec::new();
    for s in 0..stages {
        let mut this_stage = Vec::new();
        for (home, chunks) in all.iter().enumerate() {
            for &c in chunks {
                this_stage.extend(push_split(&mut pr, c, grain, home, TaskKind::Stage(s)));
            }
        }
        if s > 0 {
            debug_assert_eq!(prev_stage.len(), this_stage.len());
            for (&p, &q) in prev_stage.iter().zip(&this_stage) {
                pr.add_edge(p, q);
            }
        }
        prev_stage = this_stage;
    }
    pr
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::array::PArray;
    use stapl_rts::{execute, RtsConfig};
    use stapl_views::array_view::ArrayView;

    #[test]
    fn builder_tracks_edges_and_preds() {
        let mut pr = PRange::new();
        let a = pr.add_task(Range1d::new(0, 4), 0, true, TaskKind::Map);
        let b = pr.add_task(Range1d::new(4, 8), 1, true, TaskKind::Map);
        let c = pr.add_task(Range1d::new(0, 0), 0, false, TaskKind::Combine);
        pr.add_edge(a, c);
        pr.add_edge(b, c);
        assert_eq!(pr.num_tasks(), 3);
        assert_eq!(pr.task(c).num_preds, 2);
        assert_eq!(pr.task(a).succs, vec![c]);
        assert_eq!(pr.total_elements(), 8);
        assert!(pr.is_acyclic());
    }

    #[test]
    fn cycle_is_detected() {
        let mut pr = PRange::new();
        let a = pr.add_task(Range1d::new(0, 1), 0, true, TaskKind::Map);
        let b = pr.add_task(Range1d::new(1, 2), 0, true, TaskKind::Map);
        pr.add_edge(a, b);
        pr.add_edge(b, a);
        assert!(!pr.is_acyclic());
    }

    #[test]
    #[should_panic(expected = "self-dependence")]
    fn self_edge_panics() {
        let mut pr = PRange::new();
        let a = pr.add_task(Range1d::new(0, 1), 0, true, TaskKind::Map);
        pr.add_edge(a, a);
    }

    #[test]
    fn from_view_covers_domain_and_replicates() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::from_fn(loc, 50, |i| i as u64);
            let v = ArrayView::new(a);
            let pr = prange_from_view(&v, 7);
            // Replicated: every location builds the same graph.
            let sizes = loc.allgather(pr.num_tasks());
            assert!(sizes.iter().all(|&s| s == sizes[0]));
            // Coverage: task ranges tile [0, 50) exactly once.
            let mut seen = [0u8; 50];
            for t in pr.tasks() {
                assert!(t.range.len() <= 7);
                assert!(t.migratable);
                for k in t.range.iter() {
                    seen[k] += 1;
                }
            }
            assert!(seen.iter().all(|&c| c == 1));
            assert_eq!(pr.total_elements(), 50);
            // Homes follow the native chunks.
            for t in pr.tasks() {
                assert!(t.home < loc.nlocs());
            }
        });
    }

    #[test]
    fn auto_grain_bounds() {
        assert_eq!(auto_grain(0, 4), 1);
        assert_eq!(auto_grain(32, 4), 1);
        assert_eq!(auto_grain(64, 2), 2);
        assert_eq!(auto_grain(1024, 4), 16);
        assert!(auto_grain(1_000_000, 4) >= 1);
    }

    #[test]
    fn reduce_graph_shape() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 20, |i| i as u64);
            let v = ArrayView::new(a);
            let pr = reduce_task_graph(&v, 5);
            assert!(pr.is_acyclic());
            let combines: Vec<_> =
                pr.tasks().iter().filter(|t| t.kind == TaskKind::Combine).collect();
            let roots: Vec<_> = pr.tasks().iter().filter(|t| t.kind == TaskKind::Root).collect();
            assert_eq!(combines.len(), 2, "one combine per location with leaves");
            assert_eq!(roots.len(), 1);
            assert_eq!(roots[0].home, 0);
            assert!(!roots[0].migratable);
            assert_eq!(roots[0].num_preds, 2);
            // Every leaf feeds its home's combine.
            for t in pr.tasks().iter().filter(|t| t.kind == TaskKind::Map) {
                assert_eq!(t.succs.len(), 1);
                assert_eq!(pr.task(t.succs[0]).home, t.home);
            }
            let _ = loc;
        });
    }

    #[test]
    fn pipeline_graph_chains_stages() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 12, |i| i as u64);
            let v = ArrayView::new(a);
            let pr = pipeline_task_graph(&v, 3, 4);
            assert!(pr.is_acyclic());
            let per_stage = pr.num_tasks() / 4;
            for t in pr.tasks() {
                match t.kind {
                    TaskKind::Stage(0) => assert_eq!(t.num_preds, 0),
                    TaskKind::Stage(_) => assert_eq!(t.num_preds, 1),
                    other => panic!("unexpected kind {other:?}"),
                }
                if let TaskKind::Stage(s) = t.kind {
                    if s < 3 {
                        assert_eq!(t.succs.len(), 1);
                        // Successor is the same chunk in the next stage.
                        let succ = pr.task(t.succs[0]);
                        assert_eq!(succ.range, t.range);
                        assert_eq!(succ.kind, TaskKind::Stage(s + 1));
                        assert_eq!(succ.id, t.id + per_stage);
                    }
                }
            }
            let _ = loc;
        });
    }

    #[test]
    fn empty_view_gives_empty_graph() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::new(loc, 0, 0u64);
            let v = ArrayView::new(a);
            assert!(prange_from_view(&v, 0).is_empty());
            assert!(reduce_task_graph(&v, 0).is_empty());
            let _ = loc;
        });
    }
}
