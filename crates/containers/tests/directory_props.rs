//! Property tests for the directory's resolution protocols: on a random
//! insert/erase/update/lookup workload with vertex *migrations*
//! interleaved, `Resolution::Forwarding` and `Resolution::TwoPhase` must
//! produce identical final states — with the owner cache enabled and
//! disabled — and every synchronous read along the way must agree with a
//! sequential model (stale cache entries may add hops, never wrong
//! answers).

use std::collections::HashMap;

use proptest::prelude::*;
use stapl_containers::graph::{Directedness, GraphPartitionKind, PGraph};
use stapl_rts::{execute_collect, RtsConfig};

/// One fuzzed step, interpreted against a replicated model so every op is
/// valid: (selector, vertex, value, migration destination).
type RawOp = (usize, usize, u64, usize);

const VD_SPACE: usize = 12;

/// Runs the workload on a dynamic pGraph under the given resolution
/// protocol and cache setting; returns the final (descriptor, property)
/// state, sorted.
fn run_workload(
    p: usize,
    kind: GraphPartitionKind,
    dir_cache: bool,
    ops: Vec<RawOp>,
) -> Vec<(usize, u64)> {
    let cfg = RtsConfig { dir_cache, ..RtsConfig::base() };
    execute_collect(cfg, p, move |loc| {
        let g: PGraph<u64, ()> = PGraph::new_dynamic(loc, Directedness::Directed, kind);
        loc.rmi_fence();
        // The model is maintained identically on every location (SPMD), so
        // each location knows which ops are valid without communication.
        let mut model: HashMap<usize, u64> = HashMap::new();
        for (i, &(sel, vd, val, dest)) in ops.iter().enumerate() {
            let issuer = i % loc.nlocs();
            let vd = vd % VD_SPACE;
            let dest = dest % loc.nlocs();
            match sel % 5 {
                0 => {
                    model.entry(vd).or_insert_with(|| {
                        if loc.id() == issuer {
                            g.add_vertex_with_descriptor(vd, val);
                        }
                        val
                    });
                }
                1 => {
                    if model.contains_key(&vd) {
                        if loc.id() == issuer {
                            g.delete_vertex(vd);
                        }
                        model.remove(&vd);
                    }
                }
                2 => {
                    if model.contains_key(&vd) {
                        if loc.id() == issuer {
                            g.set_vertex_property(vd, val);
                        }
                        model.insert(vd, val);
                    }
                }
                3 => {
                    // Migration: ownership moves, every peer's cached owner
                    // for `vd` goes stale.
                    if model.contains_key(&vd) && loc.id() == issuer {
                        g.migrate_vertex(vd, dest);
                    }
                }
                _ => {
                    // Synchronous read from *every* location — exercises
                    // hits, misses, and stale self-healing concurrently.
                    if let Some(&expect) = model.get(&vd) {
                        assert_eq!(
                            g.vertex_property(vd),
                            expect,
                            "read of vd {vd} diverged from the model (kind {kind:?}, \
                             cache {dir_cache})"
                        );
                    }
                }
            }
            loc.rmi_fence();
        }
        let mut local: Vec<(usize, u64)> = Vec::new();
        g.for_each_local_vertex(|v| local.push((v.descriptor, v.property)));
        let mut all = loc.allreduce(local, |mut a: Vec<(usize, u64)>, mut b| {
            a.append(&mut b);
            a
        });
        all.sort_unstable();
        let mut want: Vec<(usize, u64)> = model.into_iter().collect();
        want.sort_unstable();
        assert_eq!(all, want, "final state diverged from the model");
        all
    })
    .remove(0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Both resolution protocols, each with the owner cache on and off,
    /// must agree with each other and with the sequential model on any
    /// workload of inserts/erases/updates/lookups with migrations
    /// interleaved.
    #[test]
    fn forwarding_and_two_phase_agree_with_and_without_cache(
        p in 2usize..4,
        ops in proptest::collection::vec(
            (0usize..100, 0usize..100, 0u64..1000, 0usize..100),
            4..16,
        ),
    ) {
        let mut results = Vec::new();
        for kind in [GraphPartitionKind::DynamicFwd, GraphPartitionKind::DynamicTwoPhase] {
            for dir_cache in [true, false] {
                results.push((
                    kind,
                    dir_cache,
                    run_workload(p, kind, dir_cache, ops.clone()),
                ));
            }
        }
        let (k0, c0, first) = &results[0];
        for (kind, cache, state) in &results[1..] {
            prop_assert_eq!(
                state, first,
                "({:?}, cache {}) diverged from ({:?}, cache {})",
                kind, cache, k0, c0
            );
        }
    }
}
