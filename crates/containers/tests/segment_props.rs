//! Property tests for the dynamic-container segmented transport: the
//! segment-at-a-time paths (`get_segment`/`set_segment`/`append_segment`/
//! `merge_segment` and the segmented algorithms) must agree with the
//! element-wise baselines on random pList/pAssoc workloads — with random
//! slab migrations thrown in, owner cache on and off, P ∈ {1..4} (the
//! mirror of PR 4's `bulk_props.rs` for the non-indexed containers).

use proptest::prelude::*;
use stapl_algorithms::segmented::{p_copy_segmented, p_equal_segmented, p_reduce_segmented};
use stapl_containers::associative::PHashMap;
use stapl_containers::list::PList;
use stapl_core::interfaces::{
    AssociativeContainer, LocalIteration, PContainer, SegmentedContainer,
};
use stapl_rts::{execute, RtsConfig};

fn cfg(cache: bool) -> RtsConfig {
    RtsConfig { dir_cache: cache, ..RtsConfig::base() }
}

/// Builds a pList with `per` elements pushed on every location, then
/// applies the fuzzed slab migrations (issued by location 0).
fn fuzzed_list(
    loc: &stapl_rts::Location,
    per: usize,
    bpl: usize,
    migrations: &[(usize, usize)],
    value_of: impl Fn(usize, usize) -> u64,
) -> PList<u64> {
    let l: PList<u64> = PList::with_bcontainers(loc, bpl);
    for i in 0..per {
        l.push_anywhere(value_of(loc.id(), i));
    }
    l.commit();
    if loc.id() == 0 {
        for (slab_pick, dest_pick) in migrations {
            let sid = slab_pick % (loc.nlocs() * bpl);
            l.migrate_bcontainer(sid, dest_pick % loc.nlocs());
        }
    }
    loc.rmi_fence();
    l
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Concatenating `get_segment` over all slabs (from any location)
    /// reproduces exactly the element-wise global linearization, under
    /// random migrations, with the owner cache on and off.
    #[test]
    fn plist_segment_reads_agree_with_elementwise(
        per in 0usize..6,
        p in 1usize..5,
        bpl in 1usize..3,
        cache_pick in 0usize..2,
        migrations in proptest::collection::vec((0usize..64, 0usize..4), 0..4),
    ) {
        execute(cfg(cache_pick == 1), p, |loc| {
            let l = fuzzed_list(loc, per, bpl, &migrations, |id, i| (id * 100 + i) as u64);
            // Element-wise model: local iteration allgathered and ordered
            // by (bcid, seq) — the global linearization.
            let mut mine: Vec<(usize, u64, u64)> = Vec::new();
            l.for_each_local(|g, v| mine.push((g.bcid, g.seq, *v)));
            let mut model = loc.allreduce(mine, |mut a, mut b| {
                a.append(&mut b);
                a
            });
            model.sort_unstable();
            // Segmented traversal: one bulk read per slab, every location.
            let mut seg: Vec<(usize, u64, u64)> = Vec::new();
            for sid in l.segments() {
                for (s, v) in l.get_segment(sid) {
                    seg.push((sid, s, v));
                }
            }
            assert_eq!(seg, model, "segment reads disagree with element-wise model");
            // And the gather-based collector agrees with both.
            let vals: Vec<u64> = model.iter().map(|(_, _, v)| *v).collect();
            assert_eq!(l.collect_ordered(), vals);
            loc.barrier();
        });
    }

    /// Segmented copy between twin pLists (dst slabs randomly migrated)
    /// equals the element-wise baseline copy; `p_equal_segmented` and
    /// `p_reduce_segmented` agree with their element-wise counterparts.
    #[test]
    fn plist_segmented_copy_agrees_with_elementwise(
        per in 0usize..6,
        p in 1usize..5,
        bpl in 1usize..3,
        cache_pick in 0usize..2,
        migrations in proptest::collection::vec((0usize..64, 0usize..4), 0..4),
    ) {
        execute(cfg(cache_pick == 1), p, |loc| {
            let src = fuzzed_list(loc, per, bpl, &[], |id, i| (id * 100 + i) as u64 + 1);
            let dst_seg = fuzzed_list(loc, per, bpl, &migrations, |_, _| 0);
            let dst_elem = fuzzed_list(loc, per, bpl, &migrations, |_, _| 0);
            p_copy_segmented(&src, &dst_seg);
            stapl_algorithms::map_func::p_copy_elementwise(&src, &dst_elem);
            assert_eq!(dst_seg.collect_ordered(), src.collect_ordered());
            assert_eq!(dst_elem.collect_ordered(), src.collect_ordered());
            assert!(p_equal_segmented(&src, &dst_seg));
            assert!(p_equal_segmented(&dst_seg, &dst_elem));
            let seg_sum = p_reduce_segmented(&src, |_, v| *v, |a, b| a + b);
            let elem_sum = stapl_algorithms::map_func::p_reduce(&src, |_, v| *v, |a, b| a + b);
            assert_eq!(seg_sum, elem_sum);
            loc.barrier();
        });
    }

    /// pAssoc: bucket-grained `append_segment`/`merge_segment` produce the
    /// same container as element-wise `insert_async`/`apply_or_insert` on
    /// random key/value workloads with random bucket counts.
    #[test]
    fn passoc_segmented_writes_agree_with_elementwise(
        p in 1usize..5,
        buckets in 1usize..7,
        cache_pick in 0usize..2,
        pairs in proptest::collection::vec((0u64..40, 0u64..1000), 0..24),
    ) {
        execute(cfg(cache_pick == 1), p, |loc| {
            let bulk: PHashMap<u64, u64> = PHashMap::with_buckets(loc, buckets);
            let elem: PHashMap<u64, u64> = PHashMap::with_buckets(loc, buckets);
            // One writer so duplicate keys resolve last-write-wins
            // identically on both sides (bucket groups preserve emission
            // order within a bucket).
            if loc.id() == 0 {
                let mut groups: std::collections::HashMap<usize, Vec<(u64, u64)>> =
                    Default::default();
                for (k, v) in &pairs {
                    groups.entry(bulk.bucket_of(k)).or_default().push((*k, *v));
                }
                for (sid, items) in groups {
                    bulk.append_segment(sid, items);
                }
                for (k, v) in &pairs {
                    elem.insert_async(*k, *v);
                }
            }
            bulk.commit();
            elem.commit();
            assert_eq!(bulk.global_size(), elem.global_size());
            assert!(
                p_equal_segmented(&bulk, &elem),
                "append_segment disagrees with insert_async"
            );
            loc.barrier();
            // Combining writes: merge_segment vs apply_or_insert, from
            // every location concurrently (commutative combine).
            let mut groups: std::collections::HashMap<usize, Vec<(u64, u64)>> = Default::default();
            for (k, _) in &pairs {
                groups.entry(bulk.bucket_of(k)).or_default().push((*k, 1));
            }
            for (sid, items) in groups {
                bulk.merge_segment(sid, items, 0, |a, b| *a += b);
            }
            for (k, _) in &pairs {
                elem.apply_or_insert(*k, 0, |v| *v += 1);
            }
            bulk.commit();
            elem.commit();
            assert!(
                p_equal_segmented(&bulk, &elem),
                "merge_segment disagrees with apply_or_insert"
            );
            loc.barrier();
        });
    }
}
