//! Property tests for pArray redistribution (Section V.G): moving data
//! to a random partition/placement — and rotating, and rebalancing back —
//! must preserve every element.

use proptest::prelude::*;
use stapl_containers::array::PArray;
use stapl_core::interfaces::{ElementRead, PContainer};
use stapl_core::mapper::{CyclicMapper, GeneralMapper, PartitionMapper};
use stapl_core::partition::{
    BalancedPartition, BlockCyclicPartition, BlockedPartition, ExplicitPartition, IndexPartition,
};
use stapl_rts::{execute, RtsConfig};

/// Builds one of the partition families over `[0, n)` from fuzzed
/// parameters, never empty-sub-domain-free by construction.
fn make_partition(n: usize, family: usize, a: usize, b: usize) -> Box<dyn IndexPartition> {
    match family % 4 {
        0 => Box::new(BalancedPartition::new(n, a % 5 + 1)),
        1 => Box::new(BlockedPartition::new(n, a % 7 + 1)),
        2 => Box::new(BlockCyclicPartition::new(n, a % 4 + 1, b % 5 + 1)),
        _ => {
            // Explicit partition from random cut points.
            let mut cuts: Vec<usize> = vec![a % n, b % n, (a + b) % n];
            cuts.push(n);
            cuts.sort_unstable();
            cuts.dedup();
            let mut sizes = Vec::new();
            let mut prev = 0;
            for c in cuts {
                if c > prev {
                    sizes.push(c - prev);
                    prev = c;
                }
            }
            if sizes.is_empty() {
                sizes.push(n);
            }
            Box::new(ExplicitPartition::from_sizes(&sizes))
        }
    }
}

/// A mapper for `parts` sub-domains over `nlocs` locations: cyclic or a
/// fuzzed explicit assignment.
fn make_mapper(parts: usize, nlocs: usize, style: usize, seed: &[usize]) -> Box<dyn PartitionMapper> {
    if style % 2 == 0 || seed.is_empty() {
        Box::new(CyclicMapper::new(nlocs))
    } else {
        let assignment: Vec<usize> = (0..parts).map(|i| seed[i % seed.len()] % nlocs).collect();
        Box::new(GeneralMapper::new(nlocs, assignment))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round trip: redistribute to a random (partition, mapper), rotate,
    /// then rebalance — every element must survive every hop.
    #[test]
    fn redistribute_rotate_rebalance_preserve_elements(
        n in 3usize..70,
        p in 2usize..4,
        family in 0usize..4,
        a in 1usize..100,
        b in 1usize..100,
        style in 0usize..2,
        shift in 0usize..7,
        seed in proptest::collection::vec(0usize..97, 1..6),
    ) {
        execute(RtsConfig::default(), p, |loc| {
            let arr = PArray::from_fn(loc, n, |i| i as u64 * 13 + 5);
            let check = |stage: &str| {
                for i in 0..n {
                    assert_eq!(arr.get_element(i), i as u64 * 13 + 5, "{stage}: element {i}");
                }
                assert_eq!(arr.global_size(), n);
                let local = loc.allreduce_sum(arr.local_size() as u64);
                assert_eq!(local as usize, n, "{stage}: local sizes must sum to n");
            };
            check("initial");
            let part = make_partition(n, family, a, b);
            let mapper = make_mapper(part.num_subdomains(), loc.nlocs(), style, &seed);
            arr.redistribute(part, mapper);
            check("after redistribute");
            arr.rotate(shift);
            check("after rotate");
            arr.rebalance();
            check("after rebalance");
        });
    }
}
