//! Property tests for the bulk-range transport: `get_range`/`set_range`/
//! `apply_range` and the localized chunk iteration must agree with the
//! element-wise baseline across random partitions (balanced / blocked /
//! block-cyclic / explicit), mappers, sub-ranges, and P ∈ {1..4}.

use proptest::prelude::*;
use stapl_containers::array::PArray;
use stapl_core::domain::Range1d;
use stapl_core::interfaces::{ElementRead, LocalIteration, RangedContainer};
use stapl_core::mapper::{CyclicMapper, GeneralMapper, PartitionMapper};
use stapl_core::partition::{
    BalancedPartition, BlockCyclicPartition, BlockedPartition, ExplicitPartition, IndexPartition,
};
use stapl_rts::{execute, RtsConfig};

/// Builds one of the partition families over `[0, n)` from fuzzed
/// parameters (same shapes the redistribute properties fuzz).
fn make_partition(n: usize, family: usize, a: usize, b: usize) -> Box<dyn IndexPartition> {
    match family % 4 {
        0 => Box::new(BalancedPartition::new(n, a % 5 + 1)),
        1 => Box::new(BlockedPartition::new(n, a % 7 + 1)),
        2 => Box::new(BlockCyclicPartition::new(n, a % 4 + 1, b % 5 + 1)),
        _ => {
            let mut cuts: Vec<usize> = vec![a % n, b % n, (a + b) % n];
            cuts.push(n);
            cuts.sort_unstable();
            cuts.dedup();
            let mut sizes = Vec::new();
            let mut prev = 0;
            for c in cuts {
                if c > prev {
                    sizes.push(c - prev);
                    prev = c;
                }
            }
            if sizes.is_empty() {
                sizes.push(n);
            }
            Box::new(ExplicitPartition::from_sizes(&sizes))
        }
    }
}

fn make_mapper(parts: usize, nlocs: usize, style: usize, seed: &[usize]) -> Box<dyn PartitionMapper> {
    if style % 2 == 0 || seed.is_empty() {
        Box::new(CyclicMapper::new(nlocs))
    } else {
        let assignment: Vec<usize> = (0..parts).map(|i| seed[i % seed.len()] % nlocs).collect();
        Box::new(GeneralMapper::new(nlocs, assignment))
    }
}

fn fuzzed_array(
    loc: &stapl_rts::Location,
    n: usize,
    family: usize,
    a: usize,
    b: usize,
    style: usize,
    seed: &[usize],
) -> PArray<u64> {
    let part = make_partition(n, family, a, b);
    let mapper = make_mapper(part.num_subdomains(), loc.nlocs(), style, seed);
    let arr = PArray::with_partition(loc, part, mapper, 0u64);
    arr.for_each_local_mut(|g, v| *v = g as u64 * 7 + 3);
    loc.barrier();
    arr
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `get_range` over a random sub-range equals element-wise gets, from
    /// every location, under every fuzzed placement.
    #[test]
    fn get_range_agrees_with_elementwise(
        n in 3usize..60,
        p in 1usize..5,
        family in 0usize..4,
        a in 1usize..100,
        b in 1usize..100,
        style in 0usize..2,
        lo_pick in 0usize..100,
        hi_pick in 0usize..100,
        seed in proptest::collection::vec(0usize..97, 1..6),
    ) {
        let lo = lo_pick % n;
        let hi = lo + hi_pick % (n - lo + 1);
        execute(RtsConfig::default(), p, |loc| {
            let arr = fuzzed_array(loc, n, family, a, b, style, &seed);
            let bulk = arr.get_range(Range1d::new(lo, hi));
            let baseline: Vec<u64> = (lo..hi).map(|g| arr.get_element(g)).collect();
            assert_eq!(bulk, baseline, "get_range([{lo},{hi})) disagrees with element gets");
            // Runs cover the range exactly, in order.
            let runs = arr.runs(Range1d::new(lo, hi));
            let mut g = lo;
            for run in &runs {
                assert_eq!(run.gids.lo, g);
                g = run.gids.hi;
            }
            assert_eq!(g, hi.max(lo));
            loc.barrier();
        });
    }

    /// `set_range` + `apply_range` from one location agree with a
    /// sequential model array.
    #[test]
    fn set_and_apply_range_agree_with_model(
        n in 3usize..60,
        p in 1usize..5,
        family in 0usize..4,
        a in 1usize..100,
        b in 1usize..100,
        style in 0usize..2,
        lo_pick in 0usize..100,
        hi_pick in 0usize..100,
        writer in 0usize..4,
        seed in proptest::collection::vec(0usize..97, 1..6),
    ) {
        let lo = lo_pick % n;
        let hi = lo + hi_pick % (n - lo + 1);
        execute(RtsConfig::default(), p, |loc| {
            let arr = fuzzed_array(loc, n, family, a, b, style, &seed);
            // Sequential model.
            let mut model: Vec<u64> = (0..n).map(|g| g as u64 * 7 + 3).collect();
            for (k, m) in model.iter_mut().enumerate().take(hi).skip(lo) {
                *m = k as u64 + 100;
            }
            for (k, m) in model.iter_mut().enumerate().take(hi).skip(lo) {
                *m += k as u64 % 5;
            }
            if loc.id() == writer % loc.nlocs() {
                arr.set_range(lo, (lo..hi).map(|k| k as u64 + 100).collect());
                arr.apply_range(Range1d::new(lo, hi), |g, v| *v += g as u64 % 5);
            }
            loc.rmi_fence();
            for (g, expect) in model.iter().enumerate() {
                assert_eq!(arr.get_element(g), *expect, "element {g} after bulk writes");
            }
            loc.barrier();
        });
    }

    /// Localized `p_copy` between two *differently* fuzzed placements
    /// equals the element-wise baseline copy.
    #[test]
    fn localized_copy_agrees_with_elementwise(
        n in 3usize..60,
        p in 1usize..5,
        fam_src in 0usize..4,
        fam_dst in 0usize..4,
        a in 1usize..100,
        b in 1usize..100,
        style in 0usize..2,
        seed in proptest::collection::vec(0usize..97, 1..6),
    ) {
        execute(RtsConfig::default(), p, |loc| {
            let src = fuzzed_array(loc, n, fam_src, a, b, style, &seed);
            let dst_bulk = PArray::with_partition(
                loc,
                make_partition(n, fam_dst, b, a),
                make_mapper(make_partition(n, fam_dst, b, a).num_subdomains(), loc.nlocs(), style + 1, &seed),
                0u64,
            );
            let dst_base = PArray::with_partition(
                loc,
                make_partition(n, fam_dst, b, a),
                make_mapper(make_partition(n, fam_dst, b, a).num_subdomains(), loc.nlocs(), style + 1, &seed),
                0u64,
            );
            stapl_algorithms::map_func::p_copy(&src, &dst_bulk);
            stapl_algorithms::map_func::p_copy_elementwise(&src, &dst_base);
            for g in 0..n {
                let expect = g as u64 * 7 + 3;
                assert_eq!(dst_bulk.get_element(g), expect, "bulk copy element {g}");
                assert_eq!(dst_base.get_element(g), expect, "baseline copy element {g}");
            }
            assert!(stapl_algorithms::map_func::p_equal(&src, &dst_bulk));
            loc.barrier();
        });
    }
}
