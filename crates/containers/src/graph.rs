//! pGraph (Chapter XI): a distributed relational pContainer — vertices,
//! edges, and properties on both.
//!
//! Vertices are distributed over locations; each vertex stores its
//! out-edge list (adjacency-list storage, the pVector-of-pLists layout the
//! paper motivates). Three address-resolution strategies are provided,
//! matching the partitions compared in Figs. 51/52:
//!
//! * [`GraphPartitionKind::Static`] — the vertex count is fixed at
//!   construction; vertex → location is a closed-form balanced partition
//!   (`add_vertex` panics, as the paper specifies for static pGraphs);
//! * [`GraphPartitionKind::DynamicFwd`] — vertices are created/deleted at
//!   runtime; resolution goes through the distributed directory with
//!   *method forwarding*;
//! * [`GraphPartitionKind::DynamicTwoPhase`] — same directory, but the
//!   requester performs a synchronous lookup first ("no forwarding").
//!
//! Operations on a vertex that is already local bypass resolution entirely
//! (the local fast path).

use std::collections::BTreeMap;

use stapl_core::bcontainer::{BaseContainer, MemSize};
use stapl_core::directory::{
    dir_insert, dir_insert_bulk, dir_migrate, dir_remove, dir_route, dir_route_ret,
    DirectoryShard, HasDirectory, OwnerCache, Resolution,
};
use stapl_core::interfaces::{PContainer, RelationalContainer, SegmentId, SegmentedContainer};
use stapl_core::partition::{BalancedPartition, IndexPartition};
use stapl_core::pobject::PObject;
use stapl_rts::{LocId, Location, RmiFuture};

/// Vertex descriptor (the vertex GID).
pub type VertexDesc = usize;

/// A directed edge with a property (Table XXVI's edge reference).
#[derive(Clone, Debug, PartialEq)]
pub struct Edge<EP> {
    pub source: VertexDesc,
    pub target: VertexDesc,
    pub property: EP,
}

/// A vertex with property and out-edge list (Table XXV's vertex
/// reference).
#[derive(Clone, Debug)]
pub struct Vertex<VP, EP> {
    pub descriptor: VertexDesc,
    pub property: VP,
    pub edges: Vec<Edge<EP>>,
}

impl<VP, EP> Vertex<VP, EP> {
    pub fn out_degree(&self) -> usize {
        self.edges.len()
    }
}

/// Direction semantics: undirected graphs store each edge at both
/// endpoints (so traversals see it from either side).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Directedness {
    Directed,
    Undirected,
}

/// Which address-resolution strategy the pGraph uses (Fig. 51/52).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphPartitionKind {
    Static,
    DynamicFwd,
    DynamicTwoPhase,
}

/// Graph base container: the vertices owned by one location, ordered by
/// descriptor for deterministic iteration.
pub struct GraphBc<VP, EP> {
    vertices: BTreeMap<VertexDesc, Vertex<VP, EP>>,
}

impl<VP: 'static, EP: 'static> BaseContainer for GraphBc<VP, EP> {
    type Value = Vertex<VP, EP>;

    fn len(&self) -> usize {
        self.vertices.len()
    }

    fn clear(&mut self) {
        self.vertices.clear();
    }

    fn memory_size(&self) -> MemSize {
        let per_vertex = std::mem::size_of::<Vertex<VP, EP>>() + 4 * std::mem::size_of::<usize>();
        let edges: usize = self.vertices.values().map(|v| v.edges.capacity()).sum();
        MemSize::new(
            self.vertices.len() * 4 * std::mem::size_of::<usize>(),
            self.vertices.len() * per_vertex + edges * std::mem::size_of::<Edge<EP>>(),
        )
    }
}

/// Per-location representative.
pub struct GraphRep<VP, EP> {
    bc: GraphBc<VP, EP>,
    dir: DirectoryShard<VertexDesc>,
    /// This location's cached `vd → owner` resolutions (the locality
    /// layer); stale entries self-heal through the home location.
    cache: OwnerCache<VertexDesc>,
    kind: GraphPartitionKind,
    directedness: Directedness,
    /// Balanced vertex partition for static graphs.
    static_partition: Option<BalancedPartition>,
    nlocs: usize,
    /// Next locally generated descriptor: id + k·nlocs.
    next_vd: usize,
    cached_nvertices: usize,
    cached_nedges: usize,
    /// Set on every count-changing mutation — at the issuing location when
    /// the op is sent, and at the owning location when it lands — so
    /// `num_vertices`/`num_edges` reads can tell the cached counts may be
    /// stale. Cleared only by `commit()` (the collective refresh).
    counts_dirty: bool,
    /// Bumped whenever this location's vertex-partition membership changes
    /// through migration (the segment-placement epoch).
    segment_epoch: u64,
}

impl<VP: 'static, EP: 'static> HasDirectory<VertexDesc> for GraphRep<VP, EP> {
    fn directory(&self) -> &DirectoryShard<VertexDesc> {
        &self.dir
    }

    fn directory_mut(&mut self) -> &mut DirectoryShard<VertexDesc> {
        &mut self.dir
    }

    fn owner_cache(&self) -> Option<&OwnerCache<VertexDesc>> {
        Some(&self.cache)
    }

    fn owns_gid(&self, vd: &VertexDesc) -> bool {
        self.bc.vertices.contains_key(vd)
    }
}

impl<VP, EP> GraphRep<VP, EP> {
    /// Keeps this location's auto-descriptor generator (`add_vertex`
    /// hands out `me + k·nlocs`) ahead of an explicitly chosen
    /// descriptor that lands in its stride, so a later `add_vertex`
    /// cannot silently reuse — and overwrite — an explicitly created
    /// vertex. Descriptors in *other* locations' strides cannot be
    /// protected from here; see the `add_vertex_with_descriptor` /
    /// `append_segment` contract.
    fn reserve_descriptor(&mut self, vd: VertexDesc, me: LocId) {
        if vd % self.nlocs == me % self.nlocs && vd >= self.next_vd {
            self.next_vd = vd + self.nlocs;
        }
    }

    fn add_edge_local(&mut self, e: Edge<EP>) {
        let v = self
            .vertices_mut()
            .get_mut(&e.source)
            .expect("pGraph: edge source vertex not on executing location");
        v.edges.push(e);
    }

    fn vertices(&self) -> &BTreeMap<VertexDesc, Vertex<VP, EP>> {
        &self.bc.vertices
    }

    fn vertices_mut(&mut self) -> &mut BTreeMap<VertexDesc, Vertex<VP, EP>> {
        &mut self.bc.vertices
    }
}

/// The STAPL pGraph.
///
/// ```
/// use stapl_rts::{execute, RtsConfig};
/// use stapl_containers::graph::{Directedness, PGraph};
/// use stapl_core::interfaces::PContainer;
///
/// execute(RtsConfig::default(), 2, |loc| {
///     // Static graph: 6 vertices pre-created, balanced over locations.
///     let g: PGraph<u32, f64> = PGraph::new_static(loc, 6, Directedness::Directed, 0);
///     if loc.id() == 0 {
///         g.add_edge_async(0, 5, 2.5); // routed to vertex 0's owner
///     }
///     g.commit();
///     assert_eq!(g.num_edges(), 1);
///     assert!(g.find_edge(0, 5));
///     assert_eq!(g.out_degree(0), 1);
/// });
/// ```
pub struct PGraph<VP: Send + Clone + 'static, EP: Send + Clone + 'static> {
    obj: PObject<GraphRep<VP, EP>>,
}

impl<VP: Send + Clone + 'static, EP: Send + Clone + 'static> Clone for PGraph<VP, EP> {
    fn clone(&self) -> Self {
        PGraph { obj: self.obj.clone() }
    }
}

impl<VP, EP> PGraph<VP, EP>
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    /// **Collective.** A static pGraph with vertices `0..n` pre-created
    /// (balanced over locations) holding `init` properties. `add_vertex`
    /// panics on static graphs, per the paper.
    pub fn new_static(loc: &Location, n: usize, directedness: Directedness, init: VP) -> Self {
        let partition = BalancedPartition::new(n, loc.nlocs());
        let mut vertices = BTreeMap::new();
        // bcid == location id for the single per-location base container.
        let sd = partition.subdomain(loc.id().min(partition.num_subdomains() - 1));
        if loc.id() < partition.num_subdomains() {
            for vd in sd.iter() {
                vertices.insert(vd, Vertex { descriptor: vd, property: init.clone(), edges: Vec::new() });
            }
        }
        let rep = GraphRep {
            bc: GraphBc { vertices },
            dir: DirectoryShard::new(),
            cache: OwnerCache::from_config(loc.config()),
            kind: GraphPartitionKind::Static,
            directedness,
            static_partition: Some(partition),
            nlocs: loc.nlocs(),
            next_vd: loc.id(),
            cached_nvertices: n,
            cached_nedges: 0,
            counts_dirty: false,
            segment_epoch: 0,
        };
        let obj = PObject::register(loc, rep);
        loc.barrier();
        PGraph { obj }
    }

    /// **Collective.** An empty dynamic pGraph using the chosen resolution
    /// protocol (forwarding or two-phase).
    pub fn new_dynamic(
        loc: &Location,
        directedness: Directedness,
        kind: GraphPartitionKind,
    ) -> Self {
        assert_ne!(kind, GraphPartitionKind::Static, "use new_static for static graphs");
        let rep = GraphRep {
            bc: GraphBc { vertices: BTreeMap::new() },
            dir: DirectoryShard::new(),
            cache: OwnerCache::from_config(loc.config()),
            kind,
            directedness,
            static_partition: None,
            nlocs: loc.nlocs(),
            next_vd: loc.id(),
            cached_nvertices: 0,
            cached_nedges: 0,
            counts_dirty: false,
            segment_epoch: 0,
        };
        let obj = PObject::register(loc, rep);
        loc.barrier();
        PGraph { obj }
    }

    pub fn partition_kind(&self) -> GraphPartitionKind {
        self.obj.local().kind
    }

    pub fn directedness(&self) -> Directedness {
        self.obj.local().directedness
    }

    fn me(&self) -> LocId {
        self.obj.location().id()
    }

    fn resolution(&self) -> Option<Resolution> {
        match self.obj.local().kind {
            GraphPartitionKind::Static => None,
            GraphPartitionKind::DynamicFwd => Some(Resolution::Forwarding),
            GraphPartitionKind::DynamicTwoPhase => Some(Resolution::TwoPhase),
        }
    }

    fn static_owner(&self, vd: VertexDesc) -> LocId {
        let rep = self.obj.local();
        let p = rep.static_partition.as_ref().expect("static partition");
        assert!(vd < p.global_size(), "pGraph: vertex {vd} out of static range");
        p.find(vd) // bcid == location for one bc per location
    }

    /// Routes `f` to the location owning `vd` (asynchronous). Local
    /// vertices run inline without any resolution traffic.
    fn route(&self, vd: VertexDesc, f: impl FnOnce(&mut GraphRep<VP, EP>, &Location) + Send + 'static) {
        // Local fast path.
        if self.obj.local().vertices().contains_key(&vd) {
            f(&mut self.obj.local_mut(), self.obj.location());
            return;
        }
        match self.resolution() {
            None => {
                let owner = self.static_owner(vd);
                self.obj.invoke_at(owner, move |cell, loc| f(&mut cell.borrow_mut(), loc));
            }
            Some(policy) => {
                dir_route(&self.obj, policy, vd, move |cell, loc, bcid| {
                    assert!(
                        bcid.is_some(),
                        "pGraph: vertex {vd} not found (did you fence after add_vertex?)"
                    );
                    f(&mut cell.borrow_mut(), loc)
                });
            }
        }
    }

    /// Routes a returning `f` to the owner of `vd` (synchronous result via
    /// future).
    fn route_ret<R: Send + 'static>(
        &self,
        vd: VertexDesc,
        f: impl FnOnce(&mut GraphRep<VP, EP>, &Location) -> R + Send + 'static,
    ) -> RmiFuture<R> {
        if self.obj.local().vertices().contains_key(&vd) {
            let r = f(&mut self.obj.local_mut(), self.obj.location());
            return RmiFuture::ready(r);
        }
        match self.resolution() {
            None => {
                let owner = self.static_owner(vd);
                self.obj.invoke_split_at(owner, move |cell, loc| f(&mut cell.borrow_mut(), loc))
            }
            Some(policy) => dir_route_ret(&self.obj, policy, vd, move |cell, loc, bcid| {
                assert!(
                    bcid.is_some(),
                    "pGraph: vertex {vd} not found (did you fence after add_vertex?)"
                );
                f(&mut cell.borrow_mut(), loc)
            }),
        }
    }

    // ------------------------------------------------------------------
    // Vertex methods (Table XXVII)
    // ------------------------------------------------------------------

    /// Adds a vertex with a locally generated descriptor; O(1), no
    /// communication beyond the asynchronous directory registration.
    /// Dynamic graphs only.
    pub fn add_vertex(&self, property: VP) -> VertexDesc {
        assert_ne!(
            self.obj.local().kind,
            GraphPartitionKind::Static,
            "pGraph: add_vertex on a static pGraph (the paper's assertion)"
        );
        let me = self.me();
        let vd = {
            let mut rep = self.obj.local_mut();
            let vd = rep.next_vd;
            rep.next_vd += rep.nlocs;
            let vertex = Vertex { descriptor: vd, property, edges: Vec::new() };
            rep.vertices_mut().insert(vd, vertex);
            rep.counts_dirty = true;
            vd
        };
        dir_insert(&self.obj, vd, me, me);
        vd
    }

    /// Adds a vertex with a caller-chosen descriptor (dynamic graphs):
    /// stored locally, registered in the directory. The local
    /// auto-descriptor generator is advanced past `vd` when it falls in
    /// this location's stride; descriptors in *other* locations' strides
    /// must not collide with their future `add_vertex` output — do not
    /// mix the two schemes over one descriptor range.
    pub fn add_vertex_with_descriptor(&self, vd: VertexDesc, property: VP) {
        assert_ne!(self.obj.local().kind, GraphPartitionKind::Static);
        let me = self.me();
        {
            let mut rep = self.obj.local_mut();
            let vertex = Vertex { descriptor: vd, property, edges: Vec::new() };
            rep.vertices_mut().insert(vd, vertex);
            rep.counts_dirty = true;
            rep.reserve_descriptor(vd, me);
        }
        dir_insert(&self.obj, vd, me, me);
    }

    /// Asynchronously deletes a vertex and its out-edges. As the paper
    /// notes, this is *not* a transaction: in-edges from other vertices
    /// are not chased.
    pub fn delete_vertex(&self, vd: VertexDesc) {
        assert_ne!(
            self.obj.local().kind,
            GraphPartitionKind::Static,
            "pGraph: delete_vertex on a static pGraph"
        );
        self.obj.local_mut().counts_dirty = true;
        self.route(vd, move |rep, _| {
            rep.vertices_mut().remove(&vd);
            rep.counts_dirty = true;
        });
        dir_remove(&self.obj, vd);
    }

    /// Asynchronously moves vertex `vd` — property and out-edges — to
    /// location `dest`, re-registering it in the directory (dynamic graphs
    /// only). The move is visible after the next fence; operations on `vd`
    /// concurrent with the migration re-forward through the home until the
    /// new registration lands. Peers' cached owners for `vd` go stale and
    /// self-heal on their next access.
    pub fn migrate_vertex(&self, vd: VertexDesc, dest: LocId) {
        assert_ne!(
            self.obj.local().kind,
            GraphPartitionKind::Static,
            "pGraph: migrate_vertex on a static pGraph"
        );
        let policy = self.resolution().expect("dynamic graph");
        // bcid == owning location for the single per-location graph bc.
        dir_migrate(
            &self.obj,
            policy,
            vd,
            dest,
            dest,
            move |rep| {
                rep.segment_epoch += 1;
                rep.vertices_mut().remove(&vd)
            },
            move |rep, v| {
                rep.segment_epoch += 1;
                rep.vertices_mut().insert(vd, v);
            },
        );
    }

    /// Synchronous existence check.
    pub fn find_vertex(&self, vd: VertexDesc) -> bool {
        if self.obj.local().vertices().contains_key(&vd) {
            return true;
        }
        match self.resolution() {
            None => {
                let rep = self.obj.local();
                let p = rep.static_partition.as_ref().unwrap();
                vd < p.global_size()
            }
            Some(_) => stapl_core::directory::dir_lookup(&self.obj, vd).is_some(),
        }
    }

    /// Synchronous vertex property read.
    pub fn vertex_property(&self, vd: VertexDesc) -> VP {
        self.route_ret(vd, move |rep, _| {
            rep.vertices().get(&vd).expect("pGraph: vertex vanished").property.clone()
        })
        .get()
    }

    /// Asynchronous vertex property update.
    pub fn set_vertex_property(&self, vd: VertexDesc, p: VP) {
        self.route(vd, move |rep, _| {
            if let Some(v) = rep.vertices_mut().get_mut(&vd) {
                v.property = p;
            }
        });
    }

    /// Asynchronously applies `f` to the vertex (property + edges) at its
    /// owner — the workhorse of the graph algorithms.
    pub fn apply_vertex(&self, vd: VertexDesc, f: impl FnOnce(&mut Vertex<VP, EP>) + Send + 'static) {
        self.route(vd, move |rep, _| {
            if let Some(v) = rep.vertices_mut().get_mut(&vd) {
                f(v);
            }
        });
    }

    /// Synchronously applies `f` to the vertex and returns its result.
    pub fn apply_vertex_ret<R: Send + 'static>(
        &self,
        vd: VertexDesc,
        f: impl FnOnce(&mut Vertex<VP, EP>) -> R + Send + 'static,
    ) -> R {
        self.route_ret(vd, move |rep, _| {
            f(rep.vertices_mut().get_mut(&vd).expect("pGraph: vertex vanished"))
        })
        .get()
    }

    // ------------------------------------------------------------------
    // Edge methods
    // ------------------------------------------------------------------

    /// Asynchronously adds an edge (the paper's `add_edge_async`). For
    /// undirected graphs the edge is stored at both endpoints.
    pub fn add_edge_async(&self, source: VertexDesc, target: VertexDesc, property: EP) {
        let directedness = self.obj.local().directedness;
        let p2 = property.clone();
        self.obj.local_mut().counts_dirty = true;
        self.route(source, move |rep, _| {
            rep.add_edge_local(Edge { source, target, property });
            rep.counts_dirty = true;
        });
        if directedness == Directedness::Undirected && source != target {
            self.route(target, move |rep, _| {
                rep.add_edge_local(Edge { source: target, target: source, property: p2 });
                rep.counts_dirty = true;
            });
        }
    }

    /// Asynchronously removes the first edge `source → target` (both
    /// directions for undirected graphs).
    pub fn delete_edge_async(&self, source: VertexDesc, target: VertexDesc) {
        let directedness = self.obj.local().directedness;
        self.obj.local_mut().counts_dirty = true;
        self.route(source, move |rep, _| {
            if let Some(v) = rep.vertices_mut().get_mut(&source) {
                if let Some(k) = v.edges.iter().position(|e| e.target == target) {
                    v.edges.remove(k);
                }
            }
            rep.counts_dirty = true;
        });
        if directedness == Directedness::Undirected && source != target {
            self.route(target, move |rep, _| {
                if let Some(v) = rep.vertices_mut().get_mut(&target) {
                    if let Some(k) = v.edges.iter().position(|e| e.target == source) {
                        v.edges.remove(k);
                    }
                }
                rep.counts_dirty = true;
            });
        }
    }

    /// Synchronous edge existence check.
    pub fn find_edge(&self, source: VertexDesc, target: VertexDesc) -> bool {
        self.route_ret(source, move |rep, _| {
            rep.vertices()
                .get(&source)
                .map(|v| v.edges.iter().any(|e| e.target == target))
                .unwrap_or(false)
        })
        .get()
    }

    /// Synchronous out-degree.
    pub fn out_degree(&self, vd: VertexDesc) -> usize {
        self.route_ret(vd, move |rep, _| {
            rep.vertices().get(&vd).map(|v| v.edges.len()).unwrap_or(0)
        })
        .get()
    }

    /// Synchronous copy of a vertex's out-edges.
    pub fn out_edges(&self, vd: VertexDesc) -> Vec<Edge<EP>> {
        self.route_ret(vd, move |rep, _| {
            rep.vertices().get(&vd).map(|v| v.edges.clone()).unwrap_or_default()
        })
        .get()
    }

    // ------------------------------------------------------------------
    // Global methods
    // ------------------------------------------------------------------

    /// The committed vertex count when clean (exact for static graphs);
    /// after uncommitted `add_vertex`/`delete_vertex` (the local
    /// `counts_dirty` flag is set) both counts are recomputed with a
    /// one-sided sweep over all locations, so a location observes its
    /// *own* earlier mutations without a fence when they were routed
    /// directly — local vertices and cached/hinted owners (per-pair FIFO
    /// orders the count query behind them). Mutations still forwarding
    /// through a directory home — a cold owner cache, or racing a
    /// migration — may be missed, as may mutations in flight from *other*
    /// locations. Only `commit()` yields the globally agreed counts — and
    /// restores O(1) reads.
    pub fn num_vertices(&self) -> usize {
        self.refresh_counts_if_dirty();
        self.obj.local().cached_nvertices
    }

    /// Stored directed edges (an undirected edge counts twice, once per
    /// endpoint); same staleness contract as [`PGraph::num_vertices`].
    pub fn num_edges(&self) -> usize {
        self.refresh_counts_if_dirty();
        self.obj.local().cached_nedges
    }

    /// One-sided (vertex, edge) recount over all locations on dirty reads;
    /// leaves the dirty flag set — only the collective `commit()` clears it.
    fn refresh_counts_if_dirty(&self) {
        if !self.obj.local().counts_dirty {
            return;
        }
        let counts = crate::sweep(&self.obj, |rep: &GraphRep<VP, EP>| {
            let nv = rep.vertices().len() as u64;
            let ne: u64 = rep.vertices().values().map(|v| v.edges.len() as u64).sum();
            (nv, ne)
        });
        let (mut nv, mut ne) = (0u64, 0u64);
        for (v, e) in counts {
            nv += v;
            ne += e;
        }
        let mut rep = self.obj.local_mut();
        rep.cached_nvertices = nv as usize;
        rep.cached_nedges = ne as usize;
    }

    pub fn local_num_vertices(&self) -> usize {
        self.obj.local().vertices().len()
    }

    pub fn local_num_edges(&self) -> usize {
        self.obj.local().vertices().values().map(|v| v.edges.len()).sum()
    }

    /// Iterates the local vertices in descriptor order.
    pub fn for_each_local_vertex(&self, mut f: impl FnMut(&Vertex<VP, EP>)) {
        let rep = self.obj.local();
        for v in rep.vertices().values() {
            f(v);
        }
    }

    pub fn for_each_local_vertex_mut(&self, mut f: impl FnMut(&mut Vertex<VP, EP>)) {
        let mut rep = self.obj.local_mut();
        for v in rep.vertices_mut().values_mut() {
            f(v);
        }
    }

    /// Descriptors of the local vertices.
    pub fn local_vertices(&self) -> Vec<VertexDesc> {
        self.obj.local().vertices().keys().copied().collect()
    }

    /// True when `vd` is stored on this location (no communication).
    pub fn is_local_vertex(&self, vd: VertexDesc) -> bool {
        self.obj.local().vertices().contains_key(&vd)
    }
}


/// Segment-at-a-time transport over the vertex partition: segment `l` is
/// the set of vertices currently stored at location `l` (one graph base
/// container per location), and items travel as (descriptor, vertex
/// property) pairs — the bulk path for whole-partition property sweeps.
impl<VP, EP> SegmentedContainer for PGraph<VP, EP>
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    type ItemKey = VertexDesc;
    type ItemVal = VP;

    fn segments(&self) -> Vec<SegmentId> {
        (0..self.obj.local().nlocs).collect()
    }

    fn local_segments(&self) -> Vec<SegmentId> {
        vec![self.me()]
    }

    fn is_local_segment(&self, sid: SegmentId) -> bool {
        sid == self.me()
    }

    fn segment_epoch(&self) -> u64 {
        self.obj.local().segment_epoch
    }

    fn get_segment(&self, sid: SegmentId) -> Vec<(VertexDesc, VP)> {
        let mut out = Vec::new();
        if self.with_segment(sid, &mut |vd, p| out.push((*vd, p.clone()))) {
            return out;
        }
        self.obj.location().note_segment_request(0);
        self.obj.invoke_ret_at(sid, |cell, _| {
            cell.borrow()
                .vertices()
                .values()
                .map(|v| (v.descriptor, v.property.clone()))
                .collect::<Vec<_>>()
        })
    }

    /// Bulk vertex creation at location `sid` under the given descriptors
    /// (dynamic graphs only): one data RMI to the owner plus the
    /// asynchronous directory registrations. Every involved auto-stride
    /// owner's descriptor generator is advanced past the appended
    /// descriptors (one async RMI per stride, amortized over the
    /// segment), so a later `add_vertex` anywhere cannot silently reuse
    /// one of them — the reservation, like the creation itself, is
    /// guaranteed visible by the next fence.
    fn append_segment(&self, sid: SegmentId, items: Vec<(VertexDesc, VP)>) {
        assert_ne!(
            self.obj.local().kind,
            GraphPartitionKind::Static,
            "pGraph: append_segment on a static pGraph"
        );
        if sid != self.me() {
            self.obj.location().note_segment_request(items.len() as u64);
        }
        self.obj.local_mut().counts_dirty = true;
        let nlocs = self.obj.local().nlocs;
        let mut stride_max: BTreeMap<LocId, VertexDesc> = BTreeMap::new();
        for (vd, _) in &items {
            let top = stride_max.entry(vd % nlocs).or_insert(*vd);
            *top = (*top).max(*vd);
        }
        // One registration RMI per involved home location, not per vertex.
        dir_insert_bulk(&self.obj, items.iter().map(|(vd, _)| (*vd, sid, sid)).collect());
        for (stride_owner, vd) in stride_max {
            self.obj.invoke_at(stride_owner, move |cell, loc| {
                cell.borrow_mut().reserve_descriptor(vd, loc.id());
            });
        }
        self.obj.invoke_at(sid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            rep.counts_dirty = true;
            for (vd, property) in items {
                rep.vertices_mut()
                    .insert(vd, Vertex { descriptor: vd, property, edges: Vec::new() });
            }
        });
    }

    fn set_segment(&self, sid: SegmentId, items: Vec<(VertexDesc, VP)>) {
        if sid != self.me() {
            self.obj.location().note_segment_request(items.len() as u64);
        }
        self.obj.invoke_at(sid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            for (vd, p) in items {
                if let Some(v) = rep.vertices_mut().get_mut(&vd) {
                    v.property = p;
                }
            }
        });
    }

    fn apply_segment<F>(&self, sid: SegmentId, f: F)
    where
        F: Fn(&VertexDesc, &mut VP) + Clone + Send + 'static,
    {
        if sid != self.me() {
            self.obj.location().note_segment_request(0);
        }
        self.obj.invoke_at(sid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            for v in rep.vertices_mut().values_mut() {
                f(&v.descriptor, &mut v.property);
            }
        });
    }

    fn with_segment(&self, sid: SegmentId, f: &mut dyn FnMut(&VertexDesc, &VP)) -> bool {
        if sid != self.me() {
            return false;
        }
        self.obj.location().note_localized_chunk();
        let rep = self.obj.local();
        for v in rep.vertices().values() {
            f(&v.descriptor, &v.property);
        }
        true
    }

    fn with_segment_mut(&self, sid: SegmentId, f: &mut dyn FnMut(&VertexDesc, &mut VP)) -> bool {
        if sid != self.me() {
            return false;
        }
        self.obj.location().note_localized_chunk();
        let mut rep = self.obj.local_mut();
        for v in rep.vertices_mut().values_mut() {
            f(&v.descriptor, &mut v.property);
        }
        true
    }
}

impl<VP, EP> PContainer for PGraph<VP, EP>
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    fn location(&self) -> &Location {
        self.obj.location()
    }

    fn global_size(&self) -> usize {
        self.num_vertices()
    }

    fn local_size(&self) -> usize {
        self.local_num_vertices()
    }

    fn commit(&self) {
        let loc = self.obj.location().clone();
        loc.rmi_fence();
        let nv = loc.allreduce_sum(self.local_num_vertices() as u64) as usize;
        let ne = loc.allreduce_sum(self.local_num_edges() as u64) as usize;
        {
            let mut rep = self.obj.local_mut();
            rep.cached_nvertices = nv;
            rep.cached_nedges = ne;
            rep.counts_dirty = false;
        }
        loc.barrier();
    }

    fn memory_size(&self) -> MemSize {
        let local = {
            let rep = self.obj.local();
            let mut m = rep.bc.memory_size();
            m.metadata += rep.dir.memory_size() + rep.cache.memory_size();
            m
        };
        self.obj.location().allreduce(local, |a, b| a + b)
    }
}

impl<VP, EP> RelationalContainer for PGraph<VP, EP>
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn static_graph_has_all_vertices() {
        execute(RtsConfig::default(), 3, |loc| {
            let g: PGraph<u32, ()> = PGraph::new_static(loc, 10, Directedness::Directed, 0);
            assert_eq!(g.num_vertices(), 10);
            let total = loc.allreduce_sum(g.local_num_vertices() as u64);
            assert_eq!(total, 10);
            for vd in 0..10 {
                assert!(g.find_vertex(vd));
            }
            assert!(!g.find_vertex(10), "vd 10 is out of range");
        });
    }

    #[test]
    #[should_panic(expected = "add_vertex on a static pGraph")]
    fn static_graph_rejects_add_vertex() {
        execute(RtsConfig::default(), 1, |loc| {
            let g: PGraph<u32, ()> = PGraph::new_static(loc, 4, Directedness::Directed, 0);
            g.add_vertex(1);
        });
    }

    #[test]
    fn static_edges_and_degree() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: PGraph<(), u32> = PGraph::new_static(loc, 6, Directedness::Directed, ());
            if loc.id() == 0 {
                g.add_edge_async(0, 5, 10);
                g.add_edge_async(0, 3, 11);
                g.add_edge_async(5, 0, 12); // remote source vertex
            }
            g.commit();
            assert_eq!(g.num_edges(), 3);
            assert_eq!(g.out_degree(0), 2);
            assert_eq!(g.out_degree(5), 1);
            assert!(g.find_edge(0, 5));
            assert!(!g.find_edge(3, 0));
            let edges = g.out_edges(0);
            assert_eq!(edges.len(), 2);
            assert!(edges.iter().any(|e| e.target == 5 && e.property == 10));
        });
    }

    #[test]
    fn undirected_stores_both_endpoints() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: PGraph<(), ()> = PGraph::new_static(loc, 4, Directedness::Undirected, ());
            if loc.id() == 1 {
                g.add_edge_async(0, 3, ());
            }
            g.commit();
            assert!(g.find_edge(0, 3));
            assert!(g.find_edge(3, 0));
            assert_eq!(g.num_edges(), 2); // stored twice
            // Separate the read phase from the delete phase: without this,
            // one location could observe the other's delete mid-asserts.
            loc.barrier();
            if loc.id() == 0 {
                g.delete_edge_async(3, 0);
            }
            g.commit();
            assert!(!g.find_edge(0, 3));
            assert!(!g.find_edge(3, 0));
            assert_eq!(g.num_edges(), 0);
        });
    }

    #[test]
    fn dynamic_add_vertex_generates_unique_descriptors() {
        for kind in [GraphPartitionKind::DynamicFwd, GraphPartitionKind::DynamicTwoPhase] {
            execute(RtsConfig::default(), 3, |loc| {
                let g: PGraph<u64, ()> = PGraph::new_dynamic(loc, Directedness::Directed, kind);
                let mine: Vec<VertexDesc> =
                    (0..5).map(|k| g.add_vertex(loc.id() as u64 * 100 + k)).collect();
                g.commit();
                assert_eq!(g.num_vertices(), 15);
                // Descriptors are globally unique.
                let all = loc.allreduce(mine.clone(), |mut a, mut b| {
                    a.append(&mut b);
                    a
                });
                let mut sorted = all.clone();
                sorted.sort_unstable();
                sorted.dedup();
                assert_eq!(sorted.len(), 15);
                // Properties readable from any location after commit.
                for vd in all {
                    let _ = g.vertex_property(vd);
                }
            });
        }
    }

    #[test]
    fn dynamic_edges_across_locations() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: PGraph<u32, u32> =
                PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
            let vd = g.add_vertex(loc.id() as u32);
            g.commit();
            let peers = loc.allgather(vd);
            // Everyone links its vertex to everyone else's.
            for &p in &peers {
                if p != vd {
                    g.add_edge_async(vd, p, 1);
                }
            }
            g.commit();
            assert_eq!(g.num_edges(), 2);
            assert_eq!(g.out_degree(vd), 1);
        });
    }

    #[test]
    fn dynamic_delete_vertex() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: PGraph<u32, ()> =
                PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
            let vd = g.add_vertex(7);
            g.commit();
            let other = loc.allgather(vd)[1 - loc.id()];
            if loc.id() == 0 {
                g.delete_vertex(other); // remote delete
            }
            g.commit();
            assert_eq!(g.num_vertices(), 1);
            if loc.id() == 0 {
                assert!(g.find_vertex(vd));
                assert!(!g.find_vertex(other));
            }
        });
    }

    #[test]
    fn apply_vertex_and_properties() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: PGraph<u64, ()> = PGraph::new_static(loc, 4, Directedness::Directed, 0);
            if loc.id() == 1 {
                g.set_vertex_property(0, 5);
                g.apply_vertex(0, |v| v.property *= 10);
            }
            g.commit();
            assert_eq!(g.vertex_property(0), 50);
            let deg = g.apply_vertex_ret(0, |v| {
                v.edges.push(Edge { source: 0, target: 1, property: () });
                v.out_degree()
            });
            assert!(deg >= 1);
        });
    }

    #[test]
    fn local_fast_path_avoids_communication() {
        execute(RtsConfig::unbuffered(), 2, |loc| {
            let g: PGraph<u32, ()> = PGraph::new_static(loc, 8, Directedness::Directed, 0);
            loc.rmi_fence();
            let before = loc.stats().remote_requests;
            // Operate only on local vertices.
            for vd in 0..8 {
                if g.obj.local().vertices().contains_key(&vd) {
                    g.set_vertex_property(vd, 9);
                    let _ = g.vertex_property(vd);
                }
            }
            let after = loc.stats().remote_requests;
            assert_eq!(before, after, "local vertex ops must not communicate");
        });
    }

    #[test]
    fn local_iteration_and_counts() {
        execute(RtsConfig::default(), 4, |loc| {
            let g: PGraph<usize, ()> = PGraph::new_static(loc, 20, Directedness::Directed, 0);
            g.for_each_local_vertex_mut(|v| v.property = v.descriptor * 2);
            loc.barrier();
            let mut n = 0;
            g.for_each_local_vertex(|v| {
                assert_eq!(v.property, v.descriptor * 2);
                n += 1;
            });
            assert_eq!(n, g.local_num_vertices());
            assert_eq!(loc.allreduce_sum(n as u64), 20);
            assert_eq!(g.local_vertices().len(), n);
        });
    }

    #[test]
    fn migrate_vertex_moves_data_and_stale_caches_self_heal() {
        for kind in [GraphPartitionKind::DynamicFwd, GraphPartitionKind::DynamicTwoPhase] {
            execute(RtsConfig::default(), 3, |loc| {
                let g: PGraph<u32, u8> = PGraph::new_dynamic(loc, Directedness::Directed, kind);
                let vd = g.add_vertex(loc.id() as u32 * 10);
                g.commit();
                let all = loc.allgather(vd);
                if loc.id() == 1 {
                    g.add_edge_async(all[1], all[0], 7);
                }
                g.commit();
                // Everyone reads location 1's vertex — warming every cache.
                assert_eq!(g.vertex_property(all[1]), 10);
                loc.barrier();
                // Location 0 migrates location 1's vertex to location 2.
                if loc.id() == 0 {
                    g.migrate_vertex(all[1], 2);
                }
                g.commit();
                let expect = match loc.id() {
                    1 => 0, // its only vertex migrated away
                    2 => 2, // its own plus the migrated one
                    _ => 1,
                };
                assert_eq!(g.local_num_vertices(), expect);
                if loc.id() == 2 {
                    assert!(g.is_local_vertex(all[1]));
                }
                // Every location still resolves the vertex — through a now
                // stale cache entry, which must self-heal via the home.
                assert_eq!(g.vertex_property(all[1]), 10);
                assert_eq!(g.out_degree(all[1]), 1, "edges must migrate with the vertex");
                g.commit();
                assert_eq!(g.num_vertices(), 3);
                assert_eq!(g.num_edges(), 1);
            });
        }
    }

    #[test]
    fn read_racing_migration_self_heals_without_fence() {
        execute(RtsConfig::default(), 3, |loc| {
            let g: PGraph<u32, ()> =
                PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
            let vd = g.add_vertex(loc.id() as u32 + 1);
            g.commit();
            let all = loc.allgather(vd);
            loc.barrier();
            if loc.id() == 0 {
                g.migrate_vertex(all[1], 2);
            }
            // Deliberately no fence: reads race the in-flight migration and
            // must re-forward through the home until the payload lands,
            // never observing a missing vertex.
            assert_eq!(g.vertex_property(all[1]), 2);
            g.commit();
            assert_eq!(g.num_vertices(), 3);
        });
    }

    #[test]
    fn hot_vertex_access_uses_cache_and_cuts_traffic() {
        let run = |dir_cache: bool| {
            stapl_rts::execute_collect(
                RtsConfig { dir_cache, ..RtsConfig::base() },
                4,
                |loc| {
                    let g: PGraph<u64, ()> = PGraph::new_dynamic(
                        loc,
                        Directedness::Directed,
                        GraphPartitionKind::DynamicFwd,
                    );
                    let vd = g.add_vertex(loc.id() as u64);
                    g.commit();
                    let all = loc.allgather(vd);
                    let hot = all[(loc.id() + 1) % loc.nlocs()];
                    let before = loc.stats().remote_requests;
                    for _ in 0..40 {
                        let _ = g.vertex_property(hot);
                    }
                    loc.rmi_fence();
                    (loc.stats().remote_requests - before, loc.stats())
                },
            )
            .remove(0)
        };
        let (cached, stats) = run(true);
        let (uncached, _) = run(false);
        assert!(stats.dir_cache_hits > 0, "hot accesses must hit the cache: {stats:?}");
        assert!(
            cached < uncached,
            "owner cache must reduce remote requests: {cached} !< {uncached}"
        );
    }

    #[test]
    fn counts_see_own_uncommitted_mutations() {
        execute(RtsConfig::default(), 3, |loc| {
            let g: PGraph<u32, ()> =
                PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
            loc.rmi_fence();
            if loc.id() == 0 {
                let vds: Vec<VertexDesc> = (0..8).map(|k| g.add_vertex(k)).collect();
                // Regression: these used to return the stale cached 0 until
                // an explicit commit().
                assert_eq!(g.num_vertices(), 8, "must observe own uncommitted add_vertex");
                g.add_edge_async(vds[0], vds[1], ());
                g.add_edge_async(vds[1], vds[2], ());
                assert_eq!(g.num_edges(), 2, "must observe own uncommitted add_edge");
                g.delete_vertex(vds[7]);
                assert_eq!(g.num_vertices(), 7, "must observe own uncommitted delete_vertex");
            }
            g.commit();
            // After commit every location agrees, and reads are O(1) again.
            assert_eq!(g.num_vertices(), 7);
            assert_eq!(g.num_edges(), 2);
        });
    }

    #[test]
    fn segment_transport_over_vertex_partitions() {
        execute(RtsConfig::default(), 3, |loc| {
            let g: PGraph<u64, ()> =
                PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
            // Bulk vertex creation: location 0 seeds every partition with
            // one append_segment per location.
            if loc.id() == 0 {
                for sid in g.segments() {
                    let items: Vec<(VertexDesc, u64)> =
                        (0..4).map(|k| (sid * 100 + k, (sid * 100 + k) as u64)).collect();
                    g.append_segment(sid, items);
                }
                assert_eq!(g.num_vertices(), 12, "dirty read sees the bulk creation");
            }
            g.commit();
            assert_eq!(g.num_vertices(), 12);
            // get_segment (local and remote) agrees with element reads.
            for sid in g.segments() {
                let seg = g.get_segment(sid);
                assert_eq!(seg.len(), 4, "segment {sid}");
                for (vd, p) in &seg {
                    assert_eq!(g.vertex_property(*vd), *p);
                    assert_eq!(*p, *vd as u64);
                }
            }
            loc.barrier();
            // Whole-partition property sweep: one closure per location.
            if loc.id() == 1 {
                for sid in g.segments() {
                    g.apply_segment(sid, |vd, p| *p = *vd as u64 * 2);
                }
            }
            g.commit();
            g.for_each_local_vertex(|v| assert_eq!(v.property, v.descriptor as u64 * 2));
            loc.barrier();
            // set_segment writes back existing vertices, skipping absent.
            if loc.id() == 2 {
                g.set_segment(0, vec![(0, 999), (555_555, 1)]);
            }
            g.commit();
            assert_eq!(g.vertex_property(0), 999);
            assert!(!g.find_vertex(555_555), "set_segment must not create vertices");
            // Migration bumps the placement epoch at both ends.
            let e0 = g.segment_epoch();
            loc.barrier();
            if loc.id() == 0 {
                g.migrate_vertex(1, 2);
            }
            g.commit();
            if loc.id() == 2 {
                assert!(g.segment_epoch() > e0, "migration must bump the destination epoch");
                assert!(g.is_local_vertex(1));
            }
        });
    }

    #[test]
    fn append_segment_is_segment_grained() {
        execute(RtsConfig::unbuffered(), 3, |loc| {
            let g: PGraph<u64, ()> =
                PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
            loc.rmi_fence();
            let before = loc.stats().remote_requests;
            loc.barrier();
            if loc.id() == 0 {
                g.append_segment(1, (0..64).map(|k| (1000 + k, 0u64)).collect());
            }
            g.commit();
            let delta = loc.stats().remote_requests - before;
            // One data RMI + one directory RMI per involved home + one
            // reservation per involved stride — never one per vertex.
            assert!(
                delta <= 16,
                "bulk vertex creation must be O(locations), got {delta} remote requests \
                 for 64 vertices"
            );
            assert_eq!(g.num_vertices(), 64);
            assert!(g.find_vertex(1000) && g.find_vertex(1063));
        });
    }

    #[test]
    fn add_vertex_never_reuses_appended_descriptors() {
        execute(RtsConfig::default(), 3, |loc| {
            let g: PGraph<u64, ()> =
                PGraph::new_dynamic(loc, Directedness::Directed, GraphPartitionKind::DynamicFwd);
            // Regression: explicit descriptors 0..6 cover every location's
            // auto stride start; a later add_vertex used to hand out a
            // colliding descriptor and silently overwrite the vertex.
            if loc.id() == 0 {
                g.append_segment(0, (0..6).map(|vd| (vd, vd as u64 + 50)).collect());
                g.add_edge_async(0, 1, ());
            }
            g.commit();
            let auto = g.add_vertex(999);
            g.commit();
            assert!(!(0..6).contains(&auto), "auto descriptor {auto} reused an appended one");
            assert_eq!(g.num_vertices(), 9, "6 appended + 3 auto");
            assert_eq!(g.vertex_property(0), 50, "appended vertex must survive");
            assert_eq!(g.out_degree(0), 1, "its edges must survive");
        });
    }

    #[test]
    fn two_phase_resolution_also_routes_correctly() {
        execute(RtsConfig::default(), 3, |loc| {
            let g: PGraph<u32, u8> = PGraph::new_dynamic(
                loc,
                Directedness::Directed,
                GraphPartitionKind::DynamicTwoPhase,
            );
            let vd = g.add_vertex(loc.id() as u32);
            g.commit();
            let all = loc.allgather(vd);
            for &p in &all {
                assert_eq!(g.vertex_property(p), (p % loc.nlocs()) as u32);
            }
        });
    }
}
