//! pMatrix: a static, two-dimensional indexed pContainer (the paper's
//! MTL-backed matrix, Section V.F), with row-blocked, column-blocked and
//! 2-D tiled partitions.
//!
//! GIDs are `(row, col)` pairs over the row-major ordered 2-D domain.
//! Row/column/linear views live in `stapl-views`.

use stapl_core::bcontainer::{BaseContainer, MemSize};
use stapl_core::domain::{Domain, FiniteDomain, Range1d, Range2d};
use stapl_core::gid::Bcid;
use stapl_core::interfaces::{ElementRead, ElementWrite, LocalIteration, PContainer};
use stapl_core::location_manager::LocationManager;
use stapl_core::mapper::{CyclicMapper, PartitionMapper};
use stapl_core::partition::{MatrixLayout, MatrixPartition};
use stapl_core::pobject::PObject;
use stapl_core::thread_safety::{methods, ThreadSafety};
use stapl_rts::{LocId, Location, RmiFuture};

/// A pending piece of a bulk row read: a local (bcid, cols) segment or
/// an in-flight remote fetch.
type RowPart<T> = Result<(Bcid, Range1d), RmiFuture<Vec<T>>>;

/// Dense row-major block of a matrix.
pub struct MatrixBc<T> {
    block: Range2d,
    data: Vec<T>,
}

impl<T: Clone> MatrixBc<T> {
    fn new(block: Range2d, init: &T) -> Self {
        MatrixBc { block, data: vec![init.clone(); block.size()] }
    }

    fn offset(&self, g: (usize, usize)) -> usize {
        self.block.offset(&g)
    }

    fn get(&self, g: (usize, usize)) -> &T {
        &self.data[self.offset(g)]
    }

    fn get_mut(&mut self, g: (usize, usize)) -> &mut T {
        let off = self.offset(g);
        &mut self.data[off]
    }

    /// The storage slice backing columns `cols` of row `r` (row-major
    /// blocks make any within-block row segment contiguous).
    fn row_slice(&self, r: usize, cols: Range1d) -> &[T] {
        let lo = self.offset((r, cols.lo));
        &self.data[lo..lo + cols.len()]
    }

    fn row_slice_mut(&mut self, r: usize, cols: Range1d) -> &mut [T] {
        let lo = self.offset((r, cols.lo));
        &mut self.data[lo..lo + cols.len()]
    }
}

impl<T: 'static> BaseContainer for MatrixBc<T> {
    type Value = T;

    fn len(&self) -> usize {
        self.data.len()
    }

    fn clear(&mut self) {
        self.data.clear();
    }

    fn memory_size(&self) -> MemSize {
        MemSize::new(
            std::mem::size_of::<Range2d>() + std::mem::size_of::<Vec<T>>(),
            self.data.capacity() * std::mem::size_of::<T>(),
        )
    }
}

/// Per-location representative.
pub struct MatrixRep<T> {
    lm: LocationManager<MatrixBc<T>>,
    partition: MatrixPartition,
    nlocs: usize,
    ths: ThreadSafety,
}

impl<T: Send + Clone + 'static> MatrixRep<T> {
    fn owner(&self, bcid: Bcid) -> LocId {
        bcid % self.nlocs
    }

    fn get_local(&self, bcid: Bcid, g: (usize, usize)) -> T {
        let _gd = self.ths.guard(methods::GET, pack(g), bcid);
        self.lm.get(bcid).expect("pMatrix: block not local").get(g).clone()
    }

    fn set_local(&mut self, bcid: Bcid, g: (usize, usize), v: T) {
        let this = &mut *self;
        let _gd = this.ths.guard(methods::SET, pack(g), bcid);
        *this.lm.get_mut(bcid).expect("pMatrix: block not local").get_mut(g) = v;
    }

    fn apply_local<R>(&mut self, bcid: Bcid, g: (usize, usize), f: impl FnOnce(&mut T) -> R) -> R {
        let this = &mut *self;
        let _gd = this.ths.guard(methods::APPLY, pack(g), bcid);
        f(this.lm.get_mut(bcid).expect("pMatrix: block not local").get_mut(g))
    }

    /// Bulk read of one within-block row segment (one guard, one borrow).
    fn row_segment_local(&self, bcid: Bcid, r: usize, cols: Range1d) -> Vec<T> {
        let _gd = self.ths.guard(methods::GET, pack((r, cols.lo)), bcid);
        self.lm.get(bcid).expect("pMatrix: block not local").row_slice(r, cols).to_vec()
    }

    /// Bulk write of one within-block row segment.
    fn set_row_segment_local(&mut self, bcid: Bcid, r: usize, cols: Range1d, vals: &[T]) {
        let this = &mut *self;
        let _gd = this.ths.guard(methods::SET, pack((r, cols.lo)), bcid);
        this.lm
            .get_mut(bcid)
            .expect("pMatrix: block not local")
            .row_slice_mut(r, cols)
            .clone_from_slice(vals);
    }
}

fn pack(g: (usize, usize)) -> u64 {
    (g.0 as u64) << 32 ^ g.1 as u64
}

/// The STAPL pMatrix.
pub struct PMatrix<T: Send + Clone + 'static> {
    obj: PObject<MatrixRep<T>>,
}

impl<T: Send + Clone + 'static> Clone for PMatrix<T> {
    fn clone(&self) -> Self {
        PMatrix { obj: self.obj.clone() }
    }
}

impl<T: Send + Clone + 'static> PMatrix<T> {
    /// **Collective.** `nrows × ncols` matrix of `init`, row-blocked with
    /// one stripe per location (the default scientific layout).
    pub fn new(loc: &Location, nrows: usize, ncols: usize, init: T) -> Self {
        Self::with_layout(loc, nrows, ncols, MatrixLayout::RowBlocked, init)
    }

    /// **Collective.** Choose the decomposition: row stripes, column
    /// stripes, or a 2-D tile grid.
    pub fn with_layout(
        loc: &Location,
        nrows: usize,
        ncols: usize,
        layout: MatrixLayout,
        init: T,
    ) -> Self {
        let nparts = match layout {
            MatrixLayout::Blocked2d { grid_rows, grid_cols } => grid_rows * grid_cols,
            _ => loc.nlocs(),
        };
        let partition = MatrixPartition::new(nrows, ncols, layout, nparts);
        let mapper = CyclicMapper::new(loc.nlocs());
        let mut lm = LocationManager::new();
        for bcid in 0..nparts {
            if mapper.map(bcid) == loc.id() {
                lm.add_bcontainer(bcid, MatrixBc::new(partition.block(bcid), &init));
            }
        }
        let rep = MatrixRep { lm, partition, nlocs: loc.nlocs(), ths: ThreadSafety::unlocked() };
        let obj = PObject::register(loc, rep);
        loc.barrier();
        PMatrix { obj }
    }

    /// **Collective.** Fills with `f(row, col)`, locally.
    pub fn from_fn(
        loc: &Location,
        nrows: usize,
        ncols: usize,
        layout: MatrixLayout,
        f: impl Fn(usize, usize) -> T,
    ) -> Self
    where
        T: Default,
    {
        let m = Self::with_layout(loc, nrows, ncols, layout, T::default());
        {
            let mut rep = m.obj.local_mut();
            for (_, bc) in rep.lm.iter_mut() {
                let block = bc.block;
                for r in block.rows.iter() {
                    for c in block.cols.iter() {
                        *bc.get_mut((r, c)) = f(r, c);
                    }
                }
            }
        }
        loc.barrier();
        m
    }

    pub fn nrows(&self) -> usize {
        self.obj.local().partition.nrows
    }

    pub fn ncols(&self) -> usize {
        self.obj.local().partition.ncols
    }

    fn locate(&self, g: (usize, usize)) -> (Bcid, LocId) {
        let rep = self.obj.local();
        assert!(
            g.0 < rep.partition.nrows && g.1 < rep.partition.ncols,
            "pMatrix index {g:?} out of bounds ({}, {})",
            rep.partition.nrows,
            rep.partition.ncols
        );
        let b = rep.partition.find(g);
        (b, rep.owner(b))
    }

    /// (BCID, block) pairs owned by this location.
    pub fn local_blocks(&self) -> Vec<(Bcid, Range2d)> {
        let rep = self.obj.local();
        rep.lm.iter().map(|(bcid, bc)| (bcid, bc.block)).collect()
    }

    /// Copies row `r` when the *entire* row is stored locally (row-blocked
    /// layouts); `None` otherwise. O(ncols).
    pub fn local_row(&self, r: usize) -> Option<Vec<T>> {
        let rep = self.obj.local();
        for (_, bc) in rep.lm.iter() {
            if bc.block.rows.contains(&r) && bc.block.ncols() == rep.partition.ncols {
                let lo = bc.offset((r, bc.block.cols.lo));
                return Some(bc.data[lo..lo + bc.block.ncols()].to_vec());
            }
        }
        None
    }

    /// The partition, for views that align with the layout.
    pub fn partition(&self) -> MatrixPartition {
        self.obj.local().partition
    }

    /// Decomposes columns `cols` of row `r` into per-block runs
    /// `(bcid, owner, cols)` — the bulk-transport units of a matrix row
    /// (one run for row/column stripes, one per tile column for 2-D
    /// grids). O(runs), replicated metadata only.
    pub fn row_runs(&self, r: usize, cols: Range1d) -> Vec<(Bcid, LocId, Range1d)> {
        let rep = self.obj.local();
        assert!(
            r < rep.partition.nrows && cols.hi <= rep.partition.ncols,
            "pMatrix row segment ({r}, {cols:?}) out of bounds ({}, {})",
            rep.partition.nrows,
            rep.partition.ncols
        );
        let mut out = Vec::new();
        let mut c = cols.lo;
        while c < cols.hi {
            let bcid = rep.partition.find((r, c));
            let block = rep.partition.block(bcid);
            let hi = block.cols.hi.min(cols.hi);
            out.push((bcid, rep.owner(bcid), Range1d::new(c, hi)));
            c = hi;
        }
        out
    }

    /// Bulk read of columns `cols` of row `r`: one RMI per remote block
    /// run, a direct slice borrow per local run — the matrix counterpart
    /// of `RangedContainer::get_range`.
    pub fn get_row_range(&self, r: usize, cols: Range1d) -> Vec<T> {
        let loc = self.obj.location().clone();
        let me = loc.id();
        // Launch all remote fetches before awaiting any reply.
        let parts: Vec<RowPart<T>> = self
            .row_runs(r, cols)
            .into_iter()
            .map(|(bcid, owner, run)| {
                if owner == me {
                    Ok((bcid, run))
                } else {
                    loc.note_bulk_request(run.len() as u64);
                    Err(self.obj.invoke_split_at(owner, move |cell, _| {
                        cell.borrow().row_segment_local(bcid, r, run)
                    }))
                }
            })
            .collect();
        let mut out = Vec::with_capacity(cols.len());
        for part in parts {
            match part {
                Ok((bcid, run)) => {
                    loc.note_localized_chunk();
                    out.extend(self.obj.local().row_segment_local(bcid, r, run));
                }
                Err(fut) => out.extend(fut.get()),
            }
        }
        out
    }

    /// Bulk write of `vals` to columns `col_lo..col_lo + vals.len()` of
    /// row `r` (asynchronous; one RMI per remote block run).
    pub fn set_row_range(&self, r: usize, col_lo: usize, vals: Vec<T>) {
        let loc = self.obj.location().clone();
        let me = loc.id();
        for (bcid, owner, run) in self.row_runs(r, Range1d::new(col_lo, col_lo + vals.len())) {
            let chunk = &vals[run.lo - col_lo..run.hi - col_lo];
            if owner == me {
                // Local fast path: straight from the borrowed slice.
                loc.note_localized_chunk();
                self.obj.local_mut().set_row_segment_local(bcid, r, run, chunk);
            } else {
                loc.note_bulk_request(run.len() as u64);
                let owned = chunk.to_vec();
                self.obj.invoke_at(owner, move |cell, _| {
                    cell.borrow_mut().set_row_segment_local(bcid, r, run, &owned);
                });
            }
        }
    }

    /// Direct borrow of the local storage backing columns `cols` of row
    /// `r`, when one local block covers the whole segment; `None`
    /// otherwise (callers fall back to [`PMatrix::get_row_range`]).
    pub fn with_row_slice<R>(
        &self,
        r: usize,
        cols: Range1d,
        f: impl FnOnce(&[T]) -> R,
    ) -> Option<R> {
        if cols.is_empty() {
            return Some(f(&[]));
        }
        let rep = self.obj.local();
        // O(1): resolve the owning block by partition lookup, then check
        // it is local and covers the whole segment.
        let bcid = rep.partition.find((r, cols.lo));
        let bc = rep.lm.get(bcid)?;
        if cols.hi > bc.block.cols.hi {
            return None;
        }
        let _gd = rep.ths.guard(methods::GET, pack((r, cols.lo)), bcid);
        Some(f(bc.row_slice(r, cols)))
    }

    /// Mutable counterpart of [`PMatrix::with_row_slice`].
    pub fn with_row_slice_mut<R>(
        &self,
        r: usize,
        cols: Range1d,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> Option<R> {
        if cols.is_empty() {
            return Some(f(&mut []));
        }
        let mut rep = self.obj.local_mut();
        let rep = &mut *rep;
        let bcid = rep.partition.find((r, cols.lo));
        let bc = rep.lm.get_mut(bcid)?;
        if cols.hi > bc.block.cols.hi {
            return None;
        }
        let _gd = rep.ths.guard(methods::APPLY, pack((r, cols.lo)), bcid);
        Some(f(bc.row_slice_mut(r, cols)))
    }
}

impl<T: Send + Clone + 'static> PContainer for PMatrix<T> {
    fn location(&self) -> &Location {
        self.obj.location()
    }

    fn global_size(&self) -> usize {
        let rep = self.obj.local();
        rep.partition.nrows * rep.partition.ncols
    }

    fn local_size(&self) -> usize {
        self.obj.local().lm.local_len()
    }

    fn memory_size(&self) -> MemSize {
        let local = self.obj.local().lm.memory_size();
        self.obj.location().allreduce(local, |a, b| a + b)
    }
}

impl<T: Send + Clone + 'static> ElementRead<(usize, usize)> for PMatrix<T> {
    type Value = T;

    fn get_element(&self, g: (usize, usize)) -> T {
        let (bcid, owner) = self.locate(g);
        if owner == self.obj.location().id() {
            self.obj.local().get_local(bcid, g)
        } else {
            self.obj.invoke_ret_at(owner, move |cell, _| cell.borrow().get_local(bcid, g))
        }
    }

    fn split_get_element(&self, g: (usize, usize)) -> RmiFuture<T> {
        let (bcid, owner) = self.locate(g);
        self.obj.invoke_split_at(owner, move |cell, _| cell.borrow().get_local(bcid, g))
    }

    fn is_local(&self, g: (usize, usize)) -> bool {
        self.locate(g).1 == self.obj.location().id()
    }
}

impl<T: Send + Clone + 'static> ElementWrite<(usize, usize)> for PMatrix<T> {
    fn set_element(&self, g: (usize, usize), v: T) {
        let (bcid, owner) = self.locate(g);
        if owner == self.obj.location().id() {
            self.obj.local_mut().set_local(bcid, g, v);
        } else {
            self.obj.invoke_at(owner, move |cell, _| cell.borrow_mut().set_local(bcid, g, v));
        }
    }

    fn apply_set<F>(&self, g: (usize, usize), f: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        let (bcid, owner) = self.locate(g);
        self.obj.invoke_at(owner, move |cell, _| {
            cell.borrow_mut().apply_local(bcid, g, f);
        });
    }

    fn apply_get<R, F>(&self, g: (usize, usize), f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut T) -> R + Send + 'static,
    {
        let (bcid, owner) = self.locate(g);
        self.obj.invoke_ret_at(owner, move |cell, _| cell.borrow_mut().apply_local(bcid, g, f))
    }
}

impl<T: Send + Clone + 'static> LocalIteration<(usize, usize)> for PMatrix<T> {
    fn for_each_local(&self, mut f: impl FnMut((usize, usize), &T)) {
        let rep = self.obj.local();
        for (_, bc) in rep.lm.iter() {
            for r in bc.block.rows.iter() {
                for c in bc.block.cols.iter() {
                    f((r, c), bc.get((r, c)));
                }
            }
        }
    }

    fn for_each_local_mut(&self, mut f: impl FnMut((usize, usize), &mut T)) {
        let mut rep = self.obj.local_mut();
        for (_, bc) in rep.lm.iter_mut() {
            let block = bc.block;
            for r in block.rows.iter() {
                for c in block.cols.iter() {
                    f((r, c), bc.get_mut((r, c)));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn construct_and_access() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::new(loc, 4, 3, 0i32);
            assert_eq!(m.global_size(), 12);
            assert_eq!((m.nrows(), m.ncols()), (4, 3));
            if loc.id() == 0 {
                m.set_element((3, 2), 42);
            }
            loc.rmi_fence();
            assert_eq!(m.get_element((3, 2)), 42);
            assert_eq!(m.get_element((0, 0)), 0);
        });
    }

    #[test]
    fn row_blocked_locality() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::new(loc, 4, 4, 0u8);
            // Rows 0-1 on loc 0, rows 2-3 on loc 1.
            assert_eq!(m.is_local((0, 3)), loc.id() == 0);
            assert_eq!(m.is_local((3, 0)), loc.id() == 1);
            let blocks = m.local_blocks();
            assert_eq!(blocks.len(), 1);
            assert_eq!(blocks[0].1.nrows(), 2);
            assert_eq!(blocks[0].1.ncols(), 4);
        });
    }

    #[test]
    fn column_blocked_and_tiled() {
        execute(RtsConfig::default(), 2, |loc| {
            let mc = PMatrix::with_layout(loc, 4, 4, MatrixLayout::ColumnBlocked, 0u8);
            assert_eq!(mc.is_local((3, 0)), loc.id() == 0);
            assert_eq!(mc.is_local((0, 3)), loc.id() == 1);

            let mt = PMatrix::with_layout(
                loc,
                4,
                4,
                MatrixLayout::Blocked2d { grid_rows: 2, grid_cols: 2 },
                0u8,
            );
            // 4 tiles cyclic over 2 locations: tiles 0,2 -> loc0; 1,3 -> loc1.
            assert_eq!(mt.is_local((0, 0)), loc.id() == 0);
            assert_eq!(mt.is_local((0, 3)), loc.id() == 1);
            assert_eq!(mt.is_local((3, 0)), loc.id() == 0);
            assert_eq!(mt.is_local((3, 3)), loc.id() == 1);
        });
    }

    #[test]
    fn from_fn_and_local_iteration() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 6, 5, MatrixLayout::RowBlocked, |r, c| r * 10 + c);
            let mut count = 0;
            m.for_each_local(|(r, c), v| {
                assert_eq!(*v, r * 10 + c);
                count += 1;
            });
            assert_eq!(count, m.local_size());
            assert_eq!(loc.allreduce_sum(count as u64), 30);
            assert_eq!(m.get_element((5, 4)), 54);
        });
    }

    #[test]
    fn apply_and_split_phase() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::new(loc, 2, 2, 1u64);
            if loc.id() == 1 {
                m.apply_set((0, 0), |v| *v += 10);
                let doubled = m.apply_get((1, 1), |v| {
                    *v *= 2;
                    *v
                });
                assert_eq!(doubled, 2);
            }
            loc.rmi_fence();
            let f = m.split_get_element((0, 0));
            assert_eq!(f.get(), 11);
        });
    }

    #[test]
    fn for_each_local_mut_transposes_values() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 4, MatrixLayout::RowBlocked, |r, c| (r, c));
            m.for_each_local_mut(|_, v| *v = (v.1, v.0));
            loc.barrier();
            assert_eq!(m.get_element((2, 3)), (3, 2));
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        execute(RtsConfig::default(), 1, |loc| {
            let m = PMatrix::new(loc, 2, 2, 0u8);
            m.get_element((2, 0));
        });
    }

    #[test]
    fn row_range_bulk_round_trip_across_layouts() {
        for layout in [
            MatrixLayout::RowBlocked,
            MatrixLayout::ColumnBlocked,
            MatrixLayout::Blocked2d { grid_rows: 2, grid_cols: 2 },
        ] {
            execute(RtsConfig::default(), 2, move |loc| {
                let m = PMatrix::from_fn(loc, 6, 8, layout, |r, c| (r * 8 + c) as i64);
                // Bulk read of a partial row crossing block boundaries.
                let seg = m.get_row_range(3, Range1d::new(1, 7));
                assert_eq!(seg, (1..7).map(|c| (3 * 8 + c) as i64).collect::<Vec<_>>());
                loc.barrier();
                if loc.id() == 0 {
                    m.set_row_range(4, 2, vec![-1, -2, -3, -4]);
                }
                loc.rmi_fence();
                for c in 0..8 {
                    let expect =
                        if (2..6).contains(&c) { -((c - 1) as i64) } else { (4 * 8 + c) as i64 };
                    assert_eq!(m.get_element((4, c)), expect, "layout {layout:?} col {c}");
                }
            });
        }
    }

    #[test]
    fn row_runs_issue_one_bulk_request_per_remote_block() {
        execute(RtsConfig::unbuffered(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 64, MatrixLayout::ColumnBlocked, |r, c| r * 64 + c);
            loc.rmi_fence();
            if loc.id() == 0 {
                let before = loc.stats();
                let row = m.get_row_range(1, Range1d::new(0, 64));
                assert_eq!(row.len(), 64);
                let after = loc.stats();
                // Two column blocks: one local slice, one remote bulk RMI.
                assert_eq!(after.bulk_requests - before.bulk_requests, 1);
                assert!(after.localized_chunks > before.localized_chunks);
                assert!(
                    after.remote_requests - before.remote_requests <= 2,
                    "whole-row read must not pay per-element traffic"
                );
            }
            loc.barrier();
        });
    }

    #[test]
    fn with_row_slice_requires_single_local_block() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 6, MatrixLayout::RowBlocked, |r, c| r * 6 + c);
            let local_row = if loc.id() == 0 { 0 } else { 2 };
            let sum = m.with_row_slice(local_row, Range1d::new(0, 6), |s| s.iter().sum::<usize>());
            assert_eq!(sum, Some((0..6).map(|c| local_row * 6 + c).sum()));
            let remote_row = if loc.id() == 0 { 3 } else { 1 };
            assert!(m.with_row_slice(remote_row, Range1d::new(0, 6), |_| ()).is_none());
        });
    }
}
