//! pVector: a dynamic indexed sequence — the pArray/pList hybrid of the
//! paper's taxonomy (Fig. 12d).
//!
//! pVector gives O(1) *index-based* access (like pArray) but supports
//! inserts and erases (like pList), paying the well-known tradeoff the
//! paper measures in Fig. 42: inserting shifts elements inside a block
//! (linear time) and unbalances the partition.
//!
//! Index → location resolution uses a replicated vector of cumulative
//! block bounds (an [`ExplicitPartition`](stapl_core::partition::ExplicitPartition)
//! in spirit). Structural operations leave the replicated bounds *stale*
//! until the collective [`PContainer::commit`] refreshes them — exactly
//! the lazy replicated metadata of Chapter VII.G. Between commits,
//! element accesses are routed by the stale bounds and clamped into the
//! owner's current block, which is the relaxed-consistency window the
//! paper's mixed-operation experiments run in.

use stapl_core::bcontainer::MemSize;
use stapl_core::domain::Range1d;
use stapl_core::interfaces::{
    DynamicPContainer, ElementRead, ElementWrite, LocalIteration, PContainer,
};
use stapl_core::pobject::PObject;
use stapl_core::thread_safety::{methods, LockingPolicyTable, ThreadSafety};
use stapl_rts::{LocId, Location, RmiFuture};

/// Per-location representative: one contiguous block per location.
pub struct VectorRep<T> {
    data: Vec<T>,
    /// Replicated cumulative sizes: location `l` owns global indices
    /// `[bounds[l-1], bounds[l])` as of the last commit.
    bounds: Vec<usize>,
    /// (global index, value) pairs arriving during a [`PVector::rebalance`].
    staging: Vec<(usize, T)>,
    /// Bumped whenever the replicated bounds are rebuilt (commit,
    /// rebalance, clear) so placement-memoizing layers can invalidate.
    epoch: u64,
    ths: ThreadSafety,
}

impl<T> VectorRep<T> {
    fn lo(&self, loc: LocId) -> usize {
        if loc == 0 {
            0
        } else {
            self.bounds[loc - 1]
        }
    }

    fn locate(&self, gid: usize) -> (LocId, usize) {
        let loc = self.bounds.partition_point(|&b| b <= gid);
        let loc = loc.min(self.bounds.len() - 1);
        (loc, gid - self.lo(loc))
    }

    /// Clamped local offset — see the module docs on the relaxed window.
    fn clamp(&self, off: usize) -> usize {
        off.min(self.data.len().saturating_sub(1))
    }
}

/// Writes `vals` at local offsets `off..`, clamped into the owner's
/// current block like `set_element` (the relaxed window between commits).
fn write_clamped<T>(rep: &mut VectorRep<T>, owner: LocId, gid_lo: usize, off: usize, vals: &[T])
where
    T: Clone,
{
    let _g = rep.ths.guard(methods::SET, gid_lo as u64, owner);
    if rep.data.is_empty() {
        return;
    }
    for (k, v) in vals.iter().enumerate() {
        let at = rep.clamp(off + k);
        rep.data[at] = v.clone();
    }
}

/// Applies `f(gid, &mut value)` over a run at local offsets `off..`,
/// clamped like `apply_set` (and dropped when the block emptied).
fn apply_clamped<T, F>(rep: &mut VectorRep<T>, owner: LocId, off: usize, gids: Range1d, f: &F)
where
    F: Fn(usize, &mut T),
{
    let _g = rep.ths.guard(methods::APPLY, gids.lo as u64, owner);
    if rep.data.is_empty() {
        return;
    }
    for (k, g) in gids.iter().enumerate() {
        let at = rep.clamp(off + k);
        f(g, &mut rep.data[at]);
    }
}

/// The STAPL pVector.
pub struct PVector<T: Send + Clone + 'static> {
    obj: PObject<VectorRep<T>>,
}

impl<T: Send + Clone + 'static> Clone for PVector<T> {
    fn clone(&self) -> Self {
        PVector { obj: self.obj.clone() }
    }
}

impl<T: Send + Clone + 'static> PVector<T> {
    /// **Collective.** A pVector of `n` copies of `init`, balanced.
    pub fn new(loc: &Location, n: usize, init: T) -> Self {
        let nlocs = loc.nlocs();
        let base = n / nlocs;
        let extra = n % nlocs;
        let mine = base + usize::from(loc.id() < extra);
        let mut bounds = Vec::with_capacity(nlocs);
        let mut acc = 0;
        for l in 0..nlocs {
            acc += base + usize::from(l < extra);
            bounds.push(acc);
        }
        let rep = VectorRep {
            data: vec![init; mine],
            bounds,
            staging: Vec::new(),
            epoch: 0,
            ths: ThreadSafety::new(
                LockingPolicyTable::dynamic_default(),
                std::sync::Arc::new(stapl_core::thread_safety::NoLockManager),
            ),
        };
        let obj = PObject::register(loc, rep);
        loc.barrier();
        PVector { obj }
    }

    /// **Collective.** Builds with `f(i)` at every index, locally.
    pub fn from_fn(loc: &Location, n: usize, f: impl Fn(usize) -> T) -> Self
    where
        T: Default,
    {
        let v = Self::new(loc, n, T::default());
        {
            let mut rep = v.obj.local_mut();
            let lo = rep.lo(loc.id());
            for (k, slot) in rep.data.iter_mut().enumerate() {
                *slot = f(lo + k);
            }
        }
        loc.barrier();
        v
    }

    fn locate(&self, gid: usize) -> (LocId, usize) {
        self.obj.local().locate(gid)
    }

    /// Asynchronously inserts `v` before global index `gid` (clamped into
    /// the owner block's current extent). O(block) — the linear cost the
    /// paper contrasts with pList's O(1).
    pub fn insert_async(&self, gid: usize, v: T) {
        let (owner, off) = self.locate(gid);
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let _g = rep.ths.guard(methods::INSERT, gid as u64, owner);
            let at = off.min(rep.data.len());
            rep.data.insert(at, v);
        });
    }

    /// Asynchronously erases the element at global index `gid` (clamped).
    pub fn erase_async(&self, gid: usize) {
        let (owner, off) = self.locate(gid);
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let _g = rep.ths.guard(methods::ERASE, gid as u64, owner);
            if !rep.data.is_empty() {
                let at = rep.clamp(off);
                rep.data.remove(at);
            }
        });
    }

    /// Appends at the global end (amortized O(1) at the last location).
    pub fn push_back(&self, v: T) {
        let last = self.obj.location().nlocs() - 1;
        self.obj.invoke_at(last, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let _g = rep.ths.guard(methods::PUSH_BACK, 0, last);
            rep.data.push(v);
        });
    }

    /// Removes the globally last element.
    pub fn pop_back(&self) {
        let last = self.obj.location().nlocs() - 1;
        self.obj.invoke_at(last, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let _g = rep.ths.guard(methods::POP_BACK, 0, last);
            rep.data.pop();
        });
    }

    /// **Collective.** Restores a balanced distribution after skewed
    /// `insert`/`erase` bursts — pVector's counterpart of
    /// [`PArray::rebalance`](crate::array::PArray::rebalance) (Section
    /// V.G's redistribution for the dynamic case).
    ///
    /// Drains pending structural operations (fence), computes balanced
    /// target block sizes from the *current* global size, ships every
    /// element whose global index now belongs to another location, and
    /// rebuilds the replicated bounds. Afterwards local block sizes
    /// differ by at most one and index resolution is exact again.
    pub fn rebalance(&self) {
        let loc = self.obj.location().clone();
        let me = loc.id();
        let nlocs = loc.nlocs();
        // Drain in-flight inserts/erases so sizes are stable.
        loc.rmi_fence();
        let lens = loc.allgather(self.obj.local().data.len());
        let total: usize = lens.iter().sum();
        // Balanced target: like `new`, the first `total % nlocs`
        // locations hold one extra element.
        let base = total / nlocs;
        let extra = total % nlocs;
        let mut target = Vec::with_capacity(nlocs);
        let mut acc = 0;
        for l in 0..nlocs {
            acc += base + usize::from(l < extra);
            target.push(acc);
        }
        let owner_of = |g: usize| target.partition_point(|&b| b <= g).min(nlocs - 1);
        let my_lo: usize = lens[..me].iter().sum();
        // Partition the local block: keepers stage locally, movers ship to
        // their new owner with their global index.
        let mut outgoing: Vec<Vec<(usize, T)>> = (0..nlocs).map(|_| Vec::new()).collect();
        {
            let mut rep = self.obj.local_mut();
            let block = std::mem::take(&mut rep.data);
            for (k, v) in block.into_iter().enumerate() {
                let g = my_lo + k;
                let dest = owner_of(g);
                if dest == me {
                    rep.staging.push((g, v));
                } else {
                    outgoing[dest].push((g, v));
                }
            }
        }
        for (dest, batch) in outgoing.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            self.obj.invoke_at(dest, move |cell, _| {
                cell.borrow_mut().staging.extend(batch);
            });
        }
        loc.rmi_fence();
        // Reassemble the local block in global-index order.
        {
            let mut rep = self.obj.local_mut();
            let mut staged = std::mem::take(&mut rep.staging);
            staged.sort_unstable_by_key(|(g, _)| *g);
            debug_assert!(staged.windows(2).all(|w| w[0].0 + 1 == w[1].0));
            rep.data = staged.into_iter().map(|(_, v)| v).collect();
            rep.bounds = target;
            rep.epoch += 1;
        }
        loc.barrier();
    }

    /// **Collective.** All elements in index order (test/debug helper).
    pub fn collect_ordered(&self) -> Vec<T> {
        let local = (self.obj.location().id(), self.obj.local().data.clone());
        let mut all = self.obj.location().allreduce(vec![local], |mut a, mut b| {
            a.append(&mut b);
            a
        });
        all.sort_by_key(|(l, _)| *l);
        all.into_iter().flat_map(|(_, d)| d).collect()
    }
}

impl<T: Send + Clone + 'static> PContainer for PVector<T> {
    fn location(&self) -> &Location {
        self.obj.location()
    }

    /// Size as of the last commit (lazy replicated metadata).
    fn global_size(&self) -> usize {
        *self.obj.local().bounds.last().unwrap()
    }

    fn local_size(&self) -> usize {
        self.obj.local().data.len()
    }

    /// **Collective.** Drains pending structural ops and rebuilds the
    /// replicated bounds so indices are exact again.
    fn commit(&self) {
        let loc = self.obj.location().clone();
        loc.rmi_fence();
        let lens = loc.allgather(self.obj.local().data.len());
        let mut acc = 0;
        let bounds: Vec<usize> = lens
            .into_iter()
            .map(|l| {
                acc += l;
                acc
            })
            .collect();
        {
            let mut rep = self.obj.local_mut();
            rep.bounds = bounds;
            rep.epoch += 1;
        }
        loc.barrier();
    }

    fn memory_size(&self) -> MemSize {
        let local = {
            let rep = self.obj.local();
            MemSize::new(
                rep.bounds.capacity() * std::mem::size_of::<usize>()
                    + std::mem::size_of::<VectorRep<T>>(),
                rep.data.capacity() * std::mem::size_of::<T>(),
            )
        };
        self.obj.location().allreduce(local, |a, b| a + b)
    }
}

impl<T: Send + Clone + 'static> DynamicPContainer for PVector<T> {
    fn clear(&self) {
        let loc = self.obj.location().clone();
        loc.rmi_fence();
        {
            let mut rep = self.obj.local_mut();
            rep.data.clear();
            let n = rep.bounds.len();
            rep.bounds = vec![0; n];
            rep.epoch += 1;
        }
        loc.barrier();
    }
}

impl<T: Send + Clone + 'static> ElementRead<usize> for PVector<T> {
    type Value = T;

    fn get_element(&self, gid: usize) -> T {
        let (owner, off) = self.locate(gid);
        self.obj.invoke_ret_at(owner, move |cell, _| {
            let rep = cell.borrow();
            let _g = rep.ths.guard(methods::GET, gid as u64, owner);
            rep.data[rep.clamp(off)].clone()
        })
    }

    fn split_get_element(&self, gid: usize) -> RmiFuture<T> {
        let (owner, off) = self.locate(gid);
        self.obj.invoke_split_at(owner, move |cell, _| {
            let rep = cell.borrow();
            rep.data[rep.clamp(off)].clone()
        })
    }

    fn is_local(&self, gid: usize) -> bool {
        self.locate(gid).0 == self.obj.location().id()
    }
}

impl<T: Send + Clone + 'static> ElementWrite<usize> for PVector<T> {
    fn set_element(&self, gid: usize, v: T) {
        let (owner, off) = self.locate(gid);
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let _g = rep.ths.guard(methods::SET, gid as u64, owner);
            if !rep.data.is_empty() {
                let at = rep.clamp(off);
                rep.data[at] = v;
            }
        });
    }

    fn apply_set<F>(&self, gid: usize, f: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        let (owner, off) = self.locate(gid);
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let _g = rep.ths.guard(methods::APPLY, gid as u64, owner);
            if !rep.data.is_empty() {
                let at = rep.clamp(off);
                f(&mut rep.data[at]);
            }
        });
    }

    fn apply_get<R, F>(&self, gid: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut T) -> R + Send + 'static,
    {
        let (owner, off) = self.locate(gid);
        self.obj.invoke_ret_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let _g = rep.ths.guard(methods::APPLY, gid as u64, owner);
            let at = rep.clamp(off);
            f(&mut rep.data[at])
        })
    }
}

impl<T: Send + Clone + 'static> LocalIteration<usize> for PVector<T> {
    fn for_each_local(&self, mut f: impl FnMut(usize, &T)) {
        let rep = self.obj.local();
        let lo = rep.lo(self.obj.location().id());
        for (k, v) in rep.data.iter().enumerate() {
            f(lo + k, v);
        }
    }

    fn for_each_local_mut(&self, mut f: impl FnMut(usize, &mut T)) {
        let me = self.obj.location().id();
        let mut rep = self.obj.local_mut();
        let lo = rep.lo(me);
        for (k, v) in rep.data.iter_mut().enumerate() {
            f(lo + k, v);
        }
    }

    fn try_for_each_local(&self, mut f: impl FnMut(usize, &T) -> bool) {
        let rep = self.obj.local();
        let lo = rep.lo(self.obj.location().id());
        for (k, v) in rep.data.iter().enumerate() {
            if !f(lo + k, v) {
                return;
            }
        }
    }

    fn try_local_slices_mut(&self, f: &mut dyn FnMut(&mut [T])) -> bool {
        f(&mut self.obj.local_mut().data);
        true
    }
}

impl<T: Send + Clone + 'static> stapl_core::interfaces::SequenceContainer<usize> for PVector<T> {
    fn push_back(&self, v: T) {
        PVector::push_back(self, v);
    }

    /// O(first block): shifts location 0's block right.
    fn push_front(&self, v: T) {
        self.obj.invoke_at(0, move |cell, _| {
            let mut rep = cell.borrow_mut();
            rep.data.insert(0, v);
        });
    }

    /// pVector has no position-free insertion cheaper than the last
    /// block's end; `push_anywhere` appends to the *local* block (the
    /// index of the new element is only exact after `commit`).
    fn push_anywhere(&self, v: T) {
        self.obj.local_mut().data.push(v);
    }

    fn insert_before_async(&self, gid: usize, v: T) {
        self.insert_async(gid, v);
    }

    fn erase_async(&self, gid: usize) {
        PVector::erase_async(self, gid);
    }
}

impl<T: Send + Clone + 'static> stapl_core::interfaces::IndexedContainer for PVector<T> {
    fn local_subdomains(&self) -> Vec<(usize, stapl_core::partition::IndexSubDomain)> {
        let me = self.obj.location().id();
        let rep = self.obj.local();
        let lo = rep.lo(me);
        vec![(
            me,
            stapl_core::partition::IndexSubDomain::Contiguous(
                stapl_core::domain::Range1d::new(lo, lo + rep.data.len()),
            ),
        )]
    }
}

impl<T: Send + Clone + 'static> stapl_core::interfaces::RangedContainer for PVector<T> {
    /// Run decomposition from the replicated bounds: one run per owning
    /// location (each location's block is one contiguous `Vec<T>`). Like
    /// element routing, runs follow the *last-committed* bounds — the
    /// relaxed window of the module docs.
    fn runs(&self, r: Range1d) -> Vec<stapl_core::distribution::GidRun> {
        let rep = self.obj.local();
        assert!(
            r.hi <= *rep.bounds.last().unwrap(),
            "range [{}, {}) exceeds the committed pVector domain (size {})",
            r.lo,
            r.hi,
            rep.bounds.last().unwrap()
        );
        let mut out = Vec::new();
        for l in 0..rep.bounds.len() {
            let block = Range1d::new(rep.lo(l), rep.bounds[l]);
            let i = block.intersect(&r);
            if !i.is_empty() {
                out.push(stapl_core::distribution::GidRun { gids: i, bcid: l, owner: l });
            }
        }
        out
    }

    fn distribution_epoch(&self) -> u64 {
        self.obj.local().epoch
    }

    fn get_range(&self, r: Range1d) -> Vec<T> {
        let loc = self.obj.location().clone();
        let me = loc.id();
        let mut parts: Vec<Result<Vec<T>, RmiFuture<Vec<T>>>> = Vec::new();
        for run in self.runs(r) {
            if run.owner == me {
                loc.note_localized_chunk();
                let rep = self.obj.local();
                let lo = rep.lo(me);
                let _g = rep.ths.guard(methods::GET, run.gids.lo as u64, run.bcid);
                // Like `get_element`, a read of a block drained to empty
                // since the last commit panics — there is no value to
                // return (writes, which can be dropped, return instead).
                parts.push(Ok(run
                    .gids
                    .iter()
                    .map(|g| rep.data[rep.clamp(g - lo)].clone())
                    .collect()));
            } else {
                // pVector runs are whole per-location blocks — always worth
                // one bulk RMI, no element-fallback crossover. Like the
                // element path, offsets are computed at the *sender* from
                // the routing-time bounds and only clamped at the owner
                // (the relaxed window of the module docs) — the owner's
                // bounds may already have moved on.
                loc.note_bulk_request(run.gids.len() as u64);
                let off = run.gids.lo - self.obj.local().lo(run.owner);
                let len = run.gids.len();
                parts.push(Err(self.obj.invoke_split_at(run.owner, move |cell, _| {
                    let rep = cell.borrow();
                    (off..off + len).map(|o| rep.data[rep.clamp(o)].clone()).collect()
                })));
            }
        }
        let mut out = Vec::with_capacity(r.len());
        for part in parts {
            match part {
                Ok(vals) => out.extend(vals),
                Err(fut) => out.extend(fut.get()),
            }
        }
        out
    }

    fn set_range_slice(&self, lo: usize, vals: &[T]) {
        let loc = self.obj.location().clone();
        let me = loc.id();
        let r = Range1d::new(lo, lo + vals.len());
        // Offsets are sender-computed from the routing-time bounds and
        // clamped at the owner, matching `set_element`'s relaxed window.
        for run in self.runs(r) {
            let chunk = &vals[run.gids.lo - lo..run.gids.hi - lo];
            let off = run.gids.lo - self.obj.local().lo(run.owner);
            if run.owner == me {
                loc.note_localized_chunk();
                write_clamped(&mut self.obj.local_mut(), me, run.gids.lo, off, chunk);
            } else {
                loc.note_bulk_request(run.gids.len() as u64);
                let (gid_lo, owned) = (run.gids.lo, chunk.to_vec());
                self.obj.invoke_at(run.owner, move |cell, l| {
                    write_clamped(&mut cell.borrow_mut(), l.id(), gid_lo, off, &owned);
                });
            }
        }
    }

    fn apply_range<F>(&self, r: Range1d, f: F)
    where
        F: Fn(usize, &mut T) + Clone + Send + 'static,
    {
        let loc = self.obj.location().clone();
        let me = loc.id();
        for run in self.runs(r) {
            let off = run.gids.lo - self.obj.local().lo(run.owner);
            if run.owner == me {
                // Direct local mutation: one borrow for the whole run.
                loc.note_localized_chunk();
                apply_clamped(&mut self.obj.local_mut(), me, off, run.gids, &f);
            } else {
                loc.note_bulk_request(run.gids.len() as u64);
                let (gids, f) = (run.gids, f.clone());
                self.obj.invoke_at(run.owner, move |cell, l| {
                    apply_clamped(&mut cell.borrow_mut(), l.id(), off, gids, &f);
                });
            }
        }
    }

    fn with_slice<R>(
        &self,
        _bcid: usize,
        gids: Range1d,
        f: impl FnOnce(&[T]) -> R,
    ) -> Option<R> {
        let me = self.obj.location().id();
        let rep = self.obj.local();
        let lo = rep.lo(me);
        // Exact only: the committed bounds must still describe the local
        // block (no clamping on the direct-slice path).
        if gids.lo < lo || gids.hi > lo + rep.data.len() {
            return None;
        }
        Some(f(&rep.data[gids.lo - lo..gids.hi - lo]))
    }

    fn with_slice_mut<R>(
        &self,
        _bcid: usize,
        gids: Range1d,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> Option<R> {
        let me = self.obj.location().id();
        let mut rep = self.obj.local_mut();
        let lo = rep.lo(me);
        if gids.lo < lo || gids.hi > lo + rep.data.len() {
            return None;
        }
        Some(f(&mut rep.data[gids.lo - lo..gids.hi - lo]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn construct_get_set() {
        execute(RtsConfig::default(), 3, |loc| {
            let v = PVector::from_fn(loc, 10, |i| i as i64);
            assert_eq!(v.global_size(), 10);
            for i in 0..10 {
                assert_eq!(v.get_element(i), i as i64);
            }
            if loc.id() == 2 {
                v.set_element(0, -5);
            }
            loc.rmi_fence();
            assert_eq!(v.get_element(0), -5);
        });
    }

    #[test]
    fn insert_shifts_subsequent_elements() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::from_fn(loc, 6, |i| i as i32 * 10);
            if loc.id() == 0 {
                v.insert_async(2, 99);
            }
            v.commit();
            assert_eq!(v.global_size(), 7);
            assert_eq!(v.collect_ordered(), vec![0, 10, 99, 20, 30, 40, 50]);
        });
    }

    #[test]
    fn erase_removes_and_commit_rebalances_bounds() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::from_fn(loc, 6, |i| i as i32);
            if loc.id() == 1 {
                v.erase_async(0);
                v.erase_async(5); // stale index: still routed by old bounds
            }
            v.commit();
            assert_eq!(v.global_size(), 4);
            assert_eq!(v.collect_ordered(), vec![1, 2, 3, 4]);
        });
    }

    #[test]
    fn push_back_appends_globally() {
        execute(RtsConfig::default(), 3, |loc| {
            let v = PVector::new(loc, 3, 0u32);
            if loc.id() == 0 {
                v.push_back(7);
                v.push_back(8);
            }
            v.commit();
            assert_eq!(v.global_size(), 5);
            assert_eq!(v.collect_ordered(), vec![0, 0, 0, 7, 8]);
            assert_eq!(v.get_element(4), 8);
            if loc.id() == 1 {
                v.pop_back();
            }
            v.commit();
            assert_eq!(v.global_size(), 4);
        });
    }

    #[test]
    fn apply_get_round_trips() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::new(loc, 4, 1u64);
            if loc.id() == 0 {
                let r = v.apply_get(3, |x| {
                    *x += 9;
                    *x
                });
                assert_eq!(r, 10);
            }
            loc.rmi_fence();
            assert_eq!(v.get_element(3), 10);
        });
    }

    #[test]
    fn local_iteration_matches_bounds() {
        execute(RtsConfig::default(), 4, |loc| {
            let v = PVector::from_fn(loc, 21, |i| i);
            let mut count = 0;
            v.for_each_local(|g, val| {
                assert_eq!(g, *val);
                assert!(v.is_local(g));
                count += 1;
            });
            assert_eq!(count, v.local_size());
            assert_eq!(loc.allreduce_sum(count as u64), 21);
        });
    }

    #[test]
    fn mixed_operations_converge_after_commit() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::from_fn(loc, 8, |i| i as i64);
            // Interleave reads/writes/inserts/deletes from both locations,
            // then commit and verify global invariants (size accounting).
            for k in 0..4 {
                if loc.id() == 0 {
                    v.insert_async(k, 100 + k as i64);
                } else {
                    v.erase_async(7 - k);
                }
                let _ = v.get_element(k); // relaxed-window read must not panic
            }
            v.commit();
            assert_eq!(v.global_size(), 8); // 4 inserts, 4 erases
        });
    }

    #[test]
    fn sequence_trait_push_front_and_anywhere() {
        use stapl_core::interfaces::SequenceContainer;
        execute(RtsConfig::default(), 2, |loc| {
            let v: PVector<i32> = PVector::new(loc, 2, 0);
            if loc.id() == 1 {
                SequenceContainer::push_front(&v, -7);
            }
            SequenceContainer::push_anywhere(&v, 9); // local append, both locs
            v.commit();
            assert_eq!(v.global_size(), 5);
            assert_eq!(v.get_element(0), -7);
            let nines = v.collect_ordered().iter().filter(|x| **x == 9).count();
            assert_eq!(nines, 2);
        });
    }

    #[test]
    fn rebalance_restores_balance_after_skewed_inserts() {
        execute(RtsConfig::default(), 3, |loc| {
            let v = PVector::from_fn(loc, 9, |i| i as i64);
            // Location 0 bloats its own block with 12 extra elements.
            if loc.id() == 0 {
                for k in 0..12 {
                    v.insert_async(0, 100 + k);
                }
            }
            v.commit();
            let before = v.collect_ordered();
            assert_eq!(v.global_size(), 21);
            v.rebalance();
            // Same elements in the same order...
            assert_eq!(v.collect_ordered(), before);
            assert_eq!(v.global_size(), 21);
            // ...but block sizes now differ by at most one.
            let sizes = loc.allgather(v.local_size());
            assert_eq!(sizes.iter().sum::<usize>(), 21);
            assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1, "{sizes:?}");
            // Index resolution is exact again.
            for (i, x) in before.iter().enumerate() {
                assert_eq!(v.get_element(i), *x);
            }
        });
    }

    #[test]
    fn rebalance_handles_emptied_locations() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::from_fn(loc, 8, |i| i as u32);
            // Erase location 1's whole block.
            if loc.id() == 0 {
                for _ in 0..4 {
                    v.erase_async(4);
                }
            }
            v.commit();
            assert_eq!(v.global_size(), 4);
            v.rebalance();
            assert_eq!(v.collect_ordered(), vec![0, 1, 2, 3]);
            let sizes = loc.allgather(v.local_size());
            assert_eq!(sizes, vec![2, 2]);
        });
    }

    #[test]
    fn rebalance_of_balanced_vector_is_identity() {
        execute(RtsConfig::default(), 4, |loc| {
            let v = PVector::from_fn(loc, 17, |i| i as u64 * 3);
            let before = v.collect_ordered();
            v.rebalance();
            assert_eq!(v.collect_ordered(), before);
            let _ = loc;
        });
    }

    #[test]
    fn clear_empties() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::new(loc, 10, 3u8);
            v.clear();
            v.commit();
            assert_eq!(v.global_size(), 0);
            assert_eq!(v.local_size(), 0);
        });
    }

    #[test]
    fn bulk_range_round_trip_and_epoch() {
        use stapl_core::interfaces::RangedContainer;
        execute(RtsConfig::default(), 3, |loc| {
            let v = PVector::from_fn(loc, 20, |i| i as i64);
            assert_eq!(
                v.get_range(Range1d::new(2, 18)),
                (2..18).map(|i| i as i64).collect::<Vec<_>>()
            );
            if loc.id() == 1 {
                v.set_range(4, (4..15).map(|i| -(i as i64)).collect());
            }
            loc.rmi_fence();
            for i in 0..20 {
                let expect = if (4..15).contains(&i) { -(i as i64) } else { i as i64 };
                assert_eq!(v.get_element(i), expect);
            }
            // Runs: one per owning location, in GID order.
            let runs = v.runs(Range1d::new(0, 20));
            assert_eq!(runs.len(), 3);
            assert!(runs.windows(2).all(|w| w[0].gids.hi == w[1].gids.lo));
            // Commit bumps the placement epoch.
            let e0 = v.distribution_epoch();
            v.commit();
            assert!(v.distribution_epoch() > e0);
        });
    }

    #[test]
    fn try_local_slices_mut_writes_block() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = PVector::from_fn(loc, 10, |i| i as u32);
            assert!(v.try_local_slices_mut(&mut |s| {
                for x in s {
                    *x += 100;
                }
            }));
            loc.barrier();
            assert_eq!(v.get_element(9), 109);
        });
    }
}
