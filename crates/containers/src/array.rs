//! pArray (Chapter IX): the parallel equivalent of `std::valarray` — a
//! fixed-size, globally addressable, distributed array with index GIDs.
//!
//! Assembled exactly as Section V.E describes: a balanced (or blocked,
//! block-cyclic, explicit) [`IndexPartition`] splits the domain `[0, n)`
//! into sub-domains, a [`PartitionMapper`] places one base container per
//! sub-domain, and the replicated [`IndexDistribution`] gives every
//! location closed-form address resolution — no directory traffic, the
//! static-container optimization of Section V.C.

use stapl_core::bcontainer::{BaseContainer, MemSize};
use stapl_core::distribution::{GidRun, IndexDistribution};
use stapl_core::domain::Range1d;
use stapl_core::gid::Bcid;
use stapl_core::interfaces::{
    ElementRead, ElementWrite, IndexedContainer, LocalIteration, PContainer, RangedContainer,
};
use stapl_core::location_manager::LocationManager;
use stapl_core::mapper::{CyclicMapper, PartitionMapper};
use stapl_core::partition::{BalancedPartition, IndexPartition, IndexSubDomain};
use stapl_core::pobject::PObject;
use stapl_core::thread_safety::{methods, ThreadSafety};
use stapl_rts::{Location, RmiFuture};

/// Storage strategy of the pArray base containers — the knob behind the
/// paper's memory-consumption study (Fig. 34): one contiguous allocation
/// per base container versus one allocation per element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ArrayStorage {
    /// `Vec<T>` — the paper's valarray-backed default.
    #[default]
    Contiguous,
    /// `Vec<Box<T>>` — models per-element allocation overhead.
    Boxed,
}

enum Store<T> {
    Contiguous(Vec<T>),
    Boxed(Vec<Box<T>>),
}

/// Base container of a pArray: the values of one sub-domain, addressed by
/// the sub-domain's linearization offset.
pub struct ArrayBc<T> {
    sd: IndexSubDomain,
    store: Store<T>,
}

impl<T: Clone> ArrayBc<T> {
    fn new(sd: IndexSubDomain, init: &T, storage: ArrayStorage) -> Self {
        let n = sd.len();
        let store = match storage {
            ArrayStorage::Contiguous => Store::Contiguous(vec![init.clone(); n]),
            ArrayStorage::Boxed => {
                Store::Boxed((0..n).map(|_| Box::new(init.clone())).collect())
            }
        };
        ArrayBc { sd, store }
    }

    fn get(&self, gid: usize) -> &T {
        let off = self.sd.offset(gid);
        match &self.store {
            Store::Contiguous(v) => &v[off],
            Store::Boxed(v) => &v[off],
        }
    }

    fn get_mut(&mut self, gid: usize) -> &mut T {
        let off = self.sd.offset(gid);
        match &mut self.store {
            Store::Contiguous(v) => &mut v[off],
            Store::Boxed(v) => &mut v[off],
        }
    }

    /// Borrow of the storage span backing the storage-contiguous GID run
    /// `gids`; `None` for boxed (per-element) storage.
    fn slice(&self, gids: Range1d) -> Option<&[T]> {
        if gids.is_empty() {
            return Some(&[]);
        }
        let lo = self.sd.offset(gids.lo);
        debug_assert_eq!(
            self.sd.offset(gids.hi - 1),
            lo + gids.len() - 1,
            "bulk run {gids:?} is not storage-contiguous in this sub-domain"
        );
        match &self.store {
            Store::Contiguous(v) => Some(&v[lo..lo + gids.len()]),
            Store::Boxed(_) => None,
        }
    }

    /// Mutable counterpart of [`ArrayBc::slice`].
    fn slice_mut(&mut self, gids: Range1d) -> Option<&mut [T]> {
        if gids.is_empty() {
            return Some(&mut []);
        }
        let lo = self.sd.offset(gids.lo);
        debug_assert_eq!(self.sd.offset(gids.hi - 1), lo + gids.len() - 1);
        match &mut self.store {
            Store::Contiguous(v) => Some(&mut v[lo..lo + gids.len()]),
            Store::Boxed(_) => None,
        }
    }

    /// Appends clones of the run's values to `out` (slice memcpy-style for
    /// contiguous storage, per-element for boxed).
    fn extend_range(&self, gids: Range1d, out: &mut Vec<T>)
    where
        T: Clone,
    {
        match self.slice(gids) {
            Some(s) => out.extend_from_slice(s),
            None => {
                for g in gids.iter() {
                    out.push(self.get(g).clone());
                }
            }
        }
    }

    /// Overwrites the run with `vals` (`vals.len() == gids.len()`).
    fn write_range(&mut self, gids: Range1d, vals: &[T])
    where
        T: Clone,
    {
        debug_assert_eq!(gids.len(), vals.len());
        match self.slice_mut(gids) {
            Some(s) => s.clone_from_slice(vals),
            None => {
                for (g, v) in gids.iter().zip(vals) {
                    *self.get_mut(g) = v.clone();
                }
            }
        }
    }

    /// Applies `f(gid, &mut value)` across the run under one borrow.
    fn apply_range<F: FnMut(usize, &mut T)>(&mut self, gids: Range1d, mut f: F) {
        match self.slice_mut(gids) {
            Some(s) => {
                for (g, v) in gids.iter().zip(s) {
                    f(g, v);
                }
            }
            None => {
                for g in gids.iter() {
                    f(g, self.get_mut(g));
                }
            }
        }
    }

    /// Short-circuiting in-order iteration; returns false when `f` asked
    /// to stop.
    fn try_for_each<F: FnMut(usize, &T) -> bool>(&self, mut f: F) -> bool {
        match &self.store {
            Store::Contiguous(v) => {
                for (k, g) in self.sd.iter().enumerate() {
                    if !f(g, &v[k]) {
                        return false;
                    }
                }
            }
            Store::Boxed(v) => {
                for (k, g) in self.sd.iter().enumerate() {
                    if !f(g, &v[k]) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// In-order (gid, value) iteration of the sub-domain.
    fn for_each<F: FnMut(usize, &T)>(&self, mut f: F) {
        match &self.store {
            Store::Contiguous(v) => {
                for (k, g) in self.sd.iter().enumerate() {
                    f(g, &v[k]);
                }
            }
            Store::Boxed(v) => {
                for (k, g) in self.sd.iter().enumerate() {
                    f(g, &v[k]);
                }
            }
        }
    }

    fn for_each_mut<F: FnMut(usize, &mut T)>(&mut self, mut f: F) {
        match &mut self.store {
            Store::Contiguous(v) => {
                for (k, g) in self.sd.iter().enumerate() {
                    f(g, &mut v[k]);
                }
            }
            Store::Boxed(v) => {
                for (k, g) in self.sd.iter().enumerate() {
                    f(g, &mut v[k]);
                }
            }
        }
    }
}

impl<T: 'static> BaseContainer for ArrayBc<T> {
    type Value = T;

    fn len(&self) -> usize {
        match &self.store {
            Store::Contiguous(v) => v.len(),
            Store::Boxed(v) => v.len(),
        }
    }

    fn clear(&mut self) {
        match &mut self.store {
            Store::Contiguous(v) => v.clear(),
            Store::Boxed(v) => v.clear(),
        }
    }

    fn memory_size(&self) -> MemSize {
        let meta = std::mem::size_of::<IndexSubDomain>() + std::mem::size_of::<Store<T>>();
        let data = match &self.store {
            Store::Contiguous(v) => v.capacity() * std::mem::size_of::<T>(),
            // Boxed storage pays pointer + heap block per element; count the
            // allocator's typical 16-byte header/rounding the way the
            // paper's study counts malloc overhead.
            Store::Boxed(v) => v.capacity() * std::mem::size_of::<usize>()
                + v.len() * (std::mem::size_of::<T>().next_multiple_of(16)),
        };
        MemSize::new(meta, data)
    }
}

/// Per-location representative of a pArray.
pub struct ArrayRep<T> {
    lm: LocationManager<ArrayBc<T>>,
    dist: IndexDistribution,
    ths: ThreadSafety,
    storage: ArrayStorage,
    /// Staging area used during redistribution.
    staging: Option<(LocationManager<ArrayBc<T>>, IndexDistribution)>,
}

impl<T: Send + Clone + 'static> ArrayRep<T> {
    fn set_local(&mut self, bcid: Bcid, gid: usize, v: T) {
        let this = &mut *self;
        let _g = this.ths.guard(methods::SET, gid as u64, bcid);
        *this.lm.get_mut(bcid).expect("set: bcid not on this location").get_mut(gid) = v;
    }

    fn get_local(&self, bcid: Bcid, gid: usize) -> T {
        let _g = self.ths.guard(methods::GET, gid as u64, bcid);
        self.lm.get(bcid).expect("get: bcid not on this location").get(gid).clone()
    }

    fn apply_local<R>(&mut self, bcid: Bcid, gid: usize, f: impl FnOnce(&mut T) -> R) -> R {
        let this = &mut *self;
        let _g = this.ths.guard(methods::APPLY, gid as u64, bcid);
        f(this.lm.get_mut(bcid).expect("apply: bcid not on this location").get_mut(gid))
    }

    /// Bulk read of one storage-contiguous run (one guard, one borrow).
    fn get_range_local(&self, bcid: Bcid, gids: Range1d) -> Vec<T> {
        let _g = self.ths.guard(methods::GET, gids.lo as u64, bcid);
        let mut out = Vec::with_capacity(gids.len());
        self.lm.get(bcid).expect("get_range: bcid not on this location").extend_range(gids, &mut out);
        out
    }

    /// Bulk write of one storage-contiguous run.
    fn set_range_local(&mut self, bcid: Bcid, gids: Range1d, vals: &[T]) {
        let this = &mut *self;
        let _g = this.ths.guard(methods::SET, gids.lo as u64, bcid);
        this.lm
            .get_mut(bcid)
            .expect("set_range: bcid not on this location")
            .write_range(gids, vals);
    }

    /// Bulk read-modify-write of one storage-contiguous run.
    fn apply_range_local(&mut self, bcid: Bcid, gids: Range1d, f: impl FnMut(usize, &mut T)) {
        let this = &mut *self;
        let _g = this.ths.guard(methods::APPLY, gids.lo as u64, bcid);
        this.lm
            .get_mut(bcid)
            .expect("apply_range: bcid not on this location")
            .apply_range(gids, f);
    }
}

/// The STAPL pArray: static, indexed, globally addressable.
///
/// ```
/// use stapl_rts::{execute, RtsConfig};
/// use stapl_containers::array::PArray;
/// use stapl_core::interfaces::{ElementRead, ElementWrite, PContainer};
///
/// execute(RtsConfig::default(), 2, |loc| {
///     let a = PArray::new(loc, 100, 0i64);
///     // Every location writes its own stripe through the global API.
///     for i in 0..100 {
///         if i % loc.nlocs() == loc.id() {
///             a.set_element(i, i as i64 * 2);
///         }
///     }
///     loc.rmi_fence();
///     assert_eq!(a.get_element(99), 198);
///     assert_eq!(a.global_size(), 100);
/// });
/// ```
pub struct PArray<T: Send + Clone + 'static> {
    obj: PObject<ArrayRep<T>>,
}

impl<T: Send + Clone + 'static> Clone for PArray<T> {
    fn clone(&self) -> Self {
        PArray { obj: self.obj.clone() }
    }
}

impl<T: Send + Clone + 'static> PArray<T> {
    /// **Collective.** A pArray of `n` copies of `init` with the default
    /// balanced partition (one sub-domain per location) and cyclic mapper.
    pub fn new(loc: &Location, n: usize, init: T) -> Self {
        Self::with_partition(
            loc,
            Box::new(BalancedPartition::new(n, loc.nlocs())),
            Box::new(CyclicMapper::new(loc.nlocs())),
            init,
        )
    }

    /// **Collective.** A pArray with an explicit partition and mapper —
    /// the instance-specific customization path of Section V.H.
    pub fn with_partition(
        loc: &Location,
        partition: Box<dyn IndexPartition>,
        mapper: Box<dyn PartitionMapper>,
        init: T,
    ) -> Self {
        Self::with_options(loc, partition, mapper, init, ArrayStorage::Contiguous, ThreadSafety::unlocked())
    }

    /// **Collective.** Full customization: partition, mapper, storage kind
    /// and thread-safety policy (the paper's traits template arguments).
    pub fn with_options(
        loc: &Location,
        partition: Box<dyn IndexPartition>,
        mapper: Box<dyn PartitionMapper>,
        init: T,
        storage: ArrayStorage,
        ths: ThreadSafety,
    ) -> Self {
        let dist = IndexDistribution::new(partition, mapper);
        let mut lm = LocationManager::new();
        for (bcid, sd) in dist.local_subdomains(loc.id()) {
            lm.add_bcontainer(bcid, ArrayBc::new(sd, &init, storage));
        }
        let obj = PObject::register(loc, ArrayRep { lm, dist, ths, storage, staging: None });
        // Handles must be in sync before any peer can address us.
        loc.barrier();
        PArray { obj }
    }

    /// **Collective.** Builds the array with `f(i)` at every index, filled
    /// locally (no communication).
    pub fn from_fn(loc: &Location, n: usize, f: impl Fn(usize) -> T) -> Self
    where
        T: Default,
    {
        let a = Self::new(loc, n, T::default());
        {
            let mut rep = a.obj.local_mut();
            for (_, bc) in rep.lm.iter_mut() {
                bc.for_each_mut(|g, slot| *slot = f(g));
            }
        }
        loc.barrier();
        a
    }

    fn locate(&self, gid: usize) -> (Bcid, usize) {
        let rep = self.obj.local();
        assert!(
            gid < rep.dist.global_size(),
            "pArray index {gid} out of bounds (size {})",
            rep.dist.global_size()
        );
        rep.dist.locate(gid)
    }

    /// The distribution's (bcid, location) for `gid` — exposed for tests
    /// and benchmarks that reason about placement.
    pub fn locate_element(&self, gid: usize) -> (Bcid, usize) {
        self.locate(gid)
    }

    /// **Collective.** Re-partitions and re-maps the data (Section V.G):
    /// every element moves to its position under the new distribution.
    pub fn redistribute(
        &self,
        new_partition: Box<dyn IndexPartition>,
        new_mapper: Box<dyn PartitionMapper>,
    ) {
        let loc = self.obj.location().clone();
        assert_eq!(
            new_partition.global_size(),
            self.global_size(),
            "redistribution must preserve the domain"
        );
        // Phase 1 (collective): build empty staging bContainers for the new
        // distribution. Vec construction needs *some* placeholder T before
        // the moved values arrive and overwrite it; a location that holds
        // no elements under the old distribution may still gain some under
        // the new one, so the placeholder is agreed on collectively (any
        // location's first element — Some whenever the array is nonempty).
        let placeholder = {
            let rep = self.obj.local();
            let mut first = None;
            for (_, bc) in rep.lm.iter() {
                bc.for_each(|_, v| {
                    if first.is_none() {
                        first = Some(v.clone());
                    }
                });
                if first.is_some() {
                    break;
                }
            }
            drop(rep);
            loc.allreduce(first, |a, b| a.or(b))
        };
        let new_dist = IndexDistribution::new(new_partition, new_mapper);
        {
            let mut rep = self.obj.local_mut();
            let mut staging = LocationManager::new();
            for (bcid, sd) in new_dist.local_subdomains(loc.id()) {
                // Empty sub-domains need no placeholder.
                if sd.is_empty() {
                    continue;
                }
                let init = placeholder
                    .clone()
                    .expect("nonempty sub-domain implies a nonempty array, so a placeholder exists");
                staging.add_bcontainer(bcid, ArrayBc::new(sd, &init, rep.storage));
            }
            rep.staging = Some((staging, new_dist.clone()));
        }
        loc.barrier();
        // Phase 2: move every local element to its new home.
        {
            let rep = self.obj.local();
            let mut moves: Vec<(usize, usize, Bcid, T)> = Vec::new(); // (dest, gid, bcid, v)
            for (_, bc) in rep.lm.iter() {
                bc.for_each(|gid, v| {
                    let nb = new_dist.partition().find(gid);
                    let nl = new_dist.mapper().map(nb);
                    moves.push((nl, gid, nb, v.clone()));
                });
            }
            drop(rep);
            for (dest, gid, nb, v) in moves {
                self.obj.invoke_at(dest, move |cell, _| {
                    let mut rep = cell.borrow_mut();
                    let staging =
                        &mut rep.staging.as_mut().expect("staging missing during redistribution").0;
                    *staging.get_mut(nb).expect("staging bcid").get_mut(gid) = v;
                });
            }
        }
        loc.rmi_fence();
        // Phase 3 (collective): swap staging in.
        {
            let mut rep = self.obj.local_mut();
            let (staging, new_dist) = rep.staging.take().expect("staging vanished");
            rep.lm = staging;
            // Carries the placement epoch forward (+1) so epoch-keyed
            // caches (view localization memos) invalidate.
            rep.dist.replace_with(new_dist);
        }
        loc.barrier();
    }

    /// **Collective.** Redistributes onto the default balanced partition.
    pub fn rebalance(&self) {
        let loc = self.obj.location();
        self.redistribute(
            Box::new(BalancedPartition::new(self.global_size(), loc.nlocs())),
            Box::new(CyclicMapper::new(loc.nlocs())),
        );
    }

    /// **Collective.** The paper's `rotate` redistribution: keeps the
    /// partition but cyclically shifts each sub-domain's location by
    /// `shift` (element data migrates accordingly).
    pub fn rotate(&self, shift: usize) {
        let loc = self.obj.location();
        let nlocs = loc.nlocs();
        let (partition, assignment) = {
            let rep = self.obj.local();
            let p = rep.dist.partition().clone_box();
            let assignment: Vec<usize> = (0..p.num_subdomains())
                .map(|b| (rep.dist.mapper().map(b) + shift) % nlocs)
                .collect();
            (p, assignment)
        };
        self.redistribute(
            partition,
            Box::new(stapl_core::mapper::GeneralMapper::new(nlocs, assignment)),
        );
    }

    /// Runtime statistics pass-through for benches.
    pub fn location_handle(&self) -> &Location {
        self.obj.location()
    }
}

impl<T: Send + Clone + 'static> PContainer for PArray<T> {
    fn location(&self) -> &Location {
        self.obj.location()
    }

    fn global_size(&self) -> usize {
        self.obj.local().dist.global_size()
    }

    fn local_size(&self) -> usize {
        self.obj.local().lm.local_len()
    }

    fn memory_size(&self) -> MemSize {
        let local = {
            let rep = self.obj.local();
            let mut m = rep.lm.memory_size();
            m.metadata += rep.dist.memory_size();
            m
        };
        self.obj
            .location()
            .allreduce(local, |a, b| a + b)
    }
}

impl<T: Send + Clone + 'static> ElementRead<usize> for PArray<T> {
    type Value = T;

    fn get_element(&self, gid: usize) -> T {
        let (bcid, owner) = self.locate(gid);
        if owner == self.obj.location().id() {
            self.obj.local().get_local(bcid, gid)
        } else {
            self.obj.invoke_ret_at(owner, move |cell, _| cell.borrow().get_local(bcid, gid))
        }
    }

    fn split_get_element(&self, gid: usize) -> RmiFuture<T> {
        let (bcid, owner) = self.locate(gid);
        self.obj.invoke_split_at(owner, move |cell, _| cell.borrow().get_local(bcid, gid))
    }

    fn is_local(&self, gid: usize) -> bool {
        let (_, owner) = self.locate(gid);
        owner == self.obj.location().id()
    }
}

impl<T: Send + Clone + 'static> ElementWrite<usize> for PArray<T> {
    fn set_element(&self, gid: usize, v: T) {
        let (bcid, owner) = self.locate(gid);
        if owner == self.obj.location().id() {
            self.obj.local_mut().set_local(bcid, gid, v);
        } else {
            self.obj.invoke_at(owner, move |cell, _| cell.borrow_mut().set_local(bcid, gid, v));
        }
    }

    fn apply_set<F>(&self, gid: usize, f: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        let (bcid, owner) = self.locate(gid);
        if owner == self.obj.location().id() {
            self.obj.local_mut().apply_local(bcid, gid, f);
        } else {
            self.obj.invoke_at(owner, move |cell, _| {
                cell.borrow_mut().apply_local(bcid, gid, f);
            });
        }
    }

    fn apply_get<R, F>(&self, gid: usize, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut T) -> R + Send + 'static,
    {
        let (bcid, owner) = self.locate(gid);
        if owner == self.obj.location().id() {
            self.obj.local_mut().apply_local(bcid, gid, f)
        } else {
            self.obj
                .invoke_ret_at(owner, move |cell, _| cell.borrow_mut().apply_local(bcid, gid, f))
        }
    }
}

impl<T: Send + Clone + 'static> LocalIteration<usize> for PArray<T> {
    fn for_each_local(&self, mut f: impl FnMut(usize, &T)) {
        let rep = self.obj.local();
        for (_, bc) in rep.lm.iter() {
            bc.for_each(&mut f);
        }
    }

    fn for_each_local_mut(&self, mut f: impl FnMut(usize, &mut T)) {
        let mut rep = self.obj.local_mut();
        for (_, bc) in rep.lm.iter_mut() {
            bc.for_each_mut(&mut f);
        }
    }

    fn try_for_each_local(&self, mut f: impl FnMut(usize, &T) -> bool) {
        let rep = self.obj.local();
        for (_, bc) in rep.lm.iter() {
            if !bc.try_for_each(&mut f) {
                return;
            }
        }
    }

    fn try_local_slices_mut(&self, f: &mut dyn FnMut(&mut [T])) -> bool {
        // Boxed storage has no slices to expose; callers fall back.
        if self.obj.local().storage != ArrayStorage::Contiguous {
            return false;
        }
        let mut rep = self.obj.local_mut();
        for (_, bc) in rep.lm.iter_mut() {
            for piece in bc.sd.contiguous_pieces() {
                f(bc.slice_mut(piece).expect("contiguous storage exposes slices"));
            }
        }
        true
    }
}

impl<T: Send + Clone + 'static> IndexedContainer for PArray<T> {
    fn local_subdomains(&self) -> Vec<(Bcid, IndexSubDomain)> {
        let rep = self.obj.local();
        rep.dist.local_subdomains(self.obj.location().id())
    }
}

/// A pending piece of a `get_range`: remote fetches are launched for every
/// run up front (split-phase, so round trips overlap) before any reply is
/// awaited.
enum RangePart<T: Send + 'static> {
    Local(Bcid, Range1d),
    Bulk(RmiFuture<Vec<T>>),
    Elems(Vec<RmiFuture<T>>),
}

impl<T: Send + Clone + 'static> RangedContainer for PArray<T> {
    fn runs(&self, r: Range1d) -> Vec<GidRun> {
        self.obj.local().dist.contiguous_runs(r)
    }

    fn distribution_epoch(&self) -> u64 {
        self.obj.local().dist.epoch()
    }

    fn get_range(&self, r: Range1d) -> Vec<T> {
        let loc = self.obj.location().clone();
        let me = loc.id();
        let threshold = loc.config().bulk_threshold;
        // Phase 1: launch every remote fetch before awaiting any reply.
        let parts: Vec<RangePart<T>> = self
            .runs(r)
            .into_iter()
            .map(|run| {
                if run.owner == me {
                    RangePart::Local(run.bcid, run.gids)
                } else if run.gids.len() >= threshold {
                    loc.note_bulk_request(run.gids.len() as u64);
                    let (bcid, gids) = (run.bcid, run.gids);
                    RangePart::Bulk(self.obj.invoke_split_at(run.owner, move |cell, _| {
                        cell.borrow().get_range_local(bcid, gids)
                    }))
                } else {
                    loc.note_element_fallbacks(run.gids.len() as u64);
                    RangePart::Elems(run.gids.iter().map(|g| self.split_get_element(g)).collect())
                }
            })
            .collect();
        // Phase 2: assemble in GID order. Local borrows are scoped per run
        // so awaiting a future (which polls the runtime) never overlaps a
        // representative borrow.
        let mut out = Vec::with_capacity(r.len());
        for part in parts {
            match part {
                RangePart::Local(bcid, gids) => {
                    loc.note_localized_chunk();
                    let rep = self.obj.local();
                    let _g = rep.ths.guard(methods::GET, gids.lo as u64, bcid);
                    rep.lm
                        .get(bcid)
                        .expect("get_range: local run's bcid missing")
                        .extend_range(gids, &mut out);
                }
                RangePart::Bulk(fut) => out.extend(fut.get()),
                RangePart::Elems(futs) => out.extend(futs.into_iter().map(|f| f.get())),
            }
        }
        out
    }

    fn set_range_slice(&self, lo: usize, vals: &[T]) {
        let loc = self.obj.location().clone();
        let me = loc.id();
        let threshold = loc.config().bulk_threshold;
        let r = Range1d::new(lo, lo + vals.len());
        for run in self.runs(r) {
            let chunk = &vals[run.gids.lo - lo..run.gids.hi - lo];
            if run.owner == me {
                loc.note_localized_chunk();
                self.obj.local_mut().set_range_local(run.bcid, run.gids, chunk);
            } else if run.gids.len() >= threshold {
                loc.note_bulk_request(run.gids.len() as u64);
                let (bcid, gids) = (run.bcid, run.gids);
                let owned = chunk.to_vec();
                self.obj.invoke_at(run.owner, move |cell, _| {
                    cell.borrow_mut().set_range_local(bcid, gids, &owned);
                });
            } else {
                loc.note_element_fallbacks(run.gids.len() as u64);
                for (g, v) in run.gids.iter().zip(chunk) {
                    self.set_element(g, v.clone());
                }
            }
        }
    }

    fn apply_range<F>(&self, r: Range1d, f: F)
    where
        F: Fn(usize, &mut T) + Clone + Send + 'static,
    {
        let loc = self.obj.location().clone();
        let me = loc.id();
        let threshold = loc.config().bulk_threshold;
        for run in self.runs(r) {
            if run.owner == me {
                loc.note_localized_chunk();
                self.obj.local_mut().apply_range_local(run.bcid, run.gids, &f);
            } else if run.gids.len() >= threshold {
                loc.note_bulk_request(run.gids.len() as u64);
                let (bcid, gids, f) = (run.bcid, run.gids, f.clone());
                self.obj.invoke_at(run.owner, move |cell, _| {
                    cell.borrow_mut().apply_range_local(bcid, gids, f);
                });
            } else {
                loc.note_element_fallbacks(run.gids.len() as u64);
                for g in run.gids.iter() {
                    let f = f.clone();
                    self.apply_set(g, move |v| f(g, v));
                }
            }
        }
    }

    fn with_slice<R>(&self, bcid: Bcid, gids: Range1d, f: impl FnOnce(&[T]) -> R) -> Option<R> {
        let rep = self.obj.local();
        let bc = rep.lm.get(bcid)?;
        let _g = rep.ths.guard(methods::GET, gids.lo as u64, bcid);
        bc.slice(gids).map(f)
    }

    fn with_slice_mut<R>(
        &self,
        bcid: Bcid,
        gids: Range1d,
        f: impl FnOnce(&mut [T]) -> R,
    ) -> Option<R> {
        let mut rep = self.obj.local_mut();
        let rep = &mut *rep;
        let _g = rep.ths.guard(methods::APPLY, gids.lo as u64, bcid);
        let bc = rep.lm.get_mut(bcid)?;
        bc.slice_mut(gids).map(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_core::partition::{BlockCyclicPartition, BlockedPartition, ExplicitPartition};
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn construct_and_read_initial_values() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::new(loc, 10, 7i32);
            assert_eq!(a.global_size(), 10);
            for i in 0..10 {
                assert_eq!(a.get_element(i), 7);
            }
            let total = loc.allreduce_sum(a.local_size() as u64);
            assert_eq!(total, 10);
        });
    }

    #[test]
    fn set_then_get_round_trip_all_pairs() {
        execute(RtsConfig::default(), 4, |loc| {
            let a = PArray::new(loc, 16, 0usize);
            // Location i writes element i*4 .. i*4+4 (striped arbitrarily
            // relative to ownership).
            for i in 0..4 {
                a.set_element(loc.id() * 4 + i, loc.id() * 100 + i);
            }
            loc.rmi_fence();
            for who in 0..4 {
                for i in 0..4 {
                    assert_eq!(a.get_element(who * 4 + i), who * 100 + i);
                }
            }
        });
    }

    #[test]
    fn split_phase_get() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 8, |i| i as i64 * 3);
            let futs: Vec<_> = (0..8).map(|i| a.split_get_element(i)).collect();
            for (i, f) in futs.into_iter().enumerate() {
                assert_eq!(f.get(), i as i64 * 3);
            }
        });
    }

    #[test]
    fn apply_set_and_apply_get() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::new(loc, 9, 10u64);
            if loc.id() == 0 {
                for i in 0..9 {
                    a.apply_set(i, move |v| *v += i as u64);
                }
            }
            loc.rmi_fence();
            if loc.id() == 1 {
                for i in 0..9 {
                    let doubled = a.apply_get(i, |v| {
                        *v *= 2;
                        *v
                    });
                    assert_eq!(doubled, (10 + i as u64) * 2);
                }
            }
            loc.rmi_fence();
            assert_eq!(a.get_element(4), 28);
        });
    }

    #[test]
    fn from_fn_fills_without_communication() {
        execute(RtsConfig::unbuffered(), 2, |loc| {
            let before = loc.stats().remote_requests;
            let a = PArray::from_fn(loc, 100, |i| i * i);
            let after = loc.stats().remote_requests;
            assert_eq!(before, after, "from_fn must be communication-free");
            assert_eq!(a.get_element(9), 81);
        });
    }

    #[test]
    fn is_local_matches_partition() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::new(loc, 10, 0u8);
            // Balanced over 2 locations: [0,5) on loc0, [5,10) on loc1.
            for i in 0..10 {
                assert_eq!(a.is_local(i), (i < 5) == (loc.id() == 0));
            }
        });
    }

    #[test]
    fn local_iteration_covers_exactly_local_elements() {
        execute(RtsConfig::default(), 4, |loc| {
            let a = PArray::from_fn(loc, 37, |i| i);
            let mut seen = Vec::new();
            a.for_each_local(|g, v| {
                assert_eq!(g, *v);
                seen.push(g);
            });
            assert_eq!(seen.len(), a.local_size());
            let all = loc.allreduce(seen, |mut x, mut y| {
                x.append(&mut y);
                x
            });
            let mut all = all;
            all.sort_unstable();
            assert_eq!(all, (0..37).collect::<Vec<_>>());
        });
    }

    #[test]
    fn for_each_local_mut_writes() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::new(loc, 12, 1i32);
            a.for_each_local_mut(|g, v| *v = g as i32 * 10);
            loc.barrier();
            assert_eq!(a.get_element(11), 110);
        });
    }

    #[test]
    fn blocked_and_block_cyclic_partitions() {
        execute(RtsConfig::default(), 2, |loc| {
            let blocked = PArray::with_partition(
                loc,
                Box::new(BlockedPartition::new(10, 3)),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0usize,
            );
            // 4 sub-domains cyclic over 2 locations.
            assert_eq!(blocked.locate_element(0).1, 0);
            assert_eq!(blocked.locate_element(3).1, 1);
            assert_eq!(blocked.locate_element(9).1, 1);

            let bc = PArray::with_partition(
                loc,
                Box::new(BlockCyclicPartition::new(12, 2, 2)),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0usize,
            );
            for i in 0..12 {
                bc.set_element(i, i + 1);
            }
            loc.rmi_fence();
            for i in 0..12 {
                assert_eq!(bc.get_element(i), i + 1);
            }
        });
    }

    #[test]
    fn explicit_partition_and_general_placement() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::with_partition(
                loc,
                Box::new(ExplicitPartition::from_sizes(&[3, 4, 4])),
                Box::new(stapl_core::mapper::GeneralMapper::new(2, vec![1, 0, 1])),
                -1i64,
            );
            assert_eq!(a.locate_element(0).1, 1);
            assert_eq!(a.locate_element(5).1, 0);
            assert_eq!(a.locate_element(8).1, 1);
            a.set_element(8, 42);
            loc.rmi_fence();
            assert_eq!(a.get_element(8), 42);
        });
    }

    #[test]
    fn boxed_storage_behaves_identically_but_costs_more() {
        execute(RtsConfig::default(), 2, |loc| {
            let contiguous = PArray::new(loc, 64, 5u64);
            let boxed = PArray::with_options(
                loc,
                Box::new(BalancedPartition::new(64, loc.nlocs())),
                Box::new(CyclicMapper::new(loc.nlocs())),
                5u64,
                ArrayStorage::Boxed,
                ThreadSafety::unlocked(),
            );
            boxed.set_element(10, 99);
            loc.rmi_fence();
            assert_eq!(boxed.get_element(10), 99);
            let mc = contiguous.memory_size();
            let mb = boxed.memory_size();
            assert!(
                mb.data > mc.data,
                "boxed storage should report more data bytes: {mb:?} vs {mc:?}"
            );
        });
    }

    #[test]
    fn memory_size_scales_with_elements() {
        execute(RtsConfig::default(), 2, |loc| {
            let small = PArray::new(loc, 100, 0u64);
            let large = PArray::new(loc, 1000, 0u64);
            let ms = small.memory_size();
            let ml = large.memory_size();
            assert!(ml.data >= ms.data * 9);
            assert!(ms.data >= 100 * 8);
        });
    }

    #[test]
    fn redistribute_preserves_data() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 20, |i| i as i64 * 7);
            // Rebalance to a blocked partition with block 3, reversed-ish
            // cyclic placement.
            a.redistribute(
                Box::new(BlockedPartition::new(20, 3)),
                Box::new(CyclicMapper::new(loc.nlocs())),
            );
            for i in 0..20 {
                assert_eq!(a.get_element(i), i as i64 * 7, "element {i} lost in redistribution");
            }
            // And back.
            a.rebalance();
            for i in 0..20 {
                assert_eq!(a.get_element(i), i as i64 * 7);
            }
        });
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        execute(RtsConfig::default(), 1, |loc| {
            let a = PArray::new(loc, 5, 0u8);
            a.get_element(5);
        });
    }

    #[test]
    fn get_range_and_set_range_round_trip() {
        execute(RtsConfig::default(), 4, |loc| {
            let a = PArray::from_fn(loc, 41, |i| i as i64);
            // Every location bulk-reads a range crossing all owners.
            let all = a.get_range(Range1d::new(3, 39));
            assert_eq!(all, (3..39).map(|i| i as i64).collect::<Vec<_>>());
            assert!(a.get_range(Range1d::new(7, 7)).is_empty());
            // Phase separation: writes must not overlap the reads above.
            loc.barrier();
            // One location bulk-writes a misaligned stripe.
            if loc.id() == 2 {
                a.set_range(5, (5..30).map(|i| i as i64 * 10).collect());
            }
            loc.rmi_fence();
            for i in 0..41 {
                let expect = if (5..30).contains(&i) { i as i64 * 10 } else { i as i64 };
                assert_eq!(a.get_element(i), expect, "element {i}");
            }
        });
    }

    #[test]
    fn bulk_ops_work_on_block_cyclic_and_boxed_storage() {
        execute(RtsConfig::default(), 2, |loc| {
            let bc = PArray::with_partition(
                loc,
                Box::new(BlockCyclicPartition::new(23, 2, 3)),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0usize,
            );
            if loc.id() == 0 {
                bc.set_range(1, (1..22).collect());
            }
            loc.rmi_fence();
            assert_eq!(bc.get_range(Range1d::new(0, 23)), {
                let mut v: Vec<usize> = (0..23).collect();
                v[0] = 0;
                v[22] = 0;
                v
            });

            let boxed = PArray::with_options(
                loc,
                Box::new(BalancedPartition::new(10, loc.nlocs())),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0u64,
                ArrayStorage::Boxed,
                ThreadSafety::unlocked(),
            );
            if loc.id() == 1 {
                boxed.set_range(2, vec![9, 9, 9, 9]);
            }
            loc.rmi_fence();
            assert_eq!(boxed.get_range(Range1d::new(0, 10)), vec![0, 0, 9, 9, 9, 9, 0, 0, 0, 0]);
        });
    }

    #[test]
    fn apply_range_executes_at_owners() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::from_fn(loc, 30, |i| i as u64);
            if loc.id() == 0 {
                a.apply_range(Range1d::new(4, 26), |g, v| *v += 1000 + g as u64);
            }
            loc.rmi_fence();
            for i in 0..30 {
                let expect =
                    if (4..26).contains(&i) { i as u64 * 2 + 1000 } else { i as u64 };
                assert_eq!(a.get_element(i), expect);
            }
        });
    }

    #[test]
    fn bulk_transport_issues_one_request_per_remote_run() {
        execute(RtsConfig::unbuffered(), 4, |loc| {
            let n = 4000;
            let a = PArray::from_fn(loc, n, |i| i as u64);
            loc.rmi_fence();
            if loc.id() == 0 {
                let before = loc.stats();
                let vals = a.get_range(Range1d::new(0, n));
                assert_eq!(vals.len(), n);
                let after = loc.stats();
                // 3 remote runs (one per other location), each one bulk
                // request — not O(n) element fetches.
                assert_eq!(after.bulk_requests - before.bulk_requests, 3);
                assert!(
                    after.remote_requests - before.remote_requests <= 6,
                    "bulk read must not issue per-element traffic: {} remote requests",
                    after.remote_requests - before.remote_requests
                );
                assert_eq!(after.element_fallbacks, before.element_fallbacks);
            }
            loc.barrier();
        });
    }

    #[test]
    fn short_remote_runs_fall_back_to_element_rmis() {
        let cfg = RtsConfig { bulk_threshold: usize::MAX, ..RtsConfig::base() };
        execute(cfg, 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as u64);
            loc.rmi_fence();
            if loc.id() == 0 {
                let before = loc.stats();
                assert_eq!(a.get_range(Range1d::new(0, 10)), (0..10).collect::<Vec<u64>>());
                let after = loc.stats();
                assert_eq!(after.bulk_requests, before.bulk_requests);
                assert_eq!(after.element_fallbacks - before.element_fallbacks, 5);
            }
            loc.barrier();
        });
    }

    #[test]
    fn try_for_each_local_stops_early() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 40, |i| i);
            let mut visited = 0;
            a.try_for_each_local(|_, _| {
                visited += 1;
                visited < 3
            });
            assert_eq!(visited, 3.min(a.local_size()));
            let _ = loc;
        });
    }

    #[test]
    fn try_local_slices_mut_covers_local_elements() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::with_partition(
                loc,
                Box::new(BlockCyclicPartition::new(17, 4, 2)),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0u64,
            );
            let supported = a.try_local_slices_mut(&mut |s| s.fill(7));
            assert!(supported);
            loc.barrier();
            for i in 0..17 {
                assert_eq!(a.get_element(i), 7);
            }
            // Boxed storage refuses (caller falls back).
            let boxed = PArray::with_options(
                loc,
                Box::new(BalancedPartition::new(8, loc.nlocs())),
                Box::new(CyclicMapper::new(loc.nlocs())),
                0u64,
                ArrayStorage::Boxed,
                ThreadSafety::unlocked(),
            );
            assert!(!boxed.try_local_slices_mut(&mut |_| unreachable!("no slices in boxed storage")));
        });
    }

    #[test]
    fn async_ordering_per_element_per_source() {
        // MCM guarantee: same-source writes to the same element apply in
        // program order, so the last value wins.
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::new(loc, 4, 0u64);
            if loc.id() == 1 {
                for k in 0..100u64 {
                    a.set_element(0, k);
                }
            }
            loc.rmi_fence();
            assert_eq!(a.get_element(0), 99);
        });
    }

    #[test]
    fn sync_read_after_async_write_same_element() {
        // MCM: a synchronous method on x observes earlier same-source
        // asyncs on x.
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::new(loc, 4, 0u64);
            let target = if loc.id() == 0 { 3 } else { 0 };
            a.set_element(target, 77);
            assert_eq!(a.get_element(target), 77);
        });
    }
}
