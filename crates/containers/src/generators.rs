//! Graph workload generators for the evaluation (Chapter XI):
//! an SSCA#2-style clustered graph, torus/mesh graphs for the PageRank
//! inputs of Fig. 56, binary trees for the Euler-tour studies, and a
//! uniform random graph.
//!
//! The DARPA SSCA#2 reference generator is proprietary-ish C; this module
//! implements the same structure the benchmark specifies — vertices
//! grouped into cliques of random size, fully connected inside a clique,
//! with sparse random inter-clique edges — which is what the paper's
//! method evaluation exercises (bulk edge insertion with a mix of local
//! and remote targets).
//!
//! All generators are **collective**: every location inserts the edges
//! whose *source* vertex it owns, so generation itself scales.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use stapl_core::interfaces::PContainer;
use stapl_rts::Location;

use crate::graph::{Directedness, GraphPartitionKind, PGraph, VertexDesc};

/// Parameters of the SSCA#2-style generator.
#[derive(Clone, Copy, Debug)]
pub struct Ssca2Params {
    /// Total vertices.
    pub n: usize,
    /// Maximum clique size (cliques have uniform random size in
    /// `[1, max_clique_size]`).
    pub max_clique_size: usize,
    /// Probability of an inter-clique edge between consecutive cliques'
    /// members.
    pub inter_clique_prob: f64,
    pub seed: u64,
}

impl Default for Ssca2Params {
    fn default() -> Self {
        Ssca2Params { n: 1024, max_clique_size: 8, inter_clique_prob: 0.05, seed: 42 }
    }
}

/// Deterministic clique layout shared by all locations: returns each
/// vertex's clique id given the parameters (cheap closed form through a
/// replicated boundary list).
fn clique_bounds(p: &Ssca2Params) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(p.seed);
    let mut bounds = Vec::new();
    let mut at = 0;
    while at < p.n {
        let size = rng.random_range(1..=p.max_clique_size).min(p.n - at);
        at += size;
        bounds.push(at);
    }
    bounds
}

/// **Collective.** Fills `g` (a static directed graph of `params.n`
/// vertices) with SSCA#2-style clique + inter-clique edges. Returns the
/// number of edges this location inserted.
pub fn fill_ssca2<VP, EP>(
    loc: &Location,
    g: &PGraph<VP, EP>,
    params: &Ssca2Params,
    edge_prop: EP,
) -> usize
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    let bounds = clique_bounds(params);
    let clique_of = |v: usize| bounds.partition_point(|&b| b <= v);
    let clique_range = |c: usize| {
        let lo = if c == 0 { 0 } else { bounds[c - 1] };
        (lo, bounds[c])
    };
    let mut rng = StdRng::seed_from_u64(params.seed ^ (loc.id() as u64).wrapping_mul(0x9e37));
    let mut inserted = 0;
    // Each location generates edges for the vertices it owns (balanced
    // static partition: contiguous stripe).
    for v in g.local_vertices() {
        let c = clique_of(v);
        let (lo, hi) = clique_range(c);
        // Intra-clique: complete digraph among clique members.
        for u in lo..hi {
            if u != v {
                g.add_edge_async(v, u, edge_prop.clone());
                inserted += 1;
            }
        }
        // Inter-clique: sparse edges into the next clique.
        if bounds.len() > 1 {
            let (nlo, nhi) = clique_range((c + 1) % bounds.len());
            for u in nlo..nhi {
                if u != v && rng.random_bool(params.inter_clique_prob) {
                    g.add_edge_async(v, u, edge_prop.clone());
                    inserted += 1;
                }
            }
        }
    }
    g.commit();
    inserted
}

/// **Collective.** Builds a directed `rows × cols` mesh (the PageRank
/// inputs of Fig. 56: 1500×1500 vs 15×150000): each cell links to its
/// right and down neighbors, plus reciprocal links so every vertex has
/// incoming edges. Vertex `r * cols + c`.
pub fn fill_mesh<VP, EP>(_loc: &Location, g: &PGraph<VP, EP>, rows: usize, cols: usize, edge_prop: EP)
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    for v in g.local_vertices() {
        let (r, c) = (v / cols, v % cols);
        let link = |u: VertexDesc| {
            g.add_edge_async(v, u, edge_prop.clone());
        };
        if c + 1 < cols {
            link(v + 1);
        }
        if c > 0 {
            link(v - 1);
        }
        if r + 1 < rows {
            link(v + cols);
        }
        if r > 0 {
            link(v - cols);
        }
    }
    g.commit();
}

/// **Collective.** Builds a complete binary tree over vertices `0..n`
/// (`parent(i) = (i-1)/2`) as an *undirected* graph — the Euler-tour
/// input shape ("a single binary tree", Fig. 44). Each location adds the
/// parent edge of its local vertices.
pub fn fill_binary_tree<VP, EP>(_loc: &Location, g: &PGraph<VP, EP>, edge_prop: EP)
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    for v in g.local_vertices() {
        if v > 0 {
            let parent = (v - 1) / 2;
            g.add_edge_async(v, parent, edge_prop.clone());
        }
    }
    g.commit();
}

/// **Collective.** Uniform random directed graph: every local vertex gets
/// `avg_degree` edges to uniformly random targets.
pub fn fill_random<VP, EP>(
    loc: &Location,
    g: &PGraph<VP, EP>,
    avg_degree: usize,
    seed: u64,
    edge_prop: EP,
) where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    let n = g.num_vertices();
    let mut rng = StdRng::seed_from_u64(seed ^ (loc.id() as u64).wrapping_mul(0x5851_f42d));
    for v in g.local_vertices() {
        for _ in 0..avg_degree {
            let u = rng.random_range(0..n);
            g.add_edge_async(v, u, edge_prop.clone());
        }
    }
    g.commit();
}

/// **Collective.** A directed acyclic "layered" graph where `frac_sources`
/// of the vertices have no incoming edges — the find-sources workload of
/// Fig. 51. Edges go from lower to strictly higher descriptors.
pub fn fill_dag_with_sources<VP, EP>(
    loc: &Location,
    g: &PGraph<VP, EP>,
    avg_degree: usize,
    frac_sources: f64,
    seed: u64,
    edge_prop: EP,
) where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    let n = g.num_vertices();
    let first_non_source = ((n as f64) * frac_sources) as usize;
    let mut rng = StdRng::seed_from_u64(seed ^ (loc.id() as u64).wrapping_mul(0xda94));
    for v in g.local_vertices() {
        for _ in 0..avg_degree {
            // Targets are always beyond the source band and after v.
            let lo = v.max(first_non_source) + 1;
            if lo >= n {
                continue;
            }
            let u = rng.random_range(lo..n);
            g.add_edge_async(v, u, edge_prop.clone());
        }
    }
    g.commit();
}

/// Convenience: a static directed graph of `n` vertices (the usual input
/// shell for the generators above).
pub fn static_digraph(loc: &Location, n: usize) -> PGraph<u64, ()> {
    PGraph::new_static(loc, n, Directedness::Directed, 0)
}

/// Convenience: a dynamic directed graph with the given resolution kind
/// and `n` pre-added vertices with descriptors `0..n` (inserted by their
/// eventual owner so descriptors are dense like the static case).
pub fn dynamic_digraph_with_vertices(
    loc: &Location,
    n: usize,
    kind: GraphPartitionKind,
) -> PGraph<u64, ()> {
    let g = PGraph::new_dynamic(loc, Directedness::Directed, kind);
    // Balanced striping, same as the static layout, but via the dynamic
    // add path (exercises the directory).
    let per = n.div_ceil(loc.nlocs());
    let lo = (loc.id() * per).min(n);
    let hi = ((loc.id() + 1) * per).min(n);
    for vd in lo..hi {
        g.add_vertex_with_descriptor(vd, 0);
    }
    g.commit();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn ssca2_is_deterministic_and_clustered() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = static_digraph(loc, 64);
            let p = Ssca2Params { n: 64, max_clique_size: 4, inter_clique_prob: 0.2, seed: 7 };
            fill_ssca2(loc, &g, &p, ());
            assert!(g.num_edges() > 0);
            // Members of the same clique must be mutually connected.
            let bounds = clique_bounds(&p);
            let (lo, hi) = (0, bounds[0]);
            for a in lo..hi {
                for b in lo..hi {
                    if a != b {
                        assert!(g.find_edge(a, b), "clique edge {a}->{b} missing");
                    }
                }
            }
        });
    }

    #[test]
    fn clique_bounds_cover_exactly_n() {
        let p = Ssca2Params { n: 100, max_clique_size: 7, inter_clique_prob: 0.0, seed: 3 };
        let b = clique_bounds(&p);
        assert_eq!(*b.last().unwrap(), 100);
        let mut prev = 0;
        for &x in &b {
            assert!(x > prev && x - prev <= 7);
            prev = x;
        }
    }

    #[test]
    fn mesh_degrees_match_geometry() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = static_digraph(loc, 12); // 3 x 4 mesh
            fill_mesh(loc, &g, 3, 4, ());
            // Corner (0,0) = vertex 0: right + down = 2 out-edges.
            assert_eq!(g.out_degree(0), 2);
            // Interior (1,1) = vertex 5: 4 neighbors.
            assert_eq!(g.out_degree(5), 4);
            // Edge cell (0,1) = vertex 1: left, right, down.
            assert_eq!(g.out_degree(1), 3);
            // Total directed edges of a 4-neighbor mesh: 2*(2*r*c - r - c).
            assert_eq!(g.num_edges(), 2 * (2 * 3 * 4 - 3 - 4));
        });
    }

    #[test]
    fn binary_tree_has_n_minus_one_undirected_edges() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: PGraph<(), ()> = PGraph::new_static(loc, 15, Directedness::Undirected, ());
            fill_binary_tree(loc, &g, ());
            // Undirected edges stored twice.
            assert_eq!(g.num_edges(), 2 * 14);
            // Root's children are 1 and 2.
            assert!(g.find_edge(0, 1) && g.find_edge(0, 2));
            assert!(g.find_edge(7, 3)); // leaf to parent
        });
    }

    #[test]
    fn dag_sources_have_no_incoming_edges() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = static_digraph(loc, 40);
            fill_dag_with_sources(loc, &g, 3, 0.25, 11, ());
            // Compute in-degrees by scanning all edges.
            let mut local_targets: Vec<usize> = Vec::new();
            g.for_each_local_vertex(|v| {
                for e in &v.edges {
                    local_targets.push(e.target);
                }
            });
            let all = loc.allreduce(local_targets, |mut a, mut b| {
                a.append(&mut b);
                a
            });
            for t in all {
                assert!(t >= 10, "vertex {t} in the source band has an incoming edge");
            }
        });
    }

    #[test]
    fn random_graph_has_expected_edge_count() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = static_digraph(loc, 50);
            fill_random(loc, &g, 4, 99, ());
            assert_eq!(g.num_edges(), 50 * 4);
        });
    }

    #[test]
    fn dynamic_with_vertices_matches_static_layout() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = dynamic_digraph_with_vertices(loc, 10, GraphPartitionKind::DynamicFwd);
            assert_eq!(g.num_vertices(), 10);
            for vd in 0..10 {
                assert!(g.find_vertex(vd));
            }
            fill_mesh(loc, &g, 2, 5, ());
            assert!(g.num_edges() > 0);
        });
    }
}
