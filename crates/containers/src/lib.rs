//! # stapl-containers — the pContainer library
//!
//! The containers of Chapters IX–XIII, all assembled from the
//! `stapl-core` PCF modules (Fig. 12's inheritance, expressed as
//! composition of the framework parts):
//!
//! | Container | Taxonomy (Fig. 5) | Module |
//! |---|---|---|
//! | [`array::PArray`] | static, indexed | [`mod@array`] |
//! | [`vector::PVector`] | dynamic, indexed + sequence | [`vector`] |
//! | [`list::PList`] | dynamic, sequence | [`list`] |
//! | [`matrix::PMatrix`] | static, indexed (2-D) | [`matrix`] |
//! | [`graph::PGraph`] | dynamic, relational | [`graph`] |
//! | [`associative::PMap`] etc. | dynamic, associative | [`associative`] |
//! | [`composed`] helpers | pContainer of pContainers | [`composed`] |

pub mod array;
pub mod associative;
pub mod composed;
pub mod generators;
pub mod graph;
pub mod list;
pub mod matrix;
pub mod slab_list;
pub mod vector;

pub mod prelude {
    pub use crate::array::{ArrayStorage, PArray};
    pub use crate::associative::{PAssoc, PHashMap, PHashSet, PMap, PMultiMap, PSet};
    pub use crate::composed::{
        nested_apply, nested_get, nested_resize, nested_set, LocalArray, NestedGid,
    };
    pub use crate::generators::{
        dynamic_digraph_with_vertices, fill_binary_tree, fill_dag_with_sources, fill_mesh,
        fill_random, fill_ssca2, static_digraph, Ssca2Params,
    };
    pub use crate::graph::{Directedness, Edge, GraphPartitionKind, PGraph, Vertex, VertexDesc};
    pub use crate::list::{ListGid, PList};
    pub use crate::matrix::PMatrix;
    pub use crate::slab_list::SlabList;
    pub use crate::vector::PVector;
}

// ---------------------------------------------------------------------
// Crate-internal transport helpers shared by the dynamic containers
// ---------------------------------------------------------------------

/// One location's contribution to a data gather: its base containers'
/// items, keyed by BCID.
pub(crate) type BcidPayload<T> = Vec<(stapl_core::gid::Bcid, Vec<T>)>;

/// One-sided gather-to-caller shared by the dynamic containers'
/// `collect_ordered`: every *other* location ships its (BCID, items)
/// pairs once over a split RMI (noting the payload in `gather_items`),
/// the caller merges by BCID and flattens — O(n) to the single caller,
/// where the old allreduce made every location materialize all n items.
/// Peers only need to be polling (e.g. blocked in a fence or barrier).
pub(crate) fn gather_by_bcid<Rep, T>(
    obj: &stapl_core::pobject::PObject<Rep>,
    payload: fn(&Rep) -> BcidPayload<T>,
) -> Vec<T>
where
    Rep: 'static,
    T: Send + Clone + 'static,
{
    let me = obj.location().id();
    let nlocs = obj.location().nlocs();
    let futs: Vec<stapl_rts::RmiFuture<BcidPayload<T>>> = (0..nlocs)
        .filter(|l| *l != me)
        .map(|l| {
            obj.invoke_split_at(l, move |cell, loc| {
                let out = payload(&cell.borrow());
                let items: usize = out.iter().map(|(_, p)| p.len()).sum();
                loc.note_gather_items(items as u64);
                out
            })
        })
        .collect();
    let mut all = payload(&obj.local());
    for f in futs {
        all.extend(f.get());
    }
    all.sort_by_key(|(bcid, _)| *bcid);
    all.into_iter().flat_map(|(_, p)| p).collect()
}

/// One-sided probe sweep shared by the dirty-read recounts
/// (`global_size`, `num_vertices`/`num_edges`): asks every location for
/// its local contribution over split RMIs and returns the per-location
/// results. Per-pair FIFO orders each probe behind the caller's
/// directly-routed mutations to that location, so the caller observes
/// its own earlier (non-forwarded) mutations.
pub(crate) fn sweep<Rep, V>(
    obj: &stapl_core::pobject::PObject<Rep>,
    probe: fn(&Rep) -> V,
) -> Vec<V>
where
    Rep: 'static,
    V: Send + 'static,
{
    let futs: Vec<stapl_rts::RmiFuture<V>> = (0..obj.location().nlocs())
        .map(|l| obj.invoke_split_at(l, move |cell, _| probe(&cell.borrow())))
        .collect();
    futs.into_iter().map(|f| f.get()).collect()
}
