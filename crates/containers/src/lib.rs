//! # stapl-containers — the pContainer library
//!
//! The containers of Chapters IX–XIII, all assembled from the
//! `stapl-core` PCF modules (Fig. 12's inheritance, expressed as
//! composition of the framework parts):
//!
//! | Container | Taxonomy (Fig. 5) | Module |
//! |---|---|---|
//! | [`array::PArray`] | static, indexed | [`mod@array`] |
//! | [`vector::PVector`] | dynamic, indexed + sequence | [`vector`] |
//! | [`list::PList`] | dynamic, sequence | [`list`] |
//! | [`matrix::PMatrix`] | static, indexed (2-D) | [`matrix`] |
//! | [`graph::PGraph`] | dynamic, relational | [`graph`] |
//! | [`associative::PMap`] etc. | dynamic, associative | [`associative`] |
//! | [`composed`] helpers | pContainer of pContainers | [`composed`] |

pub mod array;
pub mod associative;
pub mod composed;
pub mod generators;
pub mod graph;
pub mod list;
pub mod matrix;
pub mod slab_list;
pub mod vector;

pub mod prelude {
    pub use crate::array::{ArrayStorage, PArray};
    pub use crate::associative::{PAssoc, PHashMap, PHashSet, PMap, PMultiMap, PSet};
    pub use crate::composed::{
        nested_apply, nested_get, nested_resize, nested_set, LocalArray, NestedGid,
    };
    pub use crate::generators::{
        dynamic_digraph_with_vertices, fill_binary_tree, fill_dag_with_sources, fill_mesh,
        fill_random, fill_ssca2, static_digraph, Ssca2Params,
    };
    pub use crate::graph::{Directedness, Edge, GraphPartitionKind, PGraph, Vertex, VertexDesc};
    pub use crate::list::{ListGid, PList};
    pub use crate::matrix::PMatrix;
    pub use crate::slab_list::SlabList;
    pub use crate::vector::PVector;
}
