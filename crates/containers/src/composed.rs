//! pContainer composition (Section IV.C, Chapter XIII): containers whose
//! *elements are containers*, with nested GIDs `(outer, inner)` and nested
//! parallel operations.
//!
//! The outer container is distributed; each inner container lives entirely
//! on its element's owning location. This is the specialization the paper
//! itself proposes for the bottom of a composition hierarchy ("if the
//! lower level of the composed pContainer is distributed across a single
//! shared memory node, then its mapping F can be specialized … some
//! methods may turn into empty function calls"): inner operations execute
//! at the owner with zero additional communication, and nested parallelism
//! falls out of processing outer elements on their owning locations.
//!
//! Because [`LocalArray`] is an ordinary `Send + Clone` value, *any*
//! container in this crate composes: `PArray<LocalArray<T>>`,
//! `PList<LocalArray<T>>`, `PArray<LocalArray<LocalArray<T>>>` (height 3),
//! and so on — the closure-under-composition property of Definition 12.

use stapl_core::gid::Gid;
use stapl_core::interfaces::ElementWrite;

/// A sequential array usable as a pContainer element — the
/// single-location specialization of an inner pArray.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct LocalArray<T> {
    data: Vec<T>,
}

impl<T: Clone> LocalArray<T> {
    pub fn new(n: usize, init: T) -> Self {
        LocalArray { data: vec![init; n] }
    }

    pub fn from_vec(data: Vec<T>) -> Self {
        LocalArray { data }
    }

    pub fn from_fn(n: usize, f: impl Fn(usize) -> T) -> Self {
        LocalArray { data: (0..n).map(f).collect() }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn get(&self, i: usize) -> &T {
        &self.data[i]
    }

    pub fn set(&mut self, i: usize, v: T) {
        self.data[i] = v;
    }

    pub fn resize(&mut self, n: usize, fill: T) {
        self.data.resize(n, fill);
    }

    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.data.iter()
    }

    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
        self.data.iter_mut()
    }

    pub fn as_slice(&self) -> &[T] {
        &self.data
    }
}

/// GID of an element of a height-2 composed container (Eq. 4.2): the
/// outer GID paired with the inner index.
pub type NestedGid<G> = (G, usize);

/// Reads element `(outer, inner)` of a composed container — the
/// `pc.get_element(i).get_element(j)` composition of the paper, executed
/// at the owner in one hop.
pub fn nested_get<C, G, T>(c: &C, gid: NestedGid<G>) -> T
where
    G: Gid,
    T: Send + Clone + 'static,
    C: ElementWrite<G, Value = LocalArray<T>>,
{
    let (outer, inner) = gid;
    c.apply_get(outer, move |a| a.get(inner).clone())
}

/// Writes element `(outer, inner)` asynchronously.
pub fn nested_set<C, G, T>(c: &C, gid: NestedGid<G>, v: T)
where
    G: Gid,
    T: Send + Clone + 'static,
    C: ElementWrite<G, Value = LocalArray<T>>,
{
    let (outer, inner) = gid;
    c.apply_set(outer, move |a| a.set(inner, v));
}

/// Applies a whole-inner-container function at the owner and returns its
/// result — the nested-pAlgorithm invocation of Fig. 61 (e.g. the
/// per-row minimum of Fig. 62).
pub fn nested_apply<C, G, T, R>(
    c: &C,
    outer: G,
    f: impl FnOnce(&mut LocalArray<T>) -> R + Send + 'static,
) -> R
where
    G: Gid,
    T: Send + Clone + 'static,
    R: Send + 'static,
    C: ElementWrite<G, Value = LocalArray<T>>,
{
    c.apply_get(outer, f)
}

/// Resizes the inner container under `outer` (the paper's
/// `pApA[i].resize(n)` from the Fig. 3 example). Asynchronous.
pub fn nested_resize<C, G, T>(c: &C, outer: G, n: usize, fill: T)
where
    G: Gid,
    T: Send + Clone + 'static,
    C: ElementWrite<G, Value = LocalArray<T>>,
{
    c.apply_set(outer, move |a| a.resize(n, fill));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::PArray;
    use crate::list::PList;
    use stapl_core::interfaces::{LocalIteration, PContainer};
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn local_array_basics() {
        let mut a = LocalArray::from_fn(5, |i| i * 2);
        assert_eq!(a.len(), 5);
        assert_eq!(*a.get(3), 6);
        a.set(3, 99);
        assert_eq!(*a.get(3), 99);
        a.resize(7, 0);
        assert_eq!(a.len(), 7);
        assert_eq!(a.iter().copied().sum::<usize>(), 2 + 4 + 99 + 8);
    }

    #[test]
    fn composed_parray_matches_fig3() {
        // Fig. 3: pArray of 3 pArrays with sizes 2, 3, 4.
        execute(RtsConfig::default(), 2, |loc| {
            let pa: PArray<LocalArray<i32>> = PArray::new(loc, 3, LocalArray::default());
            if loc.id() == 0 {
                for (i, n) in [(0, 2), (1, 3), (2, 4)] {
                    nested_resize(&pa, i, n, 0);
                }
            }
            loc.rmi_fence();
            // Write through nested GIDs from the other location.
            if loc.id() == 1 {
                for (i, j) in [(0, 0), (0, 1), (1, 2), (2, 3)] {
                    nested_set(&pa, (i, j), (i * 10 + j) as i32);
                }
            }
            loc.rmi_fence();
            assert_eq!(nested_get(&pa, (2, 3)), 23);
            assert_eq!(nested_get(&pa, (1, 2)), 12);
            assert_eq!(nested_get(&pa, (0, 1)), 1);
            // Composed size = Σ inner sizes (Eq. 4.2).
            let total: usize = (0..3).map(|i| pa.apply_get(i, |a| a.len())).sum();
            assert_eq!(total, 9);
        });
    }

    #[test]
    fn composed_plist_of_arrays() {
        execute(RtsConfig::default(), 2, |loc| {
            let pl: PList<LocalArray<u64>> = PList::new(loc);
            let gid = pl.push_anywhere(LocalArray::from_fn(4, |i| i as u64));
            loc.rmi_fence();
            let min = pl.apply_get(gid, |a| *a.iter().min().unwrap());
            assert_eq!(min, 0);
            pl.apply_set(gid, |a| a.set(0, 100));
            loc.rmi_fence();
            let min = pl.apply_get(gid, |a| *a.iter().min().unwrap());
            assert_eq!(min, 1);
            pl.commit();
            assert_eq!(pl.global_size(), 2); // one inner array per location
        });
    }

    #[test]
    fn height_three_composition() {
        // pArray<LocalArray<LocalArray<u8>>> — height 3 per Definition 12.
        execute(RtsConfig::default(), 2, |loc| {
            let pa: PArray<LocalArray<LocalArray<u8>>> =
                PArray::new(loc, 2, LocalArray::new(2, LocalArray::new(2, 0)));
            if loc.id() == 0 {
                pa.apply_set(1, |mid| {
                    let mut inner = mid.get(0).clone();
                    inner.set(1, 9);
                    mid.set(0, inner);
                });
            }
            loc.rmi_fence();
            let v = pa.apply_get(1, |mid| *mid.get(0).get(1));
            assert_eq!(v, 9);
        });
    }

    #[test]
    fn nested_parallelism_processes_rows_locally() {
        // Row-min over a composed array touches only local data on each
        // location (the Fig. 62 access pattern).
        execute(RtsConfig::unbuffered(), 2, |loc| {
            let rows = 8;
            let pa: PArray<LocalArray<i64>> =
                PArray::from_fn(loc, rows, |r| LocalArray::from_fn(16, move |c| (r * 16 + c) as i64));
            loc.rmi_fence();
            let before = loc.stats().remote_requests;
            let mut local_mins = Vec::new();
            pa.for_each_local(|r, row| {
                local_mins.push((r, *row.iter().min().unwrap()));
            });
            let after = loc.stats().remote_requests;
            assert_eq!(before, after, "nested row-min must be communication-free");
            for (r, m) in local_mins {
                assert_eq!(m, (r * 16) as i64);
            }
        });
    }
}
