//! pList (Chapter X): a distributed doubly-linked sequence.
//!
//! Each location owns one or more [`SlabList`]
//! base containers; the global linearization is base-container order
//! (an ordered partition, Fig. 37) × within-list order. Element GIDs are
//! stable `(bcid, seq)` pairs, so — unlike pVector — inserts and erases
//! are O(1) and never invalidate other elements' GIDs. The
//! [`PList::push_anywhere`] method is the paper's scalable insertion: it
//! appends to a local base container with **no communication at all**.
//!
//! Base-container *placement* is directory-backed: a distributed
//! `bcid → owner` directory (plus the per-location owner cache of the
//! locality layer) resolves where each base container currently lives, so
//! [`PList::migrate_bcontainer`] can move whole slabs between locations —
//! the pList load-balancing primitive. Accesses route optimistically to
//! the *birth* owner (`bcid / bpl`) as a static hint; after a migration
//! the stale hint or cache entry self-heals through the home location.

use std::cell::RefCell;

use stapl_core::bcontainer::{BaseContainer, MemSize};
use stapl_core::directory::{
    dir_insert, dir_migrate, dir_route_hinted, dir_route_ret_hinted, DirectoryShard, HasDirectory,
    OwnerCache, Resolution,
};
use stapl_core::gid::Bcid;
use stapl_core::interfaces::{
    DynamicPContainer, ElementRead, ElementWrite, LocalIteration, PContainer, SegmentId,
    SegmentedContainer, SequenceContainer,
};
use stapl_core::location_manager::LocationManager;
use stapl_core::pobject::PObject;
use stapl_core::thread_safety::{methods, ThreadSafety};
use stapl_rts::{LocId, Location, RmiFuture};

use crate::slab_list::SlabList;

/// Stable global identifier of a pList element: the base container it
/// lives in plus its never-reused sequence number there.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ListGid {
    pub bcid: Bcid,
    pub seq: u64,
}

/// pList base container: a slab list plus its BCID.
pub struct ListBc<T> {
    list: SlabList<T>,
}

impl<T: 'static> BaseContainer for ListBc<T> {
    type Value = T;

    fn len(&self) -> usize {
        self.list.len()
    }

    fn clear(&mut self) {
        self.list.clear();
    }

    fn memory_size(&self) -> MemSize {
        let (meta, data) = self.list.memory_bytes();
        MemSize::new(meta, data)
    }
}

/// Per-location representative.
pub struct ListRep<T> {
    lm: LocationManager<ListBc<T>>,
    /// Base containers per location at construction; bcid `loc * bpl + k`
    /// is *born* on `loc` (the static routing hint) but may migrate.
    bpl: usize,
    nlocs: usize,
    ths: ThreadSafety,
    /// Replicated size, refreshed lazily by `commit()` (Chapter VII.G).
    cached_size: usize,
    /// Set on every size-changing mutation — at the issuing location when
    /// the op is sent, and at the owning location when it lands — so a
    /// `global_size()` read can tell that `cached_size` may be stale.
    /// Cleared only by `commit()`/`clear()` (the collective refreshes).
    size_dirty: bool,
    /// Bumped whenever this location's slab placement changes
    /// (`migrate_bcontainer`, `clear`): the epoch layers that memoize
    /// segment placement compare against.
    segment_epoch: u64,
    /// Round-robin cursor for `push_anywhere` across local bContainers.
    anywhere_cursor: usize,
    /// This location's shard of the `bcid → owner` directory.
    dir: DirectoryShard<Bcid>,
    /// Cached `bcid → owner` resolutions (the locality layer).
    cache: OwnerCache<Bcid>,
}

impl<T: 'static> HasDirectory<Bcid> for ListRep<T> {
    fn directory(&self) -> &DirectoryShard<Bcid> {
        &self.dir
    }

    fn directory_mut(&mut self) -> &mut DirectoryShard<Bcid> {
        &mut self.dir
    }

    fn owner_cache(&self) -> Option<&OwnerCache<Bcid>> {
        Some(&self.cache)
    }

    fn owns_gid(&self, bcid: &Bcid) -> bool {
        self.lm.get(*bcid).is_some()
    }
}

impl<T: Send + Clone + 'static> ListRep<T> {
    fn bc(&self, bcid: Bcid) -> &SlabList<T> {
        &self.lm.get(bcid).expect("pList: bcid not on this location").list
    }

    fn bc_mut(&mut self, bcid: Bcid) -> &mut SlabList<T> {
        &mut self.lm.get_mut(bcid).expect("pList: bcid not on this location").list
    }

    /// This location's slabs as (bcid, values-in-list-order) — the gather
    /// payload.
    fn local_slab_pairs(&self) -> crate::BcidPayload<T> {
        self.lm
            .iter()
            .map(|(bcid, bc)| (bcid, bc.list.iter().map(|(_, v)| v.clone()).collect()))
            .collect()
    }
}

/// The STAPL pList.
///
/// ```
/// use stapl_rts::{execute, RtsConfig};
/// use stapl_containers::list::PList;
/// use stapl_core::interfaces::PContainer;
///
/// execute(RtsConfig::default(), 2, |loc| {
///     let l: PList<u32> = PList::new(loc);
///     // Scalable insertion: local, no communication, O(1).
///     let gid = l.push_anywhere(loc.id() as u32);
///     assert!(l.contains(gid));
///     l.commit(); // refresh the lazily replicated size
///     assert_eq!(l.global_size(), 2);
/// });
/// ```
pub struct PList<T: Send + Clone + 'static> {
    obj: PObject<ListRep<T>>,
}

impl<T: Send + Clone + 'static> Clone for PList<T> {
    fn clone(&self) -> Self {
        PList { obj: self.obj.clone() }
    }
}

impl<T: Send + Clone + 'static> PList<T> {
    /// **Collective.** An empty pList with one base container per location.
    pub fn new(loc: &Location) -> Self {
        Self::with_bcontainers(loc, 1)
    }

    /// **Collective.** An empty pList with `bpl` base containers per
    /// location (the partition granularity knob of Fig. 37).
    pub fn with_bcontainers(loc: &Location, bpl: usize) -> Self {
        assert!(bpl >= 1);
        let mut lm = LocationManager::new();
        for k in 0..bpl {
            lm.add_bcontainer(loc.id() * bpl + k, ListBc { list: SlabList::new() });
        }
        let rep = ListRep {
            lm,
            bpl,
            nlocs: loc.nlocs(),
            ths: ThreadSafety::unlocked(),
            cached_size: 0,
            size_dirty: false,
            segment_epoch: 0,
            anywhere_cursor: 0,
            dir: DirectoryShard::new(),
            cache: OwnerCache::from_config(loc.config()),
        };
        let obj = PObject::register(loc, rep);
        loc.barrier();
        let list = PList { obj };
        // Register this location's base containers at their homes; the
        // fence makes the directory authoritative before any routing.
        for k in 0..bpl {
            let bcid = loc.id() * bpl + k;
            dir_insert(&list.obj, bcid, bcid, loc.id());
        }
        loc.rmi_fence();
        list
    }

    fn me(&self) -> LocId {
        self.obj.location().id()
    }

    /// Routes `f` to the location currently owning base container `bcid`
    /// (asynchronous): local fast path, then owner cache, then the birth
    /// owner `bcid / bpl` as a static hint, then the directory home. `f`
    /// receives the representative's cell so read-only operations can take
    /// a shared borrow (nested reads from local iteration stay legal).
    fn route(&self, bcid: Bcid, f: impl FnOnce(&RefCell<ListRep<T>>, &Location) + Send + 'static) {
        if self.obj.local().lm.get(bcid).is_some() {
            f(self.obj.rep_cell(), self.obj.location());
            return;
        }
        let hint = (bcid, bcid / self.obj.local().bpl);
        dir_route_hinted(&self.obj, Resolution::Forwarding, bcid, Some(hint), move |cell, loc, found| {
            assert!(found.is_some(), "pList: base container {bcid} is not registered");
            f(cell, loc);
        });
    }

    /// Routing with a returned value; see [`PList::route`].
    fn route_ret<R: Send + 'static>(
        &self,
        bcid: Bcid,
        f: impl FnOnce(&RefCell<ListRep<T>>, &Location) -> R + Send + 'static,
    ) -> RmiFuture<R> {
        if self.obj.local().lm.get(bcid).is_some() {
            let r = f(self.obj.rep_cell(), self.obj.location());
            return RmiFuture::ready(r);
        }
        let hint = (bcid, bcid / self.obj.local().bpl);
        dir_route_ret_hinted(
            &self.obj,
            Resolution::Forwarding,
            bcid,
            Some(hint),
            move |cell, loc, found| {
                assert!(found.is_some(), "pList: base container {bcid} is not registered");
                f(cell, loc)
            },
        )
    }

    /// Appends at the global end (last base container of the global
    /// linearization, wherever it currently lives). Asynchronous.
    pub fn push_back(&self, v: T) {
        let (nlocs, bpl) = {
            let rep = self.obj.local();
            (rep.nlocs, rep.bpl)
        };
        let bcid = nlocs * bpl - 1;
        self.obj.local_mut().size_dirty = true;
        self.route(bcid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            rep.size_dirty = true;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::PUSH_BACK, 0, bcid);
            rep.bc_mut(bcid).push_back(v);
        });
    }

    /// Prepends at the global front. Asynchronous.
    pub fn push_front(&self, v: T) {
        self.obj.local_mut().size_dirty = true;
        self.route(0, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            rep.size_dirty = true;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::PUSH_FRONT, 0, 0);
            rep.bc_mut(0).push_front(v);
        });
    }

    /// Adds the element at an unspecified position — into a local base
    /// container, with no communication (the paper's `push_anywhere`).
    /// Returns the new element's GID immediately. When every local base
    /// container has been migrated away, falls back to a synchronous
    /// append through this location's birth container.
    pub fn push_anywhere(&self, v: T) -> ListGid {
        {
            let mut rep = self.obj.local_mut();
            let rep = &mut *rep;
            let nbc = rep.lm.num_bcontainers();
            if nbc > 0 {
                let k = rep.anywhere_cursor % nbc;
                rep.anywhere_cursor = rep.anywhere_cursor.wrapping_add(1);
                let bcid = rep.lm.bcids().nth(k).expect("nbc > 0");
                rep.size_dirty = true;
                let ths = rep.ths.clone();
                let _g = ths.guard(methods::PUSH_ANYWHERE, 0, bcid);
                let seq = rep.bc_mut(bcid).push_back(v);
                return ListGid { bcid, seq };
            }
        }
        let bcid = self.me() * self.obj.local().bpl;
        self.obj.local_mut().size_dirty = true;
        let seq = self
            .route_ret(bcid, move |cell, _| {
                let mut rep = cell.borrow_mut();
                let rep = &mut *rep;
                rep.size_dirty = true;
                let ths = rep.ths.clone();
                let _g = ths.guard(methods::PUSH_ANYWHERE, 0, bcid);
                rep.bc_mut(bcid).push_back(v)
            })
            .get();
        ListGid { bcid, seq }
    }

    /// Synchronously inserts before `gid`, returning the new GID, or
    /// `None` when `gid` no longer exists.
    pub fn insert_before(&self, gid: ListGid, v: T) -> Option<ListGid> {
        self.obj.local_mut().size_dirty = true;
        self.route_ret(gid.bcid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            rep.size_dirty = true;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::INSERT, gid.seq, gid.bcid);
            rep.bc_mut(gid.bcid)
                .insert_before(gid.seq, v)
                .map(|seq| ListGid { bcid: gid.bcid, seq })
        })
        .get()
    }

    /// Asynchronously moves base container `bcid` — the whole slab — to
    /// location `dest` and re-registers it in the directory: the pList
    /// load-balancing primitive. Visible after the next fence; operations
    /// on the container's elements concurrent with the move re-forward
    /// through the home until the new registration lands. Peers' stale
    /// hints and cached owners self-heal on their next access.
    pub fn migrate_bcontainer(&self, bcid: Bcid, dest: LocId) {
        dir_migrate(
            &self.obj,
            Resolution::Forwarding,
            bcid,
            dest,
            bcid,
            move |rep| {
                rep.segment_epoch += 1;
                rep.lm.remove_bcontainer(bcid)
            },
            move |rep, bc| {
                rep.segment_epoch += 1;
                rep.lm.add_bcontainer(bcid, bc);
            },
        );
    }

    /// Front/back GIDs of the global linearization (synchronous scans over
    /// base containers in order; `None` for an empty list).
    pub fn front_gid(&self) -> Option<ListGid> {
        let (nlocs, bpl) = {
            let rep = self.obj.local();
            (rep.nlocs, rep.bpl)
        };
        for bcid in 0..nlocs * bpl {
            let found: Option<u64> =
                self.route_ret(bcid, move |cell, _| cell.borrow().bc(bcid).front_id()).get();
            if let Some(seq) = found {
                return Some(ListGid { bcid, seq });
            }
        }
        None
    }

    pub fn back_gid(&self) -> Option<ListGid> {
        let (nlocs, bpl) = {
            let rep = self.obj.local();
            (rep.nlocs, rep.bpl)
        };
        for bcid in (0..nlocs * bpl).rev() {
            let found: Option<u64> =
                self.route_ret(bcid, move |cell, _| cell.borrow().bc(bcid).back_id()).get();
            if let Some(seq) = found {
                return Some(ListGid { bcid, seq });
            }
        }
        None
    }

    /// GID following `gid` in the global linearization (synchronous).
    pub fn next_gid(&self, gid: ListGid) -> Option<ListGid> {
        let within: Option<u64> = self
            .route_ret(gid.bcid, move |cell, _| cell.borrow().bc(gid.bcid).next_id(gid.seq))
            .get();
        if let Some(seq) = within {
            return Some(ListGid { bcid: gid.bcid, seq });
        }
        // Cross into the next non-empty base container.
        let (nlocs, bpl) = {
            let rep = self.obj.local();
            (rep.nlocs, rep.bpl)
        };
        for bcid in gid.bcid + 1..nlocs * bpl {
            let found: Option<u64> =
                self.route_ret(bcid, move |cell, _| cell.borrow().bc(bcid).front_id()).get();
            if let Some(seq) = found {
                return Some(ListGid { bcid, seq });
            }
        }
        None
    }

    /// Synchronous existence check.
    pub fn contains(&self, gid: ListGid) -> bool {
        self.route_ret(gid.bcid, move |cell, _| cell.borrow().bc(gid.bcid).contains(gid.seq)).get()
    }

    /// Fallible synchronous read.
    pub fn try_get(&self, gid: ListGid) -> Option<T> {
        self.route_ret(gid.bcid, move |cell, _| cell.borrow().bc(gid.bcid).get(gid.seq).cloned())
            .get()
    }

    /// All elements in global linearization order — a test/debug helper.
    ///
    /// **One-sided** gather-to-caller over split RMIs: each peer ships its
    /// slabs once (one response per location, merged here by BCID), so a
    /// single caller pays O(n) — unlike the old allreduce, which made
    /// every location materialize all n elements (O(n·P) on the wire)
    /// whether it wanted them or not. Any subset of locations may call
    /// concurrently; peers only need to be polling (e.g. blocked in a
    /// fence or barrier).
    pub fn collect_ordered(&self) -> Vec<T> {
        crate::gather_by_bcid(&self.obj, ListRep::local_slab_pairs)
    }
}

impl<T: Send + Clone + 'static> PContainer for PList<T> {
    fn location(&self) -> &Location {
        self.obj.location()
    }

    /// The committed size when clean; after uncommitted mutations (the
    /// local `size_dirty` flag is set) the count is recomputed with a
    /// one-sided sweep over all locations, so a location always observes
    /// at least its *own* earlier inserts/erases without a collective
    /// `commit()` (per-pair FIFO orders the count query behind the
    /// caller's directly-routed mutations; ops still forwarding through a
    /// directory home — e.g. racing a slab migration — may be missed, as
    /// may mutations in flight from *other* locations). Only `commit()`
    /// yields the globally agreed count — and restores O(1) reads.
    fn global_size(&self) -> usize {
        if !self.obj.local().size_dirty {
            return self.obj.local().cached_size;
        }
        // No point caching the sweep result: reads stay on this path (and
        // re-pay the O(P) sweep) until the collective commit() clears the
        // dirty flag and installs the agreed count.
        let total: u64 =
            crate::sweep(&self.obj, |rep: &ListRep<T>| rep.lm.local_len() as u64).into_iter().sum();
        total as usize
    }

    fn local_size(&self) -> usize {
        self.obj.local().lm.local_len()
    }

    fn commit(&self) {
        let loc = self.obj.location().clone();
        loc.rmi_fence();
        let local = self.local_size() as u64;
        let total = loc.allreduce_sum(local);
        {
            let mut rep = self.obj.local_mut();
            rep.cached_size = total as usize;
            rep.size_dirty = false;
        }
        loc.barrier();
    }

    fn memory_size(&self) -> MemSize {
        let local = {
            let rep = self.obj.local();
            let mut m = rep.lm.memory_size();
            m.metadata += rep.dir.memory_size() + rep.cache.memory_size();
            m
        };
        self.obj.location().allreduce(local, |a, b| a + b)
    }
}

impl<T: Send + Clone + 'static> DynamicPContainer for PList<T> {
    fn clear(&self) {
        let loc = self.obj.location().clone();
        loc.rmi_fence();
        {
            let mut rep = self.obj.local_mut();
            rep.lm.clear();
            rep.cached_size = 0;
            rep.size_dirty = false;
            rep.segment_epoch += 1;
        }
        loc.barrier();
    }
}

impl<T: Send + Clone + 'static> ElementRead<ListGid> for PList<T> {
    type Value = T;

    fn get_element(&self, gid: ListGid) -> T {
        self.try_get(gid).expect("pList: GID does not name a live element")
    }

    fn split_get_element(&self, gid: ListGid) -> RmiFuture<T> {
        self.route_ret(gid.bcid, move |cell, _| {
            cell.borrow()
                .bc(gid.bcid)
                .get(gid.seq)
                .cloned()
                .expect("pList: GID does not name a live element")
        })
    }

    fn is_local(&self, gid: ListGid) -> bool {
        self.obj.local().lm.get(gid.bcid).is_some()
    }
}

impl<T: Send + Clone + 'static> ElementWrite<ListGid> for PList<T> {
    fn set_element(&self, gid: ListGid, v: T) {
        self.route(gid.bcid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::SET, gid.seq, gid.bcid);
            if let Some(slot) = rep.bc_mut(gid.bcid).get_mut(gid.seq) {
                *slot = v;
            }
        });
    }

    fn apply_set<F>(&self, gid: ListGid, f: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        self.route(gid.bcid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::APPLY, gid.seq, gid.bcid);
            if let Some(slot) = rep.bc_mut(gid.bcid).get_mut(gid.seq) {
                f(slot);
            }
        });
    }

    fn apply_get<R, F>(&self, gid: ListGid, f: F) -> R
    where
        R: Send + 'static,
        F: FnOnce(&mut T) -> R + Send + 'static,
    {
        self.route_ret(gid.bcid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::APPLY, gid.seq, gid.bcid);
            f(rep.bc_mut(gid.bcid).get_mut(gid.seq).expect("pList: GID does not name a live element"))
        })
        .get()
    }
}

impl<T: Send + Clone + 'static> LocalIteration<ListGid> for PList<T> {
    fn for_each_local(&self, mut f: impl FnMut(ListGid, &T)) {
        let rep = self.obj.local();
        for (bcid, bc) in rep.lm.iter() {
            for (seq, v) in bc.list.iter() {
                f(ListGid { bcid, seq }, v);
            }
        }
    }

    fn for_each_local_mut(&self, mut f: impl FnMut(ListGid, &mut T)) {
        // SlabList has no ordered iter_mut; collect ids first (cheap: ids
        // only), then mutate through get_mut.
        let ids: Vec<ListGid> = {
            let rep = self.obj.local();
            rep.lm
                .iter()
                .flat_map(|(bcid, bc)| {
                    bc.list.iter().map(move |(seq, _)| ListGid { bcid, seq }).collect::<Vec<_>>()
                })
                .collect()
        };
        let mut rep = self.obj.local_mut();
        for gid in ids {
            f(gid, rep.bc_mut(gid.bcid).get_mut(gid.seq).expect("live"));
        }
    }
}

impl<T: Send + Clone + 'static> SequenceContainer<ListGid> for PList<T> {
    fn push_back(&self, v: T) {
        PList::push_back(self, v);
    }

    fn push_front(&self, v: T) {
        PList::push_front(self, v);
    }

    fn push_anywhere(&self, v: T) {
        PList::push_anywhere(self, v);
    }

    fn insert_before_async(&self, gid: ListGid, v: T) {
        self.obj.local_mut().size_dirty = true;
        self.route(gid.bcid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            rep.size_dirty = true;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::INSERT, gid.seq, gid.bcid);
            rep.bc_mut(gid.bcid).insert_before(gid.seq, v);
        });
    }

    fn erase_async(&self, gid: ListGid) {
        self.obj.local_mut().size_dirty = true;
        self.route(gid.bcid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            rep.size_dirty = true;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::ERASE, gid.seq, gid.bcid);
            rep.bc_mut(gid.bcid).erase(gid.seq);
        });
    }
}

impl<T: Send + Clone + 'static> SegmentedContainer for PList<T> {
    type ItemKey = u64;
    type ItemVal = T;

    fn segments(&self) -> Vec<SegmentId> {
        let rep = self.obj.local();
        (0..rep.nlocs * rep.bpl).collect()
    }

    fn local_segments(&self) -> Vec<SegmentId> {
        self.obj.local().lm.bcids().collect()
    }

    fn is_local_segment(&self, sid: SegmentId) -> bool {
        self.obj.local().lm.get(sid).is_some()
    }

    fn segment_epoch(&self) -> u64 {
        self.obj.local().segment_epoch
    }

    fn get_segment(&self, sid: SegmentId) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        if self.with_segment(sid, &mut |seq, v| out.push((*seq, v.clone()))) {
            return out;
        }
        self.obj.location().note_segment_request(0);
        self.route_ret(sid, move |cell, _| {
            cell.borrow().bc(sid).iter().map(|(seq, v)| (seq, v.clone())).collect::<Vec<_>>()
        })
        .get()
    }

    /// Appends the payloads in order under fresh sequence numbers (the
    /// given keys are advisory, as the trait specifies for sequences).
    fn append_segment(&self, sid: SegmentId, items: Vec<(u64, T)>) {
        if !self.is_local_segment(sid) {
            self.obj.location().note_segment_request(items.len() as u64);
        }
        self.obj.local_mut().size_dirty = true;
        self.route(sid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            rep.size_dirty = true;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::PUSH_BACK, 0, sid);
            let bc = rep.bc_mut(sid);
            for (_, v) in items {
                bc.push_back(v);
            }
        });
    }

    fn set_segment(&self, sid: SegmentId, items: Vec<(u64, T)>) {
        if !self.is_local_segment(sid) {
            self.obj.location().note_segment_request(items.len() as u64);
        }
        self.route(sid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::SET, 0, sid);
            let bc = rep.bc_mut(sid);
            for (seq, v) in items {
                if let Some(slot) = bc.get_mut(seq) {
                    *slot = v;
                }
            }
        });
    }

    fn apply_segment<F>(&self, sid: SegmentId, f: F)
    where
        F: Fn(&u64, &mut T) + Clone + Send + 'static,
    {
        if !self.is_local_segment(sid) {
            self.obj.location().note_segment_request(0);
        }
        self.route(sid, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let rep = &mut *rep;
            let ths = rep.ths.clone();
            let _g = ths.guard(methods::APPLY, 0, sid);
            // SlabList has no ordered iter_mut; walk ids, then mutate.
            let seqs: Vec<u64> = rep.bc(sid).iter().map(|(seq, _)| seq).collect();
            let bc = rep.bc_mut(sid);
            for seq in seqs {
                f(&seq, bc.get_mut(seq).expect("live"));
            }
        });
    }

    fn with_segment(&self, sid: SegmentId, f: &mut dyn FnMut(&u64, &T)) -> bool {
        let rep = self.obj.local();
        let Some(bc) = rep.lm.get(sid) else { return false };
        self.obj.location().note_localized_chunk();
        let _g = rep.ths.guard(methods::GET, 0, sid);
        for (seq, v) in bc.list.iter() {
            f(&seq, v);
        }
        true
    }

    fn with_segment_mut(&self, sid: SegmentId, f: &mut dyn FnMut(&u64, &mut T)) -> bool {
        let seqs: Vec<u64> = {
            let rep = self.obj.local();
            let Some(bc) = rep.lm.get(sid) else { return false };
            bc.list.iter().map(|(seq, _)| seq).collect()
        };
        self.obj.location().note_localized_chunk();
        let mut rep = self.obj.local_mut();
        let rep = &mut *rep;
        let ths = rep.ths.clone();
        let _g = ths.guard(methods::APPLY, 0, sid);
        let bc = rep.bc_mut(sid);
        for seq in seqs {
            f(&seq, bc.get_mut(seq).expect("live"));
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn push_anywhere_is_local_and_commit_counts() {
        execute(RtsConfig::unbuffered(), 4, |loc| {
            let l = PList::new(loc);
            let before = loc.stats().remote_requests;
            for i in 0..10 {
                let gid = l.push_anywhere(loc.id() * 10 + i);
                assert!(l.is_local(gid));
            }
            let after = loc.stats().remote_requests;
            assert_eq!(before, after, "push_anywhere must not communicate");
            l.commit();
            assert_eq!(l.global_size(), 40);
        });
    }

    #[test]
    fn global_order_is_bcid_then_list_order() {
        execute(RtsConfig::default(), 3, |loc| {
            let l = PList::new(loc);
            // Each location appends locally; global order must be loc 0's
            // elements, then loc 1's, then loc 2's.
            for i in 0..3 {
                l.push_anywhere(loc.id() as i64 * 100 + i);
            }
            l.commit();
            let v = l.collect_ordered();
            assert_eq!(v, vec![0, 1, 2, 100, 101, 102, 200, 201, 202]);
        });
    }

    #[test]
    fn push_back_and_front_hit_the_ends() {
        execute(RtsConfig::default(), 3, |loc| {
            let l = PList::new(loc);
            if loc.id() == 1 {
                l.push_back(99i32);
                l.push_front(-1);
            }
            l.commit();
            let v = l.collect_ordered();
            assert_eq!(v, vec![-1, 99]);
            let front = l.front_gid().unwrap();
            let back = l.back_gid().unwrap();
            assert_eq!(l.get_element(front), -1);
            assert_eq!(l.get_element(back), 99);
            assert_eq!(front.bcid, 0);
            assert_eq!(back.bcid, loc.nlocs() - 1);
        });
    }

    #[test]
    fn insert_before_preserves_order() {
        execute(RtsConfig::default(), 2, |loc| {
            let l = PList::new(loc);
            let anchor = (loc.id() == 0).then(|| l.push_anywhere(10));
            loc.rmi_fence();
            if let Some(a) = anchor {
                let b = l.insert_before(a, 5).unwrap();
                let c = l.insert_before(b, 1).unwrap();
                assert!(l.contains(c));
            }
            l.commit();
            // collect_ordered is one-sided: only the consumer calls it.
            if loc.id() == 0 {
                assert_eq!(l.collect_ordered(), vec![1, 5, 10]);
            }
        });
    }

    #[test]
    fn remote_insert_before_and_erase() {
        execute(RtsConfig::default(), 2, |loc| {
            let l = PList::new(loc);
            let gid = (loc.id() == 1).then(|| l.push_anywhere(7i32));
            let gid = loc.broadcast(1, gid);
            loc.rmi_fence();
            if loc.id() == 0 {
                // Remote (cross-location) insert before location 1's element.
                let g2 = l.insert_before(gid.unwrap(), 3).unwrap();
                assert_eq!(l.try_get(g2), Some(3));
                l.erase_async(gid.unwrap());
            }
            l.commit();
            assert_eq!(l.collect_ordered(), vec![3]);
            assert_eq!(l.global_size(), 1);
        });
    }

    #[test]
    fn set_and_apply_cross_location() {
        execute(RtsConfig::default(), 2, |loc| {
            let l = PList::new(loc);
            let g = (loc.id() == 0).then(|| l.push_anywhere(1u64));
            let g = loc.broadcast(0, g).unwrap();
            loc.rmi_fence();
            if loc.id() == 1 {
                l.set_element(g, 5);
                l.apply_set(g, |v| *v *= 3);
                let seen = l.apply_get(g, |v| *v);
                assert_eq!(seen, 15);
            }
            loc.rmi_fence();
            assert_eq!(l.get_element(g), 15);
        });
    }

    #[test]
    fn traversal_crosses_bcontainers() {
        execute(RtsConfig::default(), 3, |loc| {
            let l = PList::new(loc);
            l.push_anywhere(loc.id() as u32);
            l.commit();
            if loc.id() == 0 {
                let mut gids = vec![l.front_gid().unwrap()];
                while let Some(n) = l.next_gid(*gids.last().unwrap()) {
                    gids.push(n);
                }
                let vals: Vec<u32> = gids.iter().map(|g| l.get_element(*g)).collect();
                assert_eq!(vals, vec![0, 1, 2]);
            }
        });
    }

    #[test]
    fn multiple_bcontainers_per_location() {
        execute(RtsConfig::default(), 2, |loc| {
            let l = PList::with_bcontainers(loc, 3);
            for i in 0..6 {
                l.push_anywhere(loc.id() * 100 + i);
            }
            l.commit();
            assert_eq!(l.global_size(), 12);
            // push_anywhere round-robins across the 3 local bContainers.
            let mut per_bc = std::collections::HashMap::new();
            l.for_each_local(|g, _| *per_bc.entry(g.bcid).or_insert(0) += 1);
            assert_eq!(per_bc.len(), 3);
            assert!(per_bc.values().all(|&c| c == 2));
        });
    }

    #[test]
    fn clear_empties_globally() {
        execute(RtsConfig::default(), 2, |loc| {
            let l = PList::new(loc);
            l.push_anywhere(1);
            l.push_back(2);
            l.commit();
            // Both locations pushed: 2 × push_anywhere + 2 × push_back.
            assert_eq!(l.global_size(), 4);
            l.clear();
            l.commit();
            assert_eq!(l.global_size(), 0);
            assert!(l.front_gid().is_none());
        });
    }

    #[test]
    fn erase_then_insert_before_misses_gracefully() {
        execute(RtsConfig::default(), 1, |loc| {
            let l = PList::new(loc);
            let g = l.push_anywhere(1);
            l.erase_async(g);
            loc.rmi_fence();
            assert_eq!(l.insert_before(g, 2), None);
            assert_eq!(l.try_get(g), None);
            assert!(!l.contains(g));
        });
    }

    #[test]
    fn migrate_bcontainer_moves_slab_and_access_self_heals() {
        execute(RtsConfig::default(), 3, |loc| {
            let l: PList<u64> = PList::new(loc);
            let mine: Vec<ListGid> =
                (0..4).map(|i| l.push_anywhere(loc.id() as u64 * 10 + i)).collect();
            l.commit();
            assert_eq!(l.global_size(), 12);
            let all: Vec<Vec<ListGid>> = loc.allgather(mine.clone());
            let g1 = all[1][0]; // first element of location 1's slab
            // Warm caches/hints: everyone reads location 1's element.
            assert_eq!(l.try_get(g1), Some(10));
            loc.barrier();
            // Location 0 migrates location 1's base container to location 2.
            if loc.id() == 0 {
                l.migrate_bcontainer(1, 2);
            }
            loc.rmi_fence();
            assert_eq!(l.local_size(), if loc.id() == 2 { 8 } else if loc.id() == 1 { 0 } else { 4 });
            // Stale hints and cached owners must self-heal.
            assert_eq!(l.try_get(g1), Some(10));
            assert!(l.contains(g1));
            // Separate the read phase from the write phase: without this a
            // fast location's set below could race a slow one's read above.
            loc.barrier();
            l.set_element(g1, 99);
            loc.rmi_fence();
            assert_eq!(l.try_get(g1), Some(99));
            l.commit();
            assert_eq!(l.global_size(), 12);
            // Migration never changes the global linearization (bcid order).
            assert_eq!(
                l.collect_ordered(),
                vec![0, 1, 2, 3, 99, 11, 12, 13, 20, 21, 22, 23]
            );
        });
    }

    #[test]
    fn push_back_follows_migrated_tail_bcontainer() {
        execute(RtsConfig::default(), 2, |loc| {
            let l: PList<i32> = PList::new(loc);
            // Migrate the tail base container (bcid 1, born on loc 1) to 0.
            if loc.id() == 0 {
                l.migrate_bcontainer(1, 0);
            }
            loc.rmi_fence();
            if loc.id() == 1 {
                l.push_back(42);
            }
            l.commit();
            assert_eq!(l.collect_ordered(), vec![42]);
            let back = l.back_gid().unwrap();
            assert_eq!(back.bcid, 1);
            if loc.id() == 0 {
                assert!(l.is_local(back), "the tail slab now lives on location 0");
            }
        });
    }

    #[test]
    fn push_anywhere_falls_back_when_all_local_bcontainers_migrated() {
        execute(RtsConfig::default(), 2, |loc| {
            let l: PList<u32> = PList::new(loc);
            if loc.id() == 0 {
                l.migrate_bcontainer(1, 0);
            }
            loc.rmi_fence();
            if loc.id() == 1 {
                let gid = l.push_anywhere(7);
                assert_eq!(gid.bcid, 1, "falls back to the birth container");
                assert!(!l.is_local(gid));
                assert_eq!(l.try_get(gid), Some(7));
            }
            l.commit();
            assert_eq!(l.global_size(), 1);
        });
    }

    #[test]
    fn global_size_sees_own_uncommitted_mutations() {
        execute(RtsConfig::default(), 3, |loc| {
            let l: PList<u64> = PList::new(loc);
            loc.rmi_fence();
            if loc.id() == 0 {
                for i in 0..16 {
                    l.push_anywhere(i);
                }
                // Regression: this used to return the stale cached 0 until
                // an explicit commit().
                assert_eq!(l.global_size(), 16, "must observe own uncommitted inserts");
                // Remote append (the tail slab lives on the last location).
                PList::push_back(&l, 99);
                assert_eq!(l.global_size(), 17, "must observe own remote push_back");
                let g = l.push_anywhere(1);
                SequenceContainer::erase_async(&l, g);
                assert_eq!(l.global_size(), 17, "must observe own erase");
            }
            l.commit();
            // After commit every location agrees, and reads are O(1) again.
            assert_eq!(l.global_size(), 17);
        });
    }

    #[test]
    fn segment_transport_matches_elementwise() {
        execute(RtsConfig::default(), 3, |loc| {
            let l: PList<u64> = PList::new(loc);
            let mine: Vec<ListGid> =
                (0..4).map(|i| l.push_anywhere(loc.id() as u64 * 10 + i)).collect();
            l.commit();
            let all: Vec<Vec<ListGid>> = loc.allgather(mine);
            // Migrate location 1's slab so a segment is neither at its
            // birth owner nor resolvable without the directory.
            if loc.id() == 0 {
                l.migrate_bcontainer(1, 2);
            }
            loc.rmi_fence();
            // get_segment (local or remote) must agree with element gets.
            for (owner, gids) in all.iter().enumerate() {
                let seg = l.get_segment(owner);
                let baseline: Vec<(u64, u64)> =
                    gids.iter().map(|g| (g.seq, l.try_get(*g).unwrap())).collect();
                assert_eq!(seg, baseline, "segment {owner} disagrees with element-wise reads");
            }
            loc.barrier();
            // Whole-segment write-back: double everything, one RMI/slab.
            if loc.id() == 0 {
                for sid in l.segments() {
                    let doubled: Vec<(u64, u64)> =
                        l.get_segment(sid).into_iter().map(|(s, v)| (s, v * 2)).collect();
                    l.set_segment(sid, doubled);
                }
            }
            loc.rmi_fence();
            for gids in &all {
                for g in gids {
                    assert_eq!(l.try_get(*g).unwrap() % 2, 0);
                }
            }
            loc.barrier();
            // Owner-side sweep: one closure per segment.
            if loc.id() == 1 {
                for sid in l.segments() {
                    l.apply_segment(sid, |_, v| *v += 1);
                }
            }
            loc.rmi_fence();
            let vals = l.collect_ordered();
            assert_eq!(
                vals,
                vec![1, 3, 5, 7, 21, 23, 25, 27, 41, 43, 45, 47],
                "set_segment + apply_segment must act on every element exactly once"
            );
        });
    }

    #[test]
    fn append_segment_and_epoch() {
        execute(RtsConfig::default(), 2, |loc| {
            let l: PList<u32> = PList::new(loc);
            let epoch0 = l.segment_epoch();
            if loc.id() == 0 {
                // Bulk append into the remote slab: one segment RMI.
                let before = loc.stats().segment_requests;
                l.append_segment(1, vec![(0, 7), (0, 8), (0, 9)]);
                assert_eq!(loc.stats().segment_requests, before + 1);
                assert_eq!(l.global_size(), 3, "dirty read sees the bulk append");
            }
            l.commit();
            assert_eq!(l.collect_ordered(), vec![7, 8, 9]);
            // with_segment only serves local segments.
            let mut n = 0;
            let served = l.with_segment(1, &mut |_, _| n += 1);
            assert_eq!(served, loc.id() == 1);
            assert_eq!(n, if loc.id() == 1 { 3 } else { 0 });
            loc.barrier();
            // Migration bumps the placement epoch on both ends.
            if loc.id() == 0 {
                l.migrate_bcontainer(1, 0);
            }
            loc.rmi_fence();
            assert!(
                l.segment_epoch() > epoch0 || !matches!(loc.id(), 0 | 1),
                "migration must bump the epoch at source and destination"
            );
        });
    }
}
