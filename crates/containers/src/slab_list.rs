//! A slab-allocated doubly-linked list with stable element identifiers —
//! the sequential substrate under the pList base containers.
//!
//! STAPL's pList base container is an STL list whose iterators stay valid
//! across unrelated inserts/erases. In Rust, the equivalent stability is
//! provided by *sequence numbers*: every inserted element gets a `u64` id
//! that never moves; nodes live in a slab (`Vec` + free list), and an
//! id → slot map supports O(1) access, insert-before, and erase.

use std::collections::HashMap;

const NIL: usize = usize::MAX;

struct Node<T> {
    seq: u64,
    /// `None` only while the slot sits on the free list: erase moves the
    /// value out so it drops immediately instead of lingering until the
    /// slot is reused.
    val: Option<T>,
    prev: usize,
    next: usize,
}

/// Doubly-linked list with O(1) push/insert/erase by stable id.
pub struct SlabList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<usize>,
    index: HashMap<u64, usize>,
    head: usize,
    tail: usize,
    next_seq: u64,
}

impl<T> Default for SlabList<T> {
    fn default() -> Self {
        SlabList {
            nodes: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            next_seq: 0,
        }
    }
}

impl<T> SlabList<T> {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn len(&self) -> usize {
        self.index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    fn alloc(&mut self, val: T) -> (u64, usize) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let node = Node { seq, val: Some(val), prev: NIL, next: NIL };
        let slot = match self.free.pop() {
            Some(s) => {
                self.nodes[s] = node;
                s
            }
            None => {
                self.nodes.push(node);
                self.nodes.len() - 1
            }
        };
        self.index.insert(seq, slot);
        (seq, slot)
    }

    /// Appends; returns the element's stable id.
    pub fn push_back(&mut self, val: T) -> u64 {
        let (seq, slot) = self.alloc(val);
        if self.tail == NIL {
            self.head = slot;
            self.tail = slot;
        } else {
            self.nodes[self.tail].next = slot;
            self.nodes[slot].prev = self.tail;
            self.tail = slot;
        }
        seq
    }

    /// Prepends; returns the element's stable id.
    pub fn push_front(&mut self, val: T) -> u64 {
        let (seq, slot) = self.alloc(val);
        if self.head == NIL {
            self.head = slot;
            self.tail = slot;
        } else {
            self.nodes[self.head].prev = slot;
            self.nodes[slot].next = self.head;
            self.head = slot;
        }
        seq
    }

    /// Inserts before the element with id `before`; `None` if `before`
    /// does not exist (e.g. it was concurrently erased).
    pub fn insert_before(&mut self, before: u64, val: T) -> Option<u64> {
        let &anchor = self.index.get(&before)?;
        let (seq, slot) = self.alloc(val);
        let prev = self.nodes[anchor].prev;
        self.nodes[slot].next = anchor;
        self.nodes[slot].prev = prev;
        self.nodes[anchor].prev = slot;
        if prev == NIL {
            self.head = slot;
        } else {
            self.nodes[prev].next = slot;
        }
        Some(seq)
    }

    /// Removes the element with id `seq`, returning its value (moved out,
    /// so it drops as soon as the caller is done with it).
    pub fn erase(&mut self, seq: u64) -> Option<T> {
        let slot = self.index.remove(&seq)?;
        let (prev, next) = (self.nodes[slot].prev, self.nodes[slot].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.nodes[prev].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.nodes[next].prev = prev;
        }
        self.free.push(slot);
        self.nodes[slot].val.take()
    }

    pub fn get(&self, seq: u64) -> Option<&T> {
        self.index.get(&seq).and_then(|&s| self.nodes[s].val.as_ref())
    }

    pub fn get_mut(&mut self, seq: u64) -> Option<&mut T> {
        let &slot = self.index.get(&seq)?;
        self.nodes[slot].val.as_mut()
    }

    pub fn contains(&self, seq: u64) -> bool {
        self.index.contains_key(&seq)
    }

    pub fn front_id(&self) -> Option<u64> {
        (self.head != NIL).then(|| self.nodes[self.head].seq)
    }

    pub fn back_id(&self) -> Option<u64> {
        (self.tail != NIL).then(|| self.nodes[self.tail].seq)
    }

    /// Id of the element after `seq` in list order.
    pub fn next_id(&self, seq: u64) -> Option<u64> {
        let &slot = self.index.get(&seq)?;
        let n = self.nodes[slot].next;
        (n != NIL).then(|| self.nodes[n].seq)
    }

    /// Id of the element before `seq` in list order.
    pub fn prev_id(&self, seq: u64) -> Option<u64> {
        let &slot = self.index.get(&seq)?;
        let p = self.nodes[slot].prev;
        (p != NIL).then(|| self.nodes[p].seq)
    }

    /// In-order traversal.
    pub fn iter(&self) -> SlabIter<'_, T> {
        SlabIter { list: self, cur: self.head }
    }

    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.index.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Bytes used: slab + index (metadata) and values (data).
    pub fn memory_bytes(&self) -> (usize, usize) {
        let node_overhead = std::mem::size_of::<Node<T>>() - std::mem::size_of::<Option<T>>();
        let meta = self.nodes.capacity() * node_overhead
            + self.free.capacity() * std::mem::size_of::<usize>()
            + self.index.len() * (std::mem::size_of::<u64>() + std::mem::size_of::<usize>() * 2);
        let data = self.nodes.capacity() * std::mem::size_of::<Option<T>>();
        (meta, data)
    }
}

pub struct SlabIter<'a, T> {
    list: &'a SlabList<T>,
    cur: usize,
}

impl<'a, T> Iterator for SlabIter<'a, T> {
    type Item = (u64, &'a T);

    fn next(&mut self) -> Option<(u64, &'a T)> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur];
        self.cur = node.next;
        Some((node.seq, node.val.as_ref().expect("linked node is live")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn values(l: &SlabList<i32>) -> Vec<i32> {
        l.iter().map(|(_, v)| *v).collect()
    }

    #[test]
    fn push_back_front_order() {
        let mut l = SlabList::new();
        l.push_back(2);
        l.push_back(3);
        l.push_front(1);
        assert_eq!(values(&l), vec![1, 2, 3]);
        assert_eq!(l.len(), 3);
    }

    #[test]
    fn insert_before_head_and_middle() {
        let mut l = SlabList::new();
        let a = l.push_back(10);
        let c = l.push_back(30);
        let b = l.insert_before(c, 20).unwrap();
        assert_eq!(values(&l), vec![10, 20, 30]);
        let z = l.insert_before(a, 5).unwrap();
        assert_eq!(values(&l), vec![5, 10, 20, 30]);
        assert_eq!(l.front_id(), Some(z));
        assert_eq!(l.next_id(z), Some(a));
        assert_eq!(l.prev_id(c), Some(b));
    }

    #[test]
    fn insert_before_missing_returns_none() {
        let mut l = SlabList::new();
        l.push_back(1);
        assert_eq!(l.insert_before(999, 2), None);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn erase_relinks() {
        let mut l = SlabList::new();
        let a = l.push_back(1);
        let b = l.push_back(2);
        let c = l.push_back(3);
        assert_eq!(l.erase(b), Some(2));
        assert_eq!(values(&l), vec![1, 3]);
        assert_eq!(l.next_id(a), Some(c));
        assert_eq!(l.prev_id(c), Some(a));
        assert_eq!(l.erase(a), Some(1));
        assert_eq!(l.front_id(), Some(c));
        assert_eq!(l.erase(c), Some(3));
        assert!(l.is_empty());
        assert_eq!(l.front_id(), None);
        assert_eq!(l.back_id(), None);
    }

    #[test]
    fn erase_missing_is_none() {
        let mut l: SlabList<i32> = SlabList::new();
        assert_eq!(l.erase(0), None);
    }

    #[test]
    fn slots_are_reused_but_ids_are_not() {
        let mut l = SlabList::new();
        let a = l.push_back(1);
        l.erase(a);
        let b = l.push_back(2);
        assert_ne!(a, b, "ids must be stable / never reused");
        assert_eq!(l.nodes.len(), 1, "slab slot must be reused");
        assert!(!l.contains(a));
        assert!(l.contains(b));
    }

    #[test]
    fn erase_drops_the_value_immediately() {
        use std::rc::Rc;
        let probe = Rc::new(5);
        let mut l = SlabList::new();
        let id = l.push_back(probe.clone());
        assert_eq!(Rc::strong_count(&probe), 2);
        let out = l.erase(id).unwrap();
        drop(out);
        // The erased value must not linger inside the freed slab slot.
        assert_eq!(Rc::strong_count(&probe), 1);
    }

    #[test]
    fn erase_works_without_clone() {
        // Regression: erase used to require `T: Clone` and clone the value
        // out of the slab.
        struct NoClone(#[allow(dead_code)] u8);
        let mut l = SlabList::new();
        let id = l.push_back(NoClone(3));
        assert!(l.erase(id).is_some());
        assert!(l.is_empty());
    }

    #[test]
    fn get_and_get_mut() {
        let mut l = SlabList::new();
        let a = l.push_back(5);
        *l.get_mut(a).unwrap() += 10;
        assert_eq!(l.get(a), Some(&15));
        assert_eq!(l.get(a + 1), None);
    }

    #[test]
    fn ids_traverse_in_both_directions() {
        let mut l = SlabList::new();
        let ids: Vec<u64> = (0..5).map(|i| l.push_back(i)).collect();
        let mut forward = vec![l.front_id().unwrap()];
        while let Some(n) = l.next_id(*forward.last().unwrap()) {
            forward.push(n);
        }
        assert_eq!(forward, ids);
        let mut backward = vec![l.back_id().unwrap()];
        while let Some(p) = l.prev_id(*backward.last().unwrap()) {
            backward.push(p);
        }
        backward.reverse();
        assert_eq!(backward, ids);
    }

    #[test]
    fn clear_resets() {
        let mut l = SlabList::new();
        l.push_back(1);
        l.push_back(2);
        l.clear();
        assert!(l.is_empty());
        assert_eq!(values(&l), Vec::<i32>::new());
        l.push_back(9);
        assert_eq!(values(&l), vec![9]);
    }

    #[test]
    fn random_model_check_against_vec() {
        // Drive SlabList and a reference Vec<(id, val)> with the same op
        // stream; orders must agree at every step.
        let mut l = SlabList::new();
        let mut model: Vec<(u64, i32)> = Vec::new();
        let mut rng: u64 = 0x9e3779b97f4a7c15;
        let mut next = || {
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            rng
        };
        for step in 0..2000 {
            match next() % 4 {
                0 => {
                    let id = l.push_back(step);
                    model.push((id, step));
                }
                1 => {
                    let id = l.push_front(step);
                    model.insert(0, (id, step));
                }
                2 if !model.is_empty() => {
                    let k = (next() as usize) % model.len();
                    let (anchor, _) = model[k];
                    let id = l.insert_before(anchor, step).unwrap();
                    model.insert(k, (id, step));
                }
                3 if !model.is_empty() => {
                    let k = (next() as usize) % model.len();
                    let (id, v) = model.remove(k);
                    assert_eq!(l.erase(id), Some(v));
                }
                _ => {}
            }
            assert_eq!(l.len(), model.len());
        }
        let got: Vec<(u64, i32)> = l.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(got, model);
    }
}
