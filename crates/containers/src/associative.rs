//! Associative pContainers (Chapter XII): pMap, pSet, pHashMap, pHashSet,
//! pMultiMap.
//!
//! Sorted associative containers use a *value-based* partition (Fig. 58):
//! splitter keys define ordered key intervals, so the global key order is
//! preserved across base containers (logarithmic access within a base
//! container). Hashed associative containers use a hash partition
//! (amortized constant access, no order).
//!
//! All containers share one generic implementation, [`PAssoc`], that is
//! parameterized by the base-container store — the paper's "same
//! framework, different bContainer/partition" specialization (Fig. 57).

use std::collections::{BTreeMap, HashMap};

use stapl_core::bcontainer::{BaseContainer, MemSize};
use stapl_core::distribution::KeyDistribution;
use stapl_core::gid::{Bcid, Key};
use stapl_core::interfaces::{
    AssociativeContainer, DynamicPContainer, PContainer, SegmentId, SegmentedContainer,
};
use stapl_core::location_manager::LocationManager;
use stapl_core::mapper::CyclicMapper;
use stapl_core::partition::{HashPartition, SplitterPartition};
use stapl_core::pobject::PObject;
use stapl_rts::{LocId, Location, RmiFuture};

/// Sequential key-value store usable as an associative base container.
pub trait KvStore<K, V>: Default + 'static {
    /// Inserts or overwrites; returns true when the key was new.
    fn insert(&mut self, k: K, v: V) -> bool;
    fn remove(&mut self, k: &K) -> Option<V>;
    fn get(&self, k: &K) -> Option<&V>;
    fn get_mut(&mut self, k: &K) -> Option<&mut V>;
    fn len(&self) -> usize;
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    fn clear(&mut self);
    fn for_each(&self, f: &mut dyn FnMut(&K, &V));
    fn for_each_mut(&mut self, f: &mut dyn FnMut(&K, &mut V));
}

impl<K: Ord + 'static, V: 'static> KvStore<K, V> for BTreeMap<K, V> {
    fn insert(&mut self, k: K, v: V) -> bool {
        BTreeMap::insert(self, k, v).is_none()
    }

    fn remove(&mut self, k: &K) -> Option<V> {
        BTreeMap::remove(self, k)
    }

    fn get(&self, k: &K) -> Option<&V> {
        BTreeMap::get(self, k)
    }

    fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        BTreeMap::get_mut(self, k)
    }

    fn len(&self) -> usize {
        BTreeMap::len(self)
    }

    fn clear(&mut self) {
        BTreeMap::clear(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }

    fn for_each_mut(&mut self, f: &mut dyn FnMut(&K, &mut V)) {
        for (k, v) in self.iter_mut() {
            f(k, v);
        }
    }
}

impl<K: Eq + std::hash::Hash + 'static, V: 'static> KvStore<K, V> for HashMap<K, V> {
    fn insert(&mut self, k: K, v: V) -> bool {
        HashMap::insert(self, k, v).is_none()
    }

    fn remove(&mut self, k: &K) -> Option<V> {
        HashMap::remove(self, k)
    }

    fn get(&self, k: &K) -> Option<&V> {
        HashMap::get(self, k)
    }

    fn get_mut(&mut self, k: &K) -> Option<&mut V> {
        HashMap::get_mut(self, k)
    }

    fn len(&self) -> usize {
        HashMap::len(self)
    }

    fn clear(&mut self) {
        HashMap::clear(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(&K, &V)) {
        for (k, v) in self.iter() {
            f(k, v);
        }
    }

    fn for_each_mut(&mut self, f: &mut dyn FnMut(&K, &mut V)) {
        for (k, v) in self.iter_mut() {
            f(k, v);
        }
    }
}

/// Associative base container: a sequential store plus accounting.
pub struct AssocBc<K, V, S> {
    store: S,
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K, V, S: Default> Default for AssocBc<K, V, S> {
    fn default() -> Self {
        AssocBc { store: S::default(), _marker: std::marker::PhantomData }
    }
}

impl<K, V, S> BaseContainer for AssocBc<K, V, S>
where
    S: KvStore<K, V>,
    K: 'static,
    V: 'static,
{
    type Value = V;

    fn len(&self) -> usize {
        self.store.len()
    }

    fn clear(&mut self) {
        self.store.clear();
    }

    fn memory_size(&self) -> MemSize {
        MemSize::new(
            self.store.len() * 2 * std::mem::size_of::<usize>(),
            self.store.len() * (std::mem::size_of::<K>() + std::mem::size_of::<V>()),
        )
    }
}

// A helper alias is not possible for the KvStore generic without nightly
// features; the rep carries phantom types instead.

/// Per-location representative of an associative container.
pub struct AssocRep<K: 'static, V: 'static, S: 'static> {
    lm: LocationManager<AssocBc<K, V, S>>,
    dist: KeyDistribution<K>,
    cached_size: usize,
    /// Set on every size-changing mutation — at the issuing location when
    /// the op is sent, and at the owning location when it lands — so a
    /// `global_size()` read can tell that `cached_size` may be stale.
    /// Cleared only by `commit()`/`clear()` (the collective refreshes).
    size_dirty: bool,
    /// Bucket placement is static (the key distribution never changes), so
    /// this only moves on `clear()` — the collective content reset.
    segment_epoch: u64,
    _marker: std::marker::PhantomData<fn() -> V>,
}

/// Generic associative pContainer over a pluggable sequential store.
///
/// ```
/// use stapl_rts::{execute, RtsConfig};
/// use stapl_containers::associative::PHashMap;
/// use stapl_core::interfaces::{AssociativeContainer, PContainer};
///
/// execute(RtsConfig::default(), 2, |loc| {
///     let m: PHashMap<String, u64> = PHashMap::new(loc);
///     if loc.id() == 0 {
///         m.insert_async("answer".into(), 42);
///     }
///     m.commit();
///     assert_eq!(m.find("answer".into()), Some(42));
///     assert_eq!(m.global_size(), 1);
/// });
/// ```
pub struct PAssoc<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    obj: PObject<AssocRep<K, V, S>>,
}

impl<K, V, S> Clone for PAssoc<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    fn clone(&self) -> Self {
        PAssoc { obj: self.obj.clone() }
    }
}

impl<K, V, S> PAssoc<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    /// **Collective.** Builds from a key distribution.
    pub fn with_distribution(loc: &Location, dist: KeyDistribution<K>) -> Self {
        let mut lm = LocationManager::new();
        for bcid in dist.bcids_of(loc.id()) {
            lm.add_bcontainer(bcid, AssocBc::default());
        }
        let rep = AssocRep {
            lm,
            dist,
            cached_size: 0,
            size_dirty: false,
            segment_epoch: 0,
            _marker: std::marker::PhantomData,
        };
        let obj = PObject::register(loc, rep);
        loc.barrier();
        PAssoc { obj }
    }

    fn locate(&self, k: &K) -> (Bcid, LocId) {
        self.obj.local().dist.locate(k)
    }

    /// The bucket (segment) `k` belongs to under this container's key
    /// distribution — replicated metadata, no communication. The grouping
    /// key for segment-grained shuffles ([`PAssoc::merge_segment`]).
    pub fn bucket_of(&self, k: &K) -> SegmentId {
        self.locate(k).0
    }

    fn me(&self) -> LocId {
        self.obj.location().id()
    }

    /// Asynchronously applies `f` to the value under `k`, inserting
    /// `default` first when absent — the combining primitive MapReduce and
    /// histogramming build on.
    pub fn apply_or_insert<F>(&self, k: K, default: V, f: F)
    where
        F: FnOnce(&mut V) + Send + 'static,
    {
        let (bcid, owner) = self.locate(&k);
        let run = move |rep: &mut AssocRep<K, V, S>| {
            rep.size_dirty = true;
            let store = &mut rep.lm.get_mut(bcid).expect("assoc bcid").store;
            if store.get(&k).is_none() {
                store.insert(k.clone(), default);
            }
            f(store.get_mut(&k).expect("just inserted"));
        };
        if owner == self.me() {
            run(&mut self.obj.local_mut());
        } else {
            self.obj.local_mut().size_dirty = true;
            self.obj.invoke_at(owner, move |cell, _| run(&mut cell.borrow_mut()));
        }
    }

    /// Asynchronously applies `f` to an existing value (no-op when absent).
    pub fn apply_async<F>(&self, k: K, f: F)
    where
        F: FnOnce(&mut V) + Send + 'static,
    {
        let (bcid, owner) = self.locate(&k);
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            if let Some(v) = rep.lm.get_mut(bcid).expect("assoc bcid").store.get_mut(&k) {
                f(v);
            }
        });
    }

    /// Synchronous insert that reports whether the key was new.
    pub fn insert(&self, k: K, v: V) -> bool {
        let (bcid, owner) = self.locate(&k);
        self.obj.local_mut().size_dirty = true;
        self.obj.invoke_ret_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            rep.size_dirty = true;
            rep.lm.get_mut(bcid).expect("assoc bcid").store.insert(k, v)
        })
    }

    /// Iterates local (key, value) pairs; for sorted stores the order is
    /// the key order within each base container.
    pub fn for_each_local(&self, mut f: impl FnMut(&K, &V)) {
        let rep = self.obj.local();
        for (_, bc) in rep.lm.iter() {
            bc.store.for_each(&mut f);
        }
    }

    /// All pairs ordered by (bcid, store order) — for a splitter partition
    /// over a sorted store this is global key order.
    ///
    /// **One-sided** gather-to-caller over split RMIs: each peer ships its
    /// buckets once (one response per location, merged here by BCID), so a
    /// single caller pays O(n). The old implementation allreduced the
    /// entire dataset — every location materialized all n pairs, O(n·P)
    /// bytes on the wire, wanted or not. Locations that need the result
    /// call this (any subset, concurrently); peers only need to be polling
    /// (e.g. blocked in a fence or barrier). When *every* location wants
    /// the data, [`PAssoc::collect_ordered_bcast`] is cheaper.
    pub fn collect_ordered(&self) -> Vec<(K, V)> {
        crate::gather_by_bcid(&self.obj, AssocRep::local_bucket_pairs)
    }

    /// **Collective.** The opt-in broadcast variant of
    /// [`PAssoc::collect_ordered`]: location 0 gathers once (O(n) to the
    /// root), then replicates the merged result to every location — the
    /// pattern that *deliberately* pays the O(n·P) replication the plain
    /// gather avoids, for the callers that want the old all-locations
    /// semantics.
    pub fn collect_ordered_bcast(&self) -> Vec<(K, V)> {
        let loc = self.obj.location().clone();
        let merged = if loc.id() == 0 { self.collect_ordered() } else { Vec::new() };
        if loc.id() == 0 {
            // The replication payload of the broadcast below (the board is
            // the simulated wire).
            loc.note_gather_items((merged.len() * (loc.nlocs() - 1)) as u64);
        }
        loc.broadcast(0, merged)
    }

    /// Asynchronous **bulk combine** into bucket `sid`: one RMI carrying
    /// all `items` to the bucket's owner, where each value is merged into
    /// the existing entry with `combine` (inserting `identity` first when
    /// the key is absent) — the segment-grained sibling of
    /// [`PAssoc::apply_or_insert`], and the shuffle primitive the chunked
    /// MapReduce builds on (one message per (owner, bucket) instead of one
    /// per pair).
    pub fn merge_segment<C>(&self, sid: SegmentId, items: Vec<(K, V)>, identity: V, combine: C)
    where
        C: Fn(&mut V, V) + Clone + Send + 'static,
    {
        debug_assert!(
            items.iter().all(|(k, _)| self.locate(k).0 == sid),
            "merge_segment: a key does not belong to bucket {sid} (group with bucket_of)"
        );
        let owner = self.obj.local().dist.mapper().map(sid);
        if owner != self.me() {
            self.obj.location().note_segment_request(items.len() as u64);
        }
        self.obj.local_mut().size_dirty = true;
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            rep.size_dirty = true;
            let store = &mut rep.lm.get_mut(sid).expect("assoc bcid").store;
            for (k, v) in items {
                // One lookup per existing key: this is the per-pair inner
                // loop of the whole shuffle.
                match store.get_mut(&k) {
                    Some(slot) => combine(slot, v),
                    None => {
                        let mut fresh = identity.clone();
                        combine(&mut fresh, v);
                        store.insert(k, fresh);
                    }
                }
            }
        });
    }
}

impl<K, V, S> AssocRep<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    /// This location's buckets as (bcid, pairs-in-store-order) — the
    /// gather payload.
    fn local_bucket_pairs(&self) -> crate::BcidPayload<(K, V)> {
        self.lm
            .iter()
            .map(|(bcid, bc)| {
                let mut pairs = Vec::with_capacity(bc.store.len());
                bc.store.for_each(&mut |k, v| pairs.push((k.clone(), v.clone())));
                (bcid, pairs)
            })
            .collect()
    }
}

impl<K, V, S> PContainer for PAssoc<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    fn location(&self) -> &Location {
        self.obj.location()
    }

    /// The committed size when clean; after uncommitted mutations (the
    /// local `size_dirty` flag is set) the count is recomputed with a
    /// one-sided sweep over all locations, so a location always observes
    /// at least its *own* earlier inserts/erases without a collective
    /// `commit()` (per-pair FIFO orders the count query behind them).
    /// Mutations still in flight from *other* locations may be missed;
    /// only `commit()` yields the globally agreed count — and restores
    /// O(1) reads.
    fn global_size(&self) -> usize {
        if !self.obj.local().size_dirty {
            return self.obj.local().cached_size;
        }
        // No point caching the sweep result: reads stay on this path (and
        // re-pay the O(P) sweep) until the collective commit() clears the
        // dirty flag and installs the agreed count.
        let total: u64 = crate::sweep(&self.obj, |rep: &AssocRep<K, V, S>| {
            rep.lm.local_len() as u64
        })
        .into_iter()
        .sum();
        total as usize
    }

    fn local_size(&self) -> usize {
        self.obj.local().lm.local_len()
    }

    fn commit(&self) {
        let loc = self.obj.location().clone();
        loc.rmi_fence();
        let total = loc.allreduce_sum(self.local_size() as u64);
        {
            let mut rep = self.obj.local_mut();
            rep.cached_size = total as usize;
            rep.size_dirty = false;
        }
        loc.barrier();
    }

    fn memory_size(&self) -> MemSize {
        let local = self.obj.local().lm.memory_size();
        self.obj.location().allreduce(local, |a, b| a + b)
    }
}

impl<K, V, S> DynamicPContainer for PAssoc<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    fn clear(&self) {
        let loc = self.obj.location().clone();
        loc.rmi_fence();
        {
            let mut rep = self.obj.local_mut();
            rep.lm.clear();
            rep.cached_size = 0;
            rep.size_dirty = false;
            rep.segment_epoch += 1;
        }
        loc.barrier();
    }
}

impl<K, V, S> AssociativeContainer<K> for PAssoc<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    type Mapped = V;

    fn insert_async(&self, k: K, v: V) {
        let (bcid, owner) = self.locate(&k);
        if owner == self.me() {
            let mut rep = self.obj.local_mut();
            rep.size_dirty = true;
            rep.lm.get_mut(bcid).expect("assoc bcid").store.insert(k, v);
        } else {
            self.obj.local_mut().size_dirty = true;
            self.obj.invoke_at(owner, move |cell, _| {
                let mut rep = cell.borrow_mut();
                rep.size_dirty = true;
                rep.lm.get_mut(bcid).expect("assoc bcid").store.insert(k, v);
            });
        }
    }

    fn erase_async(&self, k: K) {
        let (bcid, owner) = self.locate(&k);
        self.obj.local_mut().size_dirty = true;
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            rep.size_dirty = true;
            rep.lm.get_mut(bcid).expect("assoc bcid").store.remove(&k);
        });
    }

    fn find(&self, k: K) -> Option<V> {
        let (bcid, owner) = self.locate(&k);
        if owner == self.me() {
            return self.obj.local().lm.get(bcid).expect("assoc bcid").store.get(&k).cloned();
        }
        self.obj.invoke_ret_at(owner, move |cell, _| {
            cell.borrow().lm.get(bcid).expect("assoc bcid").store.get(&k).cloned()
        })
    }

    fn split_find(&self, k: K) -> RmiFuture<Option<V>> {
        let (bcid, owner) = self.locate(&k);
        self.obj.invoke_split_at(owner, move |cell, _| {
            cell.borrow().lm.get(bcid).expect("assoc bcid").store.get(&k).cloned()
        })
    }
}

impl<K, V, S> SegmentedContainer for PAssoc<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    type ItemKey = K;
    type ItemVal = V;

    fn segments(&self) -> Vec<SegmentId> {
        (0..self.obj.local().dist.num_subdomains()).collect()
    }

    fn local_segments(&self) -> Vec<SegmentId> {
        self.obj.local().dist.bcids_of(self.me())
    }

    fn is_local_segment(&self, sid: SegmentId) -> bool {
        self.obj.local().lm.get(sid).is_some()
    }

    fn segment_epoch(&self) -> u64 {
        self.obj.local().segment_epoch
    }

    fn get_segment(&self, sid: SegmentId) -> Vec<(K, V)> {
        let mut out = Vec::new();
        if self.with_segment(sid, &mut |k, v| out.push((k.clone(), v.clone()))) {
            return out;
        }
        self.obj.location().note_segment_request(0);
        let owner = self.obj.local().dist.mapper().map(sid);
        self.obj.invoke_ret_at(owner, move |cell, _| {
            let rep = cell.borrow();
            let mut pairs = Vec::new();
            rep.lm
                .get(sid)
                .expect("assoc bcid")
                .store
                .for_each(&mut |k, v| pairs.push((k.clone(), v.clone())));
            pairs
        })
    }

    /// Bulk insert-or-overwrite of the pairs into bucket `sid` — one RMI
    /// to the owner. The keys must belong to `sid` under the container's
    /// key distribution (group with [`PAssoc::bucket_of`]; checked in
    /// debug builds).
    fn append_segment(&self, sid: SegmentId, items: Vec<(K, V)>) {
        debug_assert!(
            items.iter().all(|(k, _)| self.locate(k).0 == sid),
            "append_segment: a key does not belong to bucket {sid} (group with bucket_of)"
        );
        let owner = self.obj.local().dist.mapper().map(sid);
        if owner != self.me() {
            self.obj.location().note_segment_request(items.len() as u64);
        }
        self.obj.local_mut().size_dirty = true;
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            rep.size_dirty = true;
            let store = &mut rep.lm.get_mut(sid).expect("assoc bcid").store;
            for (k, v) in items {
                store.insert(k, v);
            }
        });
    }

    fn set_segment(&self, sid: SegmentId, items: Vec<(K, V)>) {
        let owner = self.obj.local().dist.mapper().map(sid);
        if owner != self.me() {
            self.obj.location().note_segment_request(items.len() as u64);
        }
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let store = &mut rep.lm.get_mut(sid).expect("assoc bcid").store;
            for (k, v) in items {
                if let Some(slot) = store.get_mut(&k) {
                    *slot = v;
                }
            }
        });
    }

    fn apply_segment<F>(&self, sid: SegmentId, f: F)
    where
        F: Fn(&K, &mut V) + Clone + Send + 'static,
    {
        let owner = self.obj.local().dist.mapper().map(sid);
        if owner != self.me() {
            self.obj.location().note_segment_request(0);
        }
        self.obj.invoke_at(owner, move |cell, _| {
            let mut rep = cell.borrow_mut();
            let store = &mut rep.lm.get_mut(sid).expect("assoc bcid").store;
            store.for_each_mut(&mut |k, v| f(k, v));
        });
    }

    fn with_segment(&self, sid: SegmentId, f: &mut dyn FnMut(&K, &V)) -> bool {
        let rep = self.obj.local();
        let Some(bc) = rep.lm.get(sid) else { return false };
        self.obj.location().note_localized_chunk();
        bc.store.for_each(f);
        true
    }

    fn with_segment_mut(&self, sid: SegmentId, f: &mut dyn FnMut(&K, &mut V)) -> bool {
        let mut rep = self.obj.local_mut();
        let Some(bc) = rep.lm.get_mut(sid) else { return false };
        self.obj.location().note_localized_chunk();
        bc.store.for_each_mut(f);
        true
    }
}

// ---------------------------------------------------------------------
// Concrete containers
// ---------------------------------------------------------------------

/// Sorted pair-associative container (pMap): value-based partition over
/// `BTreeMap` base containers.
pub type PMap<K, V> = PAssoc<K, V, BTreeMap<K, V>>;

/// Hashed pair-associative container (pHashMap): hash partition over
/// `HashMap` base containers.
pub type PHashMap<K, V> = PAssoc<K, V, HashMap<K, V>>;

impl<K, V> PMap<K, V>
where
    K: Key + Ord,
    V: Send + Clone + 'static,
{
    /// **Collective.** A pMap whose key space is cut by the given
    /// splitters (one ordered interval per base container, Fig. 58).
    pub fn new(loc: &Location, splitters: Vec<K>) -> Self {
        let dist = KeyDistribution::new(
            Box::new(SplitterPartition::new(splitters)),
            Box::new(CyclicMapper::new(loc.nlocs())),
        );
        Self::with_distribution(loc, dist)
    }
}

impl<K, V> PHashMap<K, V>
where
    K: Key + std::hash::Hash,
    V: Send + Clone + 'static,
{
    /// **Collective.** A pHashMap with one hash bucket per location.
    pub fn new(loc: &Location) -> Self {
        Self::with_buckets(loc, loc.nlocs())
    }

    /// **Collective.** A pHashMap with an explicit bucket count.
    pub fn with_buckets(loc: &Location, buckets: usize) -> Self {
        let dist = KeyDistribution::new(
            Box::new(HashPartition::new(buckets)),
            Box::new(CyclicMapper::new(loc.nlocs())),
        );
        Self::with_distribution(loc, dist)
    }
}

/// Sorted simple-associative container (pSet): keys only.
pub struct PSet<K: Key + Ord> {
    map: PMap<K, ()>,
}

impl<K: Key + Ord> Clone for PSet<K> {
    fn clone(&self) -> Self {
        PSet { map: self.map.clone() }
    }
}

impl<K: Key + Ord> PSet<K> {
    /// **Collective.**
    pub fn new(loc: &Location, splitters: Vec<K>) -> Self {
        PSet { map: PMap::new(loc, splitters) }
    }

    pub fn insert_async(&self, k: K) {
        self.map.insert_async(k, ());
    }

    pub fn erase_async(&self, k: K) {
        self.map.erase_async(k);
    }

    pub fn contains(&self, k: K) -> bool {
        self.map.find(k).is_some()
    }

    pub fn commit(&self) {
        self.map.commit();
    }

    pub fn global_size(&self) -> usize {
        self.map.global_size()
    }

    /// Elements in global key order — a **one-sided** gather to the
    /// caller (see [`PAssoc::collect_ordered`]); only locations that
    /// want the data should call.
    pub fn collect_ordered(&self) -> Vec<K> {
        self.map.collect_ordered().into_iter().map(|(k, _)| k).collect()
    }
}

/// Hashed simple-associative container (pHashSet).
pub struct PHashSet<K: Key + std::hash::Hash> {
    map: PHashMap<K, ()>,
}

impl<K: Key + std::hash::Hash> Clone for PHashSet<K> {
    fn clone(&self) -> Self {
        PHashSet { map: self.map.clone() }
    }
}

impl<K: Key + std::hash::Hash> PHashSet<K> {
    /// **Collective.**
    pub fn new(loc: &Location) -> Self {
        PHashSet { map: PHashMap::new(loc) }
    }

    pub fn insert_async(&self, k: K) {
        self.map.insert_async(k, ());
    }

    pub fn contains(&self, k: K) -> bool {
        self.map.find(k).is_some()
    }

    pub fn commit(&self) {
        self.map.commit();
    }

    pub fn global_size(&self) -> usize {
        self.map.global_size()
    }
}

/// Sorted multi-associative container (pMultiMap): every key maps to the
/// multiset of inserted values.
pub struct PMultiMap<K: Key + Ord, V: Send + Clone + 'static> {
    map: PMap<K, Vec<V>>,
}

impl<K: Key + Ord, V: Send + Clone + 'static> Clone for PMultiMap<K, V> {
    fn clone(&self) -> Self {
        PMultiMap { map: self.map.clone() }
    }
}

impl<K: Key + Ord, V: Send + Clone + 'static> PMultiMap<K, V> {
    /// **Collective.**
    pub fn new(loc: &Location, splitters: Vec<K>) -> Self {
        PMultiMap { map: PMap::new(loc, splitters) }
    }

    /// Asynchronously appends `v` under `k`.
    pub fn insert_async(&self, k: K, v: V) {
        self.map.apply_or_insert(k, Vec::new(), move |vs| vs.push(v));
    }

    /// All values under `k` (synchronous).
    pub fn find_all(&self, k: K) -> Vec<V> {
        self.map.find(k).unwrap_or_default()
    }

    /// Number of distinct keys (after commit).
    pub fn num_keys(&self) -> usize {
        self.map.global_size()
    }

    pub fn commit(&self) {
        self.map.commit();
    }

    pub fn erase_key_async(&self, k: K) {
        self.map.erase_async(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn hashmap_insert_find_erase() {
        execute(RtsConfig::default(), 3, |loc| {
            let m: PHashMap<u64, String> = PHashMap::new(loc);
            if loc.id() == 0 {
                for k in 0..30 {
                    m.insert_async(k, format!("v{k}"));
                }
            }
            m.commit();
            assert_eq!(m.global_size(), 30);
            for k in 0..30 {
                assert_eq!(m.find(k), Some(format!("v{k}")));
            }
            assert_eq!(m.find(99), None);
            if loc.id() == 1 {
                m.erase_async(7);
            }
            m.commit();
            assert_eq!(m.global_size(), 29);
            assert_eq!(m.find(7), None);
        });
    }

    #[test]
    fn map_preserves_global_key_order() {
        execute(RtsConfig::default(), 3, |loc| {
            // Splitters cut the key space into [min,10), [10,20), [20,max).
            let m: PMap<i64, i64> = PMap::new(loc, vec![10, 20]);
            // Insert shuffled keys from every location (overwrites collide
            // deterministically because values equal keys).
            for k in [25, 3, 14, 8, 29, 11, 0, 19, 22] {
                m.insert_async(k, k * 2);
            }
            m.commit();
            assert_eq!(m.global_size(), 9);
            let pairs = m.collect_ordered();
            let keys: Vec<i64> = pairs.iter().map(|(k, _)| *k).collect();
            assert_eq!(keys, vec![0, 3, 8, 11, 14, 19, 22, 25, 29]);
            assert!(pairs.iter().all(|(k, v)| *v == k * 2));
        });
    }

    #[test]
    fn duplicate_insert_overwrites() {
        execute(RtsConfig::default(), 2, |loc| {
            let m: PHashMap<u32, u32> = PHashMap::new(loc);
            if loc.id() == 0 {
                m.insert_async(5, 1);
                m.insert_async(5, 2); // same source, same key: ordered
            }
            m.commit();
            assert_eq!(m.global_size(), 1);
            assert_eq!(m.find(5), Some(2));
        });
    }

    #[test]
    fn apply_or_insert_accumulates_like_wordcount() {
        execute(RtsConfig::default(), 4, |loc| {
            let m: PHashMap<String, u64> = PHashMap::new(loc);
            // Every location counts the same words.
            for w in ["the", "quick", "the", "fox", "the"] {
                m.apply_or_insert(w.to_string(), 0, |c| *c += 1);
            }
            m.commit();
            assert_eq!(m.find("the".into()), Some(12)); // 3 × 4 locations
            assert_eq!(m.find("quick".into()), Some(4));
            assert_eq!(m.global_size(), 3);
        });
    }

    #[test]
    fn split_find_and_sync_insert() {
        execute(RtsConfig::default(), 2, |loc| {
            let m: PHashMap<u32, u32> = PHashMap::new(loc);
            if loc.id() == 1 {
                let newly = m.insert(1, 10);
                assert!(newly);
                let again = m.insert(1, 11);
                assert!(!again);
            }
            loc.rmi_fence();
            let fut = m.split_find(1);
            assert_eq!(fut.get(), Some(11));
        });
    }

    #[test]
    fn local_fast_path_for_owned_keys() {
        execute(RtsConfig::unbuffered(), 2, |loc| {
            let m: PHashMap<u64, u64> = PHashMap::new(loc);
            loc.rmi_fence();
            let before = loc.stats().remote_requests;
            let mut local_keys = 0;
            for k in 0..50u64 {
                let (_, owner) = m.locate(&k);
                if owner == loc.id() {
                    m.insert_async(k, k);
                    assert_eq!(m.find(k), Some(k));
                    local_keys += 1;
                }
            }
            assert!(local_keys > 0);
            let after = loc.stats().remote_requests;
            assert_eq!(before, after, "local-key operations must not communicate");
        });
    }

    #[test]
    fn pset_membership_and_order() {
        execute(RtsConfig::default(), 2, |loc| {
            let s: PSet<u32> = PSet::new(loc, vec![50]);
            if loc.id() == 0 {
                for k in [30, 80, 10, 60] {
                    s.insert_async(k);
                }
            }
            s.commit();
            assert_eq!(s.global_size(), 4);
            assert!(s.contains(30));
            assert!(!s.contains(31));
            assert_eq!(s.collect_ordered(), vec![10, 30, 60, 80]);
            if loc.id() == 1 {
                s.erase_async(30);
            }
            s.commit();
            assert!(!s.contains(30));
        });
    }

    #[test]
    fn phashset_dedups() {
        execute(RtsConfig::default(), 3, |loc| {
            let s: PHashSet<String> = PHashSet::new(loc);
            s.insert_async("a".into());
            s.insert_async("b".into());
            s.commit();
            assert_eq!(s.global_size(), 2); // all locations inserted the same two
            assert!(s.contains("a".into()));
        });
    }

    #[test]
    fn multimap_collects_all_values() {
        execute(RtsConfig::default(), 3, |loc| {
            let m: PMultiMap<u32, usize> = PMultiMap::new(loc, vec![5]);
            m.insert_async(1, loc.id());
            m.insert_async(9, loc.id() * 10);
            m.commit();
            assert_eq!(m.num_keys(), 2);
            let mut vals = m.find_all(1);
            vals.sort_unstable();
            assert_eq!(vals, vec![0, 1, 2]);
            assert_eq!(m.find_all(42), Vec::<usize>::new());
        });
    }

    #[test]
    fn global_size_sees_own_uncommitted_mutations() {
        execute(RtsConfig::default(), 3, |loc| {
            let m: PHashMap<u64, u64> = PHashMap::new(loc);
            loc.rmi_fence();
            if loc.id() == 0 {
                for k in 0..16 {
                    m.insert_async(k, k);
                }
                // Regression: this used to return the stale cached 0 until
                // an explicit commit().
                assert_eq!(m.global_size(), 16, "must observe own uncommitted inserts");
                m.erase_async(3);
                assert_eq!(m.global_size(), 15, "must observe own uncommitted erase");
                // Overwrites do not change the size.
                m.insert_async(5, 99);
                assert_eq!(m.global_size(), 15);
            }
            m.commit();
            // After commit every location agrees, and reads are O(1) again.
            assert_eq!(m.global_size(), 15);
        });
    }

    #[test]
    fn global_size_via_sync_insert_and_apply_or_insert() {
        execute(RtsConfig::default(), 2, |loc| {
            let m: PHashMap<u32, u32> = PHashMap::new(loc);
            loc.rmi_fence();
            if loc.id() == 1 {
                assert!(m.insert(7, 1));
                m.apply_or_insert(8, 0, |v| *v += 1);
                assert_eq!(m.global_size(), 2);
            }
            m.commit();
            assert_eq!(m.global_size(), 2);
        });
    }

    #[test]
    fn collect_ordered_gathers_instead_of_replicating() {
        execute(RtsConfig::default(), 4, |loc| {
            let m: PHashMap<u64, u64> = PHashMap::new(loc);
            for k in 0..64u64 {
                if k % loc.nlocs() as u64 == loc.id() as u64 {
                    m.insert_async(k, k * 3);
                }
            }
            m.commit();
            // Snapshot, then barrier, so the root does not start gathering
            // before every location has its baseline.
            let before = loc.stats().gather_items;
            loc.barrier();
            // Root-only collection: the gather ships each remote pair once.
            if loc.id() == 0 {
                let got = m.collect_ordered();
                assert_eq!(got.len(), 64);
                let mut keys: Vec<u64> = got.iter().map(|(k, _)| *k).collect();
                keys.sort_unstable();
                assert_eq!(keys, (0..64).collect::<Vec<u64>>());
                assert!(got.iter().all(|(k, v)| *v == k * 3));
            }
            loc.barrier();
            let gathered = loc.stats().gather_items - before;
            // Regression: the old allreduce-based implementation replicated
            // all n pairs to every location (O(n·P)); the gather moves each
            // remote pair exactly once, to the single caller.
            assert!(gathered > 0, "gather must ship payload");
            assert!(gathered <= 64, "gather-to-root must move each pair at most once: {gathered}");
            loc.barrier();
            // The opt-in broadcast deliberately pays the O(n·P) replication.
            let before = loc.stats().gather_items;
            loc.barrier();
            let all = m.collect_ordered_bcast();
            assert_eq!(all.len(), 64, "broadcast variant returns the data everywhere");
            loc.barrier();
            let bcast = loc.stats().gather_items - before;
            assert!(
                bcast >= 3 * gathered,
                "replicating to P locations must cost ≥ (P-1)× the single gather \
                 ({bcast} !>= 3×{gathered})"
            );
        });
    }

    #[test]
    fn segment_transport_matches_elementwise() {
        execute(RtsConfig::default(), 3, |loc| {
            let m: PHashMap<u64, u64> = PHashMap::with_buckets(loc, 6);
            if loc.id() == 0 {
                for k in 0..30 {
                    m.insert_async(k, k + 1);
                }
            }
            m.commit();
            // Bucket-at-a-time reads union to exactly the element-wise view.
            let mut union: Vec<(u64, u64)> =
                m.segments().iter().flat_map(|s| m.get_segment(*s)).collect();
            union.sort_unstable();
            assert_eq!(union, (0..30).map(|k| (k, k + 1)).collect::<Vec<_>>());
            loc.barrier();
            // Owner-side sweep: one closure per (owner, bucket).
            if loc.id() == 1 {
                for sid in m.segments() {
                    m.apply_segment(sid, |k, v| *v += *k);
                }
            }
            m.commit();
            for k in 0..30 {
                assert_eq!(m.find(k), Some(2 * k + 1));
            }
            // Bulk combine: one merge RMI per destination bucket.
            if loc.id() == 2 {
                let mut groups: std::collections::HashMap<usize, Vec<(u64, u64)>> =
                    Default::default();
                for k in 100..120u64 {
                    groups.entry(m.bucket_of(&k)).or_default().push((k, 7));
                }
                for (sid, items) in groups {
                    m.merge_segment(sid, items, 0, |a, b| *a += b);
                }
                assert_eq!(m.global_size(), 50, "dirty read sees the bulk merge");
            }
            m.commit();
            assert_eq!(m.global_size(), 50);
            for k in 100..120 {
                assert_eq!(m.find(k), Some(7));
            }
        });
    }

    #[test]
    fn clear_and_recommit() {
        execute(RtsConfig::default(), 2, |loc| {
            let m: PHashMap<u32, u32> = PHashMap::new(loc);
            m.insert_async(loc.id() as u32, 1);
            m.commit();
            assert_eq!(m.global_size(), 2);
            m.clear();
            m.commit();
            assert_eq!(m.global_size(), 0);
            assert_eq!(m.find(0), None);
        });
    }

    #[test]
    fn many_buckets_spread_keys() {
        execute(RtsConfig::default(), 2, |loc| {
            let m: PHashMap<u64, u64> = PHashMap::with_buckets(loc, 8);
            for k in 0..64 {
                if k % loc.nlocs() as u64 == loc.id() as u64 {
                    m.insert_async(k, k);
                }
            }
            m.commit();
            assert_eq!(m.global_size(), 64);
            // Both locations hold several of the 8 buckets' worth of keys.
            assert!(m.local_size() > 0);
        });
    }
}
