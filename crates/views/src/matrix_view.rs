//! Matrix views (Table II's `matrix_pview` and the row/column/linearized
//! views of Chapter III.A): the same pMatrix used as a collection of rows,
//! of columns, or as a flat 1-D sequence.

use stapl_containers::matrix::PMatrix;
use stapl_core::domain::{Domain, Range1d};
use stapl_core::interfaces::{ElementRead, ElementWrite, PContainer};
use stapl_core::partition::MatrixLayout;
use stapl_rts::Location;

use crate::view::{balanced_chunk, ViewRead, ViewWrite};

/// A single row of a pMatrix as a 1-D view (view index = column).
pub struct RowView<T: Send + Clone + 'static> {
    m: PMatrix<T>,
    row: usize,
}

impl<T: Send + Clone + 'static> RowView<T> {
    pub fn new(m: PMatrix<T>, row: usize) -> Self {
        assert!(row < m.nrows());
        RowView { m, row }
    }
}

impl<T: Send + Clone + 'static> ViewRead for RowView<T> {
    type Value = T;

    fn len(&self) -> usize {
        self.m.ncols()
    }

    fn get(&self, k: usize) -> T {
        self.m.get_element((self.row, k))
    }

    fn location(&self) -> &Location {
        self.m.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        // Columns of this row owned locally.
        self.m
            .local_blocks()
            .into_iter()
            .filter(|(_, b)| b.rows.contains(&self.row))
            .map(|(_, b)| b.cols)
            .collect()
    }

    fn for_each_chunk(&self, mut f: impl FnMut(usize, &[T])) {
        // Local chunks are within-block row segments: direct slices.
        for ch in self.local_chunks() {
            let served = self.m.with_row_slice(self.row, ch, |s| f(ch.lo, s));
            match served {
                Some(()) => self.location().note_localized_chunk(),
                None => {
                    let buf = self.m.get_row_range(self.row, ch);
                    f(ch.lo, &buf);
                }
            }
        }
    }
}

impl<T: Send + Clone + 'static> ViewWrite for RowView<T> {
    fn set(&self, k: usize, v: T) {
        self.m.set_element((self.row, k), v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        self.m.apply_set((self.row, k), f);
    }

    fn fill_from(&self, mut gen: impl FnMut(Range1d) -> Vec<T>) {
        for ch in self.local_chunks() {
            let vals = gen(ch);
            debug_assert_eq!(vals.len(), ch.len());
            let served =
                self.m.with_row_slice_mut(self.row, ch, |s| s.clone_from_slice(&vals));
            match served {
                Some(()) => self.location().note_localized_chunk(),
                None => self.m.set_row_range(self.row, ch.lo, vals),
            }
        }
    }
}

/// A single column of a pMatrix as a 1-D view (view index = row).
pub struct ColView<T: Send + Clone + 'static> {
    m: PMatrix<T>,
    col: usize,
}

impl<T: Send + Clone + 'static> ColView<T> {
    pub fn new(m: PMatrix<T>, col: usize) -> Self {
        assert!(col < m.ncols());
        ColView { m, col }
    }
}

impl<T: Send + Clone + 'static> ViewRead for ColView<T> {
    type Value = T;

    fn len(&self) -> usize {
        self.m.nrows()
    }

    fn get(&self, k: usize) -> T {
        self.m.get_element((k, self.col))
    }

    fn location(&self) -> &Location {
        self.m.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        self.m
            .local_blocks()
            .into_iter()
            .filter(|(_, b)| b.cols.contains(&self.col))
            .map(|(_, b)| b.rows)
            .collect()
    }
}

impl<T: Send + Clone + 'static> ViewWrite for ColView<T> {
    fn set(&self, k: usize, v: T) {
        self.m.set_element((k, self.col), v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        self.m.apply_set((k, self.col), f);
    }
}

/// The matrix as a collection of rows: supplies each location the row
/// indices it should process (all-local rows for row-blocked layouts —
/// the alignment Fig. 62's pMatrix row-min exploits).
pub struct RowsView<T: Send + Clone + 'static> {
    m: PMatrix<T>,
}

impl<T: Send + Clone + 'static> RowsView<T> {
    pub fn new(m: PMatrix<T>) -> Self {
        RowsView { m }
    }

    pub fn num_rows(&self) -> usize {
        self.m.nrows()
    }

    pub fn row(&self, r: usize) -> RowView<T> {
        RowView::new(self.m.clone(), r)
    }

    /// Row indices this location processes.
    pub fn local_rows(&self) -> Vec<Range1d> {
        match self.m.partition().layout {
            MatrixLayout::RowBlocked => {
                self.m.local_blocks().into_iter().map(|(_, b)| b.rows).collect()
            }
            _ => {
                let me = self.m.location().id();
                let c = balanced_chunk(self.m.nrows(), self.m.location().nlocs(), me);
                if c.is_empty() {
                    vec![]
                } else {
                    vec![c]
                }
            }
        }
    }

    /// Fast whole-row access when the row is entirely local (row-blocked
    /// layout); otherwise assembles the row from **bulk** per-block
    /// transfers — one RMI per remote block, never per element.
    pub fn read_row(&self, r: usize) -> Vec<T> {
        match self.m.local_row(r) {
            Some(row) => row,
            None => self.m.get_row_range(r, Range1d::with_size(self.m.ncols())),
        }
    }

    /// Localization decision for each row this location processes: rows
    /// whose storage is one local block read at sequential speed
    /// ([`PMatrix::local_row`]); the rest pay one bulk transfer per remote
    /// block. The matrix counterpart of `ArrayView::localize`.
    pub fn localize(&self) -> Vec<(usize, RowLocality)> {
        self.local_rows()
            .into_iter()
            .flat_map(|rr| rr.iter())
            .map(|r| {
                let whole_local = self
                    .m
                    .local_blocks()
                    .iter()
                    .any(|(_, b)| b.rows.contains(&r) && b.ncols() == self.m.ncols());
                (r, if whole_local { RowLocality::Local } else { RowLocality::Distributed })
            })
            .collect()
    }

    pub fn location(&self) -> &Location {
        self.m.location()
    }
}

/// Whether a row of a [`RowsView`] is served by a single local block or
/// needs (bulk) communication.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RowLocality {
    /// The whole row lives in one local block: slice-speed access.
    Local,
    /// The row spans remote blocks: one bulk transfer per block.
    Distributed,
}

/// The matrix linearized row-major as a 1-D view — the "same pMatrix
/// viewed as a vector" example of Chapter III.
pub struct LinearView<T: Send + Clone + 'static> {
    m: PMatrix<T>,
}

impl<T: Send + Clone + 'static> LinearView<T> {
    pub fn new(m: PMatrix<T>) -> Self {
        LinearView { m }
    }

    fn map(&self, k: usize) -> (usize, usize) {
        (k / self.m.ncols(), k % self.m.ncols())
    }
}

impl<T: Send + Clone + 'static> ViewRead for LinearView<T> {
    type Value = T;

    fn len(&self) -> usize {
        self.m.global_size()
    }

    fn get(&self, k: usize) -> T {
        self.m.get_element(self.map(k))
    }

    fn location(&self) -> &Location {
        self.m.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        let ncols = self.m.ncols();
        match self.m.partition().layout {
            MatrixLayout::RowBlocked => self
                .m
                .local_blocks()
                .into_iter()
                .map(|(_, b)| Range1d::new(b.rows.lo * ncols, b.rows.hi * ncols))
                .collect(),
            _ => {
                let me = self.m.location().id();
                let c = balanced_chunk(self.len(), self.m.location().nlocs(), me);
                if c.is_empty() {
                    vec![]
                } else {
                    vec![c]
                }
            }
        }
    }

    fn for_each_chunk(&self, mut f: impl FnMut(usize, &[T])) {
        let ncols = self.m.ncols();
        for ch in self.local_chunks() {
            // A linear chunk decomposes into per-row segments; each is a
            // local slice or one bulk transfer per remote block.
            let mut k = ch.lo;
            while k < ch.hi {
                let (r, c) = (k / ncols, k % ncols);
                let cols = Range1d::new(c, ncols.min(c + (ch.hi - k)));
                let served = self.m.with_row_slice(r, cols, |s| f(k, s));
                match served {
                    Some(()) => self.location().note_localized_chunk(),
                    None => {
                        let buf = self.m.get_row_range(r, cols);
                        f(k, &buf);
                    }
                }
                k += cols.len();
            }
        }
    }
}

impl<T: Send + Clone + 'static> ViewWrite for LinearView<T> {
    fn set(&self, k: usize, v: T) {
        self.m.set_element(self.map(k), v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut T) + Send + 'static,
    {
        self.m.apply_set(self.map(k), f);
    }

    fn fill_from(&self, mut gen: impl FnMut(Range1d) -> Vec<T>) {
        let ncols = self.m.ncols();
        for ch in self.local_chunks() {
            let mut k = ch.lo;
            while k < ch.hi {
                let (r, c) = (k / ncols, k % ncols);
                let cols = Range1d::new(c, ncols.min(c + (ch.hi - k)));
                let vals = gen(Range1d::new(k, k + cols.len()));
                debug_assert_eq!(vals.len(), cols.len());
                let served = self.m.with_row_slice_mut(r, cols, |s| s.clone_from_slice(&vals));
                match served {
                    Some(()) => self.location().note_localized_chunk(),
                    None => self.m.set_row_range(r, cols.lo, vals),
                }
                k += cols.len();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn row_and_col_views_address_correctly() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 5, MatrixLayout::RowBlocked, |r, c| (r * 10 + c) as i64);
            let row2 = RowView::new(m.clone(), 2);
            assert_eq!(row2.len(), 5);
            assert_eq!(row2.get(3), 23);
            let col4 = ColView::new(m.clone(), 4);
            assert_eq!(col4.len(), 4);
            assert_eq!(col4.get(1), 14);
            if loc.id() == 0 {
                row2.set(0, -1);
                col4.apply(0, |v| *v += 100);
            }
            loc.rmi_fence();
            assert_eq!(m.get_element((2, 0)), -1);
            assert_eq!(m.get_element((0, 4)), 104);
        });
    }

    #[test]
    fn rows_view_gives_whole_local_rows() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 6, 3, MatrixLayout::RowBlocked, |r, c| r * 3 + c);
            let rows = RowsView::new(m);
            let mine: Vec<usize> = rows.local_rows().iter().flat_map(|r| r.iter()).collect();
            assert_eq!(mine.len(), 3);
            for r in mine {
                let vals = rows.read_row(r);
                assert_eq!(vals, (0..3).map(|c| r * 3 + c).collect::<Vec<_>>());
            }
            assert_eq!(loc.allreduce_sum(rows.local_rows().iter().map(|r| r.len() as u64).sum()), 6);
        });
    }

    #[test]
    fn read_row_works_for_column_layout_too() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 3, 4, MatrixLayout::ColumnBlocked, |r, c| r * 4 + c);
            let rows = RowsView::new(m);
            // No row is whole-local under column blocking; one bulk
            // transfer per remote block instead of per-element reads.
            assert_eq!(rows.read_row(1), vec![4, 5, 6, 7]);
            for (_, locality) in rows.localize() {
                assert_eq!(locality, RowLocality::Distributed);
            }
            let _ = loc;
        });
    }

    #[test]
    fn rows_view_localize_classifies_row_blocked_rows_local() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 3, MatrixLayout::RowBlocked, |r, c| r * 3 + c);
            let rows = RowsView::new(m);
            let classified = rows.localize();
            assert!(!classified.is_empty());
            for (r, locality) in classified {
                assert_eq!(locality, RowLocality::Local, "row {r}");
            }
            let _ = loc;
        });
    }

    #[test]
    fn row_view_chunked_reads_and_fills() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 6, MatrixLayout::ColumnBlocked, |r, c| (r * 6 + c) as i64);
            let row = RowView::new(m.clone(), 2);
            let mut got: Vec<(usize, i64)> = Vec::new();
            row.for_each_chunk(|lo, s| {
                for (k, v) in s.iter().enumerate() {
                    got.push((lo + k, *v));
                }
            });
            for (c, v) in &got {
                assert_eq!(*v, (2 * 6 + c) as i64);
            }
            let covered = loc.allreduce_sum(got.len() as u64);
            assert_eq!(covered, 6);
            loc.barrier();
            row.fill_from(|r| r.iter().map(|c| -(c as i64)).collect());
            loc.rmi_fence();
            for c in 0..6 {
                assert_eq!(m.get_element((2, c)), -(c as i64));
            }
        });
    }

    #[test]
    fn linear_view_chunked_matches_row_major() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 4, 5, MatrixLayout::RowBlocked, |r, c| r * 5 + c);
            let v = LinearView::new(m.clone());
            let mut got: Vec<(usize, usize)> = Vec::new();
            v.for_each_chunk(|lo, s| {
                for (k, val) in s.iter().enumerate() {
                    got.push((lo + k, *val));
                }
            });
            for (k, val) in &got {
                assert_eq!(val, k, "linearized element {k}");
            }
            assert_eq!(loc.allreduce_sum(got.len() as u64), 20);
            loc.barrier();
            v.fill_from(|r| r.iter().map(|k| k * 10).collect());
            loc.barrier();
            for k in 0..20 {
                assert_eq!(v.get(k), k * 10);
            }
        });
    }

    #[test]
    fn linear_view_is_row_major() {
        execute(RtsConfig::default(), 2, |loc| {
            let m = PMatrix::from_fn(loc, 3, 4, MatrixLayout::RowBlocked, |r, c| r * 4 + c);
            let v = LinearView::new(m);
            assert_eq!(v.len(), 12);
            for k in 0..12 {
                assert_eq!(v.get(k), k);
            }
            // Native chunks cover the linearization exactly.
            let covered: u64 =
                loc.allreduce_sum(v.local_chunks().iter().map(|c| c.len() as u64).sum());
            assert_eq!(covered, 12);
            if loc.id() == 1 {
                v.set(5, 500);
            }
            loc.rmi_fence();
            assert_eq!(v.get(5), 500);
        });
    }
}
