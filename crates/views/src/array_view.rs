//! Views over 1-D indexed containers: `array_1d_view`,
//! `array_1d_ro_view`, `balanced_pview`, `native_pview`,
//! `strided_1D_pview`, `overlap_pview`, and `transform_pview` (Table II).

use stapl_core::domain::{Domain, Range1d};
use stapl_core::interfaces::IndexedContainer;
use stapl_rts::Location;

use crate::view::{balanced_chunk, ViewRead, ViewWrite};

/// `array_1d_view`: identity-mapped view over a sub-range of an indexed
/// container, with **native** alignment: this location's chunks are the
/// intersection of the view's domain with the container's local
/// sub-domains, so processing a native view touches only local storage.
pub struct ArrayView<C: IndexedContainer> {
    c: C,
    dom: Range1d,
}

impl<C: IndexedContainer + Clone> Clone for ArrayView<C> {
    fn clone(&self) -> Self {
        ArrayView { c: self.c.clone(), dom: self.dom }
    }
}

impl<C: IndexedContainer> ArrayView<C> {
    /// View over the whole container (the container's native pView).
    pub fn new(c: C) -> Self {
        let dom = Range1d::with_size(c.global_size());
        ArrayView { c, dom }
    }

    /// View over GIDs `[r.lo, r.hi)` of the container.
    pub fn over(c: C, r: Range1d) -> Self {
        assert!(r.hi <= c.global_size());
        ArrayView { c, dom: r }
    }

    /// Restricts to a sub-range of *view* indices.
    pub fn subview(&self, r: Range1d) -> Self
    where
        C: Clone,
    {
        assert!(r.hi <= self.dom.len());
        ArrayView {
            c: self.c.clone(),
            dom: Range1d::new(self.dom.lo + r.lo, self.dom.lo + r.hi),
        }
    }

    /// The mapping function `F`: view index → container GID.
    pub fn gid_of(&self, k: usize) -> usize {
        debug_assert!(k < self.dom.len());
        self.dom.lo + k
    }

    pub fn container(&self) -> &C {
        &self.c
    }

    pub fn domain(&self) -> Range1d {
        self.dom
    }
}

impl<C: IndexedContainer> ViewRead for ArrayView<C> {
    type Value = C::Value;

    fn len(&self) -> usize {
        self.dom.len()
    }

    fn get(&self, k: usize) -> C::Value {
        self.c.get_element(self.gid_of(k))
    }

    fn location(&self) -> &Location {
        self.c.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        // Native alignment: intersect local sub-domains with the view
        // domain (block-cyclic sub-domains contribute their contiguous
        // runs).
        let mut chunks = Vec::new();
        for (_, sd) in self.c.local_subdomains() {
            match sd {
                stapl_core::partition::IndexSubDomain::Contiguous(r) => {
                    let i = r.intersect(&self.dom);
                    if !i.is_empty() {
                        chunks.push(Range1d::new(i.lo - self.dom.lo, i.hi - self.dom.lo));
                    }
                }
                other => {
                    // Strided sub-domain: emit per-block contiguous runs.
                    let mut run_start: Option<usize> = None;
                    let mut prev = 0usize;
                    for g in other.iter() {
                        if !self.dom.contains(&g) {
                            continue;
                        }
                        match run_start {
                            None => run_start = Some(g),
                            Some(_) if g == prev + 1 => {}
                            Some(s) => {
                                chunks.push(Range1d::new(s - self.dom.lo, prev + 1 - self.dom.lo));
                                run_start = Some(g);
                            }
                        }
                        prev = g;
                    }
                    if let Some(s) = run_start {
                        chunks.push(Range1d::new(s - self.dom.lo, prev + 1 - self.dom.lo));
                    }
                }
            }
        }
        chunks
    }
}

impl<C: IndexedContainer> ViewWrite for ArrayView<C> {
    fn set(&self, k: usize, v: C::Value) {
        self.c.set_element(self.gid_of(k), v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut C::Value) + Send + 'static,
    {
        self.c.apply_set(self.gid_of(k), f);
    }
}

/// `array_1d_ro_view`: read-only wrapper (writes are simply not offered —
/// the type system plays the role of the paper's RO interface table).
pub struct RoView<V: ViewRead> {
    inner: V,
}

impl<V: ViewRead> RoView<V> {
    pub fn new(inner: V) -> Self {
        RoView { inner }
    }
}

impl<V: ViewRead> ViewRead for RoView<V> {
    type Value = V::Value;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, k: usize) -> V::Value {
        self.inner.get(k)
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        self.inner.local_chunks()
    }
}

/// `balanced_pview`: same data, but the domain is split into `parts`
/// balanced chunks regardless of the underlying distribution — the
/// load-balancing view of the paper (work balance over locality).
pub struct BalancedView<V: ViewRead> {
    inner: V,
    parts: usize,
}

impl<V: ViewRead> BalancedView<V> {
    /// One chunk per location.
    pub fn new(inner: V) -> Self {
        let parts = inner.location().nlocs();
        BalancedView { inner, parts }
    }

    pub fn with_parts(inner: V, parts: usize) -> Self {
        assert!(parts >= 1);
        BalancedView { inner, parts }
    }
}

impl<V: ViewRead> ViewRead for BalancedView<V> {
    type Value = V::Value;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, k: usize) -> V::Value {
        self.inner.get(k)
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        let me = self.location().id();
        let nlocs = self.location().nlocs();
        // Chunks are dealt to locations round-robin.
        (0..self.parts)
            .filter(|p| p % nlocs == me)
            .map(|p| balanced_chunk(self.inner.len(), self.parts, p))
            .filter(|c| !c.is_empty())
            .collect()
    }
}

impl<V: ViewWrite> ViewWrite for BalancedView<V> {
    fn set(&self, k: usize, v: V::Value) {
        self.inner.set(k, v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut V::Value) + Send + 'static,
    {
        self.inner.apply(k, f);
    }
}

/// `strided_1D_pview`: every `stride`-th element starting at `first`.
pub struct StridedView<V: ViewRead> {
    inner: V,
    first: usize,
    stride: usize,
}

impl<V: ViewRead> StridedView<V> {
    pub fn new(inner: V, first: usize, stride: usize) -> Self {
        assert!(stride >= 1);
        StridedView { inner, first, stride }
    }

    fn map(&self, k: usize) -> usize {
        self.first + k * self.stride
    }
}

impl<V: ViewRead> ViewRead for StridedView<V> {
    type Value = V::Value;

    fn len(&self) -> usize {
        let n = self.inner.len();
        if self.first >= n {
            0
        } else {
            (n - self.first).div_ceil(self.stride)
        }
    }

    fn get(&self, k: usize) -> V::Value {
        self.inner.get(self.map(k))
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        // Strided access breaks contiguity; deal view indices balanced.
        let me = self.location().id();
        let c = balanced_chunk(self.len(), self.location().nlocs(), me);
        if c.is_empty() {
            vec![]
        } else {
            vec![c]
        }
    }
}

impl<V: ViewWrite> ViewWrite for StridedView<V> {
    fn set(&self, k: usize, v: V::Value) {
        self.inner.set(self.map(k), v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut V::Value) + Send + 'static,
    {
        self.inner.apply(self.map(k), f);
    }
}

/// `transform_pview`: overrides the read operation with a function of the
/// underlying value (Table II's `O` note). Read-only.
pub struct TransformView<V: ViewRead, W, F: Fn(V::Value) -> W> {
    inner: V,
    f: F,
}

impl<V: ViewRead, W, F: Fn(V::Value) -> W> TransformView<V, W, F> {
    pub fn new(inner: V, f: F) -> Self {
        TransformView { inner, f }
    }
}

impl<V, W, F> ViewRead for TransformView<V, W, F>
where
    V: ViewRead,
    W: Send + Clone + 'static,
    F: Fn(V::Value) -> W,
{
    type Value = W;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, k: usize) -> W {
        (self.f)(self.inner.get(k))
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        self.inner.local_chunks()
    }
}

/// `overlap_pview` (Fig. 2): element `i` is the window
/// `A[c·i, c·i + l + c + r)`; consecutive windows overlap. The natural
/// view for adjacent-difference and string matching.
pub struct OverlapView<V: ViewRead> {
    inner: V,
    core: usize,
    left: usize,
    right: usize,
}

impl<V: ViewRead> OverlapView<V> {
    pub fn new(inner: V, core: usize, left: usize, right: usize) -> Self {
        assert!(core >= 1);
        OverlapView { inner, core, left, right }
    }

    /// Window width `l + c + r`.
    pub fn window_len(&self) -> usize {
        self.left + self.core + self.right
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        let n = self.inner.len();
        let w = self.window_len();
        if n < w {
            0
        } else {
            (n - w) / self.core + 1
        }
    }

    /// Reads window `i` (values are fetched through the underlying view;
    /// remote elements at the seams are what the overlap view is for).
    pub fn window(&self, i: usize) -> Vec<V::Value> {
        let start = self.core * i;
        (start..start + self.window_len()).map(|k| self.inner.get(k)).collect()
    }

    /// Window-index ranges for this location, derived from the inner
    /// chunks so windows are processed near their core elements.
    pub fn local_windows(&self) -> Vec<Range1d> {
        let me = self.location().id();
        let c = balanced_chunk(self.num_windows(), self.inner.location().nlocs(), me);
        if c.is_empty() {
            vec![]
        } else {
            vec![c]
        }
    }

    pub fn location(&self) -> &Location {
        self.inner.location()
    }
}

/// Builds the native view of any indexed container (convenience matching
/// the paper's `native_pview(container)`).
pub fn native_view<C: IndexedContainer>(c: C) -> ArrayView<C> {
    ArrayView::new(c)
}

/// Builds a balanced view over the whole container.
pub fn balanced_view<C: IndexedContainer>(c: C) -> BalancedView<ArrayView<C>> {
    BalancedView::new(ArrayView::new(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::array::PArray;
    use stapl_core::interfaces::ElementRead;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn array_view_reads_and_writes() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as i64);
            let v = ArrayView::new(a.clone());
            assert_eq!(v.len(), 10);
            assert_eq!(v.get(7), 7);
            if loc.id() == 0 {
                v.set(7, 70);
            }
            loc.rmi_fence();
            assert_eq!(v.get(7), 70);
        });
    }

    #[test]
    fn native_chunks_are_local_and_cover() {
        execute(RtsConfig::default(), 4, |loc| {
            let a = PArray::from_fn(loc, 21, |i| i);
            let v = ArrayView::new(a.clone());
            let mut count = 0u64;
            for ch in v.local_chunks() {
                for k in ch.iter() {
                    assert!(a.is_local(v.gid_of(k)), "chunk element must be local");
                    count += 1;
                }
            }
            assert_eq!(loc.allreduce_sum(count), 21);
        });
    }

    #[test]
    fn subview_offsets_mapping() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as i32);
            let v = ArrayView::new(a).subview(Range1d::new(3, 8));
            assert_eq!(v.len(), 5);
            assert_eq!(v.get(0), 3);
            assert_eq!(v.get(4), 7);
            // Chunks cover exactly the subview.
            let covered: u64 =
                loc.allreduce_sum(v.local_chunks().iter().map(|c| c.len() as u64).sum());
            assert_eq!(covered, 5);
        });
    }

    #[test]
    fn balanced_view_chunks_ignore_distribution() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i);
            let v = BalancedView::with_parts(ArrayView::new(a), 5);
            let mine: usize = v.local_chunks().iter().map(|c| c.len()).sum();
            let total = loc.allreduce_sum(mine as u64);
            assert_eq!(total, 10);
        });
    }

    #[test]
    fn strided_view_selects_every_second() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as u32);
            let v = StridedView::new(ArrayView::new(a), 0, 2);
            assert_eq!(v.len(), 5);
            let vals: Vec<u32> = (0..5).map(|k| v.get(k)).collect();
            assert_eq!(vals, vec![0, 2, 4, 6, 8]);
            if loc.id() == 1 {
                v.set(1, 99);
            }
            loc.rmi_fence();
            assert_eq!(v.get(1), 99);
        });
    }

    #[test]
    fn transform_view_overrides_read() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 6, |i| i as i64);
            let v = TransformView::new(ArrayView::new(a), |x| x * x);
            assert_eq!(v.get(3), 9);
            assert_eq!(v.len(), 6);
            let _ = loc;
        });
    }

    #[test]
    fn overlap_view_matches_fig2() {
        // Fig. 2: A[0,10] (11 elements), c = 2, l = 2, r = 1 → windows
        // A[0,4], A[2,6], A[4,8], A[6,10].
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 11, |i| i);
            let v = OverlapView::new(ArrayView::new(a), 2, 2, 1);
            assert_eq!(v.num_windows(), 4);
            assert_eq!(v.window(0), vec![0, 1, 2, 3, 4]);
            assert_eq!(v.window(1), vec![2, 3, 4, 5, 6]);
            assert_eq!(v.window(3), vec![6, 7, 8, 9, 10]);
            let _ = loc;
        });
    }

    #[test]
    fn ro_view_reads() {
        execute(RtsConfig::default(), 1, |loc| {
            let a = PArray::from_fn(loc, 4, |i| i);
            let v = RoView::new(ArrayView::new(a));
            assert_eq!(v.get(2), 2);
            assert_eq!(v.local_chunks().iter().map(|c| c.len()).sum::<usize>(), 4);
            let _ = loc;
        });
    }
}
