//! Views over 1-D indexed containers: `array_1d_view`,
//! `array_1d_ro_view`, `balanced_pview`, `native_pview`,
//! `strided_1D_pview`, `overlap_pview`, and `transform_pview` (Table II).

use std::cell::RefCell;
use std::rc::Rc;

use stapl_core::domain::Range1d;
use stapl_core::gid::Bcid;
use stapl_core::interfaces::{IndexedContainer, RangedContainer};
use stapl_rts::Location;

use crate::view::{balanced_chunk, ViewRead, ViewWrite};

/// One chunk of a localized view: a maximal run that is contiguous both in
/// view indices and in the owning base container's storage.
#[derive(Clone, Copy, Debug)]
pub struct LocalizedRun {
    /// First view index of the run.
    pub view_lo: usize,
    /// Container GIDs of the run.
    pub gids: Range1d,
    /// Base container holding the run (always on this location for a
    /// native view).
    pub bcid: Bcid,
}

impl LocalizedRun {
    /// The view-index range this run covers (the chunk it serves).
    pub fn view_range(&self) -> Range1d {
        Range1d::new(self.view_lo, self.view_lo + self.gids.len())
    }
}

/// The memoized result of [`ArrayView::localize`]: this location's chunks
/// as storage runs, valid for one distribution epoch.
/// [`ViewRead::local_chunks`] is derived from the runs, so the two can
/// never fall out of sync.
pub struct Localized {
    /// Placement epoch of the container when this decomposition was built.
    pub epoch: u64,
    /// One entry per chunk: the storage run behind it, ascending by BCID.
    pub runs: Vec<LocalizedRun>,
}

/// `array_1d_view`: identity-mapped view over a sub-range of an indexed
/// container, with **native** alignment: this location's chunks are the
/// intersection of the view's domain with the container's local
/// sub-domains, so processing a native view touches only local storage.
///
/// The chunk decomposition ([`ArrayView::localize`]) is memoized per view
/// and invalidated by the container's distribution epoch, so repeated
/// algorithm calls on the same view do not recompute it.
pub struct ArrayView<C: IndexedContainer> {
    c: C,
    dom: Range1d,
    memo: RefCell<Option<Rc<Localized>>>,
}

impl<C: IndexedContainer + Clone> Clone for ArrayView<C> {
    fn clone(&self) -> Self {
        ArrayView {
            c: self.c.clone(),
            dom: self.dom,
            memo: RefCell::new(self.memo.borrow().clone()),
        }
    }
}

impl<C: IndexedContainer> ArrayView<C> {
    /// View over the whole container (the container's native pView).
    pub fn new(c: C) -> Self {
        let dom = Range1d::with_size(c.global_size());
        ArrayView { c, dom, memo: RefCell::new(None) }
    }

    /// View over GIDs `[r.lo, r.hi)` of the container.
    pub fn over(c: C, r: Range1d) -> Self {
        assert!(r.hi <= c.global_size());
        ArrayView { c, dom: r, memo: RefCell::new(None) }
    }

    /// Restricts to a sub-range of *view* indices.
    pub fn subview(&self, r: Range1d) -> Self
    where
        C: Clone,
    {
        assert!(r.hi <= self.dom.len());
        ArrayView {
            c: self.c.clone(),
            dom: Range1d::new(self.dom.lo + r.lo, self.dom.lo + r.hi),
            memo: RefCell::new(None),
        }
    }

    /// The mapping function `F`: view index → container GID.
    pub fn gid_of(&self, k: usize) -> usize {
        debug_assert!(k < self.dom.len());
        self.dom.lo + k
    }

    pub fn container(&self) -> &C {
        &self.c
    }

    pub fn domain(&self) -> Range1d {
        self.dom
    }

}

impl<C: RangedContainer> ArrayView<C> {
    /// Computes this location's chunk/run decomposition: the intersection
    /// of the view domain with the local storage-contiguous pieces
    /// ([`RangedContainer::local_pieces`] — one run per block for
    /// block-cyclic sub-domains).
    fn compute_localized(&self, epoch: u64) -> Localized {
        let mut runs = Vec::new();
        for (bcid, piece) in self.c.local_pieces() {
            let i = piece.intersect(&self.dom);
            if i.is_empty() {
                continue;
            }
            runs.push(LocalizedRun { view_lo: i.lo - self.dom.lo, gids: i, bcid });
        }
        Localized { epoch, runs }
    }

    /// The localized decomposition of this view, memoized per distribution
    /// epoch: repeated algorithm calls on the same view reuse it instead
    /// of re-walking the partition metadata.
    pub fn localize(&self) -> Rc<Localized> {
        let epoch = self.c.distribution_epoch();
        let mut memo = self.memo.borrow_mut();
        if let Some(l) = memo.as_ref() {
            if l.epoch == epoch {
                return l.clone();
            }
        }
        let l = Rc::new(self.compute_localized(epoch));
        *memo = Some(l.clone());
        l
    }
}

impl<C: RangedContainer> ViewRead for ArrayView<C> {
    type Value = C::Value;

    fn len(&self) -> usize {
        self.dom.len()
    }

    fn get(&self, k: usize) -> C::Value {
        self.c.get_element(self.gid_of(k))
    }

    fn location(&self) -> &Location {
        self.c.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        // Native alignment, served from the memoized decomposition.
        self.localize().runs.iter().map(|r| r.view_range()).collect()
    }

    fn for_each_chunk(&self, mut f: impl FnMut(usize, &[C::Value])) {
        for run in &self.localize().runs {
            let served = self.c.with_slice(run.bcid, run.gids, |s| f(run.view_lo, s));
            match served {
                Some(()) => self.location().note_localized_chunk(),
                None => {
                    // Boxed / non-sliceable storage: still one borrow and
                    // one buffer per chunk, via the bulk path.
                    let buf = self.c.get_range(run.gids);
                    f(run.view_lo, &buf);
                }
            }
        }
    }
}

impl<C: RangedContainer> ViewWrite for ArrayView<C> {
    fn set(&self, k: usize, v: C::Value) {
        self.c.set_element(self.gid_of(k), v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut C::Value) + Send + 'static,
    {
        self.c.apply_set(self.gid_of(k), f);
    }

    fn fill_from(&self, mut gen: impl FnMut(Range1d) -> Vec<C::Value>) {
        for run in &self.localize().runs {
            let view = Range1d::new(run.view_lo, run.view_lo + run.gids.len());
            let vals = gen(view);
            debug_assert_eq!(vals.len(), view.len(), "fill_from generator length mismatch");
            let served = self.c.with_slice_mut(run.bcid, run.gids, |s| s.clone_from_slice(&vals));
            match served {
                Some(()) => self.location().note_localized_chunk(),
                None => self.c.set_range(run.gids.lo, vals),
            }
        }
    }

    fn apply_chunks<F>(&self, f: F)
    where
        F: Fn(&mut C::Value) + Clone + Send + 'static,
    {
        for run in &self.localize().runs {
            let served = self.c.with_slice_mut(run.bcid, run.gids, |s| {
                for v in s {
                    f(v);
                }
            });
            match served {
                Some(()) => self.location().note_localized_chunk(),
                None => {
                    let f = f.clone();
                    self.c.apply_range(run.gids, move |_, v| f(v));
                }
            }
        }
    }
}

/// `array_1d_ro_view`: read-only wrapper (writes are simply not offered —
/// the type system plays the role of the paper's RO interface table).
pub struct RoView<V: ViewRead> {
    inner: V,
}

impl<V: ViewRead> RoView<V> {
    pub fn new(inner: V) -> Self {
        RoView { inner }
    }
}

impl<V: ViewRead> ViewRead for RoView<V> {
    type Value = V::Value;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, k: usize) -> V::Value {
        self.inner.get(k)
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        self.inner.local_chunks()
    }

    fn for_each_chunk(&self, f: impl FnMut(usize, &[Self::Value])) {
        self.inner.for_each_chunk(f);
    }
}

/// `balanced_pview`: same data, but the domain is split into `parts`
/// balanced chunks regardless of the underlying distribution — the
/// load-balancing view of the paper (work balance over locality).
pub struct BalancedView<V: ViewRead> {
    inner: V,
    parts: usize,
}

impl<V: ViewRead> BalancedView<V> {
    /// One chunk per location.
    pub fn new(inner: V) -> Self {
        let parts = inner.location().nlocs();
        BalancedView { inner, parts }
    }

    pub fn with_parts(inner: V, parts: usize) -> Self {
        assert!(parts >= 1);
        BalancedView { inner, parts }
    }
}

impl<V: ViewRead> ViewRead for BalancedView<V> {
    type Value = V::Value;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, k: usize) -> V::Value {
        self.inner.get(k)
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        let me = self.location().id();
        let nlocs = self.location().nlocs();
        // Chunks are dealt to locations round-robin.
        (0..self.parts)
            .filter(|p| p % nlocs == me)
            .map(|p| balanced_chunk(self.inner.len(), self.parts, p))
            .filter(|c| !c.is_empty())
            .collect()
    }
}

impl<V: ViewWrite> ViewWrite for BalancedView<V> {
    fn set(&self, k: usize, v: V::Value) {
        self.inner.set(k, v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut V::Value) + Send + 'static,
    {
        self.inner.apply(k, f);
    }
}

/// `strided_1D_pview`: every `stride`-th element starting at `first`.
pub struct StridedView<V: ViewRead> {
    inner: V,
    first: usize,
    stride: usize,
}

impl<V: ViewRead> StridedView<V> {
    pub fn new(inner: V, first: usize, stride: usize) -> Self {
        assert!(stride >= 1);
        StridedView { inner, first, stride }
    }

    fn map(&self, k: usize) -> usize {
        self.first + k * self.stride
    }
}

impl<V: ViewRead> ViewRead for StridedView<V> {
    type Value = V::Value;

    fn len(&self) -> usize {
        let n = self.inner.len();
        if self.first >= n {
            0
        } else {
            (n - self.first).div_ceil(self.stride)
        }
    }

    fn get(&self, k: usize) -> V::Value {
        self.inner.get(self.map(k))
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        // Strided access breaks contiguity; deal view indices balanced.
        let me = self.location().id();
        let c = balanced_chunk(self.len(), self.location().nlocs(), me);
        if c.is_empty() {
            vec![]
        } else {
            vec![c]
        }
    }
}

impl<V: ViewWrite> ViewWrite for StridedView<V> {
    fn set(&self, k: usize, v: V::Value) {
        self.inner.set(self.map(k), v);
    }

    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut V::Value) + Send + 'static,
    {
        self.inner.apply(self.map(k), f);
    }
}

/// `transform_pview`: overrides the read operation with a function of the
/// underlying value (Table II's `O` note). Read-only.
pub struct TransformView<V: ViewRead, W, F: Fn(V::Value) -> W> {
    inner: V,
    f: F,
}

impl<V: ViewRead, W, F: Fn(V::Value) -> W> TransformView<V, W, F> {
    pub fn new(inner: V, f: F) -> Self {
        TransformView { inner, f }
    }
}

impl<V, W, F> ViewRead for TransformView<V, W, F>
where
    V: ViewRead,
    W: Send + Clone + 'static,
    F: Fn(V::Value) -> W,
{
    type Value = W;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn get(&self, k: usize) -> W {
        (self.f)(self.inner.get(k))
    }

    fn location(&self) -> &Location {
        self.inner.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        self.inner.local_chunks()
    }

    fn for_each_chunk(&self, mut f: impl FnMut(usize, &[W])) {
        // Inherit the inner view's localization; transform per chunk.
        self.inner.for_each_chunk(|lo, s| {
            let mapped: Vec<W> = s.iter().map(|v| (self.f)(v.clone())).collect();
            f(lo, &mapped);
        });
    }
}

/// `overlap_pview` (Fig. 2): element `i` is the window
/// `A[c·i, c·i + l + c + r)`; consecutive windows overlap. The natural
/// view for adjacent-difference and string matching.
pub struct OverlapView<V: ViewRead> {
    inner: V,
    core: usize,
    left: usize,
    right: usize,
}

impl<V: ViewRead> OverlapView<V> {
    pub fn new(inner: V, core: usize, left: usize, right: usize) -> Self {
        assert!(core >= 1);
        OverlapView { inner, core, left, right }
    }

    /// Window width `l + c + r`.
    pub fn window_len(&self) -> usize {
        self.left + self.core + self.right
    }

    /// Number of windows.
    pub fn num_windows(&self) -> usize {
        let n = self.inner.len();
        let w = self.window_len();
        if n < w {
            0
        } else {
            (n - w) / self.core + 1
        }
    }

    /// Reads window `i` (values are fetched through the underlying view;
    /// remote elements at the seams are what the overlap view is for).
    pub fn window(&self, i: usize) -> Vec<V::Value> {
        let start = self.core * i;
        (start..start + self.window_len()).map(|k| self.inner.get(k)).collect()
    }

    /// Window-index ranges for this location, derived from the inner
    /// chunks so windows are processed near their core elements.
    pub fn local_windows(&self) -> Vec<Range1d> {
        let me = self.location().id();
        let c = balanced_chunk(self.num_windows(), self.inner.location().nlocs(), me);
        if c.is_empty() {
            vec![]
        } else {
            vec![c]
        }
    }

    pub fn location(&self) -> &Location {
        self.inner.location()
    }
}

/// Builds the native view of any indexed container (convenience matching
/// the paper's `native_pview(container)`).
pub fn native_view<C: IndexedContainer>(c: C) -> ArrayView<C> {
    ArrayView::new(c)
}

/// Builds a balanced view over the whole container.
pub fn balanced_view<C: RangedContainer>(c: C) -> BalancedView<ArrayView<C>> {
    BalancedView::new(ArrayView::new(c))
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::array::PArray;
    use stapl_core::interfaces::{ElementRead, PContainer};
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn array_view_reads_and_writes() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as i64);
            let v = ArrayView::new(a.clone());
            assert_eq!(v.len(), 10);
            assert_eq!(v.get(7), 7);
            if loc.id() == 0 {
                v.set(7, 70);
            }
            loc.rmi_fence();
            assert_eq!(v.get(7), 70);
        });
    }

    #[test]
    fn native_chunks_are_local_and_cover() {
        execute(RtsConfig::default(), 4, |loc| {
            let a = PArray::from_fn(loc, 21, |i| i);
            let v = ArrayView::new(a.clone());
            let mut count = 0u64;
            for ch in v.local_chunks() {
                for k in ch.iter() {
                    assert!(a.is_local(v.gid_of(k)), "chunk element must be local");
                    count += 1;
                }
            }
            assert_eq!(loc.allreduce_sum(count), 21);
        });
    }

    #[test]
    fn subview_offsets_mapping() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as i32);
            let v = ArrayView::new(a).subview(Range1d::new(3, 8));
            assert_eq!(v.len(), 5);
            assert_eq!(v.get(0), 3);
            assert_eq!(v.get(4), 7);
            // Chunks cover exactly the subview.
            let covered: u64 =
                loc.allreduce_sum(v.local_chunks().iter().map(|c| c.len() as u64).sum());
            assert_eq!(covered, 5);
        });
    }

    #[test]
    fn balanced_view_chunks_ignore_distribution() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i);
            let v = BalancedView::with_parts(ArrayView::new(a), 5);
            let mine: usize = v.local_chunks().iter().map(|c| c.len()).sum();
            let total = loc.allreduce_sum(mine as u64);
            assert_eq!(total, 10);
        });
    }

    #[test]
    fn strided_view_selects_every_second() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 10, |i| i as u32);
            let v = StridedView::new(ArrayView::new(a), 0, 2);
            assert_eq!(v.len(), 5);
            let vals: Vec<u32> = (0..5).map(|k| v.get(k)).collect();
            assert_eq!(vals, vec![0, 2, 4, 6, 8]);
            if loc.id() == 1 {
                v.set(1, 99);
            }
            loc.rmi_fence();
            assert_eq!(v.get(1), 99);
        });
    }

    #[test]
    fn transform_view_overrides_read() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 6, |i| i as i64);
            let v = TransformView::new(ArrayView::new(a), |x| x * x);
            assert_eq!(v.get(3), 9);
            assert_eq!(v.len(), 6);
            let _ = loc;
        });
    }

    #[test]
    fn overlap_view_matches_fig2() {
        // Fig. 2: A[0,10] (11 elements), c = 2, l = 2, r = 1 → windows
        // A[0,4], A[2,6], A[4,8], A[6,10].
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 11, |i| i);
            let v = OverlapView::new(ArrayView::new(a), 2, 2, 1);
            assert_eq!(v.num_windows(), 4);
            assert_eq!(v.window(0), vec![0, 1, 2, 3, 4]);
            assert_eq!(v.window(1), vec![2, 3, 4, 5, 6]);
            assert_eq!(v.window(3), vec![6, 7, 8, 9, 10]);
            let _ = loc;
        });
    }

    #[test]
    fn localize_is_memoized_until_redistribution() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 16, |i| i as u64);
            let v = ArrayView::new(a.clone());
            let l1 = v.localize();
            let l2 = v.localize();
            assert!(std::rc::Rc::ptr_eq(&l1, &l2), "second call must reuse the memo");
            let chunks: Vec<_> = l1.runs.iter().map(|r| r.view_range()).collect();
            assert_eq!(chunks, v.local_chunks());
            // Redistribution bumps the epoch and invalidates the memo.
            a.redistribute(
                Box::new(stapl_core::partition::BlockedPartition::new(16, 3)),
                Box::new(stapl_core::mapper::CyclicMapper::new(loc.nlocs())),
            );
            let l3 = v.localize();
            assert!(!std::rc::Rc::ptr_eq(&l1, &l3), "epoch change must invalidate the memo");
            let covered: u64 =
                loc.allreduce_sum(l3.runs.iter().map(|r| r.gids.len() as u64).sum());
            assert_eq!(covered, 16);
        });
    }

    #[test]
    fn for_each_chunk_sees_local_slices() {
        execute(RtsConfig::unbuffered(), 4, |loc| {
            let a = PArray::from_fn(loc, 37, |i| i as i64);
            let v = ArrayView::new(a.clone());
            let before = loc.stats();
            let mut seen = Vec::new();
            v.for_each_chunk(|lo, s| {
                for (k, val) in s.iter().enumerate() {
                    assert_eq!(*val, (lo + k) as i64);
                    seen.push(lo + k);
                }
            });
            let after = loc.stats();
            assert_eq!(seen.len(), a.local_size());
            assert_eq!(
                after.remote_requests, before.remote_requests,
                "native chunk iteration must be communication-free"
            );
            assert!(after.localized_chunks > before.localized_chunks);
            assert_eq!(after.element_fallbacks, before.element_fallbacks);
            let total = loc.allreduce_sum(seen.len() as u64);
            assert_eq!(total, 37);
        });
    }

    #[test]
    fn fill_from_and_apply_chunks_localized() {
        execute(RtsConfig::default(), 3, |loc| {
            let a = PArray::new(loc, 20, 0i64);
            let v = ArrayView::new(a.clone());
            v.fill_from(|r| r.iter().map(|k| k as i64 * 2).collect());
            loc.barrier();
            for i in 0..20 {
                assert_eq!(a.get_element(i), i as i64 * 2);
            }
            // Phase separation: no location may start mutating while a
            // peer is still reading.
            loc.barrier();
            v.apply_chunks(|x| *x += 1);
            loc.barrier();
            for i in 0..20 {
                assert_eq!(a.get_element(i), i as i64 * 2 + 1);
            }
        });
    }

    #[test]
    fn subview_chunks_localize_too() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 12, |i| i as u32);
            let v = ArrayView::new(a).subview(Range1d::new(3, 11));
            let mut collected: Vec<(usize, u32)> = Vec::new();
            v.for_each_chunk(|lo, s| {
                for (k, val) in s.iter().enumerate() {
                    collected.push((lo + k, *val));
                }
            });
            for (k, val) in collected {
                assert_eq!(val, (k + 3) as u32);
            }
            let covered: u64 =
                loc.allreduce_sum(v.local_chunks().iter().map(|c| c.len() as u64).sum());
            assert_eq!(covered, 8);
        });
    }

    #[test]
    fn ro_view_reads() {
        execute(RtsConfig::default(), 1, |loc| {
            let a = PArray::from_fn(loc, 4, |i| i);
            let v = RoView::new(ArrayView::new(a));
            assert_eq!(v.get(2), 2);
            assert_eq!(v.local_chunks().iter().map(|c| c.len()).sum::<usize>(), 4);
            let _ = loc;
        });
    }
}
