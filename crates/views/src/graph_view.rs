//! Graph views (Fig. 47/48): the partitioned (native) view plus the
//! *inner* and *boundary* region views.
//!
//! The inner view of a location holds the local vertices whose edges all
//! stay on the location; the boundary view holds the local vertices with
//! at least one cross-location edge. Algorithms overlap computation on
//! the inner region with communication caused by the boundary region —
//! the decomposition Fig. 48 illustrates.

use stapl_containers::graph::{PGraph, Vertex, VertexDesc};
use stapl_rts::Location;

/// Which region of the per-location subgraph a view exposes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphRegion {
    /// All local vertices (the paper's partitioned / native pView).
    All,
    /// Local vertices whose out-edges all target local vertices.
    Inner,
    /// Local vertices with at least one out-edge to a remote vertex.
    Boundary,
}

/// A per-location region view of a pGraph.
pub struct GraphView<VP: Send + Clone + 'static, EP: Send + Clone + 'static> {
    g: PGraph<VP, EP>,
    region: GraphRegion,
}

impl<VP, EP> GraphView<VP, EP>
where
    VP: Send + Clone + 'static,
    EP: Send + Clone + 'static,
{
    pub fn new(g: PGraph<VP, EP>, region: GraphRegion) -> Self {
        GraphView { g, region }
    }

    /// The native (partitioned) view.
    pub fn native(g: PGraph<VP, EP>) -> Self {
        Self::new(g, GraphRegion::All)
    }

    pub fn inner(g: PGraph<VP, EP>) -> Self {
        Self::new(g, GraphRegion::Inner)
    }

    pub fn boundary(g: PGraph<VP, EP>) -> Self {
        Self::new(g, GraphRegion::Boundary)
    }

    fn in_region(&self, v: &Vertex<VP, EP>) -> bool {
        match self.region {
            GraphRegion::All => true,
            GraphRegion::Inner => v.edges.iter().all(|e| self.g.is_local_vertex(e.target)),
            GraphRegion::Boundary => v.edges.iter().any(|e| !self.g.is_local_vertex(e.target)),
        }
    }

    /// Iterates this location's vertices belonging to the region.
    pub fn for_each_vertex(&self, mut f: impl FnMut(&Vertex<VP, EP>)) {
        self.g.for_each_local_vertex(|v| {
            if self.in_region(v) {
                f(v);
            }
        });
    }

    /// Descriptors in the region on this location.
    pub fn vertices(&self) -> Vec<VertexDesc> {
        let mut out = Vec::new();
        self.for_each_vertex(|v| out.push(v.descriptor));
        out
    }

    /// Number of region vertices on this location.
    pub fn local_len(&self) -> usize {
        let mut n = 0;
        self.for_each_vertex(|_| n += 1);
        n
    }

    pub fn graph(&self) -> &PGraph<VP, EP> {
        &self.g
    }

    pub fn location(&self) -> &Location {
        use stapl_core::interfaces::PContainer;
        self.g.location()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::generators::{fill_mesh, static_digraph};
    use stapl_containers::graph::Directedness;
    use stapl_core::interfaces::PContainer;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn regions_partition_local_vertices() {
        execute(RtsConfig::default(), 2, |loc| {
            let g = static_digraph(loc, 16); // 4x4 mesh
            fill_mesh(loc, &g, 4, 4, ());
            let all = GraphView::native(g.clone()).local_len();
            let inner = GraphView::inner(g.clone()).local_len();
            let boundary = GraphView::boundary(g.clone()).local_len();
            assert_eq!(inner + boundary, all, "inner ⊎ boundary = all");
            // A 4x4 mesh split in row halves has exactly one boundary row
            // per location (4 vertices adjacent to the other half).
            assert_eq!(boundary, 4);
            assert_eq!(inner, 4);
            let _ = loc;
        });
    }

    #[test]
    fn boundary_vertices_have_remote_edges() {
        execute(RtsConfig::default(), 2, |loc| {
            let g: stapl_containers::graph::PGraph<u64, ()> =
                stapl_containers::graph::PGraph::new_static(loc, 12, Directedness::Directed, 0);
            fill_mesh(loc, &g, 3, 4, ());
            let bv = GraphView::boundary(g.clone());
            bv.for_each_vertex(|v| {
                assert!(v.edges.iter().any(|e| !g.is_local_vertex(e.target)));
            });
            let iv = GraphView::inner(g.clone());
            iv.for_each_vertex(|v| {
                assert!(v.edges.iter().all(|e| g.is_local_vertex(e.target)));
            });
            g.commit();
        });
    }

    #[test]
    fn single_location_graph_is_all_inner() {
        execute(RtsConfig::default(), 1, |loc| {
            let g = static_digraph(loc, 9);
            fill_mesh(loc, &g, 3, 3, ());
            assert_eq!(GraphView::boundary(g.clone()).local_len(), 0);
            assert_eq!(GraphView::inner(g.clone()).local_len(), 9);
            assert_eq!(GraphView::native(g).vertices().len(), 9);
            let _ = loc;
        });
    }
}
