//! The pView concept (Chapter III.A): `V = (C, D, F, O)` — a collection
//! `C`, a domain `D` of view indices, a mapping function `F` from view
//! indices to container GIDs, and operations `O`.
//!
//! Views are value types holding a cheap clone of the container handle.
//! Parallelism comes from [`ViewRead::local_chunks`]: the partition of the
//! view's domain this location should process — aligned with the
//! container's distribution for *native* views, or an arbitrary balanced
//! split otherwise (the paper's base-view/bView mechanism).

use stapl_core::domain::Range1d;
use stapl_rts::Location;

/// Read operations of a one-dimensional view over value type `Value`.
pub trait ViewRead {
    type Value: Send + Clone + 'static;

    /// Number of elements the view represents.
    fn len(&self) -> usize;

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Synchronous read of view index `k` (the view applies its mapping
    /// function and routes to the container).
    fn get(&self, k: usize) -> Self::Value;

    /// The location this view handle lives on.
    fn location(&self) -> &Location;

    /// View-index ranges this location should process. The union over all
    /// locations is exactly `[0, len())`; chunks are disjoint.
    fn local_chunks(&self) -> Vec<Range1d>;

    /// Chunk-at-a-time read: calls `f(view_lo, values)` over consecutive
    /// sub-ranges that exactly cover [`ViewRead::local_chunks`] in order,
    /// where `values[i]` is element `view_lo + i`. Implementations may
    /// subdivide a chunk (e.g. one call per storage run or matrix row).
    /// The default gathers element-wise (and records the elements as
    /// `element_fallbacks`); localized views override it with direct
    /// slice borrows and one bulk RMI per remote run.
    fn for_each_chunk(&self, mut f: impl FnMut(usize, &[Self::Value]))
    where
        Self: Sized,
    {
        for ch in self.local_chunks() {
            if ch.is_empty() {
                continue;
            }
            self.location().note_element_fallbacks(ch.len() as u64);
            let buf: Vec<Self::Value> = ch.iter().map(|k| self.get(k)).collect();
            f(ch.lo, &buf);
        }
    }
}

/// Write operations of a one-dimensional view.
pub trait ViewWrite: ViewRead {
    /// Asynchronous write of view index `k`.
    fn set(&self, k: usize, v: Self::Value);

    /// Asynchronous read-modify-write executed at the owner.
    fn apply<F>(&self, k: usize, f: F)
    where
        F: FnOnce(&mut Self::Value) + Send + 'static;

    /// Chunk-at-a-time generation: calls `gen(r)` over consecutive
    /// sub-ranges covering [`ViewRead::local_chunks`] and writes the
    /// returned values (which must be `r.len()` long) to `r`.
    /// Implementations may subdivide a chunk. The default writes
    /// element-wise; localized views override with one slice write per
    /// local run and one bulk RMI per remote run.
    fn fill_from(&self, mut gen: impl FnMut(Range1d) -> Vec<Self::Value>)
    where
        Self: Sized,
    {
        for ch in self.local_chunks() {
            if ch.is_empty() {
                continue;
            }
            let vals = gen(ch);
            debug_assert_eq!(vals.len(), ch.len(), "fill_from generator length mismatch");
            self.location().note_element_fallbacks(ch.len() as u64);
            for (k, v) in ch.iter().zip(vals) {
                self.set(k, v);
            }
        }
    }

    /// Chunk-at-a-time in-place update: applies `f` to every element of
    /// this location's chunks. The default ships `f` element-wise with
    /// [`ViewWrite::apply`] (owner-side execution, one request per
    /// element); localized views override with direct slice mutation and
    /// one `apply_range` RMI per remote run.
    fn apply_chunks<F>(&self, f: F)
    where
        Self: Sized,
        F: Fn(&mut Self::Value) + Clone + Send + 'static,
    {
        for ch in self.local_chunks() {
            if ch.is_empty() {
                continue;
            }
            self.location().note_element_fallbacks(ch.len() as u64);
            for k in ch.iter() {
                self.apply(k, f.clone());
            }
        }
    }
}

/// Splits `[0, n)` into `parts` balanced consecutive chunks; chunk `i`.
pub fn balanced_chunk(n: usize, parts: usize, i: usize) -> Range1d {
    let base = n / parts;
    let extra = n % parts;
    let lo = i * base + i.min(extra);
    let hi = lo + base + usize::from(i < extra);
    Range1d::new(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_chunks_cover_without_overlap() {
        for n in [0usize, 1, 7, 64, 100] {
            for parts in [1usize, 2, 3, 8] {
                let mut covered = 0;
                let mut prev_hi = 0;
                for i in 0..parts {
                    let c = balanced_chunk(n, parts, i);
                    assert_eq!(c.lo, prev_hi, "chunks must be consecutive");
                    prev_hi = c.hi;
                    covered += c.len();
                }
                assert_eq!(covered, n);
                assert_eq!(prev_hi, n);
            }
        }
    }

    #[test]
    fn balanced_chunk_sizes_differ_by_at_most_one() {
        for i in 0..5 {
            let c = balanced_chunk(13, 5, i);
            assert!(c.len() == 2 || c.len() == 3);
        }
    }
}
