//! # stapl-views — the pView layer
//!
//! Reproduces Chapter III.A and Table II: abstract-data-type façades over
//! pContainers that (a) decouple algorithms from storage and (b) enable
//! parallelism by exposing a partition of the view's domain
//! ([`view::ViewRead::local_chunks`]).
//!
//! | Paper pView | Here |
//! |---|---|
//! | `array_1d_pview` | [`array_view::ArrayView`] |
//! | `array_1d_ro_pview` | [`array_view::RoView`] |
//! | `balanced_pview` | [`array_view::BalancedView`] |
//! | `native_pview` | [`array_view::native_view`] (alignment built into `ArrayView`) |
//! | `strided_1D_pview` | [`array_view::StridedView`] |
//! | `transform_pview` | [`array_view::TransformView`] |
//! | `overlap_pview` | [`array_view::OverlapView`] |
//! | `static_list_pview` / `list_pview` | [`list_view::StaticListView`] / [`list_view::ListView`] |
//! | associative views (pMap/pHashMap) | [`assoc_view::MapView`] (`HashMapView`, `SortedMapView`) |
//! | `matrix_pview` (rows/cols/linear) | [`matrix_view`] |
//! | `graph_pview` (+ region/inner/boundary) | [`graph_view::GraphView`] |
//! | "views that generate values dynamically" | [`generator_view::GeneratorView`], [`generator_view::ZipView`] |

pub mod array_view;
pub mod assoc_view;
pub mod generator_view;
pub mod graph_view;
pub mod list_view;
pub mod matrix_view;
pub mod view;

pub mod prelude {
    pub use crate::array_view::{
        balanced_view, native_view, ArrayView, BalancedView, OverlapView, RoView, StridedView,
        TransformView,
    };
    pub use crate::assoc_view::{HashMapView, MapView, SortedMapView};
    pub use crate::generator_view::{GeneratorView, ZipView};
    pub use crate::graph_view::{GraphRegion, GraphView};
    pub use crate::list_view::{ListView, StaticListView};
    pub use crate::matrix_view::{ColView, LinearView, RowView, RowsView};
    pub use crate::view::{balanced_chunk, ViewRead, ViewWrite};
}
