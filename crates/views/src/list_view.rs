//! List views (Table II's `static_list_pview` / `list_pview`): concurrent
//! access to *segments* of a pList, one or more per location, which is how
//! the paper parallelizes list algorithms without random access.

use stapl_containers::list::{ListGid, PList};
use stapl_core::interfaces::{
    ElementRead, ElementWrite, LocalIteration, PContainer, SegmentId, SegmentedContainer,
    SequenceContainer,
};
use stapl_rts::Location;

/// Read-only segmented view of a pList (`static_list_pview`).
pub struct StaticListView<T: Send + Clone + 'static> {
    list: PList<T>,
}

impl<T: Send + Clone + 'static> StaticListView<T> {
    pub fn new(list: PList<T>) -> Self {
        StaticListView { list }
    }

    /// Size as of the last commit.
    pub fn len(&self) -> usize {
        self.list.global_size()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates this location's segment in linearization order — the
    /// native traversal the algorithms use.
    pub fn for_each_local(&self, f: impl FnMut(ListGid, &T)) {
        self.list.for_each_local(f);
    }

    pub fn read(&self, gid: ListGid) -> T {
        self.list.get_element(gid)
    }

    /// All slab (segment) ids of the viewed list.
    pub fn segments(&self) -> Vec<SegmentId> {
        self.list.segments()
    }

    /// The slab ids currently stored on this location.
    pub fn local_segments(&self) -> Vec<SegmentId> {
        self.list.local_segments()
    }

    /// Chunk-at-a-time traversal of this location's slabs: one call per
    /// slab with its (sequence, value) pairs materialized once — the bulk
    /// sibling of [`StaticListView::for_each_local`].
    pub fn for_each_chunk(&self, f: impl FnMut(SegmentId, &[(u64, T)])) {
        self.list.for_each_local_chunk(f);
    }

    /// Bulk read of any slab, local or remote (one segment RMI when
    /// remote) — how a location traverses list data it does not own
    /// without paying one request per element.
    pub fn read_segment(&self, sid: SegmentId) -> Vec<(u64, T)> {
        self.list.get_segment(sid)
    }

    pub fn location(&self) -> &Location {
        self.list.location()
    }
}

/// Mutable segmented view of a pList (`list_pview`): adds write, insert
/// and erase.
pub struct ListView<T: Send + Clone + 'static> {
    list: PList<T>,
}

impl<T: Send + Clone + 'static> ListView<T> {
    pub fn new(list: PList<T>) -> Self {
        ListView { list }
    }

    pub fn len(&self) -> usize {
        self.list.global_size()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn for_each_local(&self, f: impl FnMut(ListGid, &T)) {
        self.list.for_each_local(f);
    }

    pub fn for_each_local_mut(&self, f: impl FnMut(ListGid, &mut T)) {
        self.list.for_each_local_mut(f);
    }

    pub fn read(&self, gid: ListGid) -> T {
        self.list.get_element(gid)
    }

    pub fn write(&self, gid: ListGid, v: T) {
        self.list.set_element(gid, v);
    }

    pub fn insert_before(&self, gid: ListGid, v: T) {
        SequenceContainer::insert_before_async(&self.list, gid, v);
    }

    pub fn erase(&self, gid: ListGid) {
        SequenceContainer::erase_async(&self.list, gid);
    }

    /// The paper's `insert_any`: position chosen for locality.
    pub fn insert_any(&self, v: T) {
        self.list.push_anywhere(v);
    }

    /// Chunk-at-a-time traversal; see [`StaticListView::for_each_chunk`].
    pub fn for_each_chunk(&self, f: impl FnMut(SegmentId, &[(u64, T)])) {
        self.list.for_each_local_chunk(f);
    }

    /// In-place chunk mutation of this location's slabs: one borrow per
    /// slab, no per-element routing.
    pub fn for_each_chunk_mut(&self, mut f: impl FnMut(SegmentId, &u64, &mut T)) {
        for sid in self.list.local_segments() {
            self.list.with_segment_mut(sid, &mut |seq, v| f(sid, seq, v));
        }
    }

    /// Bulk read of any slab; see [`StaticListView::read_segment`].
    pub fn read_segment(&self, sid: SegmentId) -> Vec<(u64, T)> {
        self.list.get_segment(sid)
    }

    /// Bulk write-back of payloads to existing elements of slab `sid`
    /// (one segment RMI when remote).
    pub fn write_segment(&self, sid: SegmentId, items: Vec<(u64, T)>) {
        self.list.set_segment(sid, items);
    }

    pub fn location(&self) -> &Location {
        self.list.location()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn static_view_segments_cover_list() {
        execute(RtsConfig::default(), 3, |loc| {
            let l = PList::new(loc);
            for i in 0..4 {
                l.push_anywhere(loc.id() * 10 + i);
            }
            l.commit();
            let v = StaticListView::new(l);
            assert_eq!(v.len(), 12);
            let mut n = 0u64;
            v.for_each_local(|gid, val| {
                assert_eq!(v.read(gid), *val);
                n += 1;
            });
            assert_eq!(loc.allreduce_sum(n), 12);
        });
    }

    #[test]
    fn chunked_traversal_covers_all_segments() {
        execute(RtsConfig::default(), 3, |loc| {
            let l: PList<u64> = PList::new(loc);
            for i in 0..5 {
                l.push_anywhere(loc.id() as u64 * 100 + i);
            }
            l.commit();
            let v = StaticListView::new(l.clone());
            // Local chunks: one per slab, in list order, no communication.
            let before = loc.stats().remote_requests;
            let mut mine = Vec::new();
            v.for_each_chunk(|_, pairs| mine.extend(pairs.iter().map(|(_, x)| *x)));
            assert_eq!(loc.stats().remote_requests, before, "local chunks must not communicate");
            assert_eq!(mine, (0..5).map(|i| loc.id() as u64 * 100 + i).collect::<Vec<_>>());
            loc.barrier();
            // Remote segments: one bulk RMI each, full coverage from root.
            if loc.id() == 0 {
                let total: usize = v.segments().iter().map(|s| v.read_segment(*s).len()).sum();
                assert_eq!(total, 15);
            }
            loc.barrier();
            // Chunked in-place mutation through the mutable view.
            let w = ListView::new(l.clone());
            w.for_each_chunk_mut(|_, _, x| *x += 1);
            loc.barrier();
            let mut after = Vec::new();
            w.for_each_chunk(|_, pairs| after.extend(pairs.iter().map(|(_, x)| *x)));
            assert!(after.iter().zip(&mine).all(|(a, m)| *a == m + 1));
        });
    }

    #[test]
    fn list_view_mutation() {
        execute(RtsConfig::default(), 2, |loc| {
            let l = PList::new(loc);
            let g = l.push_anywhere(1i64);
            loc.rmi_fence();
            let v = ListView::new(l.clone());
            v.write(g, 5);
            v.for_each_local_mut(|_, x| *x *= 10);
            loc.rmi_fence();
            assert_eq!(v.read(g), 50);
            v.insert_any(7);
            v.insert_before(g, 3);
            l.commit();
            assert_eq!(v.len(), 6); // per location: anywhere(1)+any(7)+before(3)
            v.erase(g);
            l.commit();
            assert_eq!(v.len(), 4);
        });
    }
}
