//! Storage-less views (Chapter III.A): "the user can define … pViews that
//! generate values dynamically". A [`GeneratorView`] computes its elements
//! from the index; a [`ZipView`] pairs two views element-wise. Both are
//! read-only and communication-free on the generator side.

use stapl_core::domain::Range1d;
use stapl_rts::Location;

use crate::view::{balanced_chunk, ViewRead};

/// A view whose element `k` is `f(k)` — no container underneath.
/// Useful as an algorithm input (e.g. `p_copy` from a generator view is
/// the paper's `p_generate`).
pub struct GeneratorView<T, F: Fn(usize) -> T> {
    loc: Location,
    len: usize,
    f: F,
}

impl<T, F: Fn(usize) -> T> GeneratorView<T, F> {
    pub fn new(loc: &Location, len: usize, f: F) -> Self {
        GeneratorView { loc: loc.clone(), len, f }
    }
}

impl<T, F> ViewRead for GeneratorView<T, F>
where
    T: Send + Clone + 'static,
    F: Fn(usize) -> T,
{
    type Value = T;

    fn len(&self) -> usize {
        self.len
    }

    fn get(&self, k: usize) -> T {
        debug_assert!(k < self.len);
        (self.f)(k)
    }

    fn location(&self) -> &Location {
        &self.loc
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        let c = balanced_chunk(self.len, self.loc.nlocs(), self.loc.id());
        if c.is_empty() {
            vec![]
        } else {
            vec![c]
        }
    }
}

/// Element-wise pairing of two equal-length views; chunking follows the
/// first view's (possibly native) decomposition.
pub struct ZipView<A: ViewRead, B: ViewRead> {
    a: A,
    b: B,
}

impl<A: ViewRead, B: ViewRead> ZipView<A, B> {
    pub fn new(a: A, b: B) -> Self {
        assert_eq!(a.len(), b.len(), "zipped views must have equal length");
        ZipView { a, b }
    }
}

impl<A, B> ViewRead for ZipView<A, B>
where
    A: ViewRead,
    B: ViewRead,
{
    type Value = (A::Value, B::Value);

    fn len(&self) -> usize {
        self.a.len()
    }

    fn get(&self, k: usize) -> (A::Value, B::Value) {
        (self.a.get(k), self.b.get(k))
    }

    fn location(&self) -> &Location {
        self.a.location()
    }

    fn local_chunks(&self) -> Vec<Range1d> {
        self.a.local_chunks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array_view::ArrayView;
    use stapl_containers::array::PArray;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn generator_view_computes_values() {
        execute(RtsConfig::default(), 2, |loc| {
            let v = GeneratorView::new(loc, 10, |k| k * k);
            assert_eq!(v.len(), 10);
            assert_eq!(v.get(7), 49);
            let covered: u64 =
                loc.allreduce_sum(v.local_chunks().iter().map(|c| c.len() as u64).sum());
            assert_eq!(covered, 10);
        });
    }

    #[test]
    fn zip_view_pairs_container_with_generator() {
        execute(RtsConfig::default(), 2, |loc| {
            let a = PArray::from_fn(loc, 8, |i| i as i64);
            let z = ZipView::new(ArrayView::new(a), GeneratorView::new(loc, 8, |k| k as i64 * 10));
            assert_eq!(z.get(3), (3, 30));
            // Chunks come from the native view side.
            let covered: u64 =
                loc.allreduce_sum(z.local_chunks().iter().map(|c| c.len() as u64).sum());
            assert_eq!(covered, 8);
        });
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn zip_rejects_length_mismatch() {
        execute(RtsConfig::default(), 1, |loc| {
            let a = PArray::new(loc, 4, 0u8);
            let _ = ZipView::new(ArrayView::new(a), GeneratorView::new(loc, 5, |_| 0u8));
        });
    }
}
