//! Associative views: `MapView`, the first pView over [`PAssoc`] — the
//! key-value sibling of the sequence views. Parallelism comes from the
//! bucket decomposition of the segmented-transport layer: each location
//! processes its own buckets **bucket-at-a-time** (one borrow per
//! bucket), and remote buckets move as one segment RMI each — never one
//! boxed request per pair.

use std::collections::{BTreeMap, HashMap};

use stapl_containers::associative::{KvStore, PAssoc};
use stapl_core::gid::Key;
use stapl_core::interfaces::{PContainer, SegmentId, SegmentedContainer};
use stapl_rts::Location;

/// Key-value view of an associative pContainer (`map_pview`).
///
/// ```
/// use stapl_rts::{execute, RtsConfig};
/// use stapl_containers::associative::PHashMap;
/// use stapl_views::assoc_view::MapView;
/// use stapl_core::interfaces::{AssociativeContainer, PContainer};
///
/// execute(RtsConfig::default(), 2, |loc| {
///     let m: PHashMap<u64, u64> = PHashMap::new(loc);
///     if loc.id() == 0 {
///         for k in 0..10 {
///             m.insert_async(k, k * k);
///         }
///     }
///     m.commit();
///     let v = MapView::new(m);
///     assert_eq!(v.len(), 10);
///     let mut local_pairs = 0u64;
///     v.for_each_chunk(|_bucket, pairs| local_pairs += pairs.len() as u64);
///     assert_eq!(loc.allreduce_sum(local_pairs), 10);
/// });
/// ```
pub struct MapView<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    map: PAssoc<K, V, S>,
}

impl<K, V, S> Clone for MapView<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    fn clone(&self) -> Self {
        MapView { map: self.map.clone() }
    }
}

impl<K, V, S> MapView<K, V, S>
where
    K: Key,
    V: Send + Clone + 'static,
    S: KvStore<K, V>,
{
    pub fn new(map: PAssoc<K, V, S>) -> Self {
        MapView { map }
    }

    /// The underlying container handle.
    pub fn container(&self) -> &PAssoc<K, V, S> {
        &self.map
    }

    /// Number of pairs (the container's lazily replicated size; sees the
    /// caller's own uncommitted mutations).
    pub fn len(&self) -> usize {
        self.map.global_size()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Synchronous lookup through the view.
    pub fn get(&self, k: K) -> Option<V> {
        use stapl_core::interfaces::AssociativeContainer;
        self.map.find(k)
    }

    /// All bucket ids of the view (replicated metadata).
    pub fn segments(&self) -> Vec<SegmentId> {
        self.map.segments()
    }

    /// The bucket ids this location should process.
    pub fn local_segments(&self) -> Vec<SegmentId> {
        self.map.local_segments()
    }

    /// Visits every local (key, value) pair bucket-at-a-time under one
    /// borrow per bucket — the native traversal of the map algorithms.
    pub fn for_each_kv(&self, mut f: impl FnMut(&K, &V)) {
        for sid in self.map.local_segments() {
            self.map.with_segment(sid, &mut |k, v| f(k, v));
        }
    }

    /// Chunk-at-a-time read of this location's buckets: one call per
    /// bucket with the bucket's pairs materialized once (one borrow, one
    /// allocation per bucket — never one request per pair).
    pub fn for_each_chunk(&self, f: impl FnMut(SegmentId, &[(K, V)])) {
        self.map.for_each_local_chunk(f);
    }

    /// Bulk read of any bucket, local or remote (one segment RMI when
    /// remote).
    pub fn read_segment(&self, sid: SegmentId) -> Vec<(K, V)> {
        self.map.get_segment(sid)
    }

    pub fn location(&self) -> &Location {
        self.map.location()
    }
}

/// View over a hashed map ([`stapl_containers::associative::PHashMap`]).
pub type HashMapView<K, V> = MapView<K, V, HashMap<K, V>>;

/// View over a sorted map ([`stapl_containers::associative::PMap`]):
/// `for_each_kv` visits pairs in global key order restricted to this
/// location's buckets.
pub type SortedMapView<K, V> = MapView<K, V, BTreeMap<K, V>>;

#[cfg(test)]
mod tests {
    use super::*;
    use stapl_containers::associative::{PHashMap, PMap};
    use stapl_core::interfaces::AssociativeContainer;
    use stapl_rts::{execute, RtsConfig};

    #[test]
    fn chunks_cover_all_pairs_exactly_once() {
        execute(RtsConfig::default(), 3, |loc| {
            let m: PHashMap<u64, u64> = PHashMap::with_buckets(loc, 7);
            for k in 0..42 {
                if k % loc.nlocs() as u64 == loc.id() as u64 {
                    m.insert_async(k, k + 1);
                }
            }
            m.commit();
            let v = MapView::new(m);
            assert_eq!(v.len(), 42);
            let mut seen: Vec<(u64, u64)> = Vec::new();
            let mut chunks = 0;
            v.for_each_chunk(|_, pairs| {
                chunks += 1;
                seen.extend_from_slice(pairs);
            });
            assert_eq!(chunks, v.local_segments().len());
            let mut all = loc.allreduce(seen, |mut a, mut b| {
                a.append(&mut b);
                a
            });
            all.sort_unstable();
            assert_eq!(all, (0..42).map(|k| (k, k + 1)).collect::<Vec<_>>());
        });
    }

    #[test]
    fn chunked_traversal_is_localized_not_elementwise() {
        execute(RtsConfig::unbuffered(), 2, |loc| {
            let m: PHashMap<u64, u64> = PHashMap::new(loc);
            for k in 0..40 {
                m.insert_async(k, k);
            }
            m.commit();
            let v = MapView::new(m);
            let before = loc.stats();
            let mut n = 0;
            v.for_each_kv(|_, _| n += 1);
            let after = loc.stats();
            assert!(n > 0);
            assert_eq!(
                before.remote_requests, after.remote_requests,
                "local bucket traversal must not communicate"
            );
            assert!(after.localized_chunks > before.localized_chunks);
        });
    }

    #[test]
    fn sorted_view_iterates_in_key_order_and_remote_read_works() {
        execute(RtsConfig::default(), 2, |loc| {
            let m: PMap<u32, u32> = PMap::new(loc, vec![10, 20]);
            if loc.id() == 1 {
                for k in [25, 3, 14, 8, 29, 11] {
                    m.insert_async(k, k);
                }
            }
            m.commit();
            let v = SortedMapView::new(m);
            // Buckets are ordered key intervals ascending by bcid, so the
            // chunked traversal must yield strictly ascending keys — both
            // within each chunk and across this location's chunks.
            let mut mine = Vec::new();
            v.for_each_chunk(|_, pairs| mine.extend(pairs.iter().map(|(k, _)| *k)));
            assert!(
                mine.windows(2).all(|w| w[0] < w[1]),
                "sorted view must iterate in global key order: {mine:?}"
            );
            let total_here = loc.allreduce_sum(mine.len() as u64);
            assert_eq!(total_here, 6, "chunks must cover every pair exactly once");
            // Remote bucket read: union over all segments sees every pair.
            let total: usize = v.segments().iter().map(|s| v.read_segment(*s).len()).sum();
            assert_eq!(total, 6);
            assert_eq!(v.get(14), Some(14));
            assert_eq!(v.get(15), None);
        });
    }
}
