//! RTS stress and protocol tests: deep forwarding, reply tokens, the
//! node model, ordering under heavy aggregation, and collectives with
//! non-commutative operators.

use std::cell::RefCell;

use stapl_rts::{execute, execute_collect, Location, ReplyToken, RtsConfig};

#[test]
fn forwarding_chain_of_depth_nlocs_drains_in_one_fence() {
    execute(RtsConfig::with_aggregation(4), 6, |loc| {
        let (h, rep) = loc.register(RefCell::new(0u32));
        loc.rmi_fence();
        // A request that hops through every location before landing.
        fn hop(loc: &Location, h: stapl_rts::Handle, remaining: usize) {
            if remaining == 0 {
                let cell = loc.lookup::<RefCell<u32>>(h);
                *cell.borrow_mut() += 1;
                return;
            }
            let next = (loc.id() + 1) % loc.nlocs();
            loc.async_rmi(next, h, move |_: &RefCell<u32>, l| hop(l, h, remaining - 1));
        }
        if loc.id() == 0 {
            hop(loc, h, loc.nlocs() * 3);
        }
        loc.rmi_fence();
        let total = loc.allreduce_sum(*rep.borrow() as u64);
        assert_eq!(total, 1, "exactly one landing after the chain");
    });
}

#[test]
fn reply_token_completes_across_forward() {
    execute(RtsConfig::default(), 3, |loc| {
        let (h, _rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        // Request goes 0 -> 1 -> 2, and 2 replies directly to 0.
        if loc.id() == 0 {
            let (token, fut): (ReplyToken<u64>, _) = loc.make_reply_slot();
            loc.async_rmi(1, h, move |_: &RefCell<u64>, l| {
                l.async_rmi(2, h, move |_: &RefCell<u64>, l2| {
                    l2.reply(token, 42 + l2.id() as u64);
                });
            });
            assert_eq!(fut.get(), 44);
        }
        loc.rmi_fence();
    });
}

#[test]
fn heavy_aggregation_preserves_pairwise_fifo() {
    execute(RtsConfig::with_aggregation(512), 3, |loc| {
        let (h, rep) = loc.register(RefCell::new(Vec::<(usize, u32)>::new()));
        loc.rmi_fence();
        let me = loc.id();
        for k in 0..1_000u32 {
            let dest = (me + 1 + (k as usize % 2)) % loc.nlocs();
            loc.async_rmi(dest, h, move |v: &RefCell<Vec<(usize, u32)>>, _| {
                v.borrow_mut().push((me, k));
            });
        }
        loc.rmi_fence();
        // Per-source subsequences must be increasing.
        let v = rep.borrow();
        for src in 0..loc.nlocs() {
            let seq: Vec<u32> = v.iter().filter(|(s, _)| *s == src).map(|(_, k)| *k).collect();
            assert!(seq.windows(2).all(|w| w[0] < w[1]), "source {src} reordered");
        }
    });
}

#[test]
fn cross_node_delivery_still_correct_with_delays() {
    execute(RtsConfig::clustered(2, 5_000, 100), 4, |loc| {
        let (h, rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        // All-to-all increments; nodes are {0,1} and {2,3}.
        for dest in 0..loc.nlocs() {
            if dest != loc.id() {
                loc.async_rmi(dest, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
            }
        }
        loc.rmi_fence();
        assert_eq!(*rep.borrow(), 3);
    });
}

#[test]
fn noncommutative_collectives_use_location_order() {
    execute(RtsConfig::default(), 4, |loc| {
        // String concatenation is order-sensitive.
        let s = loc.allreduce(loc.id().to_string(), |a, b| a + &b);
        assert_eq!(s, "0123");
        let (prefix, total) = loc.exclusive_scan(loc.id().to_string(), String::new(), |a, b| a + &b);
        assert_eq!(total, "0123");
        let expect: String = (0..loc.id()).map(|d| d.to_string()).collect();
        assert_eq!(prefix, expect);
    });
}

#[test]
fn many_registered_objects_are_isolated() {
    execute(RtsConfig::default(), 2, |loc| {
        let objs: Vec<_> = (0..50).map(|k| loc.register(RefCell::new(k as u64 * 10)).0).collect();
        loc.rmi_fence();
        for (k, h) in objs.iter().enumerate() {
            let peer = 1 - loc.id();
            let v = loc.sync_rmi(peer, *h, |c: &RefCell<u64>, _| *c.borrow());
            assert_eq!(v, k as u64 * 10);
        }
    });
}

#[test]
fn interleaved_fences_and_barriers_stay_aligned() {
    execute(RtsConfig::default(), 3, |loc| {
        let (h, rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        for round in 0..20u64 {
            loc.async_rmi((loc.id() + 1) % 3, h, |c: &RefCell<u64>, _| {
                *c.borrow_mut() += 1;
            });
            if round % 3 == 0 {
                loc.barrier();
            }
            loc.rmi_fence();
            assert_eq!(*rep.borrow(), round + 1);
            // Phase isolation: a fence guarantees all *pending* requests
            // completed, but a fast peer may exit the fence and send its
            // next-round increment while we are still spinning in the
            // fence's final (polling) barrier. Without this barrier the
            // assert above can observe round + 2 — the exact relaxed-MCM
            // subtlety Chapter VII warns about.
            loc.barrier();
        }
    });
}

#[test]
fn sync_rmi_storm_from_all_locations() {
    let totals = execute_collect(RtsConfig::default(), 4, |loc| {
        let (h, _rep) = loc.register(RefCell::new(loc.id() as u64));
        loc.rmi_fence();
        let mut acc = 0u64;
        for k in 0..200 {
            let dest = (loc.id() + 1 + k % 3) % loc.nlocs();
            acc += loc.sync_rmi(dest, h, |c: &RefCell<u64>, _| *c.borrow());
        }
        acc
    });
    assert_eq!(totals.len(), 4);
    assert!(totals.iter().all(|t| *t > 0));
}

#[test]
fn stats_fence_rounds_bounded() {
    let snaps = execute_collect(RtsConfig::default(), 4, |loc| {
        let (h, _rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        loc.async_rmi((loc.id() + 1) % 4, h, |c: &RefCell<u64>, _| {
            *c.borrow_mut() += 1;
        });
        loc.rmi_fence();
        loc.stats()
    });
    // Termination detection should converge in a few rounds per fence,
    // not spin unboundedly.
    assert!(snaps[0].fence_rounds < 50, "fence rounds: {}", snaps[0].fence_rounds);
}
