//! Regression test for response accounting: every response that crosses
//! locations — sync RMI returns, split-phase returns, explicit
//! `reply()`s at the end of a forwarding chain — must bump
//! `responses_sent` exactly once, on the **responding** location's
//! per-location twin, so the count is symmetric with the requests that
//! provoked it and `local_stats()` sums to the global. A response path
//! that bypasses the shared `send_response` funnel (the bug this pins
//! down: the split-phase handler used to count while `reply()` did not)
//! breaks the exact counts below. Checked under both transports.

use std::cell::RefCell;

use stapl_rts::{execute_collect, Location, RtsConfig, StatsSnapshot, TransportKind};

const SYNCS: u64 = 3;
const SPLITS: u64 = 2;
const FORWARDS: u64 = 1;

/// Star workload: every location except 0 aims `SYNCS` sync RMIs,
/// `SPLITS` split RMIs, and `FORWARDS` forwarded-reply chains at
/// location 0, while location 0 issues purely local sync RMIs (which
/// must NOT count — a local return value never becomes a response
/// message). Returns per-location and global snapshots.
fn run_star(kind: TransportKind, p: usize) -> (Vec<StatsSnapshot>, StatsSnapshot) {
    let cfg = RtsConfig { transport: kind, ..RtsConfig::base() };
    let out = execute_collect(cfg, p, |loc| {
        let me = loc.id();
        let (h, _rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        if me != 0 {
            for _ in 0..SYNCS {
                let v = loc.sync_rmi(0, h, |c: &RefCell<u64>, _| {
                    *c.borrow_mut() += 1;
                    *c.borrow()
                });
                assert!(v > 0);
            }
            for _ in 0..SPLITS {
                let v = loc.split_rmi(0, h, |c: &RefCell<u64>, _| *c.borrow()).get();
                assert!(v > 0);
            }
            for _ in 0..FORWARDS {
                // Forwarding chain: me -> 0, where the handler replies
                // straight back through the explicit reply path.
                let (token, fut) = loc.make_reply_slot::<u64>();
                loc.send_request(
                    0,
                    Box::new(move |l0: &Location| {
                        let c = l0.lookup::<RefCell<u64>>(h);
                        l0.reply(token, *c.borrow());
                    }),
                );
                fut.get();
            }
        } else {
            // Local control: same primitives aimed at myself; the values
            // come back without a response message ever being sent.
            for _ in 0..SYNCS {
                loc.sync_rmi(0, h, |c: &RefCell<u64>, _| *c.borrow());
            }
        }
        loc.rmi_fence();
        (loc.local_stats(), loc.stats())
    });
    let global = out[0].1;
    (out.iter().map(|(l, _)| *l).collect(), global)
}

#[test]
fn responses_are_counted_once_on_the_responder() {
    for kind in [TransportKind::Closure, TransportKind::Serialized] {
        for p in [2usize, 4] {
            let (locals, global) = run_star(kind, p);
            let expect = (p as u64 - 1) * (SYNCS + SPLITS + FORWARDS);
            // Symmetry: one response per remote request that asks for a
            // value — no double counting, no missed paths.
            assert_eq!(
                global.responses_sent, expect,
                "{kind:?} P={p}: global responses_sent"
            );
            // Attribution: every response was sent by location 0, and the
            // per-location twins sum to the global.
            assert_eq!(
                locals[0].responses_sent, expect,
                "{kind:?} P={p}: responder's local responses_sent"
            );
            for (id, l) in locals.iter().enumerate().skip(1) {
                assert_eq!(
                    l.responses_sent, 0,
                    "{kind:?} P={p}: location {id} sent no responses"
                );
            }
            let sum: u64 = locals.iter().map(|l| l.responses_sent).sum();
            assert_eq!(sum, global.responses_sent, "{kind:?} P={p}: locals sum to global");
        }
    }
}
