//! Differential property tests for the pluggable transport: a random
//! async/sync/split/bulk RMI workload — including forwarding chains, the
//! RTS-level shape of a container migration (request hops via a third
//! location before the owner replies to the origin) — must produce
//! **identical results and identical deterministic counters** under the
//! closure backend and the serialized wire backend, for P ∈ {1..4} and
//! several aggregation widths.
//!
//! Only the deterministic counters participate: timing-dependent ones
//! (`batches_sent`, `fence_rounds`, `aged_flushes`) and the
//! backend-specific wire counters (`bytes_sent`, `messages_serialized`,
//! `serialize_ns`) are compared structurally instead (zero on the closure
//! backend; one frame per remote request on the wire backend).

use std::cell::RefCell;

use proptest::prelude::*;
use stapl_rts::{execute_collect, Location, RtsConfig, StatsSnapshot, TransportKind};

/// One mutation op, encoded with raw picks so a single strategy covers
/// every P (picks are reduced mod `nlocs` at execution time):
/// `(which, (a, b, c), add, items)` where `which` selects
/// 0 = async increment, 1 = bulk-tagged async, 2 = forwarded reply.
type RawOp = (u8, (usize, usize, usize), u64, Vec<u64>);

/// The per-counter views compared between backends. `serialize_ns` is
/// wall-clock and never compared; the other two wire counters get
/// structural assertions.
type CounterView = fn(&StatsSnapshot) -> u64;

const DETERMINISTIC: &[(&str, CounterView)] = &[
    ("local_invocations", |s| s.local_invocations),
    ("remote_requests", |s| s.remote_requests),
    ("responses_sent", |s| s.responses_sent),
    ("bulk_requests", |s| s.bulk_requests),
    ("segment_requests", |s| s.segment_requests),
    ("gather_items", |s| s.gather_items),
];

struct RunOut {
    digests: Vec<Vec<u64>>,
    locals: Vec<StatsSnapshot>,
    global: StatsSnapshot,
}

/// Executes the workload once under `kind` and collects per-location
/// digests (every observed value, in program order) plus stats.
fn run(kind: TransportKind, aggregation: usize, p: usize, rounds: &[Vec<RawOp>]) -> RunOut {
    let cfg = RtsConfig { transport: kind, aggregation, ..RtsConfig::base() };
    run_with(cfg, p, rounds)
}

/// Same workload under an arbitrary configuration (used by the fault
/// differential test to aim a seeded injector at the wire backend).
fn run_with(cfg: RtsConfig, p: usize, rounds: &[Vec<RawOp>]) -> RunOut {
    let out = execute_collect(cfg, p, |loc| {
        let me = loc.id();
        let n = loc.nlocs();
        let (h, _rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        let mut digest: Vec<u64> = Vec::new();
        for (ri, round) in rounds.iter().enumerate() {
            // Mutation phase: each location issues its own ops.
            for (which, (a, b, c), add, items) in round {
                match which {
                    0 => {
                        let (src, dest, add) = (a % n, b % n, *add);
                        if src == me {
                            loc.async_rmi(dest, h, move |c: &RefCell<u64>, _| {
                                *c.borrow_mut() += add;
                            });
                        }
                    }
                    1 => {
                        let (src, dest) = (a % n, b % n);
                        if src == me {
                            let items = items.clone();
                            if dest != me {
                                // Mirror the containers' bulk path: tag the
                                // request immediately before issuing it.
                                loc.note_bulk_request(items.len() as u64);
                            }
                            loc.async_rmi(dest, h, move |c: &RefCell<u64>, _| {
                                *c.borrow_mut() += items.iter().sum::<u64>();
                            });
                        }
                    }
                    _ => {
                        let (src, via, dest) = (a % n, b % n, c % n);
                        if src == me {
                            // Forwarding chain (migration-shaped): origin →
                            // via → dest, who mutates and replies straight
                            // to the origin's reply slot.
                            let (token, fut) = loc.make_reply_slot::<u64>();
                            let k = (via + dest) as u64;
                            loc.send_request(
                                via,
                                Box::new(move |l1: &Location| {
                                    l1.send_request(
                                        dest,
                                        Box::new(move |l2: &Location| {
                                            let c = l2.lookup::<RefCell<u64>>(h);
                                            *c.borrow_mut() += 1;
                                            l2.reply(token, k);
                                        }),
                                    );
                                }),
                            );
                            digest.push(fut.get());
                        }
                    }
                }
            }
            loc.rmi_fence();
            // Read phase over settled state: deterministic values no matter
            // how the mutation-phase messages interleaved.
            for d in 0..n {
                let v = if ri % 2 == 0 {
                    loc.sync_rmi(d, h, |c: &RefCell<u64>, _| *c.borrow())
                } else {
                    loc.split_rmi(d, h, |c: &RefCell<u64>, _| *c.borrow()).get()
                };
                digest.push(v);
            }
            // Keep the next round's mutations from racing this read phase.
            loc.rmi_fence();
        }
        loc.rmi_fence();
        (digest, loc.local_stats(), loc.stats())
    });
    let global = out[0].2;
    RunOut {
        digests: out.iter().map(|(d, _, _)| d.clone()).collect(),
        locals: out.iter().map(|(_, l, _)| *l).collect(),
        global,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn backends_agree_on_results_and_counters(
        p in 1usize..5,
        agg_pick in 0usize..3,
        rounds in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..3, (0usize..8, 0usize..8, 0usize..8), 1u64..100,
                 proptest::collection::vec(1u64..50, 0..5)),
                0..7,
            ),
            1..3,
        ),
    ) {
        let aggregation = [1, 2, 16][agg_pick];
        let closure = run(TransportKind::Closure, aggregation, p, &rounds);
        let wire = run(TransportKind::Serialized, aggregation, p, &rounds);

        // Identical observable results, location by location.
        prop_assert_eq!(&closure.digests, &wire.digests);

        // Identical deterministic counters, per location and globally.
        for (name, get) in DETERMINISTIC {
            prop_assert_eq!(
                get(&closure.global), get(&wire.global),
                "global {} diverged between backends", name
            );
            for id in 0..p {
                prop_assert_eq!(
                    get(&closure.locals[id]), get(&wire.locals[id]),
                    "location {} {} diverged between backends", id, name
                );
            }
            // The per-location twins must sum to the global under BOTH
            // backends (the `local_stats` invariant).
            for r in [&closure, &wire] {
                let sum: u64 = r.locals.iter().map(*get).sum();
                prop_assert_eq!(sum, get(&r.global), "sum of local {} != global", name);
            }
        }

        // Structure of the wire counters: the closure backend never
        // serializes; the wire backend encodes exactly one frame per
        // remote request (responses included) at >= 13 header bytes each
        // (kind + handler + length + CRC32).
        prop_assert_eq!(closure.global.messages_serialized, 0);
        prop_assert_eq!(closure.global.bytes_sent, 0);
        prop_assert_eq!(wire.global.messages_serialized, wire.global.remote_requests);
        prop_assert!(wire.global.bytes_sent >= 13 * wire.global.messages_serialized);
    }

    /// The tentpole's differential guarantee: the serialized backend under
    /// an *adversarial fabric* — frames dropped, duplicated, reordered,
    /// corrupted, delayed by the seeded injector — still produces exactly
    /// the observable results of the clean closure backend, because
    /// checksums reject corruption and the ack/retransmit protocol redrives
    /// lost batches in order. Deterministic counters must agree too: the
    /// reliability layer may only add `frames_dropped`/`retransmits`-class
    /// traffic, never change what the program observed.
    #[test]
    fn faulty_wire_backend_matches_clean_closure_backend(
        p in 1usize..5,
        profile_pick in 0usize..4,
        seed in 1u64..u64::MAX,
        rounds in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..3, (0usize..8, 0usize..8, 0usize..8), 1u64..100,
                 proptest::collection::vec(1u64..50, 0..5)),
                0..7,
            ),
            1..3,
        ),
    ) {
        let profile = [
            "drop:0.05,corrupt:0.02",
            "dup:0.2,reorder:0.3",
            "drop:0.15,dup:0.1,reorder:0.15,corrupt:0.05,delay_us:10",
            "drop:1.0", // every first transmission lost; only retransmits arrive
        ][profile_pick];
        let clean = run(TransportKind::Closure, 2, p, &rounds);

        let sched = stapl_rts::FaultSchedule::parse(profile).unwrap();
        let mut cfg = RtsConfig { transport: TransportKind::Serialized, ..RtsConfig::base() };
        cfg.aggregation = 2;
        cfg.faults = sched;
        cfg.fault_seed = seed;
        cfg.retransmit_rto_us = 300; // keep redrives fast under test
        let faulty = run_with(cfg, p, &rounds);

        prop_assert_eq!(&clean.digests, &faulty.digests,
            "profile {} seed {} diverged", profile, seed);
        for (name, get) in DETERMINISTIC {
            prop_assert_eq!(
                get(&clean.global), get(&faulty.global),
                "global {} diverged under profile {}", name, profile
            );
        }
        // The fence over acked frames completed, so every injected loss
        // was recovered; under a lossy profile the recovery machinery must
        // actually have fired.
        if profile.contains("drop:1.0") {
            prop_assert!(faulty.global.frames_dropped > 0 || faulty.global.remote_requests == 0);
            // `frames_dropped` counts requests, `retransmits` counts batch
            // redrives: any loss must be answered by at least one redrive.
            prop_assert!(faulty.global.frames_dropped == 0 || faulty.global.retransmits > 0);
        }
    }
}
