//! Scenario tests for the reliable-delivery layer and graceful RMI
//! degradation: seeded fault schedules with known outcomes (total drop,
//! total corruption, dup+reorder storms), poisoned responses from
//! panicking handlers, and the configurable RMI wait timeout.

use std::cell::RefCell;

use stapl_rts::{execute_collect, FaultSchedule, RmiError, RtsConfig, TransportKind};

/// A serialized-backend config with the given schedule and a test-friendly
/// retransmission timer.
fn chaos_cfg(sched: FaultSchedule, seed: u64) -> RtsConfig {
    let mut cfg = RtsConfig { transport: TransportKind::Serialized, ..RtsConfig::base() };
    cfg.aggregation = 4;
    cfg.faults = sched;
    cfg.fault_seed = seed;
    cfg.retransmit_rto_us = 300;
    cfg
}

/// Every first transmission is lost — the fence can only complete through
/// retransmission, and it must not declare quiescence while a dropped
/// batch is unacknowledged (`acked == sent` gating).
#[test]
fn fence_terminates_and_delivers_everything_under_total_drop() {
    let sched = FaultSchedule { drop: 1.0, ..FaultSchedule::default() };
    let sums = execute_collect(chaos_cfg(sched, 7), 4, |loc| {
        let (h, rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        for round in 1..=10u64 {
            for dest in 0..loc.nlocs() {
                if dest != loc.id() {
                    loc.async_rmi(dest, h, move |c: &RefCell<u64>, _| *c.borrow_mut() += round);
                }
            }
        }
        loc.rmi_fence();
        let s = loc.stats();
        assert!(s.frames_dropped > 0, "injector never fired");
        assert!(s.retransmits > 0, "recovery never fired");
        assert!(s.acks_sent > 0, "no acknowledgments flowed");
        let v = *rep.borrow();
        v
    });
    // Each location received 1+2+...+10 from each of the 3 peers.
    assert_eq!(sums, vec![3 * 55; 4]);
}

/// Every batch has one bit flipped in flight: every first transmission is
/// rejected by its CRC (never executed, never misdecoded) and redriven.
#[test]
fn corrupt_batches_are_rejected_by_checksum_and_redriven() {
    let sched = FaultSchedule { corrupt: 1.0, ..FaultSchedule::default() };
    let sums = execute_collect(chaos_cfg(sched, 11), 3, |loc| {
        let (h, rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        for dest in 0..loc.nlocs() {
            if dest != loc.id() {
                for k in 1..=5u64 {
                    loc.async_rmi(dest, h, move |c: &RefCell<u64>, _| *c.borrow_mut() += k);
                }
            }
        }
        loc.rmi_fence();
        let s = loc.stats();
        assert!(s.checksum_failures > 0, "no corrupt batch was ever rejected");
        assert!(s.retransmits >= s.checksum_failures, "rejected batches must be redriven");
        let v = *rep.borrow();
        v
    });
    assert_eq!(sums, vec![2 * 15; 3]);
}

/// Duplicated and reordered batches: the dedup window discards replays and
/// the reorder buffer restores per-(src, dest) FIFO, so each destination
/// observes every source's appends exactly once, in invocation order.
#[test]
fn dup_and_reorder_storm_preserves_per_pair_fifo_exactly_once() {
    let sched = FaultSchedule { dup: 0.3, reorder: 0.4, ..FaultSchedule::default() };
    let mut cfg = chaos_cfg(sched, 23);
    cfg.aggregation = 1; // one batch per request: maximal reordering surface
    let logs = execute_collect(cfg, 4, |loc| {
        let (h, rep) = loc.register(RefCell::new(Vec::<(usize, u64)>::new()));
        loc.rmi_fence();
        let me = loc.id();
        for k in 0..20u64 {
            for dest in 0..loc.nlocs() {
                if dest != me {
                    loc.async_rmi(dest, h, move |log: &RefCell<Vec<(usize, u64)>>, _| {
                        log.borrow_mut().push((me, k));
                    });
                }
            }
        }
        loc.rmi_fence();
        let v = rep.borrow().clone();
        v
    });
    for (me, log) in logs.iter().enumerate() {
        for src in 0..4 {
            if src == me {
                continue;
            }
            let from_src: Vec<u64> =
                log.iter().filter(|(s, _)| *s == src).map(|(_, k)| *k).collect();
            let expect: Vec<u64> = (0..20).collect();
            assert_eq!(
                from_src, expect,
                "location {me} saw a duplicated, lost, or reordered stream from {src}"
            );
        }
    }
}

/// A panicking remote handler poisons only the issuing future: `try_get`
/// surfaces the handler name and panic message, and the execution — other
/// RMIs included — carries on.
#[test]
fn handler_panic_poisons_only_the_issuing_future() {
    let cfg = RtsConfig {
        transport: TransportKind::Serialized,
        ..RtsConfig::base()
    };
    let outcomes = execute_collect(cfg, 2, |loc| {
        let (h, rep) = loc.register(RefCell::new(0u64));
        loc.rmi_fence();
        let mut outcome = String::new();
        if loc.id() == 0 {
            let fut = loc.split_rmi(1, h, |_: &RefCell<u64>, _| -> u64 {
                panic!("intentional handler failure");
            });
            match fut.try_get() {
                Err(RmiError::HandlerPanicked { handler, message }) => {
                    assert!(
                        message.contains("intentional handler failure"),
                        "panic message lost: {message}"
                    );
                    outcome = format!("poisoned:{handler}");
                }
                other => panic!("expected HandlerPanicked, got {other:?}"),
            }
            // The runtime survived: a follow-up sync RMI still works.
            let v = loc.sync_rmi(1, h, |c: &RefCell<u64>, _| {
                *c.borrow_mut() += 1;
                *c.borrow()
            });
            assert_eq!(v, 1);
        }
        loc.rmi_fence();
        let s = loc.stats();
        assert_eq!(s.poisoned_responses, 1);
        if loc.id() == 1 {
            assert_eq!(*rep.borrow(), 1);
        }
        outcome
    });
    assert!(outcomes[0].starts_with("poisoned:"), "{:?}", outcomes[0]);
}

/// With `rmi_timeout_us` set, a wait on a reply that never comes fails
/// with a diagnostic instead of spinning forever.
#[test]
fn rmi_wait_timeout_reports_peer_handler_and_elapsed() {
    let mut cfg = RtsConfig { transport: TransportKind::Serialized, ..RtsConfig::base() };
    cfg.rmi_timeout_us = 20_000; // 20ms
    execute_collect(cfg, 2, |loc| {
        if loc.id() == 0 {
            // A reply slot whose token is deliberately never shipped: the
            // reply cannot ever arrive.
            let (_token, fut) = loc.make_reply_slot::<u64>();
            match fut.try_get() {
                Err(RmiError::Timeout { peer, handler, elapsed, .. }) => {
                    assert_eq!(peer, usize::MAX);
                    assert_eq!(handler, "<reply token>");
                    assert!(elapsed.as_micros() >= 20_000);
                }
                other => panic!("expected Timeout, got {other:?}"),
            }
            // The error's rendering names everything a debugger needs.
            let e = RmiError::Timeout {
                peer: 3,
                handler: "my::handler",
                elapsed: std::time::Duration::from_millis(20),
                retransmits: 2,
            };
            let msg = e.to_string();
            assert!(msg.contains("location 3"), "{msg}");
            assert!(msg.contains("my::handler"), "{msg}");
            assert!(msg.contains("2 retransmissions"), "{msg}");
        }
        loc.rmi_fence();
    });
}

/// `STAPL_FAULTS`-style schedules compose with container-free RMI traffic
/// at every P — the satellite's fence-termination property over all the
/// bundled profiles, including total loss of the final data batch (there
/// is no "final control frame" exempt from the injector: every data batch,
/// first or last, is droppable and must be recovered).
#[test]
fn fence_terminates_under_every_bundled_profile() {
    let profiles = [
        "drop:0.3",
        "dup:0.5",
        "reorder:0.5",
        "corrupt:0.3",
        "drop:0.2,dup:0.1,reorder:0.2,corrupt:0.1,delay_us:5",
        "drop:1.0",
    ];
    for (i, profile) in profiles.iter().enumerate() {
        let sched = FaultSchedule::parse(profile).unwrap();
        for p in 1..=4usize {
            let sums = execute_collect(chaos_cfg(sched, 100 + i as u64), p, |loc| {
                let (h, rep) = loc.register(RefCell::new(0u64));
                loc.rmi_fence();
                for dest in 0..loc.nlocs() {
                    if dest != loc.id() {
                        loc.async_rmi(dest, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
                    }
                }
                loc.rmi_fence();
                let v = *rep.borrow();
                v
            });
            assert_eq!(sums, vec![(p - 1) as u64; p], "profile {profile} P={p}");
        }
    }
}
