//! SPMD execution: run the same closure on every location, as STAPL runs
//! `stapl_main` on every location of the machine.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

use crossbeam::channel::unbounded;

use crate::barrier::PollBarrier;
use crate::collective::CollectiveBoard;
use crate::config::RtsConfig;
use crate::location::{Location, Shared};
use crate::transport::Batch;
use crate::stats::Stats;
use crate::trace::RunTrace;

/// Runs `f` on `nlocs` locations (one OS thread each) in SPMD fashion and
/// returns each location's result, indexed by location id.
///
/// An implicit [`Location::rmi_fence`] runs after `f` returns on every
/// location, so all asynchronous RMIs issued by `f` complete before
/// `execute_collect` returns (the paper's program-exit guarantee).
///
/// If any location panics, the panic is propagated and the remaining
/// locations abort their waits instead of hanging.
pub fn execute_collect<R, F>(cfg: RtsConfig, nlocs: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&Location) -> R + Send + Sync,
{
    execute_collect_traced(cfg, nlocs, f).0
}

/// Like [`execute_collect`], but also returns the run's trace when
/// `RtsConfig::trace` is set (`None` otherwise): one
/// [`crate::trace::LocationTrace`] per location, harvested after the final
/// fence — so every event of the execution, including fence traffic, is in
/// the timeline.
pub fn execute_collect_traced<R, F>(cfg: RtsConfig, nlocs: usize, f: F) -> (Vec<R>, Option<RunTrace>)
where
    R: Send,
    F: Fn(&Location) -> R + Send + Sync,
{
    assert!(nlocs >= 1, "need at least one location");
    let mut senders = Vec::with_capacity(nlocs);
    let mut receivers = Vec::with_capacity(nlocs);
    for _ in 0..nlocs {
        let (tx, rx) = unbounded::<Batch>();
        senders.push(tx);
        receivers.push(rx);
    }
    let shared = Arc::new(Shared {
        nlocs,
        cfg,
        senders,
        sent: AtomicU64::new(0),
        handled: AtomicU64::new(0),
        acked: AtomicU64::new(0),
        barrier: PollBarrier::new(nlocs),
        fence_done: AtomicU64::new(0),
        board: CollectiveBoard::new(nlocs),
        stats: Stats::default(),
        epoch: std::time::Instant::now(),
        trace_sink: Mutex::new((0..nlocs).map(|_| None).collect()),
    });
    let f = &f;
    let mut results: Vec<Option<R>> = (0..nlocs).map(|_| None).collect();
    std::thread::scope(|s| {
        let handles: Vec<_> = receivers
            .into_iter()
            .enumerate()
            .map(|(id, rx)| {
                let shared = shared.clone();
                s.spawn(move || {
                    let loc = Location::new(id, shared, rx);
                    let mut guard = PanicGuard { loc: loc.clone(), defused: false };
                    let r = f(&loc);
                    loc.rmi_fence();
                    guard.defused = true;
                    drop(guard);
                    // Post-fence the execution is globally quiescent, so
                    // the buffer already holds every event this location
                    // will ever record.
                    if let Some(t) = loc.take_trace() {
                        loc.shared().trace_sink.lock().expect("trace sink poisoned")[id] = Some(t);
                    }
                    r
                })
            })
            .collect();
        for (id, h) in handles.into_iter().enumerate() {
            match h.join() {
                Ok(r) => results[id] = Some(r),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let trace = if shared.cfg.trace {
        let mut sink = shared.trace_sink.lock().expect("trace sink poisoned");
        let locs = sink.iter_mut().map(|s| s.take().expect("location left no trace")).collect();
        Some(RunTrace { nlocs, locs })
    } else {
        None
    };
    let results =
        results.into_iter().map(|r| r.expect("location produced no result")).collect();
    (results, trace)
}

/// Runs `f` on `nlocs` locations, discarding results. See
/// [`execute_collect`].
pub fn execute<F>(cfg: RtsConfig, nlocs: usize, f: F)
where
    F: Fn(&Location) + Send + Sync,
{
    execute_collect(cfg, nlocs, |loc| f(loc));
}

/// Marks the whole execution as poisoned if the location's closure panics,
/// so peers spinning at barriers or futures abort with a clear message
/// instead of hanging forever.
struct PanicGuard {
    loc: Location,
    defused: bool,
}

impl Drop for PanicGuard {
    fn drop(&mut self) {
        if !self.defused {
            self.loc.mark_panicked();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    #[test]
    fn single_location_runs() {
        let out = execute_collect(RtsConfig::default(), 1, |loc| loc.id() * 10 + loc.nlocs());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn results_indexed_by_location() {
        let out = execute_collect(RtsConfig::default(), 4, |loc| loc.id());
        assert_eq!(out, vec![0, 1, 2, 3]);
    }

    #[test]
    fn async_rmi_visible_after_fence() {
        execute(RtsConfig::default(), 4, |loc| {
            let (h, rep) = loc.register(RefCell::new(Vec::<usize>::new()));
            loc.rmi_fence();
            // Everyone appends its id to location 0's vector.
            let me = loc.id();
            loc.async_rmi(0, h, move |v: &RefCell<Vec<usize>>, _| v.borrow_mut().push(me));
            loc.rmi_fence();
            if loc.id() == 0 {
                let mut got = rep.borrow().clone();
                got.sort_unstable();
                assert_eq!(got, vec![0, 1, 2, 3]);
            }
        });
    }

    #[test]
    fn sync_rmi_round_trip() {
        execute(RtsConfig::default(), 3, |loc| {
            let (h, _rep) = loc.register(RefCell::new(loc.id() as u64 * 100));
            loc.rmi_fence();
            for peer in 0..loc.nlocs() {
                let v = loc.sync_rmi(peer, h, |c: &RefCell<u64>, _| *c.borrow());
                assert_eq!(v, peer as u64 * 100);
            }
        });
    }

    #[test]
    fn split_phase_overlaps_computation() {
        execute(RtsConfig::default(), 2, |loc| {
            let (h, _rep) = loc.register(RefCell::new(7u32));
            loc.rmi_fence();
            let peer = (loc.id() + 1) % loc.nlocs();
            let fut = loc.split_rmi(peer, h, |c: &RefCell<u32>, _| *c.borrow() + 1);
            // Unrelated local work while the request is in flight.
            let local = (0..100u32).sum::<u32>();
            assert_eq!(local, 4950);
            assert_eq!(fut.get(), 8);
        });
    }

    #[test]
    fn mutual_sync_rmi_does_not_deadlock() {
        // Both locations block in sync_rmi simultaneously; polling while
        // waiting must let each serve the other's request.
        execute(RtsConfig::default(), 2, |loc| {
            let (h, _rep) = loc.register(RefCell::new(loc.id() as u64));
            loc.rmi_fence();
            let peer = 1 - loc.id();
            let v = loc.sync_rmi(peer, h, |c: &RefCell<u64>, _| *c.borrow());
            assert_eq!(v, peer as u64);
        });
    }

    #[test]
    fn fence_drains_forwarding_chains() {
        // Location 0 sends to 1, whose handler forwards to 2, whose handler
        // forwards to 3, which records. One fence must drain the chain.
        execute(RtsConfig::default(), 4, |loc| {
            let (h, rep) = loc.register(RefCell::new(0u64));
            loc.rmi_fence();
            if loc.id() == 0 {
                loc.async_rmi(1, h, move |_: &RefCell<u64>, l| {
                    l.async_rmi(2, h, move |_: &RefCell<u64>, l| {
                        l.async_rmi(3, h, move |c: &RefCell<u64>, _| {
                            *c.borrow_mut() += 1;
                        });
                    });
                });
            }
            loc.rmi_fence();
            if loc.id() == 3 {
                assert_eq!(*rep.borrow(), 1);
            }
        });
    }

    #[test]
    fn per_pair_fifo_ordering() {
        // Writes from one source to one destination must apply in order,
        // even with aggregation enabled.
        execute(RtsConfig::with_aggregation(8), 2, |loc| {
            let (h, rep) = loc.register(RefCell::new(Vec::<u32>::new()));
            loc.rmi_fence();
            if loc.id() == 0 {
                for i in 0..100u32 {
                    loc.async_rmi(1, h, move |v: &RefCell<Vec<u32>>, _| v.borrow_mut().push(i));
                }
            }
            loc.rmi_fence();
            if loc.id() == 1 {
                let v = rep.borrow();
                assert_eq!(*v, (0..100).collect::<Vec<u32>>());
            }
        });
    }

    #[test]
    fn collectives_agree() {
        execute(RtsConfig::default(), 4, |loc| {
            let sum = loc.allreduce_sum(loc.id() as u64 + 1);
            assert_eq!(sum, 1 + 2 + 3 + 4);
            let all = loc.allgather(loc.id());
            assert_eq!(all, vec![0, 1, 2, 3]);
            let b = loc.broadcast(2, if loc.id() == 2 { 42u32 } else { 0 });
            assert_eq!(b, 42);
            let (prefix, total) = loc.exclusive_scan(loc.id() as u64 + 1, 0, |a, b| a + b);
            let expect: u64 = (1..=loc.id() as u64).sum();
            assert_eq!(prefix, expect);
            assert_eq!(total, 10);
        });
    }

    #[test]
    fn repeated_collectives_do_not_cross_talk() {
        execute(RtsConfig::default(), 3, |loc| {
            for round in 0..50u64 {
                let s = loc.allreduce_sum(round);
                assert_eq!(s, round * 3);
            }
        });
    }

    #[test]
    fn stats_count_local_vs_remote() {
        let snaps = execute_collect(RtsConfig::unbuffered(), 2, |loc| {
            let (h, _rep) = loc.register(RefCell::new(0u64));
            loc.rmi_fence();
            if loc.id() == 0 {
                loc.async_rmi(0, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
                loc.async_rmi(1, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
            }
            loc.rmi_fence();
            loc.stats()
        });
        assert_eq!(snaps[0].local_invocations, 1);
        assert!(snaps[0].remote_requests >= 1);
    }

    #[test]
    fn aggregation_reduces_batches() {
        let run = |agg: usize| {
            let snaps = execute_collect(RtsConfig::with_aggregation(agg), 2, |loc| {
                let (h, _rep) = loc.register(RefCell::new(0u64));
                loc.rmi_fence();
                if loc.id() == 0 {
                    for _ in 0..256 {
                        loc.async_rmi(1, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
                    }
                }
                loc.rmi_fence();
                loc.stats()
            });
            snaps[0].batches_sent
        };
        let unbuffered = run(1);
        let buffered = run(64);
        assert!(
            buffered < unbuffered,
            "aggregation should cut batch count: {buffered} !< {unbuffered}"
        );
    }

    #[test]
    #[should_panic]
    fn panic_in_one_location_propagates() {
        execute(RtsConfig::default(), 2, |loc| {
            if loc.id() == 1 {
                panic!("boom");
            }
            // Location 0 waits at the final fence; poisoning must wake it.
        });
    }

    #[test]
    fn unregistered_handle_panic_names_the_p_object() {
        execute(RtsConfig::default(), 1, |loc| {
            let (h, _rep) = loc.register(RefCell::new(String::from("payload")));
            loc.unregister(h);
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                loc.lookup::<RefCell<String>>(h);
            }))
            .expect_err("lookup of an unregistered handle must panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("panic payload should be a string");
            // The message must name the dead p_object's type, not just a
            // numeric handle, so the failing container can be identified.
            assert!(msg.contains("RefCell"), "panic must name the type: {msg}");
            assert!(msg.contains("String"), "panic must name the type: {msg}");
            assert!(msg.contains("unregistered"), "panic must say what happened: {msg}");
        });
    }

    #[test]
    fn type_mismatch_panic_names_both_types() {
        execute(RtsConfig::default(), 1, |loc| {
            let (h, _rep) = loc.register(RefCell::new(7u32));
            let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                loc.lookup::<RefCell<i64>>(h);
            }))
            .expect_err("type-mismatched lookup must panic");
            let msg = err
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
                .expect("panic payload should be a string");
            assert!(msg.contains("u32"), "panic must name the registered type: {msg}");
            assert!(msg.contains("i64"), "panic must name the expected type: {msg}");
        });
    }

    #[test]
    fn flush_aged_skips_young_buffers_and_flushes_old_ones() {
        // flush_age_us must be non-zero for buffer ages to be recorded.
        let cfg = RtsConfig { aggregation: 1024, flush_age_us: 60_000_000, ..RtsConfig::base() };
        execute(cfg, 2, |loc| {
            let (h, rep) = loc.register(RefCell::new(0u64));
            loc.rmi_fence();
            if loc.id() == 0 {
                for _ in 0..5 {
                    loc.async_rmi(1, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
                }
                let before = loc.stats().batches_sent;
                // A young buffer must keep aggregating.
                loc.flush_aged(std::time::Duration::from_secs(3600));
                assert_eq!(loc.stats().batches_sent, before, "young buffer must not flush");
                std::thread::sleep(std::time::Duration::from_millis(3));
                loc.flush_aged(std::time::Duration::from_millis(1));
                assert_eq!(loc.stats().batches_sent, before + 1, "aged buffer must flush");
                assert!(loc.stats().aged_flushes >= 1);
            }
            loc.rmi_fence();
            if loc.id() == 1 {
                assert_eq!(*rep.borrow(), 5);
            }
        });
    }

    #[test]
    fn adaptive_flush_delivers_while_blocked() {
        // With a non-zero flush age and huge aggregation, a buffered async
        // only leaves through the adaptive flush in the idle loop; the
        // waiting peer must still observe it (bounded staleness).
        let cfg = RtsConfig { aggregation: 1024, flush_age_us: 500, ..RtsConfig::base() };
        execute(cfg, 2, |loc| {
            let (h, rep) = loc.register(RefCell::new(0u64));
            loc.rmi_fence();
            if loc.id() == 0 {
                loc.async_rmi(1, h, |c: &RefCell<u64>, _| *c.borrow_mut() = 1);
            } else {
                while *rep.borrow() == 0 {
                    loc.poll();
                    std::thread::yield_now();
                }
            }
            // Location 0 idles at this barrier; its buffered request ages
            // out and flushes from the barrier's poll loop, releasing
            // location 1's spin above.
            loc.barrier();
            loc.rmi_fence();
        });
    }

    #[test]
    fn local_stats_sum_to_global() {
        use crate::stats::StatsSnapshot;
        // A mixed workload touching many counters: local + remote asyncs,
        // sync round trips, aggregation batches, fence rounds.
        let per_loc = execute_collect(RtsConfig::with_aggregation(4), 4, |loc| {
            let (h, _rep) = loc.register(RefCell::new(0u64));
            loc.rmi_fence();
            for peer in 0..loc.nlocs() {
                for _ in 0..10 {
                    loc.async_rmi(peer, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
                }
                let _ = loc.sync_rmi(peer, h, |c: &RefCell<u64>, _| *c.borrow());
            }
            loc.rmi_fence();
            // The final (implicit) fence bumps counters after this
            // snapshot, and locations leave the fence above at slightly
            // different times — a fast location could reach the final
            // fence before a slow one snapshots the globals. Bracket the
            // snapshots with barriers (which bump nothing while the
            // system is quiescent) so every local snapshot happens before
            // any location's post-snapshot traffic.
            loc.barrier();
            let snap = (loc.local_stats(), loc.stats());
            loc.barrier();
            snap
        });
        let global = per_loc[0].1;
        let sum = per_loc
            .iter()
            .fold(StatsSnapshot::default(), |acc, (local, _)| acc.add(local));
        for (name, v) in sum.counters() {
            assert_eq!(
                Some(v),
                global.counter(name),
                "per-location {name} must sum to the global counter"
            );
        }
        assert!(sum.remote_requests > 0, "workload must actually communicate");
        assert!(sum.local_invocations > 0);
    }

    #[test]
    fn traced_run_collects_per_location_traces() {
        use crate::trace::TraceEventKind;
        let cfg = RtsConfig { trace: true, ..RtsConfig::unbuffered() };
        let (_results, trace) = execute_collect_traced(cfg, 3, |loc| {
            let (h, _rep) = loc.register(RefCell::new(0u64));
            loc.rmi_fence();
            let peer = (loc.id() + 1) % loc.nlocs();
            let _ = loc.sync_rmi(peer, h, |c: &RefCell<u64>, _| *c.borrow());
            loc.barrier();
        });
        let trace = trace.expect("trace requested");
        assert_eq!(trace.locs.len(), 3);
        for l in &trace.locs {
            assert!(l.count(TraceEventKind::RmiSend) > 0, "loc {} sent nothing", l.loc);
            assert!(l.count(TraceEventKind::BarrierSpan) > 0);
            assert_eq!(
                l.count(TraceEventKind::SyncRmiSpan),
                1,
                "exactly one sync round trip per location"
            );
            assert_eq!(l.histogram("sync_rmi").unwrap().count(), 1);
            assert_eq!(l.stats.remote_requests, l.count(TraceEventKind::RmiSend));
        }
        let s = trace.summary();
        assert_eq!(s.count(TraceEventKind::SyncRmiSpan), 3);
        assert!(s.count(TraceEventKind::FenceSpan) >= 3 * 2, "two explicit+implicit fences each");
    }

    #[test]
    fn untraced_run_returns_no_trace() {
        let (results, trace) = execute_collect_traced(RtsConfig::default(), 2, |loc| loc.id());
        assert_eq!(results, vec![0, 1]);
        assert!(trace.is_none());
    }

    #[test]
    fn many_locations_smoke() {
        execute(RtsConfig::default(), 16, |loc| {
            let (h, rep) = loc.register(RefCell::new(0u64));
            loc.rmi_fence();
            let dest = (loc.id() + 1) % loc.nlocs();
            for _ in 0..100 {
                loc.async_rmi(dest, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
            }
            loc.rmi_fence();
            assert_eq!(*rep.borrow(), 100);
        });
    }
}
