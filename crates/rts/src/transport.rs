//! Pluggable message transport between locations.
//!
//! A [`Transport`] is one location's endpoint of the message fabric: it
//! owns the per-destination staging buffers (the aggregation layer), the
//! channel sends that flush them, and the inbound queue that [`poll`]
//! drains. Everything *around* the transport stays in the `Location`
//! shell — the `sent`/`handled` quiescence counters the fence runs on,
//! the stats/trace instrumentation, and per-(src, dest) FIFO ordering by
//! construction (one staging buffer per destination, one channel per
//! receiver) — so every backend inherits the paper's ordering and
//! completion semantics unchanged.
//!
//! [`poll`]: crate::Location::poll
//!
//! Two backends implement the trait:
//!
//! * [`ClosureTransport`] (the default) stages requests as the boxed
//!   closures higher layers hand in and ships `Vec<Request>` batches —
//!   bit-identical to the pre-trait runtime, with zero marshalling.
//! * [`SerializedTransport`] encodes every request/response into a byte
//!   **wire frame** and ships concatenated frame buffers. Container-level
//!   code never sees the encoding: the `Location` RMI primitives stage a
//!   frame instead of a box, and delivery decodes and invokes through a
//!   handler registry. This backend also implements the **reliable
//!   delivery protocol** below, so it keeps its exactly-once / FIFO
//!   contract even over a lossy fabric (see [`crate::fault`]).
//!
//! ## Wire format (version 2)
//!
//! A frame is `kind:u8 | handler:u32 | len:u32 | crc:u32 | payload[len]`
//! (all little-endian, via the vendored `wirecodec`). `crc` is the
//! CRC-32/IEEE checksum of the rest of the frame (header fields and
//! payload, skipping the checksum field itself); a frame whose checksum
//! does not verify is **rejected before any byte of it is decoded**.
//! `kind` is a [`WireKind`] — async / sync-request / response /
//! bulk-range / segment / control. `handler` indexes a process-wide
//! registry mapping each concrete closure type to a deserialization thunk
//! (`fn(&[u8], &Location)`), the stand-in for the linker-section handler
//! registration a real ARMI performs; ids are assigned on first use and
//! are only meaningful within one process.
//!
//! A flushed batch is one [`WireKind::Control`] frame followed by `nreqs`
//! request/response frames. The control payload is
//! `version:u8 | src:u32 | nreqs:u32 | seq:u64 | ack:u64 | flags:u8`:
//! `seq` is the batch's per-(src, dest) sequence number (data batches
//! count from 1; `seq == 0` marks a standalone pure-ack batch), `ack`
//! piggybacks the highest sequence number the sender has contiguously
//! received *from* the destination, and `flags` marks retransmissions.
//!
//! ## Reliable delivery
//!
//! The serialized backend assumes the fabric may drop, duplicate,
//! reorder, or corrupt batches (the socket backend of ROADMAP item 1
//! will; [`crate::fault::FaultyTransport`] injects exactly those faults
//! deterministically for testing). Recovery is a classic cumulative-ack
//! sliding protocol, per (src, dest) pair:
//!
//! * every flushed data batch is **retained** by the sender until acked;
//!   a retransmit timer ([`crate::RtsConfig::retransmit_rto_us`]) resends
//!   it with exponential backoff and deterministic jitter;
//! * the receiver verifies **every frame checksum before executing
//!   anything**; a corrupt batch is discarded un-acked (the retransmit
//!   recovers it), a duplicate is discarded re-acked, and an early batch
//!   waits in a reorder stash until the sequence gap fills — restoring
//!   the FIFO contract;
//! * acks are cumulative, piggybacked on reverse-direction data batches
//!   and sent standalone on delivery. Acks and retransmissions are never
//!   fault-injected, which keeps recovery live and deterministic.
//!
//! The payload of a request frame is the closure's in-memory
//! representation: encoding **relocates** the value byte-for-byte into the
//! frame (a Rust move is a byte copy; the original is `mem::forget`-ten),
//! and the thunk reconstructs it at the destination. Exactly one
//! execution completes the move; every other byte image of the frame (a
//! retained retransmit copy, a discarded duplicate, an injected-corrupt
//! copy) is dropped as raw bytes and never runs destructors. This is the
//! shared-memory-transport semantics — captured heap payloads (a `Vec`'s
//! buffer, an `Rc`'d slab) travel by pointer, valid across threads of one
//! process because every staged closure is `Send`. A socket backend will
//! additionally need a deep encode of captures and deterministic handler
//! ids; both are deliberately out of scope here (see DESIGN.md
//! "Pluggable transport").
//!
//! ## Accounting contract
//!
//! `bytes_sent` / `messages_serialized` / `serialize_ns` are bumped by the
//! `Location` shell at encode time, so they are attributed per-location
//! like every other counter and stay **deterministic** for a deterministic
//! scenario (control frames, acks, and retransmissions are excluded from
//! `bytes_sent` precisely because flush and retry counts are
//! timing-dependent). The endpoint never touches counters directly: it
//! accumulates reliability events ([`TransportEvents`]) that the shell
//! reaps into stats, traces, and the fence's acked-frame accounting. A
//! staged-but-never-flushed frame is the sole owner of its relocated
//! capture, so [`SerializedTransport`]'s `Drop` reconstructs and drops
//! such frames through the handler registry instead of leaking them when
//! an execution aborts by panic.

use std::any::TypeId;
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::mem::{self, MaybeUninit};
use std::sync::{OnceLock, RwLock};
use std::time::{Duration, Instant};

use crossbeam::channel::{Receiver, Sender};
use wirecodec::{Crc32, Reader, UnexpectedEof, Writer};

use crate::config::RtsConfig;
use crate::fault::{mix64, FaultyTransport};
use crate::location::{LocId, Location, Request};

/// Which transport backend an execution uses ([`crate::RtsConfig::transport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Boxed closures through in-process channels (default; no marshalling).
    Closure,
    /// Byte-encoded wire frames through per-location byte queues.
    Serialized,
}

/// Wire-level classification of a frame, the first byte of its header.
/// Advisory for in-process delivery (every request frame dispatches through
/// its handler id); load-bearing for the future socket backend's dispatch
/// and for per-kind traffic accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum WireKind {
    /// A fire-and-forget `async_rmi` request.
    Async = 0,
    /// A sync / split-phase request that will send a response.
    Sync = 1,
    /// A response completing a reply slot.
    Response = 2,
    /// A bulk-range payload (tagged via `note_bulk_request`).
    Bulk = 3,
    /// A dynamic-container segment payload (tagged via
    /// `note_segment_request`).
    Segment = 4,
    /// A control frame: the batch header carrying source, count, and the
    /// sequence/ack fields of the reliable-delivery protocol. Collective
    /// and fence *signaling* stays on the shared-memory control plane
    /// in-process; this variant carries the wire-level bookkeeping.
    Control = 5,
}

impl WireKind {
    fn from_u8(v: u8) -> Option<WireKind> {
        Some(match v {
            0 => WireKind::Async,
            1 => WireKind::Sync,
            2 => WireKind::Response,
            3 => WireKind::Bulk,
            4 => WireKind::Segment,
            5 => WireKind::Control,
            _ => return None,
        })
    }
}

/// One decoded frame of the serialized wire format. Produced by
/// [`read_frame`] for delivery and by tests inspecting the encoding.
pub(crate) struct WireMessage<'a> {
    pub kind: WireKind,
    pub handler: u32,
    pub payload: &'a [u8],
}

/// Bytes of a frame header: kind (1) + handler id (4) + payload len (4) +
/// CRC-32 checksum (4).
pub(crate) const FRAME_HEADER_BYTES: usize = 13;

/// Offset of the checksum field within a frame header.
const FRAME_CRC_OFFSET: usize = 9;

/// Bytes of a control frame's payload: version (1) + src (4) + nreqs (4)
/// + seq (8) + ack (8) + flags (1).
pub(crate) const CONTROL_PAYLOAD_BYTES: usize = 26;

/// Wire-format version carried in every control frame. Version 2 added
/// the per-frame checksum and the seq/ack reliability fields.
pub(crate) const WIRE_VERSION: u8 = 2;

/// Control-frame flag: this batch is a retransmission of an earlier
/// sequence number (fault injectors pass retransmissions through).
pub(crate) const FLAG_RETRANSMIT: u8 = 1;

/// Why a wire frame or batch was rejected instead of decoded. Every
/// variant feeds the `checksum_failures` recovery path: the batch is
/// discarded un-acked and the sender's retransmit timer re-delivers it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum WireError {
    /// The buffer ended before a header field or payload.
    Truncated(UnexpectedEof),
    /// The kind byte is not a [`WireKind`].
    UnknownKind(u8),
    /// The frame's CRC-32 does not match its contents.
    Checksum { stored: u32, computed: u32 },
    /// The control frame carries an unsupported wire-format version.
    Version(u8),
    /// The batch structure is inconsistent (bad control frame, trailing
    /// bytes, or an envelope/header mismatch).
    Header(&'static str),
}

impl From<UnexpectedEof> for WireError {
    fn from(e: UnexpectedEof) -> Self {
        WireError::Truncated(e)
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated(e) => write!(f, "truncated wire frame: {e}"),
            WireError::UnknownKind(v) => write!(f, "unknown wire kind {v}"),
            WireError::Checksum { stored, computed } => write!(
                f,
                "frame checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            WireError::Version(v) => {
                write!(f, "unsupported wire version {v} (this runtime speaks {WIRE_VERSION})")
            }
            WireError::Header(why) => write!(f, "{why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// The decoded payload of a batch's control frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct BatchControl {
    pub src: usize,
    pub nreqs: usize,
    /// Per-(src, dest) batch sequence number; data batches count from 1,
    /// `0` marks a standalone pure-ack batch.
    pub seq: u64,
    /// Cumulative ack: the highest seq contiguously received from the
    /// destination of this batch.
    pub ack: u64,
    pub flags: u8,
}

// ---------------------------------------------------------------------
// Handler registry: concrete closure type -> deserialization thunk
// ---------------------------------------------------------------------

type Thunk = fn(&[u8], &Location);
type DropThunk = fn(&[u8]);

#[derive(Default)]
struct HandlerTable {
    ids: HashMap<TypeId, u32>,
    thunks: Vec<Thunk>,
    /// Parallel to `thunks`: reconstructs the closure from its relocated
    /// bytes and drops it without invoking, for undelivered-frame cleanup.
    drops: Vec<DropThunk>,
}

fn handlers() -> &'static RwLock<HandlerTable> {
    static TABLE: OnceLock<RwLock<HandlerTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HandlerTable::default()))
}

/// Returns (registering on first use) the handler id of closure type `F`.
fn handler_id_of<F: FnOnce(&Location) + Send + 'static>() -> u32 {
    let key = TypeId::of::<F>();
    if let Some(&id) = handlers().read().expect("handler table poisoned").ids.get(&key) {
        return id;
    }
    let mut table = handlers().write().expect("handler table poisoned");
    if let Some(&id) = table.ids.get(&key) {
        return id; // lost the registration race; another thread won
    }
    let id = u32::try_from(table.thunks.len()).expect("handler table overflow");
    table.thunks.push(invoke_thunk::<F>);
    table.drops.push(drop_thunk::<F>);
    table.ids.insert(key, id);
    id
}

fn thunk_of(id: u32) -> Thunk {
    let table = handlers().read().expect("handler table poisoned");
    table.thunks.get(id as usize).copied().unwrap_or_else(|| {
        panic!(
            "stapl-rts: wire frame references unregistered handler id {id} \
             (only {} handlers registered in this process — frames are not \
             portable across processes)",
            table.thunks.len()
        )
    })
}

fn drop_of(id: u32) -> DropThunk {
    let table = handlers().read().expect("handler table poisoned");
    table.drops.get(id as usize).copied().unwrap_or_else(|| {
        panic!(
            "stapl-rts: undelivered wire frame references unregistered handler id {id} \
             (only {} handlers registered in this process)",
            table.drops.len()
        )
    })
}

/// Reconstructs an `F` from its relocated bytes and invokes it.
fn invoke_thunk<F: FnOnce(&Location) + Send + 'static>(payload: &[u8], loc: &Location) {
    assert_eq!(
        payload.len(),
        mem::size_of::<F>(),
        "stapl-rts: wire payload size does not match handler `{}`",
        std::any::type_name::<F>()
    );
    // SAFETY: the payload is the byte image of an `F` that was moved into
    // a frame by `encode_frame` (which forgot the original), in this same
    // address space; copying it into an aligned slot and assuming init is
    // the completion of that move. `F: Send` licenses the thread crossing.
    let f = unsafe {
        let mut slot = MaybeUninit::<F>::uninit();
        std::ptr::copy_nonoverlapping(
            payload.as_ptr(),
            slot.as_mut_ptr() as *mut u8,
            payload.len(),
        );
        slot.assume_init()
    };
    f(loc);
}

/// Reconstructs an `F` from its relocated bytes and drops it unexecuted.
fn drop_thunk<F: FnOnce(&Location) + Send + 'static>(payload: &[u8]) {
    debug_assert_eq!(payload.len(), mem::size_of::<F>());
    // SAFETY: same relocation-completion argument as `invoke_thunk`; the
    // reconstructed value is dropped instead of called, running the
    // capture's destructors exactly once.
    unsafe {
        let mut slot = MaybeUninit::<F>::uninit();
        std::ptr::copy_nonoverlapping(
            payload.as_ptr(),
            slot.as_mut_ptr() as *mut u8,
            payload.len(),
        );
        drop(slot.assume_init());
    }
}

/// Encodes `f` as one wire frame appended to `buf`; returns the frame's
/// size in bytes (header included). Ownership of `f` moves into the frame.
pub(crate) fn encode_frame<F: FnOnce(&Location) + Send + 'static>(
    buf: &mut Vec<u8>,
    kind: WireKind,
    f: F,
) -> usize {
    let start = buf.len();
    let size = mem::size_of::<F>();
    let mut w = Writer::new(buf);
    w.u8(kind as u8);
    w.u32(handler_id_of::<F>());
    w.u32(u32::try_from(size).expect("closure capture exceeds u32 frame length"));
    w.u32(0); // checksum, patched once the payload is in place
    // SAFETY: reading `size_of::<F>()` bytes from a live `F` is reading its
    // object representation; the subsequent `forget` makes this the move.
    unsafe {
        w.raw(std::slice::from_raw_parts(&f as *const F as *const u8, size));
    }
    mem::forget(f);
    let end = buf.len();
    patch_frame_crc(buf, start, end);
    end - start
}

/// Appends a control frame carrying the batch header and reliability
/// fields to `buf`.
pub(crate) fn encode_control(
    buf: &mut Vec<u8>,
    src: LocId,
    nreqs: usize,
    seq: u64,
    ack: u64,
    flags: u8,
) {
    let start = buf.len();
    let mut w = Writer::new(buf);
    w.u8(WireKind::Control as u8);
    w.u32(0); // control frames carry no handler
    w.u32(CONTROL_PAYLOAD_BYTES as u32);
    w.u32(0); // checksum, patched below
    w.u8(WIRE_VERSION);
    w.u32(u32::try_from(src).expect("location id fits u32"));
    w.u32(u32::try_from(nreqs).expect("batch request count fits u32"));
    w.u64(seq);
    w.u64(ack);
    w.u8(flags);
    let end = buf.len();
    patch_frame_crc(buf, start, end);
}

/// Computes and stores the checksum of the frame at `buf[start..end]`:
/// CRC-32 over the header-before-crc and the payload.
fn patch_frame_crc(buf: &mut [u8], start: usize, end: usize) {
    let crc = Crc32::new()
        .update(&buf[start..start + FRAME_CRC_OFFSET])
        .update(&buf[start + FRAME_HEADER_BYTES..end])
        .finish();
    buf[start + FRAME_CRC_OFFSET..start + FRAME_HEADER_BYTES]
        .copy_from_slice(&crc.to_le_bytes());
}

/// Sets the retransmit flag on a fully-encoded batch (whose first frame
/// is its control frame) and re-seals the control frame's checksum.
pub(crate) fn mark_retransmit(bytes: &mut [u8]) {
    let control_end = FRAME_HEADER_BYTES + CONTROL_PAYLOAD_BYTES;
    bytes[control_end - 1] |= FLAG_RETRANSMIT;
    patch_frame_crc(bytes, 0, control_end);
}

/// Reads and checksum-verifies one frame at the reader's position. The
/// frame's bytes are untouched on error (beyond the reader's position).
pub(crate) fn read_frame<'a>(r: &mut Reader<'a>) -> Result<WireMessage<'a>, WireError> {
    let kind_byte = r.u8()?;
    let kind = WireKind::from_u8(kind_byte).ok_or(WireError::UnknownKind(kind_byte))?;
    let handler = r.u32()?;
    let len = r.u32()?;
    let stored = r.u32()?;
    let payload = r.raw(len as usize)?;
    let computed = Crc32::new()
        .update(&[kind_byte])
        .update(&handler.to_le_bytes())
        .update(&len.to_le_bytes())
        .update(payload)
        .finish();
    if computed != stored {
        return Err(WireError::Checksum { stored, computed });
    }
    Ok(WireMessage { kind, handler, payload })
}

/// Decodes a control frame's payload.
pub(crate) fn read_control(msg: &WireMessage<'_>) -> Result<BatchControl, WireError> {
    if msg.kind != WireKind::Control {
        return Err(WireError::Header("batch must start with a control frame"));
    }
    let mut r = Reader::new(msg.payload);
    let version = r.u8()?;
    if version != WIRE_VERSION {
        return Err(WireError::Version(version));
    }
    let src = r.u32()? as usize;
    let nreqs = r.u32()? as usize;
    let seq = r.u64()?;
    let ack = r.u64()?;
    let flags = r.u8()?;
    if !r.is_empty() {
        return Err(WireError::Header("control frame payload has trailing bytes"));
    }
    Ok(BatchControl { src, nreqs, seq, ack, flags })
}

/// Verifies a whole byte batch — control frame plus every request frame's
/// checksum and framing — **without decoding or executing anything**.
/// Delivery runs this before the first thunk so a corrupt batch is
/// rejected atomically (no partial execution).
pub(crate) fn verify_batch(bytes: &[u8]) -> Result<BatchControl, WireError> {
    let mut r = Reader::new(bytes);
    let ctrl = read_control(&read_frame(&mut r)?)?;
    for _ in 0..ctrl.nreqs {
        read_frame(&mut r)?;
    }
    if !r.is_empty() {
        return Err(WireError::Header("trailing bytes after the last frame of a batch"));
    }
    Ok(ctrl)
}

/// Walks a byte batch's frames and invokes `each` for every
/// request/response frame, in order. `expect_src`/`expect_n` come from the
/// channel-level [`Batch`] envelope and must agree with the wire header.
pub(crate) fn decode_batch(
    bytes: &[u8],
    expect_src: LocId,
    expect_n: usize,
    mut each: impl FnMut(WireMessage<'_>, Thunk),
) -> Result<(), WireError> {
    let mut r = Reader::new(bytes);
    let ctrl = read_control(&read_frame(&mut r)?)?;
    if ctrl.src != expect_src {
        return Err(WireError::Header("control frame source mismatch"));
    }
    if ctrl.nreqs != expect_n {
        return Err(WireError::Header("control frame request-count mismatch"));
    }
    for _ in 0..ctrl.nreqs {
        let msg = read_frame(&mut r)?;
        let thunk = thunk_of(msg.handler);
        each(msg, thunk);
    }
    if !r.is_empty() {
        return Err(WireError::Header("trailing bytes after the last frame of a batch"));
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Channel payloads
// ---------------------------------------------------------------------

/// What one flush ships through a channel.
pub(crate) enum Payload {
    /// Boxed closures, executed directly at the destination.
    Closures(Vec<Request>),
    /// A control frame followed by concatenated wire frames.
    Frames { bytes: Vec<u8>, nreqs: usize },
}

/// One message batch between a (source, destination) pair.
pub(crate) struct Batch {
    pub src: LocId,
    pub dest: LocId,
    pub payload: Payload,
}

impl Batch {
    /// Number of requests carried (the unit of the node model's per-message
    /// delay and of the `handled` counter).
    pub(crate) fn len(&self) -> usize {
        match &self.payload {
            Payload::Closures(reqs) => reqs.len(),
            Payload::Frames { nreqs, .. } => *nreqs,
        }
    }
}

/// A request staged toward a destination: the backend-specific
/// representation chosen by the `Location` shell after consulting
/// [`Transport::serializes`].
pub(crate) enum Staged<'a> {
    Closure(Request),
    /// One already-encoded wire frame (scratch-buffer bytes; the endpoint
    /// copies them into its per-destination buffer).
    Frame(&'a [u8]),
}

/// What [`Transport::stage`] tells the shell about the staging buffer.
pub(crate) struct StageOutcome {
    /// The staged request is the first in its destination's buffer (drives
    /// the adaptive-flush age bookkeeping).
    pub first_in_buffer: bool,
    /// The buffer reached the aggregation threshold; the caller flushes.
    pub flush_now: bool,
}

/// What one flush shipped; `None` when the buffer was empty.
pub(crate) struct FlushInfo {
    pub nreqs: usize,
    /// Bytes pushed into the channel (0 on the closure backend).
    pub bytes: usize,
}

/// Reliability events accumulated inside an endpoint since the last reap.
/// The `Location` shell drains these (see `reap_transport_events`) into
/// stats counters, trace events, and the fence's acked-frame accounting,
/// preserving the rule that the endpoint itself never touches counters.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct TransportEvents {
    /// Frames discarded: fault-injected drops, corrupt-batch rejections,
    /// and duplicate-batch discards (counted in frames, not batches).
    pub frames_dropped: u64,
    /// Batches re-sent by the retransmit timer.
    pub retransmits: u64,
    /// Batches rejected by wire validation (checksum/framing) before any
    /// frame was decoded.
    pub checksum_failures: u64,
    /// Standalone pure-ack batches sent.
    pub acks_sent: u64,
    /// Frames newly covered by a cumulative ack (the fence's quiescence
    /// check requires `acked == sent` on acked-tracking backends).
    pub frames_acked: u64,
}

#[derive(Default)]
struct EventCells {
    frames_dropped: Cell<u64>,
    retransmits: Cell<u64>,
    checksum_failures: Cell<u64>,
    acks_sent: Cell<u64>,
    frames_acked: Cell<u64>,
}

impl EventCells {
    fn take(&self) -> TransportEvents {
        TransportEvents {
            frames_dropped: self.frames_dropped.take(),
            retransmits: self.retransmits.take(),
            checksum_failures: self.checksum_failures.take(),
            acks_sent: self.acks_sent.take(),
            frames_acked: self.frames_acked.take(),
        }
    }
}

fn cell_add(cell: &Cell<u64>, n: u64) {
    cell.set(cell.get() + n);
}

/// One location's endpoint of the message fabric: owns staging buffers,
/// flush, and the inbound queue.
///
/// Contract (what `Location` relies on, and what a future backend must
/// keep): `stage` buffers without reordering; `flush` pushes the whole
/// buffer for one destination as one [`Batch`] into a FIFO channel;
/// `try_recv` yields inbound batches in (recovered) FIFO order, each
/// deliverable exactly once. The endpoint never touches counters or the
/// `sent`/`handled` fence accounting — the shell bumps `sent` at stage
/// time and `handled` at delivery, and reaps [`TransportEvents`] for the
/// reliability counters — so quiescence detection is
/// transport-independent (a batch buffered or retained inside the
/// endpoint is already counted as sent and not yet as handled/acked).
pub(crate) trait Transport {
    /// True when the shell must stage [`Staged::Frame`]s (encoding each
    /// request) rather than [`Staged::Closure`]s.
    fn serializes(&self) -> bool;

    /// Buffers one staged request toward `dest`.
    fn stage(&self, dest: LocId, msg: Staged<'_>) -> StageOutcome;

    /// Ships `dest`'s buffer into the fabric as one batch from `src`.
    fn flush(&self, src: LocId, dest: LocId) -> Option<FlushInfo>;

    /// Pulls the next queued inbound batch, if any.
    fn try_recv(&self) -> Option<Batch>;

    /// Drives time-based protocol work (retransmit timers). Called from
    /// the shell's poll loop; a no-op for fabrics that cannot lose data.
    fn tick(&self) {}

    /// True when this backend runs the ack protocol, i.e. the fence must
    /// additionally wait for `acked == sent`.
    fn tracks_acks(&self) -> bool {
        false
    }

    /// Drains reliability events accumulated since the last call.
    fn take_events(&self) -> TransportEvents {
        TransportEvents::default()
    }
}

/// Builds the endpoint for `cfg.transport` over the execution's shared
/// channel set. When a fault schedule is active, the serialized endpoint
/// is wrapped in a [`FaultyTransport`] that taps its outbound sends; the
/// closure backend deliberately skips fault injection (it models the
/// in-process fabric, which cannot lose data — see DESIGN.md).
pub(crate) fn make_endpoint(
    cfg: &RtsConfig,
    me: LocId,
    senders: Vec<Sender<Batch>>,
    rx: Receiver<Batch>,
    nlocs: usize,
) -> Box<dyn Transport> {
    match cfg.transport {
        TransportKind::Closure => {
            Box::new(ClosureTransport::new(senders, rx, nlocs, cfg.aggregation))
        }
        TransportKind::Serialized => {
            let rto = Duration::from_micros(cfg.retransmit_rto_us.max(1));
            if cfg.faults.active() {
                // Interpose the injector between the reliable endpoint and
                // the real channels: the endpoint sends into a tap the
                // injector drains, faults, and forwards.
                let (tap_tx, tap_rx) = crossbeam::channel::unbounded();
                let inner = SerializedTransport::new(
                    vec![tap_tx; nlocs],
                    rx,
                    nlocs,
                    cfg.aggregation,
                    me,
                    rto,
                );
                Box::new(FaultyTransport::new(
                    Box::new(inner),
                    senders,
                    tap_rx,
                    cfg.faults,
                    cfg.fault_seed,
                    me,
                ))
            } else {
                Box::new(SerializedTransport::new(senders, rx, nlocs, cfg.aggregation, me, rto))
            }
        }
    }
}

// ---------------------------------------------------------------------
// Closure backend
// ---------------------------------------------------------------------

/// The in-process closure backend: stages `Box<dyn FnOnce>` requests and
/// ships them untouched — the pre-trait runtime, extracted verbatim.
pub(crate) struct ClosureTransport {
    senders: Vec<Sender<Batch>>,
    rx: Receiver<Batch>,
    aggregation: usize,
    outbuf: RefCell<Vec<Vec<Request>>>,
}

impl ClosureTransport {
    fn new(
        senders: Vec<Sender<Batch>>,
        rx: Receiver<Batch>,
        nlocs: usize,
        aggregation: usize,
    ) -> Self {
        ClosureTransport {
            senders,
            rx,
            aggregation,
            outbuf: RefCell::new((0..nlocs).map(|_| Vec::new()).collect()),
        }
    }
}

impl Transport for ClosureTransport {
    fn serializes(&self) -> bool {
        false
    }

    fn stage(&self, dest: LocId, msg: Staged<'_>) -> StageOutcome {
        let Staged::Closure(req) = msg else {
            unreachable!("closure transport staged a wire frame")
        };
        let mut buf = self.outbuf.borrow_mut();
        buf[dest].push(req);
        StageOutcome {
            first_in_buffer: buf[dest].len() == 1,
            flush_now: buf[dest].len() >= self.aggregation,
        }
    }

    fn flush(&self, src: LocId, dest: LocId) -> Option<FlushInfo> {
        let reqs = {
            let mut buf = self.outbuf.borrow_mut();
            if buf[dest].is_empty() {
                return None;
            }
            std::mem::take(&mut buf[dest])
        };
        let nreqs = reqs.len();
        self.senders[dest]
            .send(Batch { src, dest, payload: Payload::Closures(reqs) })
            .unwrap_or_else(|_| {
                panic!(
                    "stapl-rts: location {src}: flush to location {dest} failed — \
                     the destination's receive channel hung up (its thread exited; \
                     did a peer location panic?)"
                )
            });
        Some(FlushInfo { nreqs, bytes: 0 })
    }

    fn try_recv(&self) -> Option<Batch> {
        self.rx.try_recv().ok()
    }
}

// ---------------------------------------------------------------------
// Serialized backend (with reliable delivery)
// ---------------------------------------------------------------------

#[derive(Default)]
struct WireBuf {
    bytes: Vec<u8>,
    nreqs: usize,
}

/// A flushed-but-unacked batch retained for retransmission.
struct Retained {
    bytes: Vec<u8>,
    nreqs: usize,
    deadline: Instant,
    attempt: u32,
}

/// Sender-side reliability state toward one destination.
struct PairTx {
    /// Sequence number the next flushed data batch will carry.
    next_seq: u64,
    /// Sent-but-unacked batches, by sequence number.
    unacked: BTreeMap<u64, Retained>,
}

/// Receiver-side reliability state for one source.
struct PairRx {
    /// The next in-order sequence number; everything below is delivered.
    expect: u64,
    /// Early (out-of-order) batches waiting for the gap to fill.
    stash: BTreeMap<u64, (Vec<u8>, usize)>,
}

/// What `admit` decided about one inbound batch, computed under the
/// receiver-state borrow and acted on after it is released.
enum Admit {
    /// In-order data batch: ack it and hand it to delivery.
    Deliver,
    /// Duplicate data batch: discard but re-ack (the original ack may
    /// have been lost).
    ReAck,
}

/// The serialized-message backend: per-destination byte buffers of wire
/// frames, flushed as control-framed byte batches and delivered through
/// the reliable ack/retransmit protocol (see the module docs).
pub(crate) struct SerializedTransport {
    me: LocId,
    senders: Vec<Sender<Batch>>,
    rx: Receiver<Batch>,
    aggregation: usize,
    rto: Duration,
    jitter_seed: u64,
    outbuf: RefCell<Vec<WireBuf>>,
    tx_state: RefCell<Vec<PairTx>>,
    rx_state: RefCell<Vec<PairRx>>,
    /// Total retained batches across all destinations; lets the hot
    /// `tick` path early-out without scanning.
    unacked_total: Cell<usize>,
    /// Total stashed out-of-order batches across all sources.
    stash_total: Cell<usize>,
    events: EventCells,
}

impl SerializedTransport {
    fn new(
        senders: Vec<Sender<Batch>>,
        rx: Receiver<Batch>,
        nlocs: usize,
        aggregation: usize,
        me: LocId,
        rto: Duration,
    ) -> Self {
        SerializedTransport {
            me,
            senders,
            rx,
            aggregation,
            rto,
            jitter_seed: mix64(0x5EED_AC4D ^ me as u64),
            outbuf: RefCell::new((0..nlocs).map(|_| WireBuf::default()).collect()),
            tx_state: RefCell::new(
                (0..nlocs).map(|_| PairTx { next_seq: 1, unacked: BTreeMap::new() }).collect(),
            ),
            rx_state: RefCell::new(
                (0..nlocs).map(|_| PairRx { expect: 1, stash: BTreeMap::new() }).collect(),
            ),
            unacked_total: Cell::new(0),
            stash_total: Cell::new(0),
            events: EventCells::default(),
        }
    }

    /// Clears retained batches covered by a cumulative ack from `peer`.
    fn process_ack(&self, peer: LocId, ack: u64) {
        let mut tx = self.tx_state.borrow_mut();
        let pair = &mut tx[peer];
        while let Some(entry) = pair.unacked.first_entry() {
            if *entry.key() > ack {
                break;
            }
            let retained = entry.remove();
            cell_add(&self.events.frames_acked, retained.nreqs as u64);
            self.unacked_total.set(self.unacked_total.get() - 1);
        }
    }

    /// Sends a standalone pure-ack batch (seq 0) to `peer`, acknowledging
    /// everything contiguously received from it. Ack loss is tolerated —
    /// the peer's retransmit timer recovers — so send errors during a
    /// peer's teardown are ignored.
    fn send_ack(&self, peer: LocId) {
        let ack = self.rx_state.borrow()[peer].expect - 1;
        let mut bytes = Vec::with_capacity(FRAME_HEADER_BYTES + CONTROL_PAYLOAD_BYTES);
        encode_control(&mut bytes, self.me, 0, 0, ack, 0);
        let _ = self.senders[peer].send(Batch {
            src: self.me,
            dest: peer,
            payload: Payload::Frames { bytes, nreqs: 0 },
        });
        cell_add(&self.events.acks_sent, 1);
    }

    /// Runs one inbound batch through verification, ack processing, and
    /// sequencing. Returns the batch only when it is the next in-order
    /// delivery for its source.
    fn admit(&self, batch: Batch) -> Option<Batch> {
        let Payload::Frames { bytes, nreqs } = &batch.payload else {
            // Closure batches never reach this backend; be tolerant and
            // deliver rather than silently dropping work.
            return Some(batch);
        };
        let nreqs = *nreqs;
        let src = batch.src;
        let ctrl = match verify_batch(bytes) {
            Ok(c) => c,
            Err(_) => {
                // Corrupt on the wire: reject before decoding anything and
                // do NOT ack; the sender's retransmit recovers the batch.
                cell_add(&self.events.checksum_failures, 1);
                cell_add(&self.events.frames_dropped, nreqs as u64);
                return None;
            }
        };
        // Piggybacked cumulative ack for the reverse direction.
        self.process_ack(src, ctrl.ack);
        if ctrl.seq == 0 {
            return None; // standalone pure-ack batch
        }
        let decision = {
            let mut rx = self.rx_state.borrow_mut();
            let pair = &mut rx[src];
            if ctrl.seq < pair.expect || pair.stash.contains_key(&ctrl.seq) {
                Admit::ReAck
            } else if ctrl.seq > pair.expect {
                // Early: stash until the sequence gap fills.
                let Payload::Frames { bytes, nreqs } = batch.payload else { unreachable!() };
                pair.stash.insert(ctrl.seq, (bytes, nreqs));
                self.stash_total.set(self.stash_total.get() + 1);
                return None;
            } else {
                pair.expect += 1;
                Admit::Deliver
            }
        };
        match decision {
            Admit::Deliver => {
                self.send_ack(src);
                Some(batch)
            }
            Admit::ReAck => {
                // Duplicate (a retransmit raced the ack, or an injected
                // dup): discard, but re-ack in case the first ack was lost.
                cell_add(&self.events.frames_dropped, nreqs as u64);
                self.send_ack(src);
                None
            }
        }
    }

    /// Pops the next in-order batch out of the reorder stash, if any
    /// source's gap has filled.
    fn pop_stashed(&self) -> Option<Batch> {
        let (src, bytes, nreqs) = {
            let mut rx = self.rx_state.borrow_mut();
            let mut found = None;
            for (src, pair) in rx.iter_mut().enumerate() {
                let Some((&seq, _)) = pair.stash.first_key_value() else { continue };
                if seq != pair.expect {
                    continue;
                }
                let (bytes, nreqs) = pair.stash.remove(&seq).expect("stash entry just seen");
                pair.expect += 1;
                self.stash_total.set(self.stash_total.get() - 1);
                found = Some((src, bytes, nreqs));
                break;
            }
            found?
        };
        self.send_ack(src);
        Some(Batch { src, dest: self.me, payload: Payload::Frames { bytes, nreqs } })
    }
}

impl Transport for SerializedTransport {
    fn serializes(&self) -> bool {
        true
    }

    fn stage(&self, dest: LocId, msg: Staged<'_>) -> StageOutcome {
        let Staged::Frame(frame) = msg else {
            unreachable!("serialized transport staged a boxed closure")
        };
        let mut buf = self.outbuf.borrow_mut();
        let b = &mut buf[dest];
        b.bytes.extend_from_slice(frame);
        b.nreqs += 1;
        StageOutcome { first_in_buffer: b.nreqs == 1, flush_now: b.nreqs >= self.aggregation }
    }

    fn flush(&self, src: LocId, dest: LocId) -> Option<FlushInfo> {
        let (frames, nreqs) = {
            let mut buf = self.outbuf.borrow_mut();
            let b = &mut buf[dest];
            if b.nreqs == 0 {
                return None;
            }
            (std::mem::take(&mut b.bytes), std::mem::replace(&mut b.nreqs, 0))
        };
        // Prefix the control frame: source and count for quiescence
        // accounting, sequence number for reliable delivery, piggybacked
        // cumulative ack for the reverse direction.
        let (seq, ack) = {
            let mut tx = self.tx_state.borrow_mut();
            let pair = &mut tx[dest];
            let seq = pair.next_seq;
            pair.next_seq += 1;
            (seq, self.rx_state.borrow()[dest].expect - 1)
        };
        let mut bytes =
            Vec::with_capacity(FRAME_HEADER_BYTES + CONTROL_PAYLOAD_BYTES + frames.len());
        encode_control(&mut bytes, src, nreqs, seq, ack, 0);
        bytes.extend_from_slice(&frames);
        let total = bytes.len();
        // Retain a byte image until the destination acks this sequence
        // number; the retained copy never runs capture destructors (the
        // delivered execution owns them).
        self.tx_state.borrow_mut()[dest].unacked.insert(
            seq,
            Retained { bytes: bytes.clone(), nreqs, deadline: Instant::now() + self.rto, attempt: 0 },
        );
        self.unacked_total.set(self.unacked_total.get() + 1);
        self.senders[dest]
            .send(Batch { src, dest, payload: Payload::Frames { bytes, nreqs } })
            .unwrap_or_else(|_| {
                panic!(
                    "stapl-rts: location {src}: flush of batch seq {seq} ({nreqs} frames) to \
                     location {dest} failed — the destination's receive channel hung up (its \
                     thread exited; did a peer location panic?)"
                )
            });
        Some(FlushInfo { nreqs, bytes: total })
    }

    fn try_recv(&self) -> Option<Batch> {
        loop {
            if self.stash_total.get() > 0 {
                if let Some(b) = self.pop_stashed() {
                    return Some(b);
                }
            }
            let batch = self.rx.try_recv().ok()?;
            if let Some(b) = self.admit(batch) {
                return Some(b);
            }
        }
    }

    fn tick(&self) {
        if self.unacked_total.get() == 0 {
            return;
        }
        let now = Instant::now();
        let mut resend: Vec<(LocId, Vec<u8>, usize)> = Vec::new();
        {
            let mut tx = self.tx_state.borrow_mut();
            for (dest, pair) in tx.iter_mut().enumerate() {
                for (&seq, r) in pair.unacked.iter_mut() {
                    if now < r.deadline {
                        continue;
                    }
                    let mut copy = r.bytes.clone();
                    mark_retransmit(&mut copy);
                    r.attempt += 1;
                    // Exponential backoff with deterministic jitter keeps
                    // a lossy fabric from synchronizing its retry storms.
                    let backoff = self.rto * (1 << r.attempt.min(5));
                    let jitter_us = mix64(
                        self.jitter_seed
                            ^ seq
                            ^ ((r.attempt as u64) << 32)
                            ^ ((dest as u64) << 48),
                    ) % (self.rto.as_micros() as u64 / 2 + 1);
                    r.deadline = now + backoff + Duration::from_micros(jitter_us);
                    resend.push((dest, copy, r.nreqs));
                }
            }
        }
        for (dest, bytes, nreqs) in resend {
            cell_add(&self.events.retransmits, 1);
            // A hung-up peer here means the execution is already aborting;
            // the poisoned-barrier path reports it.
            let _ = self.senders[dest].send(Batch {
                src: self.me,
                dest,
                payload: Payload::Frames { bytes, nreqs },
            });
        }
    }

    fn tracks_acks(&self) -> bool {
        true
    }

    fn take_events(&self) -> TransportEvents {
        self.events.take()
    }
}

impl Drop for SerializedTransport {
    fn drop(&mut self) {
        // Staged-but-never-flushed frames are the sole owners of their
        // relocated captures (a flushed batch is delivered and executed
        // exactly once, and retained/stashed copies are secondary byte
        // images that must not run destructors). Reconstruct and drop each
        // staged frame so an execution that aborts by panic does not leak
        // captured environments.
        for buf in self.outbuf.get_mut() {
            let mut r = Reader::new(&buf.bytes);
            while !r.is_empty() {
                // Frames we encoded ourselves re-read cleanly; if one does
                // not, leak the tail rather than panic inside a Drop.
                let Ok(msg) = read_frame(&mut r) else { break };
                drop_of(msg.handler)(msg.payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use super::*;

    #[test]
    fn wire_kind_round_trips() {
        for k in [
            WireKind::Async,
            WireKind::Sync,
            WireKind::Response,
            WireKind::Bulk,
            WireKind::Segment,
            WireKind::Control,
        ] {
            assert_eq!(WireKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(WireKind::from_u8(200), None);
    }

    #[test]
    fn handler_ids_are_stable_per_type() {
        let a = handler_id_of::<fn(&Location)>();
        let b = handler_id_of::<fn(&Location)>();
        assert_eq!(a, b, "same type must keep its id");
        // A distinct closure type gets a distinct id.
        let payload = 7u64;
        let f = move |_: &Location| {
            let _x = payload;
        };
        fn id_of<F: FnOnce(&Location) + Send + 'static>(_: &F) -> u32 {
            handler_id_of::<F>()
        }
        assert_ne!(id_of(&f), a);
    }

    #[test]
    fn frame_header_matches_constant() {
        let mut buf = Vec::new();
        let n = encode_frame(&mut buf, WireKind::Async, |_: &Location| {});
        // A capture-less closure is zero-sized: frame = header only.
        assert_eq!(n, FRAME_HEADER_BYTES);
        assert_eq!(buf.len(), n);
        let mut r = Reader::new(&buf);
        let msg = read_frame(&mut r).expect("self-encoded frame verifies");
        assert_eq!(msg.kind, WireKind::Async);
        assert!(msg.payload.is_empty());
    }

    #[test]
    fn frame_payload_is_the_capture_image() {
        let mut buf = Vec::new();
        let v: u64 = 0x0102_0304_0506_0708;
        // `let _x = v` (a binding, not the `_` wildcard) forces the capture.
        let n = encode_frame(&mut buf, WireKind::Bulk, move |_: &Location| {
            let _x = v;
        });
        assert_eq!(n, FRAME_HEADER_BYTES + std::mem::size_of::<u64>());
        let msg = read_frame(&mut Reader::new(&buf)).expect("self-encoded frame verifies");
        assert_eq!(msg.kind, WireKind::Bulk);
        assert_eq!(msg.payload, v.to_ne_bytes());
    }

    #[test]
    fn any_bit_flip_is_rejected_by_the_checksum() {
        let mut clean = Vec::new();
        let v: u64 = 0xDEAD_BEEF_CAFE_F00D;
        encode_frame(&mut clean, WireKind::Async, move |_: &Location| {
            let _x = v;
        });
        // Flip one bit at a spread of positions covering every header
        // field and the payload; each must fail verification.
        for pos in [0usize, 2, 5, 10, 14, clean.len() - 1] {
            let mut corrupt = clean.clone();
            corrupt[pos] ^= 0x40;
            let err = read_frame(&mut Reader::new(&corrupt))
                .err()
                .unwrap_or_else(|| panic!("bit flip at byte {pos} must be rejected"));
            // A flip can also masquerade as truncation (len field) or an
            // unknown kind; all reject before decoding.
            let _ = err.to_string();
        }
        assert!(read_frame(&mut Reader::new(&clean)).is_ok());
    }

    #[test]
    fn control_frame_round_trips_and_marks_retransmit() {
        let mut bytes = Vec::new();
        encode_control(&mut bytes, 3, 17, 42, 40, 0);
        assert_eq!(bytes.len(), FRAME_HEADER_BYTES + CONTROL_PAYLOAD_BYTES);
        let msg = read_frame(&mut Reader::new(&bytes)).expect("control frame verifies");
        let ctrl = read_control(&msg).expect("control payload decodes");
        assert_eq!(ctrl, BatchControl { src: 3, nreqs: 17, seq: 42, ack: 40, flags: 0 });

        mark_retransmit(&mut bytes);
        let msg = read_frame(&mut Reader::new(&bytes)).expect("re-sealed checksum verifies");
        let ctrl = read_control(&msg).expect("control payload decodes");
        assert_eq!(ctrl.flags & FLAG_RETRANSMIT, FLAG_RETRANSMIT);
        assert_eq!((ctrl.seq, ctrl.ack), (42, 40));
    }

    #[test]
    fn batch_without_control_header_is_rejected() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, WireKind::Async, |_: &Location| {});
        let err = decode_batch(&buf, 0, 1, |_, _| {}).unwrap_err();
        assert_eq!(err, WireError::Header("batch must start with a control frame"));
        assert!(verify_batch(&buf).is_err());
    }

    #[test]
    fn verify_batch_checks_every_frame() {
        let mut frames = Vec::new();
        let v = 0xABu8;
        encode_frame(&mut frames, WireKind::Async, move |_: &Location| {
            let _x = v;
        });
        let mut bytes = Vec::new();
        encode_control(&mut bytes, 1, 1, 7, 0, 0);
        bytes.extend_from_slice(&frames);
        let ctrl = verify_batch(&bytes).expect("clean batch verifies");
        assert_eq!((ctrl.src, ctrl.nreqs, ctrl.seq), (1, 1, 7));
        // Corrupt the *request* frame (past the control frame): the whole
        // batch is rejected before anything decodes.
        let flip_at = FRAME_HEADER_BYTES + CONTROL_PAYLOAD_BYTES + 2;
        let mut corrupt = bytes.clone();
        corrupt[flip_at] ^= 1;
        assert!(verify_batch(&corrupt).is_err());
    }

    #[test]
    fn dropped_transport_releases_staged_captures() {
        // Regression test for the documented frame leak: a staged but
        // never-flushed frame must run its capture's destructors when the
        // endpoint is dropped (an aborted execution), not leak them.
        let (tx, rx) = crossbeam::channel::unbounded::<Batch>();
        let t = SerializedTransport::new(
            vec![tx.clone(), tx],
            rx,
            2,
            1024, // aggregation high enough that nothing auto-flushes
            0,
            Duration::from_millis(5),
        );
        let payload = Arc::new(0u64);
        let weak = Arc::downgrade(&payload);
        let mut scratch = Vec::new();
        encode_frame(&mut scratch, WireKind::Async, move |_: &Location| {
            let _keep = &payload;
        });
        t.stage(1, Staged::Frame(&scratch));
        assert!(weak.upgrade().is_some(), "capture alive while staged");
        drop(t);
        assert!(weak.upgrade().is_none(), "staged frame must drop its capture");
    }
}
