//! Pluggable message transport between locations.
//!
//! A [`Transport`] is one location's endpoint of the message fabric: it
//! owns the per-destination staging buffers (the aggregation layer), the
//! channel sends that flush them, and the inbound queue that [`poll`]
//! drains. Everything *around* the transport stays in the `Location`
//! shell — the `sent`/`handled` quiescence counters the fence runs on,
//! the stats/trace instrumentation, and per-(src, dest) FIFO ordering by
//! construction (one staging buffer per destination, one channel per
//! receiver) — so every backend inherits the paper's ordering and
//! completion semantics unchanged.
//!
//! [`poll`]: crate::Location::poll
//!
//! Two backends implement the trait:
//!
//! * [`ClosureTransport`] (the default) stages requests as the boxed
//!   closures higher layers hand in and ships `Vec<Request>` batches —
//!   bit-identical to the pre-trait runtime, with zero marshalling.
//! * [`SerializedTransport`] encodes every request/response into a byte
//!   **wire frame** and ships concatenated frame buffers. Container-level
//!   code never sees the encoding: the `Location` RMI primitives stage a
//!   frame instead of a box, and delivery decodes and invokes through a
//!   handler registry.
//!
//! ## Wire format
//!
//! A frame is `kind:u8 | handler:u32 | len:u32 | payload[len]` (all
//! little-endian, via the vendored `wirecodec`). `kind` is a
//! [`WireKind`] — async / sync-request / response / bulk-range / segment /
//! control — carried for observability and for the process-crossing
//! backend's dispatch. `handler` indexes a process-wide registry mapping
//! each concrete closure type to a deserialization thunk
//! (`fn(&[u8], &Location)`), the stand-in for the linker-section handler
//! registration a real ARMI performs; ids are assigned on first use and
//! are only meaningful within one process. A flushed batch is one
//! [`WireKind::Control`] frame carrying `(src:u32, nreqs:u32)` — the
//! quiescence-accounting header a socket backend would use to credit
//! `handled` against `sent` — followed by `nreqs` request/response frames.
//!
//! The payload of a request frame is the closure's in-memory
//! representation: encoding **relocates** the value byte-for-byte into the
//! frame (a Rust move is a byte copy; the original is `mem::forget`-ten),
//! and the thunk reconstructs it at the destination. This is the
//! shared-memory-transport semantics — captured heap payloads (a `Vec`'s
//! buffer, an `Rc`'d slab) travel by pointer, valid across threads of one
//! process because every staged closure is `Send`. A socket backend will
//! additionally need a deep encode of captures and deterministic handler
//! ids; both are deliberately out of scope here (see DESIGN.md
//! "Pluggable transport").
//!
//! ## Accounting contract
//!
//! `bytes_sent` / `messages_serialized` / `serialize_ns` are bumped by the
//! `Location` shell at encode time, so they are attributed per-location
//! like every other counter and stay **deterministic** for a deterministic
//! scenario (the per-flush control frame is excluded from `bytes_sent`
//! precisely because flush counts are timing-dependent). A frame, once
//! staged, must be delivered exactly once; dropping an undelivered frame
//! (only possible when an execution aborts by panic) leaks the captured
//! environment instead of running its destructor, which the closure
//! backend would.

use std::any::TypeId;
use std::cell::RefCell;
use std::collections::HashMap;
use std::mem::{self, MaybeUninit};
use std::sync::{OnceLock, RwLock};

use crossbeam::channel::{Receiver, Sender};
use wirecodec::{Reader, Writer};

use crate::location::{LocId, Location, Request};

/// Which transport backend an execution uses ([`crate::RtsConfig::transport`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// Boxed closures through in-process channels (default; no marshalling).
    Closure,
    /// Byte-encoded wire frames through per-location byte queues.
    Serialized,
}

/// Wire-level classification of a frame, the first byte of its header.
/// Advisory for in-process delivery (every request frame dispatches through
/// its handler id); load-bearing for the future socket backend's dispatch
/// and for per-kind traffic accounting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub(crate) enum WireKind {
    /// A fire-and-forget `async_rmi` request.
    Async = 0,
    /// A sync / split-phase request that will send a response.
    Sync = 1,
    /// A response completing a reply slot.
    Response = 2,
    /// A bulk-range payload (tagged via `note_bulk_request`).
    Bulk = 3,
    /// A dynamic-container segment payload (tagged via
    /// `note_segment_request`).
    Segment = 4,
    /// A control frame: the batch header carrying `(src, nreqs)` for
    /// fence/quiescence accounting. Collective and fence *signaling*
    /// stays on the shared-memory control plane in-process; this variant
    /// reserves its wire representation.
    Control = 5,
}

impl WireKind {
    fn from_u8(v: u8) -> Option<WireKind> {
        Some(match v {
            0 => WireKind::Async,
            1 => WireKind::Sync,
            2 => WireKind::Response,
            3 => WireKind::Bulk,
            4 => WireKind::Segment,
            5 => WireKind::Control,
            _ => return None,
        })
    }
}

/// One decoded frame of the serialized wire format. Produced by
/// [`decode_batch`] for delivery and by tests inspecting the encoding.
pub(crate) struct WireMessage<'a> {
    pub kind: WireKind,
    pub handler: u32,
    pub payload: &'a [u8],
}

/// Bytes of a frame header: kind (1) + handler id (4) + payload len (4).
pub(crate) const FRAME_HEADER_BYTES: usize = 9;

// ---------------------------------------------------------------------
// Handler registry: concrete closure type -> deserialization thunk
// ---------------------------------------------------------------------

type Thunk = fn(&[u8], &Location);

#[derive(Default)]
struct HandlerTable {
    ids: HashMap<TypeId, u32>,
    thunks: Vec<Thunk>,
}

fn handlers() -> &'static RwLock<HandlerTable> {
    static TABLE: OnceLock<RwLock<HandlerTable>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HandlerTable::default()))
}

/// Returns (registering on first use) the handler id of closure type `F`.
fn handler_id_of<F: FnOnce(&Location) + Send + 'static>() -> u32 {
    let key = TypeId::of::<F>();
    if let Some(&id) = handlers().read().expect("handler table poisoned").ids.get(&key) {
        return id;
    }
    let mut table = handlers().write().expect("handler table poisoned");
    if let Some(&id) = table.ids.get(&key) {
        return id; // lost the registration race; another thread won
    }
    let id = u32::try_from(table.thunks.len()).expect("handler table overflow");
    table.thunks.push(invoke_thunk::<F>);
    table.ids.insert(key, id);
    id
}

fn thunk_of(id: u32) -> Thunk {
    handlers()
        .read()
        .expect("handler table poisoned")
        .thunks
        .get(id as usize)
        .copied()
        .unwrap_or_else(|| {
            panic!("stapl-rts: wire frame references unregistered handler id {id}")
        })
}

/// Reconstructs an `F` from its relocated bytes and invokes it.
fn invoke_thunk<F: FnOnce(&Location) + Send + 'static>(payload: &[u8], loc: &Location) {
    assert_eq!(
        payload.len(),
        mem::size_of::<F>(),
        "stapl-rts: wire payload size does not match handler `{}`",
        std::any::type_name::<F>()
    );
    // SAFETY: the payload is the byte image of an `F` that was moved into
    // a frame by `encode_frame` (which forgot the original), in this same
    // address space; copying it into an aligned slot and assuming init is
    // the completion of that move. `F: Send` licenses the thread crossing.
    let f = unsafe {
        let mut slot = MaybeUninit::<F>::uninit();
        std::ptr::copy_nonoverlapping(
            payload.as_ptr(),
            slot.as_mut_ptr() as *mut u8,
            payload.len(),
        );
        slot.assume_init()
    };
    f(loc);
}

/// Encodes `f` as one wire frame appended to `buf`; returns the frame's
/// size in bytes (header included). Ownership of `f` moves into the frame.
pub(crate) fn encode_frame<F: FnOnce(&Location) + Send + 'static>(
    buf: &mut Vec<u8>,
    kind: WireKind,
    f: F,
) -> usize {
    let start = buf.len();
    let size = mem::size_of::<F>();
    let mut w = Writer::new(buf);
    w.u8(kind as u8);
    w.u32(handler_id_of::<F>());
    w.u32(u32::try_from(size).expect("closure capture exceeds u32 frame length"));
    // SAFETY: reading `size_of::<F>()` bytes from a live `F` is reading its
    // object representation; the subsequent `forget` makes this the move.
    unsafe {
        w.raw(std::slice::from_raw_parts(&f as *const F as *const u8, size));
    }
    mem::forget(f);
    buf.len() - start
}

/// Decodes one frame at the reader's position.
fn decode_frame<'a>(r: &mut Reader<'a>) -> WireMessage<'a> {
    let kind_byte = r.u8().unwrap_or_else(|e| panic!("stapl-rts: truncated wire frame: {e}"));
    let kind = WireKind::from_u8(kind_byte)
        .unwrap_or_else(|| panic!("stapl-rts: unknown wire kind {kind_byte}"));
    let handler = r.u32().unwrap_or_else(|e| panic!("stapl-rts: truncated wire frame: {e}"));
    let len = r.u32().unwrap_or_else(|e| panic!("stapl-rts: truncated wire frame: {e}"));
    let payload =
        r.raw(len as usize).unwrap_or_else(|e| panic!("stapl-rts: truncated wire frame: {e}"));
    WireMessage { kind, handler, payload }
}

/// Validates a byte batch's control header and invokes `each` for every
/// request/response frame, in order. `expect_src`/`expect_n` come from the
/// channel-level [`Batch`] envelope and must agree with the wire header.
pub(crate) fn decode_batch(
    bytes: &[u8],
    expect_src: LocId,
    expect_n: usize,
    mut each: impl FnMut(WireMessage<'_>, Thunk),
) {
    let mut r = Reader::new(bytes);
    let control = decode_frame(&mut r);
    assert_eq!(control.kind, WireKind::Control, "batch must start with a control frame");
    let mut cr = Reader::new(control.payload);
    let (src, n) = (
        cr.u32().expect("control frame src"),
        cr.u32().expect("control frame nreqs"),
    );
    assert_eq!(src as usize, expect_src, "control frame source mismatch");
    assert_eq!(n as usize, expect_n, "control frame request-count mismatch");
    for _ in 0..n {
        let msg = decode_frame(&mut r);
        let thunk = thunk_of(msg.handler);
        each(msg, thunk);
    }
    assert!(r.is_empty(), "trailing bytes after the last frame of a batch");
}

// ---------------------------------------------------------------------
// Channel payloads
// ---------------------------------------------------------------------

/// What one flush ships through a channel.
pub(crate) enum Payload {
    /// Boxed closures, executed directly at the destination.
    Closures(Vec<Request>),
    /// A control frame followed by concatenated wire frames.
    Frames { bytes: Vec<u8>, nreqs: usize },
}

/// One message batch between a (source, destination) pair.
pub(crate) struct Batch {
    pub src: LocId,
    pub payload: Payload,
}

impl Batch {
    /// Number of requests carried (the unit of the node model's per-message
    /// delay and of the `handled` counter).
    pub(crate) fn len(&self) -> usize {
        match &self.payload {
            Payload::Closures(reqs) => reqs.len(),
            Payload::Frames { nreqs, .. } => *nreqs,
        }
    }
}

/// A request staged toward a destination: the backend-specific
/// representation chosen by the `Location` shell after consulting
/// [`Transport::serializes`].
pub(crate) enum Staged<'a> {
    Closure(Request),
    /// One already-encoded wire frame (scratch-buffer bytes; the endpoint
    /// copies them into its per-destination buffer).
    Frame(&'a [u8]),
}

/// What [`Transport::stage`] tells the shell about the staging buffer.
pub(crate) struct StageOutcome {
    /// The staged request is the first in its destination's buffer (drives
    /// the adaptive-flush age bookkeeping).
    pub first_in_buffer: bool,
    /// The buffer reached the aggregation threshold; the caller flushes.
    pub flush_now: bool,
}

/// What one flush shipped; `None` when the buffer was empty.
pub(crate) struct FlushInfo {
    pub nreqs: usize,
    /// Bytes pushed into the channel (0 on the closure backend).
    pub bytes: usize,
}

/// One location's endpoint of the message fabric: owns staging buffers,
/// flush, and the inbound queue.
///
/// Contract (what `Location` relies on, and what a future backend must
/// keep): `stage` buffers without reordering; `flush` pushes the whole
/// buffer for one destination as one [`Batch`] into a FIFO channel;
/// `try_recv` yields inbound batches in arrival order. The endpoint never
/// touches counters or the `sent`/`handled` fence accounting — the shell
/// bumps `sent` at stage time and `handled` at delivery, so quiescence
/// detection is transport-independent (a batch buffered inside the
/// endpoint is already counted as sent and not yet as handled).
pub(crate) trait Transport {
    /// True when the shell must stage [`Staged::Frame`]s (encoding each
    /// request) rather than [`Staged::Closure`]s.
    fn serializes(&self) -> bool;

    /// Buffers one staged request toward `dest`.
    fn stage(&self, dest: LocId, msg: Staged<'_>) -> StageOutcome;

    /// Ships `dest`'s buffer into the fabric as one batch from `src`.
    fn flush(&self, src: LocId, dest: LocId) -> Option<FlushInfo>;

    /// Pulls the next queued inbound batch, if any.
    fn try_recv(&self) -> Option<Batch>;
}

/// Builds the endpoint for `kind` over the execution's shared channel set.
pub(crate) fn make_endpoint(
    kind: TransportKind,
    senders: Vec<Sender<Batch>>,
    rx: Receiver<Batch>,
    nlocs: usize,
    aggregation: usize,
) -> Box<dyn Transport> {
    match kind {
        TransportKind::Closure => {
            Box::new(ClosureTransport::new(senders, rx, nlocs, aggregation))
        }
        TransportKind::Serialized => {
            Box::new(SerializedTransport::new(senders, rx, nlocs, aggregation))
        }
    }
}

// ---------------------------------------------------------------------
// Closure backend
// ---------------------------------------------------------------------

/// The in-process closure backend: stages `Box<dyn FnOnce>` requests and
/// ships them untouched — the pre-trait runtime, extracted verbatim.
pub(crate) struct ClosureTransport {
    senders: Vec<Sender<Batch>>,
    rx: Receiver<Batch>,
    aggregation: usize,
    outbuf: RefCell<Vec<Vec<Request>>>,
}

impl ClosureTransport {
    fn new(
        senders: Vec<Sender<Batch>>,
        rx: Receiver<Batch>,
        nlocs: usize,
        aggregation: usize,
    ) -> Self {
        ClosureTransport {
            senders,
            rx,
            aggregation,
            outbuf: RefCell::new((0..nlocs).map(|_| Vec::new()).collect()),
        }
    }
}

impl Transport for ClosureTransport {
    fn serializes(&self) -> bool {
        false
    }

    fn stage(&self, dest: LocId, msg: Staged<'_>) -> StageOutcome {
        let Staged::Closure(req) = msg else {
            unreachable!("closure transport staged a wire frame")
        };
        let mut buf = self.outbuf.borrow_mut();
        buf[dest].push(req);
        StageOutcome {
            first_in_buffer: buf[dest].len() == 1,
            flush_now: buf[dest].len() >= self.aggregation,
        }
    }

    fn flush(&self, src: LocId, dest: LocId) -> Option<FlushInfo> {
        let reqs = {
            let mut buf = self.outbuf.borrow_mut();
            if buf[dest].is_empty() {
                return None;
            }
            std::mem::take(&mut buf[dest])
        };
        let nreqs = reqs.len();
        self.senders[dest]
            .send(Batch { src, payload: Payload::Closures(reqs) })
            .expect("stapl-rts: destination location hung up");
        Some(FlushInfo { nreqs, bytes: 0 })
    }

    fn try_recv(&self) -> Option<Batch> {
        self.rx.try_recv().ok()
    }
}

// ---------------------------------------------------------------------
// Serialized backend
// ---------------------------------------------------------------------

#[derive(Default)]
struct WireBuf {
    bytes: Vec<u8>,
    nreqs: usize,
}

/// The serialized-message backend: per-destination byte buffers of wire
/// frames, flushed as control-framed byte batches.
pub(crate) struct SerializedTransport {
    senders: Vec<Sender<Batch>>,
    rx: Receiver<Batch>,
    aggregation: usize,
    outbuf: RefCell<Vec<WireBuf>>,
}

impl SerializedTransport {
    fn new(
        senders: Vec<Sender<Batch>>,
        rx: Receiver<Batch>,
        nlocs: usize,
        aggregation: usize,
    ) -> Self {
        SerializedTransport {
            senders,
            rx,
            aggregation,
            outbuf: RefCell::new((0..nlocs).map(|_| WireBuf::default()).collect()),
        }
    }
}

impl Transport for SerializedTransport {
    fn serializes(&self) -> bool {
        true
    }

    fn stage(&self, dest: LocId, msg: Staged<'_>) -> StageOutcome {
        let Staged::Frame(frame) = msg else {
            unreachable!("serialized transport staged a boxed closure")
        };
        let mut buf = self.outbuf.borrow_mut();
        let b = &mut buf[dest];
        b.bytes.extend_from_slice(frame);
        b.nreqs += 1;
        StageOutcome { first_in_buffer: b.nreqs == 1, flush_now: b.nreqs >= self.aggregation }
    }

    fn flush(&self, src: LocId, dest: LocId) -> Option<FlushInfo> {
        let (frames, nreqs) = {
            let mut buf = self.outbuf.borrow_mut();
            let b = &mut buf[dest];
            if b.nreqs == 0 {
                return None;
            }
            (std::mem::take(&mut b.bytes), std::mem::replace(&mut b.nreqs, 0))
        };
        // Prefix the control frame: (src, nreqs) for quiescence accounting
        // and wire-format self-containment.
        let mut bytes = Vec::with_capacity(FRAME_HEADER_BYTES + 8 + frames.len());
        let mut w = Writer::new(&mut bytes);
        w.u8(WireKind::Control as u8);
        w.u32(0); // control frames carry no handler
        w.u32(8);
        w.u32(u32::try_from(src).expect("location id fits u32"));
        w.u32(u32::try_from(nreqs).expect("batch request count fits u32"));
        w.raw(&frames);
        let total = bytes.len();
        self.senders[dest]
            .send(Batch { src, payload: Payload::Frames { bytes, nreqs } })
            .expect("stapl-rts: destination location hung up");
        Some(FlushInfo { nreqs, bytes: total })
    }

    fn try_recv(&self) -> Option<Batch> {
        self.rx.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_kind_round_trips() {
        for k in [
            WireKind::Async,
            WireKind::Sync,
            WireKind::Response,
            WireKind::Bulk,
            WireKind::Segment,
            WireKind::Control,
        ] {
            assert_eq!(WireKind::from_u8(k as u8), Some(k));
        }
        assert_eq!(WireKind::from_u8(200), None);
    }

    #[test]
    fn handler_ids_are_stable_per_type() {
        let a = handler_id_of::<fn(&Location)>();
        let b = handler_id_of::<fn(&Location)>();
        assert_eq!(a, b, "same type must keep its id");
        // A distinct closure type gets a distinct id.
        let payload = 7u64;
        let f = move |_: &Location| {
            let _x = payload;
        };
        fn id_of<F: FnOnce(&Location) + Send + 'static>(_: &F) -> u32 {
            handler_id_of::<F>()
        }
        assert_ne!(id_of(&f), a);
    }

    #[test]
    fn frame_header_matches_constant() {
        let mut buf = Vec::new();
        let n = encode_frame(&mut buf, WireKind::Async, |_: &Location| {});
        // A capture-less closure is zero-sized: frame = header only.
        assert_eq!(n, FRAME_HEADER_BYTES);
        assert_eq!(buf.len(), n);
        let mut r = Reader::new(&buf);
        let msg = decode_frame(&mut r);
        assert_eq!(msg.kind, WireKind::Async);
        assert!(msg.payload.is_empty());
    }

    #[test]
    fn frame_payload_is_the_capture_image() {
        let mut buf = Vec::new();
        let v: u64 = 0x0102_0304_0506_0708;
        // `let _x = v` (a binding, not the `_` wildcard) forces the capture.
        let n = encode_frame(&mut buf, WireKind::Bulk, move |_: &Location| {
            let _x = v;
        });
        assert_eq!(n, FRAME_HEADER_BYTES + std::mem::size_of::<u64>());
        let msg = decode_frame(&mut Reader::new(&buf));
        assert_eq!(msg.kind, WireKind::Bulk);
        assert_eq!(msg.payload, v.to_ne_bytes());
    }

    #[test]
    #[should_panic(expected = "control frame")]
    fn batch_without_control_header_is_rejected() {
        let mut buf = Vec::new();
        encode_frame(&mut buf, WireKind::Async, |_: &Location| {});
        decode_batch(&buf, 0, 1, |_, _| {});
    }
}
