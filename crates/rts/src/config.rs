//! Runtime configuration: aggregation and the simulated machine model.

/// Configuration for one SPMD execution.
///
/// The defaults model a single shared-memory node with moderate request
/// aggregation, matching the paper's default ARMI settings.
#[derive(Clone, Debug)]
pub struct RtsConfig {
    /// Maximum number of RMI requests buffered per destination before the
    /// buffer is flushed as a single message. `1` disables aggregation.
    ///
    /// The paper's ARMI aggregates requests "to use bandwidth and reduce
    /// overhead"; this knob is swept in the aggregation ablation bench.
    pub aggregation: usize,
    /// Number of locations per simulated node. `0` means all locations live
    /// on one node (no inter-node traffic). With `node_size = 4`, locations
    /// 0..4 share a node, 4..8 the next, and so on — the placement study of
    /// Fig. 41 compares `node_size = nlocs` against `node_size = 1`.
    pub node_size: usize,
    /// Busy-wait injected at delivery for every *message batch* that
    /// crosses a node boundary, in nanoseconds (models network latency).
    pub internode_batch_delay_ns: u64,
    /// Additional busy-wait per *request* inside a cross-node batch, in
    /// nanoseconds (models serialization / bandwidth cost).
    pub internode_per_msg_delay_ns: u64,
}

impl Default for RtsConfig {
    fn default() -> Self {
        RtsConfig {
            aggregation: 16,
            node_size: 0,
            internode_batch_delay_ns: 0,
            internode_per_msg_delay_ns: 0,
        }
    }
}

impl RtsConfig {
    /// A config with no aggregation and no node model; useful in tests that
    /// reason about exact message counts.
    pub fn unbuffered() -> Self {
        RtsConfig { aggregation: 1, ..Self::default() }
    }

    /// A config with the given aggregation factor.
    pub fn with_aggregation(aggregation: usize) -> Self {
        RtsConfig { aggregation: aggregation.max(1), ..Self::default() }
    }

    /// A cluster-like config: nodes of `node_size` locations and the given
    /// per-batch inter-node latency in nanoseconds.
    pub fn clustered(node_size: usize, batch_delay_ns: u64, per_msg_delay_ns: u64) -> Self {
        RtsConfig {
            node_size,
            internode_batch_delay_ns: batch_delay_ns,
            internode_per_msg_delay_ns: per_msg_delay_ns,
            ..Self::default()
        }
    }

    /// Returns true when `a` and `b` are placed on different simulated nodes.
    pub fn cross_node(&self, a: usize, b: usize) -> bool {
        if self.node_size == 0 {
            return false;
        }
        a / self.node_size != b / self.node_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_single_node() {
        let c = RtsConfig::default();
        assert!(!c.cross_node(0, 7));
        assert!(c.aggregation > 1);
    }

    #[test]
    fn cross_node_grouping() {
        let c = RtsConfig::clustered(4, 100, 10);
        assert!(!c.cross_node(0, 3));
        assert!(c.cross_node(3, 4));
        assert!(c.cross_node(0, 15));
        assert!(!c.cross_node(5, 6));
    }

    #[test]
    fn unbuffered_has_no_aggregation() {
        assert_eq!(RtsConfig::unbuffered().aggregation, 1);
    }

    #[test]
    fn aggregation_clamped_to_one() {
        assert_eq!(RtsConfig::with_aggregation(0).aggregation, 1);
    }
}
