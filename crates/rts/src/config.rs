//! Runtime configuration: aggregation, directory caching, adaptive
//! flushing, transport selection, and the simulated machine model.

use crate::fault::FaultSchedule;
use crate::transport::TransportKind;

/// Configuration for one SPMD execution.
///
/// The defaults model a single shared-memory node with moderate request
/// aggregation, matching the paper's default ARMI settings.
///
/// ## Environment overrides
///
/// [`RtsConfig::default`] starts from [`RtsConfig::base`] and then applies
/// environment overrides, so a whole test run can be swept without touching
/// code (the CI test matrix drives these):
///
/// | variable                    | field                |
/// |-----------------------------|----------------------|
/// | `STAPL_AGGREGATION`         | `aggregation`        |
/// | `STAPL_DIR_CACHE`           | `dir_cache` (0/1)    |
/// | `STAPL_DIR_CACHE_CAPACITY`  | `dir_cache_capacity` |
/// | `STAPL_FLUSH_AGE_US`        | `flush_age_us`       |
/// | `STAPL_BULK_THRESHOLD`      | `bulk_threshold`     |
/// | `STAPL_TRACE`               | `trace` (0/1)        |
/// | `STAPL_TRACE_CAPACITY`      | `trace_capacity`     |
/// | `STAPL_TRANSPORT`           | `transport` (`closure`/`serialized`) |
/// | `STAPL_FAULTS`              | `faults` (schedule grammar, see `rts::fault`) |
/// | `STAPL_FAULT_SEED`          | `fault_seed`         |
/// | `STAPL_RMI_TIMEOUT_US`      | `rmi_timeout_us`     |
/// | `STAPL_RETRANSMIT_RTO_US`   | `retransmit_rto_us`  |
///
/// Explicit constructors ([`RtsConfig::unbuffered`],
/// [`RtsConfig::with_aggregation`]) still win over the environment for the
/// field they set.
#[derive(Clone, Debug)]
pub struct RtsConfig {
    /// Maximum number of RMI requests buffered per destination before the
    /// buffer is flushed as a single message. `1` disables aggregation.
    ///
    /// The paper's ARMI aggregates requests "to use bandwidth and reduce
    /// overhead"; this knob is swept in the aggregation ablation bench.
    pub aggregation: usize,
    /// Number of locations per simulated node. `0` means all locations live
    /// on one node (no inter-node traffic). With `node_size = 4`, locations
    /// 0..4 share a node, 4..8 the next, and so on — the placement study of
    /// Fig. 41 compares `node_size = nlocs` against `node_size = 1`.
    pub node_size: usize,
    /// Busy-wait injected at delivery for every *message batch* that
    /// crosses a node boundary, in nanoseconds (models network latency).
    pub internode_batch_delay_ns: u64,
    /// Additional busy-wait per *request* inside a cross-node batch, in
    /// nanoseconds (models serialization / bandwidth cost).
    pub internode_per_msg_delay_ns: u64,
    /// Enables the per-location directory owner caches consulted by
    /// `dir_route`/`dir_route_ret` before falling back to home-forwarding
    /// (the BCL-style locality optimization for dynamic containers).
    pub dir_cache: bool,
    /// Maximum number of cached `gid → (bcid, owner)` entries per location
    /// *per container*. When full, an arbitrary entry is evicted.
    pub dir_cache_capacity: usize,
    /// Adaptive flush age in microseconds. `0` (the default) flushes every
    /// aggregation buffer as soon as a location goes idle — maximum
    /// responsiveness, minimum batching. A non-zero age lets buffers for
    /// cold destinations keep filling across brief waits: an idle location
    /// only force-flushes buffers whose *oldest* request has waited longer
    /// than this, so batching survives the frequent micro-waits of
    /// synchronous methods while staleness stays bounded.
    pub flush_age_us: u64,
    /// Crossover for the bulk-range transport: a remote contiguous run of
    /// at least this many elements ships as **one** bulk RMI
    /// (`get_range`/`set_range`/`apply_range`); shorter runs fall back to
    /// element-wise RMIs, which the aggregation layer already batches
    /// well. `1` makes every remote run bulk; a huge value disables bulk
    /// transport entirely (the element-wise ablation baseline).
    pub bulk_threshold: usize,
    /// Enables the per-location trace layer (`rts::trace`): typed events
    /// with monotonic timestamps plus latency histograms, collected by
    /// [`crate::execute_collect_traced`]. Off by default; when off the hot
    /// paths pay a single branch and record nothing.
    pub trace: bool,
    /// Capacity of each location's trace event ring buffer. When full, the
    /// oldest events are evicted (with an exact drop counter); per-kind
    /// counts and histograms are exact regardless. Clamped to at least 1.
    pub trace_capacity: usize,
    /// Which message transport carries RMIs between locations (see
    /// `rts::transport`): [`TransportKind::Closure`] ships boxed closures
    /// through in-process channels (the default, zero-marshalling backend);
    /// [`TransportKind::Serialized`] encodes every request/response into
    /// byte frames and ships those, exercising the wire format a
    /// process-crossing backend needs while staying semantically identical.
    pub transport: TransportKind,
    /// Seeded fabric-fault schedule (see `rts::fault`). Inactive by
    /// default; when active (and the transport is serialized) every
    /// flushed batch may be dropped, duplicated, reordered, corrupted, or
    /// delayed, and the reliable-delivery protocol must mask it. The
    /// closure backend ignores the schedule (the in-process fabric cannot
    /// lose data).
    pub faults: FaultSchedule,
    /// Seed for the fault schedule's deterministic decisions: a fixed
    /// seed faults exactly the same batches on every run of a
    /// deterministic workload.
    pub fault_seed: u64,
    /// Sync-RMI / future wait timeout in microseconds. `0` (the default)
    /// waits forever, as before. Non-zero makes `RmiFuture::try_get`
    /// return [`crate::RmiError::Timeout`] (and `get` panic with the same
    /// diagnostic: peer, handler type name, elapsed, retransmit count)
    /// instead of spinning forever on a dead peer.
    pub rmi_timeout_us: u64,
    /// Base retransmission timeout of the serialized backend's reliable
    /// delivery, in microseconds: an unacked batch is re-sent after this
    /// long, then with exponential backoff plus deterministic jitter.
    /// Clamped to at least 1.
    pub retransmit_rto_us: u64,
}

impl Default for RtsConfig {
    fn default() -> Self {
        Self::base().with_env_overrides()
    }
}

impl RtsConfig {
    /// The built-in defaults, with *no* environment overrides applied.
    pub fn base() -> Self {
        RtsConfig {
            aggregation: 16,
            node_size: 0,
            internode_batch_delay_ns: 0,
            internode_per_msg_delay_ns: 0,
            dir_cache: true,
            dir_cache_capacity: 4096,
            flush_age_us: 0,
            bulk_threshold: 2,
            trace: false,
            trace_capacity: 1 << 16,
            transport: TransportKind::Closure,
            faults: FaultSchedule::default(),
            fault_seed: 0x5EED_FA17,
            rmi_timeout_us: 0,
            retransmit_rto_us: 5_000,
        }
    }

    /// Applies the `STAPL_*` environment overrides documented on
    /// [`RtsConfig`] to this config.
    pub fn with_env_overrides(self) -> Self {
        self.with_overrides(|var| std::env::var(var).ok())
    }

    fn with_overrides(mut self, get: impl Fn(&str) -> Option<String>) -> Self {
        fn parse<T: std::str::FromStr>(v: Option<String>) -> Option<T> {
            v.and_then(|v| v.parse().ok())
        }
        if let Some(a) = parse::<usize>(get("STAPL_AGGREGATION")) {
            self.aggregation = a.max(1);
        }
        if let Some(c) = parse::<u8>(get("STAPL_DIR_CACHE")) {
            self.dir_cache = c != 0;
        }
        if let Some(c) = parse::<usize>(get("STAPL_DIR_CACHE_CAPACITY")) {
            self.dir_cache_capacity = c;
        }
        if let Some(a) = parse::<u64>(get("STAPL_FLUSH_AGE_US")) {
            self.flush_age_us = a;
        }
        if let Some(t) = parse::<usize>(get("STAPL_BULK_THRESHOLD")) {
            self.bulk_threshold = t.max(1);
        }
        if let Some(t) = parse::<u8>(get("STAPL_TRACE")) {
            self.trace = t != 0;
        }
        if let Some(c) = parse::<usize>(get("STAPL_TRACE_CAPACITY")) {
            self.trace_capacity = c.max(1);
        }
        if let Some(t) = get("STAPL_TRANSPORT") {
            // Unknown names are ignored like any other unparsable override.
            match t.trim().to_ascii_lowercase().as_str() {
                "closure" => self.transport = TransportKind::Closure,
                "serialized" => self.transport = TransportKind::Serialized,
                _ => {}
            }
        }
        if let Some(f) = get("STAPL_FAULTS") {
            // A malformed schedule is ignored, like any other unparsable
            // override (the empty string parses to "no faults").
            if let Ok(sched) = FaultSchedule::parse(&f) {
                self.faults = sched;
            }
        }
        if let Some(s) = parse::<u64>(get("STAPL_FAULT_SEED")) {
            self.fault_seed = s;
        }
        if let Some(t) = parse::<u64>(get("STAPL_RMI_TIMEOUT_US")) {
            self.rmi_timeout_us = t;
        }
        if let Some(t) = parse::<u64>(get("STAPL_RETRANSMIT_RTO_US")) {
            self.retransmit_rto_us = t.max(1);
        }
        self
    }

    /// A config with no aggregation and no node model; useful in tests that
    /// reason about exact message counts.
    pub fn unbuffered() -> Self {
        RtsConfig { aggregation: 1, ..Self::default() }
    }

    /// A config with the given aggregation factor.
    pub fn with_aggregation(aggregation: usize) -> Self {
        RtsConfig { aggregation: aggregation.max(1), ..Self::default() }
    }

    /// A config with the directory owner caches switched off (every dynamic
    /// access resolves through the home location, as in the plain paper
    /// protocol).
    pub fn without_dir_cache() -> Self {
        RtsConfig { dir_cache: false, ..Self::default() }
    }

    /// A cluster-like config: nodes of `node_size` locations and the given
    /// per-batch inter-node latency in nanoseconds.
    pub fn clustered(node_size: usize, batch_delay_ns: u64, per_msg_delay_ns: u64) -> Self {
        RtsConfig {
            node_size,
            internode_batch_delay_ns: batch_delay_ns,
            internode_per_msg_delay_ns: per_msg_delay_ns,
            ..Self::default()
        }
    }

    /// A config with tracing enabled (see [`RtsConfig::trace`] and
    /// [`crate::execute_collect_traced`]).
    pub fn traced() -> Self {
        RtsConfig { trace: true, ..Self::default() }
    }

    /// A config on the serialized-message transport: every RMI is encoded
    /// into a byte frame and decoded at its destination (see
    /// [`RtsConfig::transport`]).
    pub fn serialized() -> Self {
        RtsConfig { transport: TransportKind::Serialized, ..Self::default() }
    }

    /// A serialized-transport config with the given fault schedule and
    /// seed active (see [`RtsConfig::faults`] and `rts::fault`).
    pub fn with_faults(faults: FaultSchedule, fault_seed: u64) -> Self {
        RtsConfig {
            transport: TransportKind::Serialized,
            faults,
            fault_seed,
            ..Self::default()
        }
    }

    /// The adaptive flush age as a [`std::time::Duration`] — the typed
    /// counterpart of the raw [`RtsConfig::flush_age_us`] field, and the
    /// accessor `Location::flush_idle` routes through. Zero means "flush
    /// immediately when idle".
    pub fn flush_age(&self) -> std::time::Duration {
        std::time::Duration::from_micros(self.flush_age_us)
    }

    /// Returns true when `a` and `b` are placed on different simulated nodes.
    pub fn cross_node(&self, a: usize, b: usize) -> bool {
        if self.node_size == 0 {
            return false;
        }
        a / self.node_size != b / self.node_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_is_single_node() {
        let c = RtsConfig::base();
        assert!(!c.cross_node(0, 7));
        assert!(c.aggregation > 1);
        assert!(c.dir_cache);
        assert!(c.dir_cache_capacity > 0);
        assert_eq!(c.flush_age_us, 0);
        assert!(c.bulk_threshold >= 1);
        assert!(!c.trace, "tracing must be off by default");
        assert!(c.trace_capacity >= 1);
        assert_eq!(c.transport, TransportKind::Closure, "closures are the default transport");
        assert!(!c.faults.active(), "fault injection must be off by default");
        assert_eq!(c.rmi_timeout_us, 0, "RMI waits must not time out by default");
        assert!(c.retransmit_rto_us >= 1);
    }

    #[test]
    fn serialized_switches_transport() {
        assert_eq!(RtsConfig::serialized().transport, TransportKind::Serialized);
    }

    #[test]
    fn traced_turns_tracing_on() {
        assert!(RtsConfig::traced().trace);
    }

    #[test]
    fn flush_age_accessor_matches_raw_field() {
        let mut c = RtsConfig::base();
        assert!(c.flush_age().is_zero());
        c.flush_age_us = 2500;
        assert_eq!(c.flush_age(), std::time::Duration::from_micros(2500));
    }

    #[test]
    fn cross_node_grouping() {
        let c = RtsConfig::clustered(4, 100, 10);
        assert!(!c.cross_node(0, 3));
        assert!(c.cross_node(3, 4));
        assert!(c.cross_node(0, 15));
        assert!(!c.cross_node(5, 6));
    }

    #[test]
    fn unbuffered_has_no_aggregation() {
        assert_eq!(RtsConfig::unbuffered().aggregation, 1);
    }

    #[test]
    fn aggregation_clamped_to_one() {
        assert_eq!(RtsConfig::with_aggregation(0).aggregation, 1);
    }

    #[test]
    fn without_dir_cache_turns_caching_off() {
        assert!(!RtsConfig::without_dir_cache().dir_cache);
    }

    #[test]
    fn overrides_apply_and_clamp() {
        // Exercised through the injection point rather than the process
        // env: tests run concurrently and env mutation would race.
        let fake = |var: &str| match var {
            "STAPL_AGGREGATION" => Some("0".to_string()), // clamped to 1
            "STAPL_DIR_CACHE" => Some("0".to_string()),
            "STAPL_FLUSH_AGE_US" => Some("250".to_string()),
            "STAPL_DIR_CACHE_CAPACITY" => Some("not a number".to_string()),
            "STAPL_BULK_THRESHOLD" => Some("0".to_string()), // clamped to 1
            "STAPL_TRACE" => Some("1".to_string()),
            "STAPL_TRACE_CAPACITY" => Some("0".to_string()), // clamped to 1
            "STAPL_TRANSPORT" => Some(" Serialized ".to_string()), // trimmed, case-folded
            "STAPL_FAULTS" => Some("drop:0.25,delay_us:10".to_string()),
            "STAPL_FAULT_SEED" => Some("12345".to_string()),
            "STAPL_RMI_TIMEOUT_US" => Some("500000".to_string()),
            "STAPL_RETRANSMIT_RTO_US" => Some("0".to_string()), // clamped to 1
            _ => None,
        };
        let c = RtsConfig::base().with_overrides(fake);
        assert_eq!(c.aggregation, 1);
        assert!(!c.dir_cache);
        assert_eq!(c.flush_age_us, 250);
        assert_eq!(c.dir_cache_capacity, RtsConfig::base().dir_cache_capacity);
        assert_eq!(c.bulk_threshold, 1);
        assert!(c.trace);
        assert_eq!(c.trace_capacity, 1);
        assert_eq!(c.transport, TransportKind::Serialized);
        assert_eq!(c.faults, FaultSchedule { drop: 0.25, delay_us: 10, ..Default::default() });
        assert_eq!(c.fault_seed, 12345);
        assert_eq!(c.rmi_timeout_us, 500_000);
        assert_eq!(c.retransmit_rto_us, 1);
    }

    #[test]
    fn malformed_fault_schedule_is_ignored() {
        let c = RtsConfig::base()
            .with_overrides(|v| (v == "STAPL_FAULTS").then(|| "drop:2.0".to_string()));
        assert!(!c.faults.active());
    }

    #[test]
    fn unknown_transport_override_is_ignored() {
        let c = RtsConfig::base()
            .with_overrides(|v| (v == "STAPL_TRANSPORT").then(|| "tcp".to_string()));
        assert_eq!(c.transport, TransportKind::Closure);
    }

    #[test]
    fn no_overrides_is_identity() {
        let c = RtsConfig::base().with_overrides(|_| None);
        assert_eq!(c.aggregation, RtsConfig::base().aggregation);
        assert_eq!(c.dir_cache, RtsConfig::base().dir_cache);
        assert_eq!(c.trace, RtsConfig::base().trace);
        assert_eq!(c.trace_capacity, RtsConfig::base().trace_capacity);
        assert_eq!(c.transport, RtsConfig::base().transport);
        assert_eq!(c.faults, RtsConfig::base().faults);
        assert_eq!(c.rmi_timeout_us, RtsConfig::base().rmi_timeout_us);
        assert_eq!(c.retransmit_rto_us, RtsConfig::base().retransmit_rto_us);
    }

    #[test]
    fn with_faults_activates_the_serialized_backend() {
        let sched = FaultSchedule { drop: 0.5, ..Default::default() };
        let c = RtsConfig::with_faults(sched, 7);
        assert_eq!(c.transport, TransportKind::Serialized);
        assert!(c.faults.active());
        assert_eq!(c.fault_seed, 7);
    }
}
