//! # stapl-rts — an ARMI-style runtime system
//!
//! This crate reproduces the STAPL runtime system (RTS) described in
//! Chapter III.B of *The STAPL Parallel Container Framework*: locations,
//! remote method invocations (RMIs), fences, and collective operations.
//!
//! The paper's RTS runs over MPI/pthreads on distributed-memory machines.
//! Here the distributed machine is simulated inside one process:
//!
//! * a **location** is an OS thread with a *private address space by
//!   convention* — no object data is shared between locations; every
//!   cross-location interaction is a message through a channel,
//! * an **RMI** is a boxed closure shipped to the owning location, where it
//!   looks up the target *p_object* representative in a per-location
//!   registry and executes against it,
//! * requests between a fixed (source, destination) pair are executed in
//!   **invocation order** (the paper's point-to-point FIFO guarantee),
//! * **`rmi_fence`** performs global termination detection over
//!   (sent, handled) counters, so arbitrarily deep *method forwarding*
//!   chains are drained before the fence completes,
//! * **aggregation** packs multiple requests to the same destination into a
//!   single message (the paper's bandwidth optimization), and
//! * a configurable **node model** injects per-message delay between
//!   locations placed on different simulated nodes, reproducing the paper's
//!   same-node / cross-node placement experiments (Fig. 41).
//!
//! Every blocking wait in this crate (sync RMI, [`RmiFuture::get`],
//! [`Location::barrier`], [`Location::rmi_fence`]) *polls and executes*
//! incoming requests while waiting, which is what makes the classic
//! "two locations sync-RMI each other" pattern deadlock-free.
//!
//! ## Quick example
//!
//! ```
//! use stapl_rts::{execute, RtsConfig};
//! use std::cell::RefCell;
//!
//! // One counter per location; location 0 asks everyone to increment the
//! // counter of location 1, then reads it back synchronously.
//! execute(RtsConfig::default(), 4, |loc| {
//!     let (h, _rep) = loc.register(RefCell::new(0u64));
//!     loc.rmi_fence(); // registration is collective
//!     loc.async_rmi(1, h, |c: &RefCell<u64>, _| *c.borrow_mut() += 1);
//!     loc.rmi_fence();
//!     if loc.id() == 0 {
//!         let v = loc.sync_rmi(1, h, |c: &RefCell<u64>, _| *c.borrow());
//!         assert_eq!(v, 4);
//!     }
//! });
//! ```

mod barrier;
mod collective;
mod config;
mod fault;
mod future;
mod location;
mod spmd;
mod stats;
mod trace;
mod transport;

pub use config::RtsConfig;
pub use fault::FaultSchedule;
pub use future::{RmiError, RmiFuture};
pub use location::{Handle, LocId, Location, ReplyToken};
pub use spmd::{execute, execute_collect, execute_collect_traced};
pub use stats::StatsSnapshot;
pub use trace::{
    LatencyHistogram, LocationTrace, RunTrace, TraceEvent, TraceEventKind, TraceSummary,
    HISTOGRAM_NAMES, KIND_COUNT,
};
pub use transport::TransportKind;
